#!/usr/bin/env python
"""Portability — the same binaries across the Excalibur family (§4).

The paper: porting to a device with a different dual-port memory
"would require only recompiling the module.  The user application would
immediately benefit without need to recompile."  Here the *identical*
workload objects (the C-side mapping calls and the core FSM) run on
EPXA1, EPXA4 and EPXA10; only the SoC description differs, and the
fault behaviour adapts automatically.

Run:  python examples/portability.py
"""

from repro import PRESETS, System, adpcm_workload, idea_workload, run_vim


def main() -> None:
    print("Same application + same coprocessor, three devices:\n")
    for workload in (adpcm_workload(8 * 1024), idea_workload(32 * 1024)):
        print(f"{workload.name} ({workload.total_bytes // 1024} KB working set)")
        for soc in PRESETS.values():
            result = run_vim(System(soc), workload)
            result.verify()
            meas = result.measurement
            print(
                f"  {soc.name:7s} ({soc.dpram_bytes // 1024:3d} KB DP-RAM, "
                f"{soc.num_pages:2d} pages): {result.total_ms:7.3f} ms, "
                f"{meas.counters.page_faults:3d} faults, "
                f"SW(DP) {meas.sw_dp_ps / 1e9:6.3f} ms"
            )
        print()
    print(
        "Neither the application's mapping calls nor the coprocessor FSM"
        "\nchanged between rows; the OS module is simply 'recompiled' with"
        "\nthe new platform constants — the paper's portability claim."
    )


if __name__ == "__main__":
    main()
