#!/usr/bin/env python
"""IDEA encryption offload — the paper's crypto workload (Figure 9).

Encrypts messages of growing size on the coprocessor, comparing the
*typical* hand-integrated engine against the VIM-based one.  The
typical version dies with ``CapacityError`` as soon as plaintext plus
ciphertext exceed the 16 KB dual-port RAM — the VIM version keeps
going, unchanged, at ~11x over software.  The decrypt check at the end
closes the loop with the software key schedule.

Run:  python examples/idea_encrypt.py
"""

from repro import System, idea_workload, run_software, run_typical, run_vim
from repro.apps import idea, workloads
from repro.errors import CapacityError

SIZES_KB = (4, 8, 16, 32)


def main() -> None:
    print("IDEA encryption: typical vs VIM-based coprocessor (EPXA1)\n")
    for kb in SIZES_KB:
        workload = idea_workload(kb * 1024, seed=kb)
        sw = run_software(System(), workload)
        vim = run_vim(System(), workload)
        vim.verify()
        try:
            typical = run_typical(System(), workload)
            typical.verify()
            typical_text = (
                f"{typical.total_ms:7.3f} ms "
                f"({typical.measurement.speedup_over(sw.measurement):5.1f}x)"
            )
        except CapacityError:
            typical_text = "exceeds available memory      "
        print(
            f"{kb:3d} KB: SW {sw.total_ms:8.3f} ms | "
            f"typical {typical_text} | "
            f"VIM {vim.total_ms:7.3f} ms "
            f"({vim.measurement.speedup_over(sw.measurement):5.1f}x, "
            f"{vim.measurement.counters.page_faults} faults)"
        )

    # Close the loop: decrypt the coprocessor's output in software.
    workload = idea_workload(4 * 1024, seed=4)
    vim = run_vim(System(), workload)
    key = workloads.idea_key(seed=4)
    recovered = idea.decrypt(vim.outputs[1], key)
    assert recovered == workload.objects[0].data
    print(
        "\nDecrypting the coprocessor's ciphertext in software recovers"
        "\nthe plaintext bit-exactly: hardware and software agree on the"
        "\ncipher, they only differ in who does the work."
    )


if __name__ == "__main__":
    main()
