#!/usr/bin/env python
"""ADPCM decode offload — the paper's multimedia workload (Figure 8).

Simulates a media application decoding compressed audio through the
VIM-based coprocessor at several stream sizes, printing the paper-style
stacked decomposition and the speedup over pure software.  Note how the
application code (the workload spec) never changes as the stream
outgrows the 16 KB dual-port RAM — the OS absorbs the difference.

Run:  python examples/adpcm_player.py
"""

from repro import System, adpcm_workload, run_software, run_vim
from repro.exp import stacked_bar_chart
from repro.apps import adpcm

SIZES_KB = (2, 4, 8, 16)


def main() -> None:
    print("ADPCM decode: software vs VIM-based coprocessor (EPXA1)\n")
    bars = []
    for kb in SIZES_KB:
        workload = adpcm_workload(kb * 1024, seed=kb)
        sw = run_software(System(), workload)
        hw = run_vim(System(), workload)
        hw.verify()
        meas = hw.measurement
        samples = kb * 1024 * 2
        print(
            f"{kb:3d} KB in -> {kb * adpcm.OUTPUT_EXPANSION:3d} KB out "
            f"({samples} samples): SW {sw.total_ms:7.3f} ms, "
            f"VIM {hw.total_ms:7.3f} ms "
            f"({meas.speedup_over(sw.measurement):.2f}x, "
            f"{meas.counters.page_faults} faults)"
        )
        bars.append(
            (
                f"{kb}KB",
                {
                    "hw": meas.hw_ps / 1e9,
                    "sw_dp": meas.sw_dp_ps / 1e9,
                    "sw_imu": meas.sw_imu_ps / 1e9,
                },
            )
        )
    print("\nVIM-based execution time decomposition (cf. Figure 8):")
    print(stacked_bar_chart(bars))
    print(
        "\nNo faults at 2 KB (everything fits the dual-port RAM); from"
        "\n4 KB onwards the VIM pages data in and out on demand, and the"
        "\nspeedup is only moderately affected — the paper's conclusion."
    )


if __name__ == "__main__":
    main()
