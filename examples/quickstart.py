#!/usr/bin/env python
"""Quickstart — the paper's motivating example (Figure 3), all three ways.

Runs ``C[i] = A[i] + B[i]`` as:

1. the pure software version,
2. the *typical coprocessor* version, with the explicit chunking loop a
   programmer must write when the dataset exceeds the dual-port memory
   (the middle excerpt of Figure 3),
3. the VIM-based version — two ``FPGA_MAP_OBJECT`` calls and one
   ``FPGA_EXECUTE``, no knowledge of the memory size.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Direction,
    ObjectSpec,
    System,
    WorkloadSpec,
    run_software,
    run_typical,
    run_vim,
    vector_add_workload,
)
from repro.apps import vectors
from repro.coproc.kernels import vector_add as vadd_core

#: 2048 elements x 4 bytes x 3 vectors = 24 KB: more than the EPXA1's
#: 16 KB dual-port RAM, so the typical version *must* chunk.
NUM_ELEMENTS = 2048


def run_typical_chunked(workload: WorkloadSpec) -> tuple[bytes, float]:
    """The Figure 3 middle version: explicit, platform-aware chunking.

    The programmer splits the vectors so that one chunk of A, B and C
    fits the dual-port RAM at once — exactly the burden ("unnecessary
    platform-related details") the VIM removes.
    """
    system = System()
    data_chunk = system.dpram.size // 3 // 4 // 256 * 256  # elements
    a_spec, b_spec, c_spec = workload.objects
    a = np.frombuffer(a_spec.data, dtype="<u4")
    b = np.frombuffer(b_spec.data, dtype="<u4")
    out = np.zeros(len(a), dtype="<u4")
    total_ms = 0.0
    data_pt = 0
    while data_pt < len(a):
        count = min(data_chunk, len(a) - data_pt)
        chunk = WorkloadSpec(
            name=f"add-chunk@{data_pt}",
            bitstream=workload.bitstream,
            objects=(
                ObjectSpec(0, "A", Direction.IN, count * 4,
                           a[data_pt : data_pt + count].tobytes()),
                ObjectSpec(1, "B", Direction.IN, count * 4,
                           b[data_pt : data_pt + count].tobytes()),
                ObjectSpec(2, "C", Direction.OUT, count * 4),
            ),
            params=(count,),
            sw_cycles=vectors.sw_cycles(count),
            reference=lambda: {},
        )
        result = run_typical(system, chunk)
        out[data_pt : data_pt + count] = np.frombuffer(
            result.outputs[2], dtype="<u4"
        )
        total_ms += result.total_ms
        data_pt += count
    return out.tobytes(), total_ms


def main() -> None:
    workload = vector_add_workload(NUM_ELEMENTS, seed=42)
    print(f"add_vectors over {NUM_ELEMENTS} elements "
          f"({workload.total_bytes // 1024} KB working set, 16 KB DP-RAM)\n")

    sw = run_software(System(), workload)
    sw.verify()
    print(f"1. pure software        : {sw.total_ms:8.3f} ms")

    chunked_output, chunked_ms = run_typical_chunked(workload)
    assert chunked_output == workload.reference()[2], "chunked output differs!"
    print(f"2. typical coprocessor  : {chunked_ms:8.3f} ms   "
          "(hand-written chunking loop)")

    vim = run_vim(System(), workload)
    vim.verify()
    meas = vim.measurement
    print(f"3. VIM-based coprocessor: {vim.total_ms:8.3f} ms   "
          f"(zero platform knowledge; {meas.counters.page_faults} page faults "
          "handled by the OS)")

    print("\nVIM time decomposition:")
    print(f"   hardware (core + IMU) : {meas.hw_ps / 1e9:8.3f} ms")
    print(f"   OS, DP-RAM management : {meas.sw_dp_ps / 1e9:8.3f} ms")
    print(f"   OS, IMU management    : {meas.sw_imu_ps / 1e9:8.3f} ms")
    print(f"   OS, plumbing          : {meas.sw_other_ps / 1e9:8.3f} ms")
    print("\nAll three versions produced bit-identical results.")


if __name__ == "__main__":
    main()
