#!/usr/bin/env python
"""Waveform capture — regenerate Figure 7 and export a VCD trace.

Shows the IMU/coprocessor handshake cycle by cycle (data ready on the
fourth rising edge, as in the paper's Figure 7), compares it with the
pipelined IMU, and writes a GTKWave-compatible VCD file of a short
vector-add run for interactive inspection.

Run:  python examples/waveforms.py [output.vcd]
"""

import sys

from repro import System, run_vim, vector_add_workload
from repro.exp import figure7
from repro.imu.imu import Imu
from repro.trace.timeline import WaveformProbe
from repro.trace.vcd import write_vcd


def capture_run_vcd(path: str) -> int:
    """Run a small vector add while probing the CP_* ports; write VCD."""
    system = System()
    workload = vector_add_workload(8, seed=1)
    # Probe the ports of the IMU the runner is about to build: patch in
    # via a tiny subclass hook.
    probes = []

    original_init = Imu.__init__

    def probed_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        probes.append(WaveformProbe(system.engine, list(self.ports)))

    Imu.__init__ = probed_init
    try:
        run_vim(system, workload).verify()
    finally:
        Imu.__init__ = original_init
    probe = probes[0]
    probe.detach()
    write_vcd(probe, path, module="vim_system")
    return sum(len(trace.times) for trace in probe.traces.values())


def main() -> None:
    result = figure7()
    print("Figure 7 — translated read access, 4-cycle IMU:\n")
    print(result.diagram)
    print(f"\ndata ready on rising edge {result.data_ready_edge} (paper: 4)")

    pipelined = figure7(pipelined=True)
    print("\nPipelined IMU (the paper's announced improvement):\n")
    print(pipelined.diagram)
    print(f"\ndata ready on rising edge {pipelined.data_ready_edge}")

    path = sys.argv[1] if len(sys.argv) > 1 else "vector_add.vcd"
    changes = capture_run_vcd(path)
    print(f"\nWrote {changes} signal changes of a full vector-add run to "
          f"{path} (view with GTKWave).")


if __name__ == "__main__":
    main()
