#!/usr/bin/env python
"""Streaming media pipeline — repeated FPGA_EXECUTE over one session.

§3.3: after end-of-operation handling "the coprocessor should be ready
and waiting for new execution, if another FPGA_EXECUTE call appears."
This example behaves like a real media application: it keeps one
coprocessor session open and pushes a long ADPCM stream through it in
chunks, refilling the same mapped input buffer between ``execute``
calls — the bit-stream is configured once, objects are mapped once.

It also shows the two §3.1/§3.3 optimisation hints: the input is
mapped with ``Hint.STREAM`` (the VIM prefetches its next page on every
fault for it) and a comparison run shows the fault reduction.

Run:  python examples/streaming_pipeline.py
"""

from repro import CoprocessorSession, Hint, System
from repro.apps import adpcm, workloads
from repro.coproc.kernels import adpcm as adpcm_core

CHUNK = 4 * 1024          # bytes of ADPCM per FPGA_EXECUTE; with the 4x
                          # output this working set outgrows the 16 KB
                          # DP-RAM, so every chunk faults
NUM_CHUNKS = 6            # 24 KB stream in total


def decode_stream(hints: Hint) -> tuple[float, int, int]:
    """Decode the whole stream chunk by chunk; return (ms, faults, pf)."""
    stream = workloads.adpcm_stream(CHUNK * NUM_CHUNKS, seed=11)
    total_ms = 0.0
    faults = 0
    prefetches = 0
    with CoprocessorSession(System(), adpcm_core.bitstream()) as session:
        # Both sides of the pipeline are strictly sequential, so the
        # hint (when given) applies to input and output alike.
        src = session.map_input(0, "adpcm_in", stream[:CHUNK], hints=hints)
        session.map_output(1, "pcm_out", 4 * CHUNK, hints=hints)
        for index in range(NUM_CHUNKS):
            chunk = stream[index * CHUNK : (index + 1) * CHUNK]
            src.fill_from(chunk)
            result = session.execute([CHUNK], label=f"chunk-{index}")
            expected = adpcm.decode(chunk).astype("<i2").tobytes()
            assert result.outputs[1] == expected, f"chunk {index} corrupt"
            total_ms += result.total_ms
            faults += result.measurement.counters.page_faults
            prefetches += result.measurement.counters.prefetches
        configured = session.system.fabric.configurations
    assert configured == 1, "bit-stream must be configured exactly once"
    return total_ms, faults, prefetches


def main() -> None:
    print(
        f"Decoding {CHUNK * NUM_CHUNKS // 1024} KB of ADPCM in "
        f"{NUM_CHUNKS} chunks over ONE session (one FPGA_LOAD, "
        f"{NUM_CHUNKS} FPGA_EXECUTEs)\n"
    )
    plain_ms, plain_faults, _ = decode_stream(Hint.NONE)
    print(f"no hints    : {plain_ms:7.3f} ms, {plain_faults} page faults")
    hint_ms, hint_faults, prefetches = decode_stream(Hint.STREAM)
    print(
        f"Hint.STREAM : {hint_ms:7.3f} ms, {hint_faults} page faults "
        f"({prefetches} pages prefetched by the VIM)"
    )
    print(
        "\nEvery chunk decoded bit-exactly; the application never"
        "\nreconfigured the fabric, remapped an object, or mentioned the"
        "\ndual-port memory."
    )


if __name__ == "__main__":
    main()
