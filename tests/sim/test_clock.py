"""Unit tests for clock domains."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import ClockDomain
from repro.sim.engine import Engine
from repro.sim.time import mhz


class TestTicking:
    def test_edges_arrive_at_period_multiples(self, engine: Engine):
        domain = ClockDomain(engine, "clk", mhz(40.0))
        times = []
        domain.attach(lambda: times.append(engine.now))
        domain.start()
        engine.run_until(lambda: len(times) >= 3)
        domain.stop()
        assert times == [25_000, 50_000, 75_000]

    def test_cycle_counter(self, engine: Engine, clock_40mhz: ClockDomain):
        clock_40mhz.start()
        engine.run_until(lambda: clock_40mhz.cycles >= 5)
        clock_40mhz.stop()
        assert clock_40mhz.cycles == 5

    def test_handlers_run_in_attachment_order(self, engine: Engine):
        domain = ClockDomain(engine, "clk", mhz(40.0))
        log = []
        domain.attach(lambda: log.append("imu"))
        domain.attach(lambda: log.append("core"))
        domain.start()
        engine.run_until(lambda: len(log) >= 2)
        domain.stop()
        assert log[:2] == ["imu", "core"]

    def test_detach_removes_handler(self, engine: Engine):
        domain = ClockDomain(engine, "clk", mhz(40.0))
        log = []
        handler = lambda: log.append("x")  # noqa: E731
        domain.attach(handler)
        domain.detach(handler)
        domain.start()
        engine.advance(100_000)
        domain.stop()
        assert log == []


class TestStartStop:
    def test_double_start_rejected(self, engine: Engine, clock_40mhz: ClockDomain):
        clock_40mhz.start()
        with pytest.raises(SimulationError):
            clock_40mhz.start()

    def test_stop_is_idempotent(self, clock_40mhz: ClockDomain):
        clock_40mhz.stop()  # never started: no-op
        clock_40mhz.start()
        clock_40mhz.stop()
        clock_40mhz.stop()

    def test_stop_cancels_pending_edge(self, engine: Engine):
        domain = ClockDomain(engine, "clk", mhz(40.0))
        ticks = []
        domain.attach(lambda: ticks.append(engine.now))
        domain.start()
        domain.stop()
        engine.advance(1_000_000)
        assert ticks == []

    def test_restart_resumes_from_now(self, engine: Engine):
        domain = ClockDomain(engine, "clk", mhz(40.0))
        ticks = []
        domain.attach(lambda: ticks.append(engine.now))
        domain.start()
        engine.run_until(lambda: len(ticks) >= 1)
        domain.stop()
        engine.advance(1_000_000)  # OS busy; fabric paused
        domain.start()
        engine.run_until(lambda: len(ticks) >= 2)
        domain.stop()
        assert ticks[1] == ticks[0] + 1_000_000 + domain.period_ps

    def test_two_domains_interleave_by_frequency(self, engine: Engine):
        fast = ClockDomain(engine, "imu", mhz(24.0))
        slow = ClockDomain(engine, "core", mhz(6.0))
        log = []
        fast.attach(lambda: log.append("f"))
        slow.attach(lambda: log.append("s"))
        fast.start()
        slow.start()
        engine.run_until(lambda: log.count("s") >= 2)
        fast.stop()
        slow.stop()
        # Roughly four fast edges per slow edge (24 MHz vs 6 MHz).
        first_slow = log.index("s")
        assert log[:first_slow].count("f") in (3, 4)

    def test_elapsed_ps(self, clock_40mhz: ClockDomain):
        assert clock_40mhz.elapsed_ps(4) == 100_000
