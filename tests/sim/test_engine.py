"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_run_in_time_order(self, engine: Engine):
        log = []
        engine.schedule(30, lambda: log.append("c"))
        engine.schedule(10, lambda: log.append("a"))
        engine.schedule(20, lambda: log.append("b"))
        engine.drain()
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_run_fifo(self, engine: Engine):
        log = []
        for tag in ("first", "second", "third"):
            engine.schedule(100, lambda tag=tag: log.append(tag))
        engine.drain()
        assert log == ["first", "second", "third"]

    def test_now_advances_to_event_time(self, engine: Engine):
        seen = []
        engine.schedule(42, lambda: seen.append(engine.now))
        engine.drain()
        assert seen == [42]
        assert engine.now == 42

    def test_negative_delay_rejected(self, engine: Engine):
        with pytest.raises(SimulationError):
            engine.schedule(-1, lambda: None)

    def test_schedule_at_in_past_rejected(self, engine: Engine):
        engine.schedule(10, lambda: None)
        engine.drain()
        with pytest.raises(SimulationError):
            engine.schedule_at(5, lambda: None)

    def test_events_scheduled_from_callbacks(self, engine: Engine):
        log = []

        def chain():
            log.append(engine.now)
            if engine.now < 30:
                engine.schedule(10, chain)

        engine.schedule(10, chain)
        engine.drain()
        assert log == [10, 20, 30]


class TestCancel:
    def test_cancelled_event_does_not_run(self, engine: Engine):
        log = []
        handle = engine.schedule(10, lambda: log.append("x"))
        engine.cancel(handle)
        engine.drain()
        assert log == []

    def test_pending_counts_exclude_cancelled(self, engine: Engine):
        handle = engine.schedule(10, lambda: None)
        engine.schedule(20, lambda: None)
        assert engine.pending() == 2
        engine.cancel(handle)
        assert engine.pending() == 1

    def test_cancel_of_executed_handle_is_noop(self, engine: Engine):
        # Regression: cancelling a handle that already ran used to park
        # it in the tombstone set forever, making pending() undercount
        # and the set grow without bound over long runs.
        handle = engine.schedule(10, lambda: None)
        engine.drain()
        engine.cancel(handle)
        assert engine.pending() == 0
        engine.schedule(10, lambda: None)
        assert engine.pending() == 1

    def test_cancel_of_unknown_handle_is_noop(self, engine: Engine):
        engine.schedule(10, lambda: None)
        engine.cancel(12345)  # never issued
        assert engine.pending() == 1
        log = []
        engine.schedule(20, lambda: log.append("y"))
        engine.drain()
        assert log == ["y"]

    def test_double_cancel_counts_once(self, engine: Engine):
        handle = engine.schedule(10, lambda: None)
        engine.schedule(20, lambda: None)
        engine.cancel(handle)
        engine.cancel(handle)
        assert engine.pending() == 1
        assert engine.drain() == 1


class TestRunUntil:
    def test_stops_when_predicate_true(self, engine: Engine):
        state = {"hits": 0}

        def bump():
            state["hits"] += 1
            engine.schedule(10, bump)

        engine.schedule(10, bump)
        assert engine.run_until(lambda: state["hits"] >= 3)
        assert state["hits"] == 3

    def test_returns_false_when_queue_drains(self, engine: Engine):
        engine.schedule(10, lambda: None)
        assert not engine.run_until(lambda: False)

    def test_true_immediately_runs_nothing(self, engine: Engine):
        log = []
        engine.schedule(10, lambda: log.append("x"))
        assert engine.run_until(lambda: True)
        assert log == []

    def test_max_time_guard_raises(self, engine: Engine):
        def forever():
            engine.schedule(10, forever)

        engine.schedule(10, forever)
        with pytest.raises(SimulationError):
            engine.run_until(lambda: False, max_time_ps=100)
        # The engine remains usable and the over-deadline event survives.
        assert engine.pending() >= 1

    def test_cancel_still_works_after_timeout_repush(self, engine: Engine):
        # Regression: the too-late event used to be re-pushed under a
        # *fresh* sequence number, orphaning its original cancel handle.
        log = []
        handle = engine.schedule(200, lambda: log.append("x"))
        with pytest.raises(SimulationError):
            engine.run_until(lambda: False, max_time_ps=100)
        engine.cancel(handle)
        engine.drain()
        assert log == []

    def test_fifo_order_survives_timeout_repush(self, engine: Engine):
        # Regression: the fresh sequence number also demoted the re-pushed
        # event behind its simultaneous peers on resume.
        log = []
        engine.schedule(200, lambda: log.append("first"))
        engine.schedule(200, lambda: log.append("second"))
        with pytest.raises(SimulationError):
            engine.run_until(lambda: False, max_time_ps=100)
        engine.drain()
        assert log == ["first", "second"]


class TestAdvance:
    def test_advance_moves_time_without_events(self, engine: Engine):
        engine.advance(500)
        assert engine.now == 500

    def test_advance_fires_due_events(self, engine: Engine):
        log = []
        engine.schedule(100, lambda: log.append(engine.now))
        engine.advance(150)
        assert log == [100]
        assert engine.now == 150

    def test_advance_leaves_future_events(self, engine: Engine):
        log = []
        engine.schedule(100, lambda: log.append("x"))
        engine.advance(50)
        assert log == []
        assert engine.pending() == 1
        assert engine.now == 50

    def test_negative_advance_rejected(self, engine: Engine):
        with pytest.raises(SimulationError):
            engine.advance(-1)

    def test_advance_zero_is_noop(self, engine: Engine):
        engine.advance(0)
        assert engine.now == 0

    def test_advance_skips_cancelled_without_time_travel(self, engine: Engine):
        # Regression: a cancelled event before the deadline used to fool
        # the peek, so step() executed the *live* event past the deadline
        # and the final ``now = deadline`` moved time backwards.
        log = []
        handle = engine.schedule(100, lambda: log.append("cancelled"))
        engine.schedule(200, lambda: log.append(engine.now))
        engine.cancel(handle)
        engine.advance(150)
        assert log == []  # the live event lies past the deadline
        assert engine.now == 150  # time never exceeded the deadline
        assert engine.pending() == 1
        engine.advance(100)
        assert log == [200]
        assert engine.now == 250

    def test_advance_runs_live_event_behind_cancelled_one(self, engine: Engine):
        log = []
        handle = engine.schedule(50, lambda: log.append("dead"))
        engine.schedule(120, lambda: log.append(engine.now))
        engine.cancel(handle)
        engine.advance(130)
        assert log == [120]
        assert engine.now == 130

    def test_now_never_decreases_across_advance(self, engine: Engine):
        observed = []
        handle = engine.schedule(10, lambda: None)
        engine.schedule(500, lambda: observed.append(engine.now))
        engine.cancel(handle)
        for _ in range(10):
            engine.advance(60)
            observed.append(engine.now)
        assert observed == sorted(observed)


class TestDrain:
    def test_drain_returns_event_count(self, engine: Engine):
        for _ in range(5):
            engine.schedule(10, lambda: None)
        assert engine.drain() == 5

    def test_drain_livelock_guard(self, engine: Engine):
        def forever():
            engine.schedule(1, forever)

        engine.schedule(1, forever)
        with pytest.raises(SimulationError):
            engine.drain(max_events=100)
