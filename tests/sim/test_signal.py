"""Unit tests for traced signals."""

import pytest

from repro.errors import SimulationError
from repro.sim.signal import Signal, SignalBundle


class TestSignal:
    def test_initial_value(self):
        assert Signal("s", width=8, init=5).value == 5

    def test_set_and_read(self):
        sig = Signal("s", width=8)
        sig.set(200)
        assert sig.value == 200

    def test_width_enforced_on_set(self):
        sig = Signal("s", width=4)
        with pytest.raises(SimulationError):
            sig.set(16)

    def test_width_enforced_on_init(self):
        with pytest.raises(SimulationError):
            Signal("s", width=2, init=4)

    def test_zero_width_rejected(self):
        with pytest.raises(SimulationError):
            Signal("s", width=0)

    def test_observer_fires_on_change(self):
        sig = Signal("s", width=8)
        seen = []
        sig.observe(lambda s, t, v: seen.append(v))
        sig.set(1)
        sig.set(2)
        assert seen == [1, 2]

    def test_observer_skipped_on_same_value(self):
        sig = Signal("s", width=8, init=7)
        seen = []
        sig.observe(lambda s, t, v: seen.append(v))
        sig.set(7)
        assert seen == []

    def test_unobserve(self):
        sig = Signal("s", width=8)
        seen = []
        observer = lambda s, t, v: seen.append(v)  # noqa: E731
        sig.observe(observer)
        sig.unobserve(observer)
        sig.set(3)
        assert seen == []

    def test_bool_conversion(self):
        assert not Signal("s")
        assert Signal("s", init=1)


class TestSignalBundle:
    def test_new_prefixes_names(self):
        bundle = SignalBundle("cp")
        sig = bundle.new("addr", width=32)
        assert sig.name == "cp.addr"

    def test_iteration_in_declaration_order(self):
        bundle = SignalBundle("cp")
        a = bundle.new("a")
        b = bundle.new("b")
        assert list(bundle) == [a, b]
        assert len(bundle) == 2
