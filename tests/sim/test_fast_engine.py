"""Fast-backend specifics: periodic tasks, skip budgets, seq parity.

The generic engine contract is exercised against both backends through
the parametrised ``engine`` fixture in ``tests/sim/test_engine.py``;
this module pins down the behaviours only :class:`FastEngine` has —
native periodic tasks, the ``fast_forward`` silent-edge machinery, and
the sequence-number parity that makes its event order bit-identical to
the reference backend.
"""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import ClockDomain
from repro.sim.engine import Engine, FastEngine
from repro.sim.time import mhz


class Counter:
    """Minimal periodic-task owner (the engine bumps ``cycles``)."""

    def __init__(self):
        self.cycles = 0


class TestPeriodicTasks:
    def test_task_counts_toward_pending(self):
        engine = FastEngine()
        task = engine.start_periodic(10, [], Counter())
        assert engine.pending() == 1
        engine.stop_periodic(task)
        assert engine.pending() == 0

    def test_stop_is_idempotent(self):
        engine = FastEngine()
        task = engine.start_periodic(10, [], Counter())
        engine.stop_periodic(task)
        engine.stop_periodic(task)
        assert engine.pending() == 0

    def test_non_positive_period_rejected(self):
        engine = FastEngine()
        with pytest.raises(SimulationError):
            engine.start_periodic(0, [], Counter())

    def test_edges_fire_at_multiples_of_period(self):
        engine = FastEngine()
        owner = Counter()
        times = []
        engine.start_periodic(10, [lambda: times.append(engine.now)], owner)
        for _ in range(4):
            engine.step()
        assert times == [10, 20, 30, 40]
        assert owner.cycles == 4

    def test_handlers_list_held_by_reference(self):
        engine = FastEngine()
        handlers = []
        hits = []
        engine.start_periodic(10, handlers, Counter())
        engine.step()
        handlers.append(lambda: hits.append(engine.now))
        engine.step()
        assert hits == [20]

    def test_handler_stopping_task_halts_stream(self):
        engine = FastEngine()
        owner = Counter()
        task_box = []
        edges = []

        def handler():
            edges.append(engine.now)
            if len(edges) == 2:
                engine.stop_periodic(task_box[0])

        task_box.append(engine.start_periodic(10, [handler], owner))
        assert engine.drain() == 2
        assert edges == [10, 20]
        assert owner.cycles == 2


class TestSeqParity:
    """The fast backend's (time, seq) order must match the reference.

    Each scenario runs the same program on both backends and asserts
    the *observable interleaving* (callback order at coincident times)
    is identical — the property every DMA-completion-vs-clock-edge race
    in the simulator rests on.
    """

    @staticmethod
    def _interleaving(engine, domain_cls=ClockDomain):
        log = []
        dom = domain_cls(engine, "d", mhz(100.0))  # 10 000 ps period
        dom.attach(lambda: log.append(("edge", engine.now)))
        dom.start()
        # One-shot scheduled before the domain starts ticking would win
        # FIFO rank; schedule after, landing exactly on edge 3.
        engine.schedule_at(30_000, lambda: log.append(("shot", engine.now)))
        engine.run_until(lambda: len(log) >= 6, max_time_ps=10**9)
        dom.stop()
        return log

    def test_coincident_one_shot_orders_like_reference(self):
        assert self._interleaving(FastEngine()) == self._interleaving(Engine())

    def test_rescheduling_chain_orders_like_reference(self):
        def chain(engine):
            log = []
            dom = ClockDomain(engine, "d", mhz(100.0))
            dom.attach(lambda: log.append(("edge", engine.now)))
            dom.start()

            def shot():
                log.append(("shot", engine.now))
                if len(log) < 10:
                    engine.schedule(10_000, shot)  # lands on edges

            engine.schedule(10_000, shot)
            engine.run_until(lambda: len(log) >= 10, max_time_ps=10**9)
            dom.stop()
            return log

        assert chain(FastEngine()) == chain(Engine())

    def test_dual_domain_edge_order_matches_reference(self):
        def edges(engine):
            log = []
            fast_dom = ClockDomain(engine, "fastclk", mhz(100.0))
            slow_dom = ClockDomain(engine, "slowclk", mhz(25.0))
            fast_dom.attach(lambda: log.append(("f", engine.now)))
            slow_dom.attach(lambda: log.append(("s", engine.now)))
            fast_dom.start()
            slow_dom.start()
            engine.run_until(lambda: len(log) >= 20, max_time_ps=10**9)
            fast_dom.stop()
            slow_dom.stop()
            return log

        assert edges(FastEngine()) == edges(Engine())


class TestFastForward:
    def test_skip_budget_consumes_edges_silently(self):
        engine = FastEngine()
        owner = Counter()
        edges = []
        grants = iter([3, 0, 0, 0, 0])

        def handler():
            edges.append(engine.now)

        task = engine.start_periodic(
            10, [handler], owner, fast_forward=lambda: next(grants)
        )
        # Edge 1 runs for real and grants 3 silent edges (2..4); edge 5
        # runs for real again.
        engine.run_until(lambda: len(edges) >= 2, max_time_ps=10**6)
        assert edges == [10, 50]
        assert owner.cycles == 5
        assert task.skip == 0

    def test_skip_budget_stops_before_one_shot(self):
        engine = FastEngine()
        owner = Counter()
        order = []
        grants = iter([10] + [0] * 10)
        engine.start_periodic(
            10, [lambda: order.append(("edge", engine.now))], owner,
            fast_forward=lambda: next(grants),
        )
        engine.schedule_at(35, lambda: order.append(("shot", engine.now)))
        engine.run_until(lambda: len(order) >= 3, max_time_ps=10**6)
        # The 10-edge grant must not leap over the one-shot at 35 ps:
        # silent edges 20 and 30 are consumed, the shot fires, then the
        # remaining budget resumes at 40..
        assert order[:2] == [("edge", 10), ("shot", 35)]
        assert owner.cycles >= 3

    def test_skip_budget_survives_clock_stop_start(self):
        engine = FastEngine()
        dom = ClockDomain(engine, "d", mhz(100.0))
        edges = []
        grants = iter([5] + [0] * 20)
        dom.attach(lambda: edges.append(engine.now))
        dom.fast_forward = lambda: next(grants)
        dom.start()
        engine.run_until(lambda: len(edges) >= 1, max_time_ps=10**9)
        dom.stop()
        assert dom._pending_skip == 5
        dom.start()
        engine.run_until(lambda: len(edges) >= 2, max_time_ps=10**9)
        dom.stop()
        # 5 silent edges after the restart, then the next real one.
        assert edges == [10_000, 70_000]
        assert dom.cycles == 7

    def test_step_consumes_one_silent_edge_at_a_time(self):
        engine = FastEngine()
        owner = Counter()
        grants = iter([4] + [0] * 10)
        engine.start_periodic(10, [], owner, fast_forward=lambda: next(grants))
        engine.step()  # real edge at 10, grants 4
        assert (engine.now, owner.cycles) == (10, 1)
        engine.step()  # one silent edge
        assert (engine.now, owner.cycles) == (20, 2)
        engine.step()
        assert (engine.now, owner.cycles) == (30, 3)

    def test_advance_honours_skip_budget_and_deadline(self):
        engine = FastEngine()
        owner = Counter()
        grants = iter([100] + [0] * 10)
        engine.start_periodic(10, [], owner, fast_forward=lambda: next(grants))
        engine.advance(45)
        # Edges at 10 (real), 20, 30, 40 (silent); never past the
        # deadline even though the budget would allow it.
        assert engine.now == 45
        assert owner.cycles == 4

    def test_deadline_raise_matches_reference(self):
        def overrun(engine):
            dom = ClockDomain(engine, "d", mhz(100.0))
            dom.attach(lambda: None)
            dom.start()
            try:
                engine.run_until(lambda: False, max_time_ps=35_000)
            except SimulationError:
                pass
            cycles = dom.cycles
            dom.stop()
            return engine.now, cycles

        assert overrun(FastEngine()) == overrun(Engine())
