"""Unit tests for time units and frequencies."""

import pytest

from repro.errors import SimulationError
from repro.sim.time import (
    PS_PER_MS,
    PS_PER_NS,
    PS_PER_US,
    Frequency,
    mhz,
    ms,
    ns,
    to_ms,
    to_ns,
    to_us,
    us,
)


class TestConversions:
    def test_ns_to_ps(self):
        assert ns(1) == PS_PER_NS
        assert ns(2.5) == 2500

    def test_us_to_ps(self):
        assert us(1) == PS_PER_US

    def test_ms_to_ps(self):
        assert ms(1) == PS_PER_MS

    def test_roundtrips(self):
        assert to_ns(ns(123.0)) == pytest.approx(123.0)
        assert to_us(us(4.5)) == pytest.approx(4.5)
        assert to_ms(ms(0.75)) == pytest.approx(0.75)

    def test_rounding(self):
        # ns() rounds to the nearest picosecond.
        assert ns(0.0004) == 0
        assert ns(0.0006) == 1


class TestFrequency:
    def test_period_of_paper_clocks(self):
        assert mhz(133.0).period_ps == 7519  # 133 MHz ARM
        assert mhz(40.0).period_ps == 25_000  # adpcm coproc + IMU
        assert mhz(24.0).period_ps == 41_667  # IDEA IMU/memory
        assert mhz(6.0).period_ps == 166_667  # IDEA core

    def test_mhz_property(self):
        assert mhz(40.0).mhz == pytest.approx(40.0)

    def test_cycles_to_ps(self):
        assert mhz(40.0).cycles_to_ps(4) == 100_000

    def test_ps_to_cycles_floors(self):
        freq = mhz(40.0)
        assert freq.ps_to_cycles(99_999) == 3
        assert freq.ps_to_cycles(100_000) == 4

    def test_invalid_frequency_rejected(self):
        with pytest.raises(SimulationError):
            Frequency(0)
        with pytest.raises(SimulationError):
            Frequency(-5.0)

    def test_str(self):
        assert str(mhz(40.0)) == "40MHz"

    def test_extreme_frequency_period_floor(self):
        # Periods never collapse below one picosecond.
        assert Frequency(1e13).period_ps == 1
