"""Unit tests for the IMU's AR/SR/CR registers."""

from repro.imu.registers import AddressRegister, ControlRegister, StatusRegister


class TestAddressRegister:
    def test_capture(self):
        ar = AddressRegister()
        ar.capture(obj=3, addr=0x1234, write=True)
        assert (ar.obj, ar.addr, ar.write) == (3, 0x1234, True)

    def test_recapture_overwrites(self):
        # AR holds "the address of the coprocessor memory access
        # performed most recently" — only the latest access survives.
        ar = AddressRegister()
        ar.capture(1, 0x10, False)
        ar.capture(2, 0x20, True)
        assert (ar.obj, ar.addr) == (2, 0x20)

    def test_word_encoding_carries_object(self):
        ar = AddressRegister()
        ar.capture(obj=0xAB, addr=0x100, write=False)
        assert (ar.as_word() >> 24) & 0xFF == 0xAB


class TestStatusRegister:
    def test_flags_start_clear(self):
        sr = StatusRegister()
        assert not sr.fault
        assert not sr.done
        assert not sr.busy
        assert not sr.param_released

    def test_set_and_clear(self):
        sr = StatusRegister()
        sr.set(StatusRegister.FAULT)
        assert sr.fault
        sr.clear(StatusRegister.FAULT)
        assert not sr.fault

    def test_flags_are_independent(self):
        sr = StatusRegister()
        sr.set(StatusRegister.BUSY)
        sr.set(StatusRegister.DONE)
        sr.clear(StatusRegister.BUSY)
        assert sr.done
        assert not sr.busy


class TestControlRegister:
    def test_interrupts_enabled_by_default(self):
        assert ControlRegister().test(ControlRegister.INT_ENABLE)

    def test_set_clear_test(self):
        cr = ControlRegister()
        cr.set(ControlRegister.START)
        assert cr.test(ControlRegister.START)
        cr.clear(ControlRegister.START)
        assert not cr.test(ControlRegister.START)
