"""Unit tests for the direct (typical-coprocessor) interface."""

import pytest

from repro.errors import CapacityError, HardwareError
from repro.hw.dpram import DualPortRam
from repro.imu.direct import DirectInterface
from tests.helpers import make_direct_rig


def run_rig(engine, iface, core, domain, max_cycles=10_000):
    iface.start_coprocessor()
    domain.start()
    engine.run_until(
        lambda: core.finished,
        max_time_ps=engine.now + max_cycles * domain.period_ps,
    )
    domain.stop()


class TestWindows:
    def test_read_through_window(self):
        engine, dpram, iface, core, domain = make_direct_rig([("read", 0, 4)])
        iface.set_object_window(0, base=1024, size=64)
        dpram.write_word(1028, 0xFACE)
        run_rig(engine, iface, core, domain)
        assert core.results == [0xFACE]

    def test_write_through_window(self):
        engine, dpram, iface, core, domain = make_direct_rig(
            [("write", 1, 0, 0xAB, 1)]
        )
        iface.set_object_window(1, base=2048, size=16)
        run_rig(engine, iface, core, domain)
        assert dpram.read_word(2048, size=1) == 0xAB

    def test_window_exceeding_dpram_rejected(self):
        iface = DirectInterface(DualPortRam())
        with pytest.raises(CapacityError):
            iface.set_object_window(0, base=0, size=17 * 1024)
        with pytest.raises(CapacityError):
            iface.set_object_window(0, base=15 * 1024, size=2 * 1024)

    def test_unconfigured_object_rejected(self):
        engine, _, iface, core, domain = make_direct_rig([("read", 5, 0)])
        with pytest.raises(HardwareError):
            run_rig(engine, iface, core, domain)

    def test_out_of_window_access_rejected(self):
        engine, _, iface, core, domain = make_direct_rig([("read", 0, 64)])
        iface.set_object_window(0, base=0, size=64)
        with pytest.raises(HardwareError):
            run_rig(engine, iface, core, domain)

    def test_clear_windows(self):
        iface = DirectInterface(DualPortRam())
        iface.set_object_window(0, 0, 64)
        iface.clear_windows()
        engine, _, iface2, core, domain = make_direct_rig([("read", 0, 0)])
        # fresh rig unaffected; just check clear emptied the mapping
        assert iface._bases == {}


class TestTiming:
    def test_two_edge_access(self):
        engine, dpram, iface, core, domain = make_direct_rig([("read", 0, 0)])
        iface.set_object_window(0, 0, 64)
        run_rig(engine, iface, core, domain)
        assert core.stamps == [2]

    def test_direct_beats_translated_access(self):
        # The reason the typical version is faster per access.
        from tests.helpers import make_imu_rig

        engine, dpram, iface, core, domain = make_direct_rig([("read", 0, 0)])
        iface.set_object_window(0, 0, 64)
        run_rig(engine, iface, core, domain)
        rig = make_imu_rig([("read", 0, 0)])
        rig.imu.tlb.insert(0, 0, 0)
        rig.run()
        assert core.stamps[0] < rig.core.stamps[0]

    def test_configurable_access_cycles(self):
        engine, dpram, iface, core, domain = make_direct_rig(
            [("read", 0, 0)], access_cycles=5
        )
        iface.set_object_window(0, 0, 64)
        run_rig(engine, iface, core, domain)
        assert core.stamps == [5]

    def test_min_access_cycles_enforced(self):
        with pytest.raises(HardwareError):
            DirectInterface(DualPortRam(), access_cycles=1)


class TestParamsAndDone:
    def test_param_regs(self):
        engine, _, iface, core, domain = make_direct_rig(
            [("param", 0), ("param", 1)]
        )
        iface.param_regs = [11, 22]
        run_rig(engine, iface, core, domain)
        assert core.results == [11, 22]

    def test_done_flag_on_finish(self):
        engine, _, iface, core, domain = make_direct_rig([("compute", 3)])
        run_rig(engine, iface, core, domain)
        # done latches one edge after CP_FIN; tick once more
        domain.start()
        engine.run_until(lambda: iface.done, max_time_ps=engine.now + 10 * domain.period_ps)
        domain.stop()
        assert iface.done

    def test_reset(self):
        engine, _, iface, core, domain = make_direct_rig([("compute", 1)])
        run_rig(engine, iface, core, domain)
        iface.reset()
        assert not iface.done
        assert iface.ports.cp_start.value == 0
