"""Unit tests for the IMU translation FSM and its protocol.

These tests pin down the paper's timing contract (Figure 7: data ready
on the fourth rising edge), the stall-on-miss behaviour, the interrupt
protocol, and the parameter-page lifecycle.
"""

import pytest

from repro.coproc.ports import PARAM_OBJECT
from repro.errors import HardwareError
from repro.hw.dpram import DualPortRam
from repro.hw.interrupts import InterruptController
from repro.imu.imu import INT_PLD_LINE, Imu, ImuState
from tests.helpers import make_imu_rig


def preload(rig, obj, vpage, ppage, words=()):
    """Insert a translation and optionally fill the physical page."""
    rig.imu.tlb.insert(obj, vpage, ppage)
    base = rig.dpram.page_base(ppage)
    for offset, value in words:
        rig.dpram.write_word(base + offset, value)


class TestReadTiming:
    def test_data_ready_on_fourth_edge(self):
        # Figure 7: "Data is ready on the fourth rising edge."
        rig = make_imu_rig([("read", 0, 4)])
        preload(rig, 0, 0, 2, [(4, 0xDEAD)])
        rig.run()
        assert rig.core.results == [0xDEAD]
        assert rig.core.stamps == [4]

    def test_pipelined_data_on_second_edge(self):
        rig = make_imu_rig([("read", 0, 4)], pipelined=True)
        preload(rig, 0, 0, 2, [(4, 0xBEEF)])
        rig.run()
        assert rig.core.stamps == [2]

    def test_longer_translation_delays_data(self):
        rig = make_imu_rig([("read", 0, 4)], access_cycles=6)
        preload(rig, 0, 0, 2, [(4, 1)])
        rig.run()
        assert rig.core.stamps == [6]

    def test_back_to_back_reads(self):
        # The second request is issued on the edge the first data
        # arrives, so consecutive accesses cost 3 extra edges each.
        rig = make_imu_rig([("read", 0, 0), ("read", 0, 4)])
        preload(rig, 0, 0, 2, [(0, 10), (4, 20)])
        rig.run()
        assert rig.core.results == [10, 20]
        assert rig.core.stamps == [4, 7]

    def test_sync_cycles_add_latency(self):
        plain = make_imu_rig([("read", 0, 4)])
        preload(plain, 0, 0, 2, [(4, 1)])
        plain.run()
        synced = make_imu_rig([("read", 0, 4)], sync_cycles=4)
        preload(synced, 0, 0, 2, [(4, 1)])
        synced.run()
        assert synced.core.stamps[0] == plain.core.stamps[0] + 4

    def test_sub_word_read_sizes(self):
        rig = make_imu_rig([("read", 0, 0, 1), ("read", 0, 2, 2)])
        preload(rig, 0, 0, 1)
        rig.dpram.write(rig.dpram.page_base(1), bytes([0xAA, 0, 0xCD, 0xAB]))
        rig.run()
        assert rig.core.results == [0xAA, 0xABCD]


class TestWritePath:
    def test_write_lands_at_translated_address(self):
        rig = make_imu_rig([("write", 3, 8, 0x1234)])
        preload(rig, 3, 0, 5)
        rig.run()
        assert rig.dpram.read_word(rig.dpram.page_base(5) + 8) == 0x1234

    def test_write_sets_dirty_bit(self):
        rig = make_imu_rig([("write", 3, 8, 1)])
        preload(rig, 3, 0, 5)
        rig.run()
        entry = rig.imu.tlb.probe(3, 0)
        assert entry.dirty

    def test_read_does_not_set_dirty(self):
        rig = make_imu_rig([("read", 0, 0)])
        preload(rig, 0, 0, 2)
        rig.run()
        assert not rig.imu.tlb.probe(0, 0).dirty

    def test_half_word_write(self):
        rig = make_imu_rig([("write", 0, 6, 0xFFEE, 2)])
        preload(rig, 0, 0, 0)
        rig.run()
        assert rig.dpram.read_word(6, size=2) == 0xFFEE


class TestFaultPath:
    def test_miss_raises_interrupt_and_stalls(self):
        rig = make_imu_rig([("read", 0, 4)])
        rig.run(until=lambda: rig.interrupts.is_pending(INT_PLD_LINE))
        assert rig.imu.sr.fault
        assert rig.imu.stalled_on_fault
        assert not rig.core.finished
        assert rig.imu.faults == 1

    def test_ar_identifies_faulting_access(self):
        # "By examining this register, the OS can determine which
        # memory access possibly caused an access fault."
        rig = make_imu_rig([("read", 7, 0x1A0C)])
        rig.run(until=lambda: rig.imu.sr.fault)
        assert rig.imu.ar.obj == 7
        assert rig.imu.ar.addr == 0x1A0C
        assert not rig.imu.ar.write

    def test_restart_completes_access(self):
        rig = make_imu_rig([("read", 0, 4)])
        rig.run(until=lambda: rig.imu.sr.fault)
        # The "VIM" fixes the TLB and restarts the translation.
        rig.imu.tlb.insert(0, 0, 3)
        rig.dpram.write_word(rig.dpram.page_base(3) + 4, 0x77)
        rig.imu.restart_translation()
        rig.run()
        assert rig.core.results == [0x77]
        assert not rig.imu.sr.fault

    def test_stall_duration_counted(self):
        rig = make_imu_rig([("read", 0, 4)])
        rig.run(until=lambda: rig.imu.sr.fault)
        before = rig.imu.fault_stall_cycles
        rig.run(until=lambda: rig.imu.fault_stall_cycles >= before + 10)
        assert rig.imu.fault_stall_cycles >= before + 10

    def test_restart_without_fault_rejected(self, imu: Imu):
        with pytest.raises(HardwareError):
            imu.restart_translation()

    def test_fault_interrupt_respects_int_enable(self):
        from repro.imu.registers import ControlRegister

        rig = make_imu_rig([("read", 0, 4)])
        rig.imu.cr.clear(ControlRegister.INT_ENABLE)
        rig.run(until=lambda: rig.imu.sr.fault)
        assert not rig.interrupts.is_pending(INT_PLD_LINE)


class TestCompletion:
    def test_finish_sets_done_and_interrupts(self):
        rig = make_imu_rig([("read", 0, 0)])
        preload(rig, 0, 0, 0)
        rig.run(until=lambda: rig.imu.sr.done)
        assert rig.imu.sr.done
        assert not rig.imu.sr.busy
        assert rig.interrupts.is_pending(INT_PLD_LINE)

    def test_busy_during_execution(self):
        rig = make_imu_rig([("compute", 50)])
        rig.imu.start_coprocessor()
        assert rig.imu.sr.busy
        rig.domain.start()
        rig.engine.run_until(lambda: rig.core.finished, max_time_ps=10_000_000)
        rig.domain.stop()

    def test_acknowledge_done_clears(self):
        rig = make_imu_rig([("compute", 1)])
        rig.run(until=lambda: rig.imu.sr.done)
        rig.imu.acknowledge_done()
        assert not rig.imu.sr.done
        assert not rig.interrupts.is_pending(INT_PLD_LINE)


class TestParameterPage:
    def test_params_read_through_param_object(self):
        rig = make_imu_rig([("param", 0), ("param", 1)])
        preload(rig, PARAM_OBJECT, 0, 0, [(0, 42), (4, 99)])
        rig.run()
        assert rig.core.results == [42, 99]

    def test_release_invalidates_param_translation(self):
        # §3.2: the coprocessor "invalidates the parameter-passing page,
        # in this way making it available for data mapping purposes".
        rig = make_imu_rig([("param", 0), ("release_params",)])
        preload(rig, PARAM_OBJECT, 0, 0, [(0, 1)])
        rig.run()
        assert rig.imu.tlb.probe(PARAM_OBJECT, 0) is None
        assert rig.imu.sr.param_released


class TestCrossDomain:
    def test_slow_core_fast_imu(self):
        # IDEA style: core at 6 MHz, IMU at 24 MHz.
        rig = make_imu_rig([("read", 0, 0)], core_mhz=6.0, imu_mhz=24.0)
        preload(rig, 0, 0, 1, [(0, 0x55)])
        rig.run(max_cycles=200)
        assert rig.core.results == [0x55]
        # The 4-cycle IMU access hides inside two slow-core cycles.
        assert rig.core.stamps[0] <= 3

    def test_sync_cycles_visible_to_slow_core(self):
        fast = make_imu_rig([("read", 0, 0)], core_mhz=6.0, imu_mhz=24.0)
        preload(fast, 0, 0, 1, [(0, 1)])
        fast.run(max_cycles=200)
        slow = make_imu_rig(
            [("read", 0, 0)], core_mhz=6.0, imu_mhz=24.0, sync_cycles=6
        )
        preload(slow, 0, 0, 1, [(0, 1)])
        slow.run(max_cycles=200)
        assert slow.core.stamps[0] > fast.core.stamps[0]


class TestResetAndStats:
    def test_reset_clears_state(self):
        rig = make_imu_rig([("read", 0, 4)])
        rig.run(until=lambda: rig.imu.sr.fault)
        rig.imu.reset()
        assert rig.imu.state is ImuState.IDLE
        assert len(rig.imu.tlb) == 0
        assert not rig.imu.sr.fault
        assert rig.imu.ports.cp_tlbhit.value == 0

    def test_counters(self):
        rig = make_imu_rig([("read", 0, 0), ("write", 0, 4, 9)])
        preload(rig, 0, 0, 0)
        rig.run()
        assert rig.imu.reads == 1
        assert rig.imu.writes == 1
        assert rig.imu.translations == 2
        rig.imu.reset_stats()
        assert rig.imu.translations == 0

    def test_invalid_parameters_rejected(self):
        dpram = DualPortRam()
        ic = InterruptController()
        with pytest.raises(HardwareError):
            Imu(dpram, ic, access_cycles=1)
        with pytest.raises(HardwareError):
            Imu(dpram, ic, sync_cycles=-1)
