"""Unit tests for the IMU's CAM TLB."""

import pytest

from repro.errors import HardwareError
from repro.imu.tlb import Tlb


class TestLookup:
    def test_hit_after_insert(self):
        tlb = Tlb(8)
        tlb.insert(obj=1, vpage=2, ppage=5)
        entry = tlb.lookup(1, 2)
        assert entry is not None
        assert entry.ppage == 5

    def test_miss_on_empty(self):
        assert Tlb(8).lookup(0, 0) is None

    def test_miss_on_wrong_object(self):
        # The object id is part of the CAM tag — same page index of a
        # different object must not alias.
        tlb = Tlb(8)
        tlb.insert(obj=1, vpage=0, ppage=3)
        assert tlb.lookup(2, 0) is None

    def test_stats(self):
        tlb = Tlb(8)
        tlb.insert(0, 0, 0)
        tlb.lookup(0, 0)
        tlb.lookup(0, 1)
        assert tlb.stats.lookups == 2
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 1
        assert tlb.stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_without_lookups(self):
        assert Tlb(4).stats.hit_rate == 0.0

    def test_probe_does_not_touch_stats(self):
        tlb = Tlb(8)
        tlb.insert(0, 0, 0)
        tlb.probe(0, 0)
        tlb.probe(0, 9)
        assert tlb.stats.lookups == 0

    def test_usage_assist_updates_on_hit(self):
        tlb = Tlb(8)
        entry = tlb.insert(0, 0, 0)
        assert not entry.referenced
        tlb.lookup(0, 0)
        assert entry.referenced
        first = entry.last_used
        tlb.lookup(0, 0)
        assert entry.last_used > first


class TestCapacity:
    def test_full_tlb_rejects_insert(self):
        tlb = Tlb(2)
        tlb.insert(0, 0, 0)
        tlb.insert(0, 1, 1)
        with pytest.raises(HardwareError):
            tlb.insert(0, 2, 2)

    def test_reinsert_same_key_allowed_when_full(self):
        tlb = Tlb(1)
        tlb.insert(0, 0, 0)
        tlb.insert(0, 0, 1)  # update in place
        assert tlb.lookup(0, 0).ppage == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(HardwareError):
            Tlb(0)


class TestDuplicateInsert:
    def test_reinsert_same_mapping_preserves_dirty(self):
        # Regression: a duplicate-key insert used to build a fresh entry
        # and silently drop the dirty bit, losing the write-back.
        tlb = Tlb(2)
        entry = tlb.insert(0, 0, 3)
        entry.dirty = True
        reinstalled = tlb.insert(0, 0, 3)
        assert reinstalled.dirty
        assert tlb.lookup(0, 0).dirty

    def test_reinsert_to_new_frame_starts_clean(self):
        # A different physical page means the data was freshly loaded
        # there: the old dirtiness belongs to the old frame, not this one.
        tlb = Tlb(2)
        tlb.insert(0, 0, 3).dirty = True
        assert not tlb.insert(0, 0, 5).dirty

    def test_reinsert_clean_mapping_stays_clean(self):
        tlb = Tlb(2)
        tlb.insert(0, 0, 3)
        assert not tlb.insert(0, 0, 3).dirty


class TestInvalidate:
    def test_invalidate_by_key(self):
        tlb = Tlb(8)
        tlb.insert(1, 1, 4)
        removed = tlb.invalidate(1, 1)
        assert removed is not None
        assert tlb.lookup(1, 1) is None

    def test_invalidate_missing_returns_none(self):
        assert Tlb(8).invalidate(0, 0) is None

    def test_invalidate_by_ppage(self):
        tlb = Tlb(8)
        tlb.insert(0, 0, 6)
        removed = tlb.invalidate_ppage(6)
        assert removed is not None and removed.ppage == 6
        assert tlb.invalidate_ppage(6) is None

    def test_invalidate_all(self):
        tlb = Tlb(8)
        tlb.insert(0, 0, 0)
        tlb.insert(0, 1, 1)
        tlb.invalidate_all()
        assert len(tlb) == 0


class TestEntryQueries:
    def test_dirty_entries(self):
        tlb = Tlb(8)
        clean = tlb.insert(0, 0, 0)
        dirty = tlb.insert(0, 1, 1)
        dirty.dirty = True
        assert tlb.dirty_entries() == [dirty]
        assert clean in tlb.entries()

    def test_entry_for_ppage(self):
        tlb = Tlb(8)
        entry = tlb.insert(2, 3, 7)
        assert tlb.entry_for_ppage(7) is entry
        assert tlb.entry_for_ppage(0) is None

    def test_at_most_one_entry_per_key(self):
        tlb = Tlb(8)
        tlb.insert(0, 0, 1)
        tlb.insert(0, 0, 2)
        matches = [e for e in tlb.entries() if e.key() == (0, 0)]
        assert len(matches) == 1
