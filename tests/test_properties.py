"""Property-based tests of the reproduction's core invariants.

DESIGN.md §6 commits to these: virtualisation never changes functional
results, the TLB and allocator stay consistent under arbitrary
workloads, and the measurement decomposition always adds up.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accounting import Bucket
from repro.core.drivers import adpcm_workload, idea_workload, vector_add_workload
from repro.core.runner import run_software, run_typical, run_vim
from repro.core.soc import SocConfig
from repro.core.system import System
from repro.errors import CapacityError
from repro.os.vim.manager import TransferMode
from repro.os.vim.prefetch import SequentialPrefetcher

#: Hypothesis settings for end-to-end runs (each example simulates a
#: full system, so keep the counts modest but meaningful).
E2E = settings(max_examples=15, deadline=None)


class TestFunctionalEquivalence:
    """The paper's implicit contract: the VIM is invisible to results."""

    @given(
        elements=st.integers(min_value=1, max_value=700),
        seed=st.integers(min_value=0, max_value=2**16),
        policy=st.sampled_from(["fifo", "lru", "random", "second-chance"]),
    )
    @E2E
    def test_vector_add_vim_equals_software(self, elements, seed, policy):
        workload = vector_add_workload(elements, seed=seed)
        run_vim(System(), workload, policy=policy).verify()

    @given(
        nbytes=st.integers(min_value=1, max_value=3000),
        seed=st.integers(min_value=0, max_value=2**16),
        eager=st.booleans(),
        pipelined=st.booleans(),
    )
    @E2E
    def test_adpcm_vim_equals_software(self, nbytes, seed, eager, pipelined):
        workload = adpcm_workload(nbytes, seed=seed)
        run_vim(
            System(), workload, eager_mapping=eager, pipelined_imu=pipelined
        ).verify()

    @given(
        blocks=st.integers(min_value=1, max_value=300),
        seed=st.integers(min_value=0, max_value=2**16),
        mode=st.sampled_from(
            [TransferMode.SINGLE, TransferMode.DOUBLE, TransferMode.DMA]
        ),
    )
    @E2E
    def test_idea_vim_equals_software(self, blocks, seed, mode):
        workload = idea_workload(blocks * 8, seed=seed)
        run_vim(System(), workload, transfer_mode=mode).verify()

    @given(
        nbytes=st.integers(min_value=64, max_value=2048),
        seed=st.integers(min_value=0, max_value=2**16),
        depth=st.integers(min_value=1, max_value=3),
        aggressive=st.booleans(),
    )
    @E2E
    def test_prefetch_never_corrupts(self, nbytes, seed, depth, aggressive):
        workload = adpcm_workload(nbytes, seed=seed)
        run_vim(
            System(),
            workload,
            prefetcher=SequentialPrefetcher(depth=depth, aggressive=aggressive),
        ).verify()

    @given(
        elements=st.integers(min_value=1, max_value=500),
        tlb_capacity=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=100),
    )
    @E2E
    def test_tiny_tlb_never_corrupts(self, elements, tlb_capacity, seed):
        workload = vector_add_workload(elements, seed=seed)
        run_vim(System(), workload, tlb_capacity=tlb_capacity).verify()

    @given(
        page_shift=st.integers(min_value=7, max_value=11),
        pages=st.integers(min_value=3, max_value=12),
        elements=st.integers(min_value=1, max_value=400),
    )
    @E2E
    def test_any_geometry_never_corrupts(self, page_shift, pages, elements):
        # Arbitrary DP-RAM geometry: the portability claim as a property.
        page = 1 << page_shift
        soc = SocConfig(name="fuzz", dpram_bytes=pages * page, page_bytes=page)
        workload = vector_add_workload(elements, seed=1)
        run_vim(System(soc), workload).verify()


class TestTypicalEquivalence:
    @given(
        elements=st.integers(min_value=1, max_value=1300),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @E2E
    def test_typical_equals_software_or_capacity_error(self, elements, seed):
        workload = vector_add_workload(elements, seed=seed)
        try:
            run_typical(System(), workload).verify()
            assert workload.total_bytes <= 16 * 1024
        except CapacityError:
            assert workload.total_bytes > 16 * 1024


class TestMeasurementInvariants:
    @given(
        nbytes=st.integers(min_value=1, max_value=4000),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @E2E
    def test_decomposition_adds_up(self, nbytes, seed):
        workload = adpcm_workload(nbytes, seed=seed)
        meas = run_vim(System(), workload).measurement
        assert meas.total_ps == meas.hw_ps + sum(meas.buckets.values())
        assert meas.hw_ps > 0
        assert all(v >= 0 for v in meas.buckets.values())

    @given(elements=st.integers(min_value=1, max_value=300))
    @settings(max_examples=10, deadline=None)
    def test_fault_free_runs_have_minimal_imu_time(self, elements):
        workload = vector_add_workload(elements, seed=1)
        result = run_vim(System(), workload)
        meas = result.measurement
        if meas.counters.page_faults == 0:
            # Without faults the only SW_IMU cost is TLB setup, which is
            # bounded by one update per DP-RAM page plus the param page.
            per_update = System().costs.tlb_update_cycles
            bound = (8 + 1) * per_update * System().soc.cpu_frequency.period_ps
            assert meas.sw_imu_ps <= bound

    @given(
        nbytes=st.integers(min_value=2048, max_value=6000),
        seed=st.integers(min_value=0, max_value=50),
    )
    @E2E
    def test_counters_consistent(self, nbytes, seed):
        workload = adpcm_workload(nbytes, seed=seed)
        meas = run_vim(System(), workload).measurement
        counters = meas.counters
        assert counters.writebacks <= counters.evictions + counters.page_faults + 16
        assert counters.tlb_hits <= counters.tlb_lookups
        # Every fault raised an interrupt; plus exactly one done IRQ.
        assert counters.interrupts == counters.page_faults + 1


class TestSoftwareReferenceProperties:
    @given(
        elements=st.integers(min_value=1, max_value=100),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_sw_runs_are_deterministic(self, elements, seed):
        workload = vector_add_workload(elements, seed=seed)
        first = run_software(System(), workload)
        second = run_software(System(), workload)
        assert first.outputs == second.outputs
        assert first.measurement.total_ps == second.measurement.total_ps

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_runs_are_reproducible_end_to_end(self, seed):
        workload = adpcm_workload(512, seed=seed)
        first = run_vim(System(), workload)
        second = run_vim(System(), workload)
        assert first.outputs == second.outputs
        assert first.measurement.total_ps == second.measurement.total_ps
        assert (
            first.measurement.counters.page_faults
            == second.measurement.counters.page_faults
        )
