"""Unit tests for table and chart formatting."""

import pytest

from repro.analysis.charts import bar_chart, stacked_bar_chart
from repro.analysis.tables import format_table, markdown_table
from repro.errors import ReproError


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["name", "ms"], [["adpcm", 1.5], ["idea", 25.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "---" in lines[1] or "-" in lines[1]
        assert "1.500" in text

    def test_bools_render_as_yes_no(self):
        text = format_table(["fits"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ReproError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ReproError):
            format_table([], [])


class TestMarkdownTable:
    def test_structure(self):
        text = markdown_table(["a", "b"], [[1, 2]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"


class TestBarChart:
    def test_bars_scale_to_peak(self):
        text = bar_chart([("sw", 10.0), ("hw", 5.0)], width=20)
        sw_line, hw_line = text.splitlines()
        assert sw_line.count("█") == 20
        assert hw_line.count("█") == 10

    def test_values_printed(self):
        assert "10.000ms" in bar_chart([("sw", 10.0)])

    def test_empty_rows(self):
        assert bar_chart([]) == "(no data)"

    def test_too_narrow_rejected(self):
        with pytest.raises(ReproError):
            bar_chart([("a", 1.0)], width=4)


class TestStackedBarChart:
    def test_legend_and_segments(self):
        rows = [("2KB", {"hw": 2.0, "sw_dp": 1.0, "sw_imu": 0.5})]
        text = stacked_bar_chart(rows, width=35)
        assert "legend:" in text.splitlines()[0]
        assert "█" in text and "▓" in text
        assert "3.500ms" in text

    def test_too_many_components_rejected(self):
        rows = [("x", {f"c{i}": 1.0 for i in range(5)})]
        with pytest.raises(ReproError):
            stacked_bar_chart(rows)

    def test_empty(self):
        assert stacked_bar_chart([]) == "(no data)"
