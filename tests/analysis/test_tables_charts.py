"""Unit tests for table and chart formatting.

The formatters live in :mod:`repro.exp.report`; the deprecated
``repro.analysis`` shims (warning on import, same objects) are pinned
separately in ``TestCompatShim``.
"""

import sys

import pytest

from repro.errors import ReproError
from repro.exp import (
    bar_chart,
    delta_bar_chart,
    format_table,
    markdown_table,
    stacked_bar_chart,
)


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["name", "ms"], [["adpcm", 1.5], ["idea", 25.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "---" in lines[1] or "-" in lines[1]
        assert "1.500" in text

    def test_bools_render_as_yes_no(self):
        text = format_table(["fits"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ReproError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ReproError):
            format_table([], [])


class TestMarkdownTable:
    def test_structure(self):
        text = markdown_table(["a", "b"], [[1, 2]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"


class TestBarChart:
    def test_bars_scale_to_peak(self):
        text = bar_chart([("sw", 10.0), ("hw", 5.0)], width=20)
        sw_line, hw_line = text.splitlines()
        assert sw_line.count("█") == 20
        assert hw_line.count("█") == 10

    def test_values_printed(self):
        assert "10.000ms" in bar_chart([("sw", 10.0)])

    def test_empty_rows(self):
        assert bar_chart([]) == "(no data)"

    def test_too_narrow_rejected(self):
        with pytest.raises(ReproError):
            bar_chart([("a", 1.0)], width=4)


class TestCompatShim:
    @staticmethod
    def _forget_analysis_modules():
        # The DeprecationWarning fires when the package module body
        # executes — once per interpreter.  Forget any prior import so
        # each test observes a fresh one.
        for name in list(sys.modules):
            if name == "repro.analysis" or name.startswith("repro.analysis."):
                del sys.modules[name]

    def test_import_raises_deprecation_warning(self):
        self._forget_analysis_modules()
        with pytest.warns(DeprecationWarning, match="repro.analysis is deprecated"):
            import repro.analysis  # noqa: F401

    def test_shim_and_exp_report_are_the_same_functions(self):
        self._forget_analysis_modules()
        with pytest.warns(DeprecationWarning):
            from repro.analysis import charts, tables
        from repro.exp import report

        assert charts.bar_chart is report.bar_chart
        assert charts.stacked_bar_chart is report.stacked_bar_chart
        assert charts.delta_bar_chart is report.delta_bar_chart
        assert tables.render_table is report.render_table

    def test_every_historical_name_still_importable(self):
        self._forget_analysis_modules()
        with pytest.warns(DeprecationWarning):
            import repro.analysis as analysis
        import repro.exp as exp

        for name in analysis.__all__:
            assert getattr(analysis, name) is getattr(exp, name)


class TestDeltaBarChart:
    def test_signed_bars_around_axis(self):
        text = delta_bar_chart(
            [("worse", 10.0), ("better", -5.0), ("same", 0.0)], width=20
        )
        worse, better, same = text.splitlines()
        # Positive deltas grow right of the axis, negative left.
        left, right = worse.split("|")
        assert "█" in right and "█" not in left
        left, right = better.split("|")
        assert "█" in left and "█" not in right
        assert "█" not in same
        assert "+10.0%" in worse and "-5.0%" in better and "+0.0%" in same

    def test_bars_scale_to_largest_magnitude(self):
        text = delta_bar_chart([("a", 10.0), ("b", -10.0)], width=20)
        a_line, b_line = text.splitlines()
        assert a_line.count("█") == 10  # half the width each side
        assert b_line.count("█") == 10

    def test_empty_rows(self):
        assert delta_bar_chart([]) == "(no data)"

    def test_too_narrow_rejected(self):
        with pytest.raises(ReproError):
            delta_bar_chart([("a", 1.0)], width=4)


class TestStackedBarChart:
    def test_legend_and_segments(self):
        rows = [("2KB", {"hw": 2.0, "sw_dp": 1.0, "sw_imu": 0.5})]
        text = stacked_bar_chart(rows, width=35)
        assert "legend:" in text.splitlines()[0]
        assert "█" in text and "▓" in text
        assert "3.500ms" in text

    def test_too_many_components_rejected(self):
        rows = [("x", {f"c{i}": 1.0 for i in range(5)})]
        with pytest.raises(ReproError):
            stacked_bar_chart(rows)

    def test_empty(self):
        assert stacked_bar_chart([]) == "(no data)"
