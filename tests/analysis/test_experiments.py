"""Tests of the experiment drivers (small sizes for speed).

The full paper-scale sweeps run in ``benchmarks/``; here each driver is
exercised end-to-end and its headline *shape* asserted.
"""

import pytest

from repro.exp import (
    ablation_pipelined,
    ablation_policies,
    ablation_prefetch,
    ablation_tlb_capacity,
    ablation_transfers,
    figure7,
    figure8,
    figure9,
    portability,
    translation_overhead,
)
from repro.core.drivers import adpcm_workload, idea_workload


class TestFigure7:
    def test_data_ready_on_fourth_edge(self):
        result = figure7()
        assert result.data_ready_edge == 4  # the paper's Figure 7
        assert result.value_read == 0x2A

    def test_pipelined_is_faster(self):
        assert figure7(pipelined=True).data_ready_edge < 4

    def test_diagram_contains_signals(self):
        diagram = figure7().diagram
        for name in ("cp_addr", "cp_access", "cp_tlbhit", "cp_din"):
            assert name in diagram


class TestFigure8Shape:
    def test_rows_and_speedup(self):
        rows = figure8(sizes_kb=(2,))
        (row,) = rows
        assert row.page_faults == 0  # 2 KB fits the DP-RAM (paper)
        assert 1.2 < row.vim_speedup < 2.0
        assert row.sw_ms > row.vim_ms

    def test_faults_appear_at_4kb(self):
        row = figure8(sizes_kb=(4,))[0]
        assert row.page_faults > 0


class TestFigure9Shape:
    def test_capacity_cliff(self):
        rows = figure9(sizes_kb=(4, 16))
        small, big = rows
        assert small.typical_fits
        assert small.typical_ms is not None
        assert not big.typical_fits
        assert big.typical_ms is None

    def test_vim_always_runs(self):
        rows = figure9(sizes_kb=(16,))
        assert rows[0].vim_speedup > 5


class TestOverheads:
    def test_translation_overhead_near_paper(self):
        result = translation_overhead(idea_workload(2 * 1024))
        assert 0.10 < result.overhead_fraction < 0.30  # paper: ~20 %

    def test_imu_fraction_small(self):
        row = figure8(sizes_kb=(2,))[0]
        assert row.sw_imu_fraction < 0.025  # paper: up to 2.5 %


class TestAblations:
    def test_pipelined_improves(self):
        rows = ablation_pipelined(idea_workload(1024))
        multi, pipe = rows
        assert pipe.total_ms < multi.total_ms

    def test_policies_cover_registry(self):
        rows = ablation_policies(adpcm_workload(3 * 1024))
        assert [r.label for r in rows] == ["fifo", "lru", "random", "second-chance"]

    def test_single_transfer_improves(self):
        rows = ablation_transfers(adpcm_workload(3 * 1024))
        double, single, dma = rows
        assert single.sw_dp_ms < double.sw_dp_ms
        assert single.hw_ms == pytest.approx(double.hw_ms)
        # The DMA engine removes the CPU copies entirely: descriptor
        # programming is all that remains in the SW(DP) bucket.
        assert dma.sw_dp_ms < single.sw_dp_ms
        assert dma.hw_ms == pytest.approx(double.hw_ms)
        assert dma.dma_transfers > 0
        assert dma.page_faults == double.page_faults

    def test_aggressive_prefetch_cuts_faults(self):
        rows = ablation_prefetch(adpcm_workload(4 * 1024))
        none, _, aggressive, overlapped = rows
        assert aggressive.page_faults < none.page_faults
        assert aggressive.prefetches > 0
        assert overlapped.total_ms <= aggressive.total_ms

    def test_smaller_tlb_more_refills(self):
        rows = ablation_tlb_capacity(adpcm_workload(2 * 1024), capacities=(2, 8))
        small, full = rows
        # Translation churn shows up as TLB refills; the data-moving
        # fault count is a property of the frame pool, not the TLB.
        assert small.tlb_refills > full.tlb_refills
        assert small.page_faults == full.page_faults


class TestPortability:
    def test_same_workload_everywhere(self):
        rows = portability(adpcm_workload(4 * 1024))
        assert [r.soc for r in rows] == ["EPXA1", "EPXA4", "EPXA10"]
        assert rows[0].page_faults > 0
        assert rows[-1].page_faults == 0  # 128 KB DP-RAM absorbs it

    def test_bigger_memory_never_slower(self):
        rows = portability(adpcm_workload(4 * 1024))
        assert rows[-1].total_ms <= rows[0].total_ms
