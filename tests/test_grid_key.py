"""Tests for the baseline-cache key tool (``tools/grid_key.py``).

The CI baseline jobs key their ``actions/cache`` entries on this
tool's output; the property that matters is that the key is a pure
function of the *design space*, not of how the flag string is spelled.
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import grid_key  # noqa: E402  (repo tool, imported from tools/)


def _key(capsys, *argv) -> str:
    assert grid_key.main(list(argv)) == 0
    return capsys.readouterr().out.strip()


class TestGridKey:
    def test_key_shape_embeds_cache_version(self, capsys):
        from repro.exp.spec import CACHE_VERSION

        key = _key(capsys, "--app adpcm --kb 2")
        assert key.startswith(f"v{CACHE_VERSION}-")
        assert len(key.split("-", 1)[1]) == 12

    def test_flag_spelling_does_not_fork_the_key(self, capsys):
        # One quoted string vs separate argv entries, reordered axis
        # values, reordered flags: same grid, same key.
        spellings = [
            ["--app adpcm --kb 2 --policy fifo lru --transfer double dma"],
            ["--app", "adpcm", "--kb", "2", "--policy", "lru", "fifo",
             "--transfer", "dma", "double"],
            ["--transfer double dma --policy fifo lru --kb 2 --app adpcm"],
        ]
        keys = {_key(capsys, *argv) for argv in spellings}
        assert len(keys) == 1

    def test_different_grids_get_different_keys(self, capsys):
        assert _key(capsys, "--app adpcm --kb 2") != \
            _key(capsys, "--app adpcm --kb 4")

    def test_preset_grids_are_keyable(self, capsys):
        assert _key(capsys, "--preset contention").startswith("v")

    def test_no_flags_is_a_usage_error(self, capsys):
        assert grid_key.main([]) == 2
        assert "usage" in capsys.readouterr().err

    def test_unknown_flag_rejected(self):
        with pytest.raises(SystemExit):
            grid_key.main(["--warp-drive 9"])


class TestMultiSegment:
    """``--``-separated segments key the union of several invocations.

    CI sweeps its extra scheduling/trace cells into the same cache as
    the axis-product smoke grid; the baseline key must span all of
    those invocations without pretending they are one parseable grid.
    """

    GRID = "--app adpcm --kb 2 --policy fifo lru"
    EXTRA = "--app adpcm --kb 2 --tenants 2 --sched priority"

    def test_union_differs_from_either_segment(self, capsys):
        union = _key(capsys, self.GRID, "--", self.EXTRA)
        assert union != _key(capsys, self.GRID)
        assert union != _key(capsys, self.EXTRA)

    def test_segment_order_does_not_fork_the_key(self, capsys):
        assert _key(capsys, self.GRID, "--", self.EXTRA) == \
            _key(capsys, self.EXTRA, "--", self.GRID)

    def test_duplicate_cells_across_segments_collapse(self, capsys):
        # A cell described by two invocations lands in one cache entry,
        # so it must count once in the fingerprint too.
        assert _key(capsys, self.GRID, "--", self.GRID) == \
            _key(capsys, self.GRID)

    def test_separator_inside_a_quoted_string_splits_too(self, capsys):
        # CI passes '"$A" -- "$B"'; a single pre-joined string must
        # shell-split to the same segments.
        assert _key(capsys, f"{self.GRID} -- {self.EXTRA}") == \
            _key(capsys, self.GRID, "--", self.EXTRA)
