"""Unit tests for the Virtual Interface Manager.

These drive the VIM directly (synthetic IMU states) rather than through
a running coprocessor, so each service path is isolated.  End-to-end
behaviour is covered in tests/core/test_runner.py.
"""

import pytest

from repro.accounting import Bucket
from repro.coproc.ports import PARAM_OBJECT
from repro.core.measurement import Measurement
from repro.errors import VimError
from repro.hw.bus import AhbBus
from repro.hw.dpram import DualPortRam
from repro.hw.interrupts import InterruptController
from repro.imu.imu import INT_PLD_LINE, Imu, ImuState
from repro.imu.registers import StatusRegister
from repro.os.costs import CpuCostModel
from repro.os.kernel import Kernel
from repro.os.vim.manager import TransferMode, Vim
from repro.os.vim.objects import Direction, MappedObject
from repro.sim.engine import Engine
from repro.sim.time import mhz


class VimRig:
    def __init__(self, transfer_mode=TransferMode.DOUBLE, **vim_kwargs):
        self.kernel = Kernel(
            Engine(), mhz(133.0), CpuCostModel(), InterruptController()
        )
        self.dpram = DualPortRam()
        self.imu = Imu(self.dpram, self.kernel.interrupts)
        self.vim = Vim(
            self.kernel,
            self.dpram,
            AhbBus(),
            self.imu,
            transfer_mode=transfer_mode,
            **vim_kwargs,
        )
        self.meas = Measurement()
        self.kernel.attach_measurement(self.meas)
        self.process = self.kernel.spawn("app")
        self.kernel.scheduler.pick_next()

    def map_buffer(self, obj_id, size, direction=Direction.IN, fill=None):
        buffer = self.kernel.user_memory.alloc(f"obj{obj_id}", size, self.process.pid)
        if fill is not None:
            buffer.fill_from(fill)
        mapped = MappedObject(obj_id, buffer, size, direction)
        self.vim.map_object(mapped)
        return mapped

    def fake_fault(self, obj_id, addr):
        """Put the IMU into the state a real translation miss creates."""
        self.imu.ar.capture(obj_id, addr, write=False)
        self.imu.sr.set(StatusRegister.FAULT)
        self.imu.state = ImuState.FAULT
        self.kernel.interrupts.raise_line(INT_PLD_LINE)
        self.vim.handle_interrupt(INT_PLD_LINE)


class TestSetupExecution:
    def test_param_page_written_and_mapped(self):
        rig = VimRig()
        rig.map_buffer(0, 100, fill=bytes(100))
        rig.vim.setup_execution([7, 9], rig.process)
        entry = rig.imu.tlb.probe(PARAM_OBJECT, 0)
        assert entry is not None
        base = rig.dpram.page_base(entry.ppage)
        assert rig.dpram.read_word(base) == 7
        assert rig.dpram.read_word(base + 4) == 9

    def test_eager_mapping_preloads_fitting_objects(self):
        rig = VimRig()
        data = bytes(range(256)) * 16  # 4096 bytes = 2 pages
        rig.map_buffer(0, 4096, fill=data)
        rig.vim.setup_execution([1], rig.process)
        assert rig.imu.tlb.probe(0, 0) is not None
        assert rig.imu.tlb.probe(0, 1) is not None
        frame = rig.imu.tlb.probe(0, 0).ppage
        assert rig.dpram.cpu_read_page(frame)[:16] == data[:16]

    def test_eager_mapping_stops_at_capacity(self):
        rig = VimRig()
        rig.map_buffer(0, 32 * 1024, fill=bytes(32 * 1024))  # 16 pages
        rig.vim.setup_execution([1], rig.process)
        resident = [e for e in rig.imu.tlb.entries() if e.obj == 0]
        assert len(resident) == rig.dpram.num_pages - 1  # all but param

    def test_eager_mapping_can_be_disabled(self):
        rig = VimRig(eager_mapping=False)
        rig.map_buffer(0, 4096, fill=bytes(4096))
        rig.vim.setup_execution([1], rig.process)
        assert rig.imu.tlb.probe(0, 0) is None

    def test_no_objects_rejected(self):
        rig = VimRig()
        with pytest.raises(VimError):
            rig.vim.setup_execution([1], rig.process)

    def test_too_many_params_rejected(self):
        rig = VimRig()
        rig.map_buffer(0, 100, fill=bytes(100))
        with pytest.raises(VimError):
            rig.vim.setup_execution([0] * 600, rig.process)

    def test_reserved_object_id_rejected(self):
        rig = VimRig()
        buffer = rig.kernel.user_memory.alloc("x", 10, rig.process.pid)
        # 254 is the last legal user id; PARAM_OBJECT (255) is reserved.
        rig.vim.map_object(MappedObject(254, buffer, 10, Direction.IN))
        mapped = MappedObject(1, buffer, 10, Direction.IN)
        mapped.obj_id = PARAM_OBJECT  # simulate a corrupted descriptor
        with pytest.raises(VimError):
            rig.vim.map_object(mapped)


class TestFaultService:
    def test_fault_loads_page_and_restarts(self):
        rig = VimRig(eager_mapping=False)
        payload = bytes([5] * 3000)
        rig.map_buffer(0, 3000, fill=payload)
        rig.vim.setup_execution([1], rig.process)
        rig.fake_fault(0, 2500)  # vpage 1
        entry = rig.imu.tlb.probe(0, 1)
        assert entry is not None
        assert rig.imu.state is ImuState.TRANSLATE
        assert rig.meas.counters.page_faults == 1
        offset, length = 2048, 3000 - 2048
        frame_data = rig.dpram.cpu_read_page(entry.ppage, length)
        assert frame_data == payload[offset : offset + length]

    def test_fault_on_unmapped_object_rejected(self):
        rig = VimRig()
        rig.map_buffer(0, 100, fill=bytes(100))
        rig.vim.setup_execution([1], rig.process)
        with pytest.raises(VimError):
            rig.fake_fault(9, 0)

    def test_fault_beyond_object_rejected(self):
        rig = VimRig()
        rig.map_buffer(0, 100, fill=bytes(100))
        rig.vim.setup_execution([1], rig.process)
        with pytest.raises(VimError):
            rig.fake_fault(0, 4096)

    def test_eviction_when_full(self):
        rig = VimRig()
        rig.map_buffer(0, 32 * 1024, fill=bytes(32 * 1024))
        rig.vim.setup_execution([1], rig.process)  # fills all frames
        rig.fake_fault(0, 31 * 1024)
        assert rig.meas.counters.evictions >= 1
        assert rig.imu.tlb.probe(0, 15) is not None

    def test_dirty_eviction_writes_back(self):
        rig = VimRig()
        mapped = rig.map_buffer(0, 32 * 1024, Direction.INOUT, bytes(32 * 1024))
        rig.vim.setup_execution([1], rig.process)
        # Dirty the first resident page through the hardware path.
        entry = rig.imu.tlb.probe(0, 0)
        rig.dpram.pld_write(rig.dpram.page_base(entry.ppage), 0xAB, size=1)
        entry.dirty = True
        # Fault enough times to evict every resident page (FIFO).
        for vpage in range(8, 15):
            rig.fake_fault(0, vpage * 2048)
        assert rig.meas.counters.writebacks >= 1
        assert mapped.buffer.read(0, 1) == b"\xab"
        assert 0 in mapped.written_back

    def test_param_frame_reused_after_release(self):
        rig = VimRig()
        rig.map_buffer(0, 32 * 1024, fill=bytes(32 * 1024))
        rig.vim.setup_execution([1], rig.process)
        param_frame = rig.vim.allocator.param_frame()
        # Coprocessor releases the parameter page, then faults.
        rig.imu.tlb.invalidate(PARAM_OBJECT, 0)
        rig.imu.sr.set(StatusRegister.PARAM_RELEASED)
        rig.fake_fault(0, 15 * 2048)
        assert rig.meas.counters.evictions == 0
        assert rig.imu.tlb.probe(0, 15).ppage == param_frame


class TestTransferModes:
    def _dp_time(self, mode):
        rig = VimRig(transfer_mode=mode, eager_mapping=False)
        rig.map_buffer(0, 2048, fill=bytes(2048))
        rig.vim.setup_execution([1], rig.process)
        before = rig.meas.buckets[Bucket.SW_DP]
        rig.fake_fault(0, 0)
        return rig.meas.buckets[Bucket.SW_DP] - before

    def test_double_costs_twice_single(self):
        # §4.1: the simple implementation "makes two transfers each
        # time a page is loaded or unloaded".
        single = self._dp_time(TransferMode.SINGLE)
        double = self._dp_time(TransferMode.DOUBLE)
        assert double == 2 * single


class TestDoneService:
    def test_done_flushes_dirty_and_wakes(self):
        rig = VimRig()
        mapped = rig.map_buffer(1, 2048, Direction.OUT)
        rig.vim.setup_execution([1], rig.process)
        entry = rig.imu.tlb.probe(1, 0)
        rig.dpram.cpu_write_page(entry.ppage, b"\x42" * 2048)
        entry.dirty = True
        rig.process.sleep()
        rig.imu.sr.set(StatusRegister.DONE)
        rig.kernel.interrupts.raise_line(INT_PLD_LINE)
        rig.vim.handle_interrupt(INT_PLD_LINE)
        assert rig.vim.execution_done
        assert mapped.buffer.snapshot() == b"\x42" * 2048
        assert rig.process.wakeups == 1
        assert not rig.imu.sr.done

    def test_clean_pages_not_copied(self):
        rig = VimRig()
        rig.map_buffer(0, 2048, fill=bytes(2048))
        rig.vim.setup_execution([1], rig.process)
        rig.process.sleep()
        before = rig.meas.counters.bytes_from_dpram
        rig.imu.sr.set(StatusRegister.DONE)
        rig.kernel.interrupts.raise_line(INT_PLD_LINE)
        rig.vim.handle_interrupt(INT_PLD_LINE)
        assert rig.meas.counters.bytes_from_dpram == before

    def test_interrupt_without_cause_rejected(self):
        rig = VimRig()
        rig.map_buffer(0, 100, fill=bytes(100))
        rig.vim.setup_execution([1], rig.process)
        rig.kernel.interrupts.raise_line(INT_PLD_LINE)
        rig.imu.sr.value = 0
        with pytest.raises(VimError):
            rig.vim.handle_interrupt(INT_PLD_LINE)
