"""Unit tests for the CPU cost model."""

import pytest

from repro.accounting import Bucket
from repro.errors import OsError
from repro.os.costs import CpuCostModel


class TestCopyCycles:
    def test_zero_bytes_free(self):
        assert CpuCostModel().copy_cycles(0) == 0

    def test_word_granularity(self):
        costs = CpuCostModel(copy_setup_cycles=10, copy_cycles_per_word=4)
        assert costs.copy_cycles(4) == 14
        assert costs.copy_cycles(1) == 14  # rounds up to a word
        assert costs.copy_cycles(8) == 18

    def test_page_copy_scale(self):
        costs = CpuCostModel()
        page = costs.copy_cycles(2048)
        # 512 words at 8 cycles + setup.
        assert page == costs.copy_setup_cycles + 512 * 8

    def test_negative_size_rejected(self):
        with pytest.raises(OsError):
            CpuCostModel().copy_cycles(-1)


class TestValidation:
    def test_negative_cost_rejected(self):
        with pytest.raises(OsError):
            CpuCostModel(syscall_cycles=-1)

    def test_buckets_are_complete(self):
        values = {bucket.value for bucket in Bucket}
        assert values == {"sw_dp", "sw_imu", "sw_other", "sw_app"}
