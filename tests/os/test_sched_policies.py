"""Unit tests for the pluggable scheduling policies.

The queue mechanics are pinned in ``test_process_scheduler.py``; here
the three :data:`~repro.os.scheduler.SCHEDS` policies are exercised
directly on hand-built queues, including the two degeneracy invariants
the sweep layer relies on (equal-priority strict priority == rr,
all-weights-one wrr == rr).
"""

import pytest

from repro.errors import OsError
from repro.os.process import Process
from repro.os.scheduler import (
    SCHEDS,
    RoundRobinPolicy,
    Scheduler,
    StrictPriorityPolicy,
    WeightedRoundRobinPolicy,
    scheduling_policy,
)
from repro.os.workload import Workload


def _dispatch_sequence(policy, processes, picks: int) -> list[int]:
    """Pids dispatched by repeatedly calling pick_next (no sleeping)."""
    sched = Scheduler(policy=policy)
    for process in processes:
        sched.enqueue(process)
    return [sched.pick_next().pid for _ in range(picks)]


class TestFactory:
    def test_every_axis_value_builds(self):
        for name in SCHEDS:
            assert scheduling_policy(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(OsError):
            scheduling_policy("lottery")

    def test_default_policy_is_round_robin(self):
        assert Scheduler().policy.name == "rr"


class TestPriorityValidation:
    def test_process_priority_must_be_positive(self):
        with pytest.raises(OsError):
            Process(1, "app", priority=0)

    def test_workload_priority_must_be_positive(self):
        with pytest.raises(OsError):
            Workload(spec=None, priority=0)


class TestRoundRobin:
    def test_rotates_through_queue(self):
        processes = [Process(pid, f"p{pid}") for pid in (1, 2, 3)]
        sequence = _dispatch_sequence(RoundRobinPolicy(), processes, 6)
        assert sequence == [1, 2, 3, 1, 2, 3]


class TestStrictPriority:
    def test_highest_priority_monopolises(self):
        processes = [
            Process(1, "lo", priority=1),
            Process(2, "hi", priority=5),
            Process(3, "lo", priority=1),
        ]
        sequence = _dispatch_sequence(StrictPriorityPolicy(), processes, 4)
        # pid 2 wins every dispatch while READY (it never sleeps here).
        assert sequence == [2, 2, 2, 2]

    def test_equal_priorities_match_round_robin(self):
        def build():
            return [Process(pid, f"p{pid}") for pid in (1, 2, 3)]

        rr = _dispatch_sequence(RoundRobinPolicy(), build(), 9)
        prio = _dispatch_sequence(StrictPriorityPolicy(), build(), 9)
        assert prio == rr

    def test_tie_breaks_by_queue_order(self):
        processes = [
            Process(1, "a", priority=2),
            Process(2, "b", priority=2),
        ]
        assert _dispatch_sequence(
            StrictPriorityPolicy(), processes, 2
        ) == [1, 2]


class TestWeightedRoundRobin:
    def test_burst_lengths_follow_priority(self):
        processes = [
            Process(1, "a", priority=2),
            Process(2, "b", priority=1),
            Process(3, "c", priority=3),
        ]
        sequence = _dispatch_sequence(WeightedRoundRobinPolicy(), processes, 9)
        assert sequence == [1, 1, 2, 3, 3, 3, 1, 1, 2]

    def test_all_weights_one_match_round_robin(self):
        def build():
            return [Process(pid, f"p{pid}") for pid in (1, 2, 3)]

        rr = _dispatch_sequence(RoundRobinPolicy(), build(), 9)
        wrr = _dispatch_sequence(WeightedRoundRobinPolicy(), build(), 9)
        assert wrr == rr

    def test_absent_process_forfeits_burst(self):
        a = Process(1, "a", priority=3)
        b = Process(2, "b", priority=1)
        sched = Scheduler(policy=WeightedRoundRobinPolicy())
        sched.enqueue(a)
        sched.enqueue(b)
        assert sched.pick_next() is a
        sched.sleep_current()  # a blocks mid-burst
        assert sched.pick_next() is b  # burst forfeited, rotation moves on

    def test_policy_index_bounds_enforced(self):
        class Broken:
            name = "broken"

            def select(self, ready):
                return len(ready)  # off the end

        sched = Scheduler(policy=Broken())
        sched.enqueue(Process(1, "a"))
        with pytest.raises(OsError):
            sched.pick_next()
