"""Regression tests for the copy-path accounting fixes.

Three bugs rode the copy path before this suite existed:

1. ``Vim.setup_execution`` charged the parameter-page copy once
   regardless of ``transfer_mode`` (DOUBLE must cost two copies);
2. ``_service_fault`` counted TLB-only reinstalls (resident page,
   displaced translation) as ``page_faults``, inflating the §4.1 fault
   decomposition whenever the TLB is smaller than the frame count;
3. ``FifoPolicy.victim`` preferred frames it had seen over pre-attach
   residents, inverting FIFO order, and recency policies never heard
   about TLB-only reinstalls.

Each test here fails on the pre-fix tree.
"""

import pytest

from repro.accounting import Bucket
from repro.core.measurement import Measurement
from repro.errors import VimError
from repro.hw.bus import AhbBus
from repro.hw.dma import DmaEngine
from repro.hw.dpram import DualPortRam
from repro.hw.interrupts import InterruptController
from repro.imu.imu import INT_PLD_LINE, Imu, ImuState
from repro.imu.registers import StatusRegister
from repro.imu.tlb import Tlb
from repro.os.costs import CpuCostModel
from repro.os.kernel import Kernel
from repro.os.vim.manager import TransferMode, Vim
from repro.os.vim.objects import Direction, MappedObject
from repro.os.vim.policies import FifoPolicy, SecondChancePolicy, VictimContext
from repro.sim.engine import Engine
from repro.sim.time import mhz


class Rig:
    """A bare VIM harness (synthetic IMU states, no running core)."""

    def __init__(self, transfer_mode=TransferMode.DOUBLE, with_dma=False,
                 **vim_kwargs):
        self.kernel = Kernel(
            Engine(), mhz(133.0), CpuCostModel(), InterruptController()
        )
        self.dpram = DualPortRam()
        self.bus = AhbBus()
        self.imu = Imu(self.dpram, self.kernel.interrupts)
        dma = (
            DmaEngine(self.kernel.engine, self.bus, self.kernel.interrupts,
                      mhz(66.5))
            if with_dma else None
        )
        self.vim = Vim(
            self.kernel,
            self.dpram,
            self.bus,
            self.imu,
            transfer_mode=transfer_mode,
            dma=dma,
            **vim_kwargs,
        )
        self.meas = Measurement()
        self.kernel.attach_measurement(self.meas)
        self.process = self.kernel.spawn("app")
        self.kernel.scheduler.pick_next()

    def map_buffer(self, obj_id, size, direction=Direction.IN, fill=None):
        buffer = self.kernel.user_memory.alloc(
            f"obj{obj_id}", size, self.process.pid
        )
        if fill is not None:
            buffer.fill_from(fill)
        mapped = MappedObject(obj_id, buffer, size, direction)
        self.vim.map_object(mapped)
        return mapped

    def fake_fault(self, obj_id, addr):
        self.imu.ar.capture(obj_id, addr, write=False)
        self.imu.sr.set(StatusRegister.FAULT)
        self.imu.state = ImuState.FAULT
        self.kernel.interrupts.raise_line(INT_PLD_LINE)
        self.vim.handle_interrupt(INT_PLD_LINE)


class TestParamCopyAccounting:
    """Satellite 1: the parameter page is a page movement like any
    other and must honour the transfer mode."""

    def _setup_sw_dp(self, mode):
        # An OUT-only object: eager mapping zero-fills (no copy), so
        # SW_DP during setup is exactly the parameter-page copy.
        rig = Rig(transfer_mode=mode)
        rig.map_buffer(0, 2048, direction=Direction.OUT)
        rig.vim.setup_execution([1, 2, 3], rig.process)
        return rig.meas.buckets[Bucket.SW_DP]

    def test_double_param_copy_costs_two_transfers(self):
        single = self._setup_sw_dp(TransferMode.SINGLE)
        double = self._setup_sw_dp(TransferMode.DOUBLE)
        assert single > 0
        assert double == 2 * single

    def test_param_copy_records_bus_traffic(self):
        rig = Rig()
        rig.map_buffer(0, 2048, direction=Direction.OUT)
        rig.vim.setup_execution([1, 2, 3], rig.process)
        assert rig.bus.bytes_transferred == 12  # three little-endian words


class TestTlbRefillSplit:
    """Satellite 2: translation-only reinstalls are refills, not page
    faults."""

    def _displaced_translation_rig(self):
        rig = Rig()
        payload = bytes(range(256)) * 8  # one full page
        rig.map_buffer(0, 2048, fill=payload)
        rig.vim.setup_execution([1], rig.process)
        entry = rig.imu.tlb.probe(0, 0)
        assert entry is not None
        # Displace the translation while the page stays resident — the
        # state a smaller-than-frame-count TLB produces via
        # _make_tlb_room.
        rig.imu.tlb.invalidate(0, 0)
        return rig

    def test_reinstall_counts_as_refill_not_fault(self):
        rig = self._displaced_translation_rig()
        bytes_before = rig.meas.counters.bytes_to_dpram
        rig.fake_fault(0, 0)
        assert rig.meas.counters.page_faults == 0
        assert rig.meas.counters.tlb_refills == 1
        # No data moved: the page was already resident.
        assert rig.meas.counters.bytes_to_dpram == bytes_before

    def test_reinstalled_entry_reads_as_recently_used(self):
        rig = self._displaced_translation_rig()
        rig.fake_fault(0, 0)
        entry = rig.imu.tlb.probe(0, 0)
        assert entry is not None
        assert entry.referenced
        assert entry.last_used == rig.imu.tlb.stats.lookups

    def test_real_fault_still_counts(self):
        rig = Rig(eager_mapping=False)
        rig.map_buffer(0, 2048, fill=bytes(2048))
        rig.vim.setup_execution([1], rig.process)
        rig.fake_fault(0, 0)
        assert rig.meas.counters.page_faults == 1
        assert rig.meas.counters.tlb_refills == 0


class TestPolicyFallbacks:
    """Satellite 3: pre-attach residents are the oldest cohort and
    TLB-only reinstalls are touches."""

    def test_fifo_prefers_unseen_candidates(self):
        tlb = Tlb(8)
        ctx = VictimContext(tlb)
        policy = FifoPolicy()
        policy.on_load(1)
        policy.on_load(2)
        # Frames 5 and 3 were resident before the policy attached:
        # older than anything on record, lowest frame number first.
        assert policy.victim([1, 2, 5, 3], ctx) == 3
        policy.on_load(3)
        policy.on_load(5)
        assert policy.victim([1, 2, 5, 3], ctx) == 1

    def test_second_chance_sweeps_unseen_first(self):
        tlb = Tlb(8)
        ctx = VictimContext(tlb)
        policy = SecondChancePolicy()
        policy.on_load(0)
        assert policy.victim([0, 4, 2], ctx) == 2

    def test_on_touch_is_a_policy_notification(self):
        # The base hook exists and is a no-op for FIFO (which ignores
        # recency by definition) — attaching it must not reorder.
        tlb = Tlb(8)
        ctx = VictimContext(tlb)
        policy = FifoPolicy()
        policy.on_load(0)
        policy.on_load(1)
        policy.on_touch(0)
        assert policy.victim([0, 1], ctx) == 0

    def test_touch_protects_reinstalled_frame_from_recency_eviction(self):
        # After a TLB-only reinstall the entry's usage assist is
        # refreshed, so LRU must not victimise the frame the
        # coprocessor is about to retry.
        rig = Rig(policy="lru")
        data = bytes(range(256)) * 16  # 4 KB = 2 pages
        rig.map_buffer(0, 4096, fill=data)
        rig.vim.setup_execution([1], rig.process)
        frame0 = rig.imu.tlb.probe(0, 0).ppage
        rig.imu.tlb.lookup(0, 1)  # page 1 recently used
        rig.imu.tlb.invalidate(0, 0)
        rig.imu.tlb.lookup(0, 0)  # the miss the hardware counts
        rig.fake_fault(0, 0)  # reinstall: must refresh recency
        ctx = VictimContext(rig.imu.tlb)
        victim = rig.vim.policy.victim(
            [rig.imu.tlb.probe(0, 0).ppage, rig.imu.tlb.probe(0, 1).ppage], ctx
        )
        assert victim != frame0


class TestDmaModeGuards:
    def test_dma_mode_without_engine_rejected(self):
        with pytest.raises(VimError):
            Rig(transfer_mode=TransferMode.DMA, with_dma=False)

    def test_overlapped_prefetch_without_engine_rejected(self):
        from repro.os.vim.prefetch import SequentialPrefetcher

        with pytest.raises(VimError):
            Rig(
                with_dma=False,
                prefetcher=SequentialPrefetcher(aggressive=True, overlapped=True),
            )

    def test_dma_mode_moves_pages_by_descriptor(self):
        rig = Rig(transfer_mode=TransferMode.DMA, with_dma=True,
                  eager_mapping=False)
        payload = bytes([7] * 2048)
        rig.map_buffer(0, 2048, fill=payload)
        rig.vim.setup_execution([1], rig.process)
        before = rig.meas.buckets[Bucket.SW_DP]
        rig.fake_fault(0, 0)
        entry = rig.imu.tlb.probe(0, 0)
        assert entry is not None
        assert rig.dpram.cpu_read_page(entry.ppage)[:8] == payload[:8]
        assert rig.meas.counters.dma_transfers == 1
        # The CPU paid descriptor programming plus the drain wait, not
        # per-word copy cycles: far below even a single CPU copy.
        single_copy_ps = rig.kernel.cpu_frequency.cycles_to_ps(
            rig.kernel.costs.copy_cycles(2048)
        )
        assert rig.meas.buckets[Bucket.SW_DP] - before < single_copy_ps
