"""Unit tests for page-replacement policies."""

import pytest

from repro.errors import VimError
from repro.imu.tlb import Tlb
from repro.os.vim.policies import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    SecondChancePolicy,
    VictimContext,
    make_policy,
    policy_names,
)


@pytest.fixture
def tlb_ctx():
    tlb = Tlb(8)
    return tlb, VictimContext(tlb)


class TestFifo:
    def test_evicts_oldest_load(self, tlb_ctx):
        _, ctx = tlb_ctx
        policy = FifoPolicy()
        for frame in (3, 1, 2):
            policy.on_load(frame)
        assert policy.victim([1, 2, 3], ctx) == 3

    def test_reload_moves_to_back(self, tlb_ctx):
        _, ctx = tlb_ctx
        policy = FifoPolicy()
        policy.on_load(0)
        policy.on_load(1)
        policy.on_load(0)  # reloaded: now newest
        assert policy.victim([0, 1], ctx) == 1

    def test_release_forgets_frame(self, tlb_ctx):
        _, ctx = tlb_ctx
        policy = FifoPolicy()
        policy.on_load(0)
        policy.on_load(1)
        policy.on_release(0)
        assert policy.victim([1], ctx) == 1

    def test_unknown_frames_fall_back(self, tlb_ctx):
        _, ctx = tlb_ctx
        assert FifoPolicy().victim([4, 5], ctx) == 4

    def test_empty_candidates_rejected(self, tlb_ctx):
        _, ctx = tlb_ctx
        with pytest.raises(VimError):
            FifoPolicy().victim([], ctx)

    def test_reset_clears_history(self, tlb_ctx):
        _, ctx = tlb_ctx
        policy = FifoPolicy()
        policy.on_load(2)
        policy.reset()
        assert policy.victim([1, 2], ctx) == 1


class TestLru:
    def test_evicts_least_recently_hit(self, tlb_ctx):
        tlb, ctx = tlb_ctx
        tlb.insert(0, 0, 0)
        tlb.insert(0, 1, 1)
        tlb.lookup(0, 0)  # frame 0 used
        tlb.lookup(0, 1)  # frame 1 used later
        tlb.lookup(0, 0)  # frame 0 used again -> frame 1 is LRU
        assert LruPolicy().victim([0, 1], ctx) == 1

    def test_untouched_entries_preferred(self, tlb_ctx):
        tlb, ctx = tlb_ctx
        tlb.insert(0, 0, 0)
        tlb.insert(0, 1, 1)
        tlb.lookup(0, 1)
        assert LruPolicy().victim([0, 1], ctx) == 0

    def test_ties_break_by_frame_number(self, tlb_ctx):
        tlb, ctx = tlb_ctx
        tlb.insert(0, 0, 6)
        tlb.insert(0, 1, 7)
        assert LruPolicy().victim([7, 6], ctx) == 6


class TestRandom:
    def test_seeded_reproducibility(self, tlb_ctx):
        _, ctx = tlb_ctx
        first = RandomPolicy(seed=1)
        second = RandomPolicy(seed=1)
        picks_a = [first.victim([0, 1, 2, 3], ctx) for _ in range(10)]
        picks_b = [second.victim([0, 1, 2, 3], ctx) for _ in range(10)]
        assert picks_a == picks_b

    def test_reset_restores_sequence(self, tlb_ctx):
        _, ctx = tlb_ctx
        policy = RandomPolicy(seed=2)
        first = [policy.victim([0, 1, 2], ctx) for _ in range(5)]
        policy.reset()
        assert [policy.victim([0, 1, 2], ctx) for _ in range(5)] == first

    def test_picks_within_candidates(self, tlb_ctx):
        _, ctx = tlb_ctx
        policy = RandomPolicy(seed=3)
        for _ in range(20):
            assert policy.victim([4, 6], ctx) in (4, 6)


class TestSecondChance:
    def test_referenced_frame_survives_one_pass(self, tlb_ctx):
        tlb, ctx = tlb_ctx
        tlb.insert(0, 0, 0)
        tlb.insert(0, 1, 1)
        policy = SecondChancePolicy()
        policy.on_load(0)
        policy.on_load(1)
        tlb.lookup(0, 0)  # frame 0 referenced
        assert policy.victim([0, 1], ctx) == 1

    def test_reference_bit_cleared_by_sweep(self, tlb_ctx):
        tlb, ctx = tlb_ctx
        entry = tlb.insert(0, 0, 0)
        tlb.insert(0, 1, 1)
        policy = SecondChancePolicy()
        policy.on_load(0)
        policy.on_load(1)
        tlb.lookup(0, 0)
        policy.victim([0, 1], ctx)
        assert not entry.referenced

    def test_all_referenced_degrades_to_fifo(self, tlb_ctx):
        tlb, ctx = tlb_ctx
        tlb.insert(0, 0, 0)
        tlb.insert(0, 1, 1)
        tlb.lookup(0, 0)
        tlb.lookup(0, 1)
        policy = SecondChancePolicy()
        policy.on_load(0)
        policy.on_load(1)
        assert policy.victim([0, 1], ctx) == 0


class TestRegistry:
    def test_all_policies_registered(self):
        assert policy_names() == ["fifo", "lru", "random", "second-chance"]

    def test_make_policy(self):
        assert isinstance(make_policy("fifo"), FifoPolicy)
        assert isinstance(make_policy("lru"), LruPolicy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(VimError):
            make_policy("mru")
