"""Unit tests for mapped interface objects."""

import pytest

from repro.errors import SyscallError
from repro.os.vim.objects import Direction, MappedObject
from repro.os.vmm import UserBuffer


def make_object(size=5000, direction=Direction.IN, obj_id=0) -> MappedObject:
    return MappedObject(obj_id, UserBuffer("b", size, pid=1), size, direction)


class TestValidation:
    def test_reserved_and_invalid_ids_rejected(self):
        with pytest.raises(SyscallError):
            make_object(obj_id=255)
        with pytest.raises(SyscallError):
            make_object(obj_id=-1)

    def test_zero_size_rejected(self):
        with pytest.raises(SyscallError):
            MappedObject(0, UserBuffer("b", 4, pid=1), 0, Direction.IN)

    def test_size_beyond_buffer_rejected(self):
        with pytest.raises(SyscallError):
            MappedObject(0, UserBuffer("b", 4, pid=1), 8, Direction.IN)


class TestPaging:
    def test_num_pages_rounds_up(self):
        obj = make_object(size=5000)
        assert obj.num_pages(2048) == 3

    def test_page_span_full_page(self):
        obj = make_object(size=5000)
        assert obj.page_span(0, 2048) == (0, 2048)
        assert obj.page_span(1, 2048) == (2048, 2048)

    def test_page_span_partial_tail(self):
        obj = make_object(size=5000)
        assert obj.page_span(2, 2048) == (4096, 904)

    def test_page_span_beyond_object_rejected(self):
        with pytest.raises(SyscallError):
            make_object(size=5000).page_span(3, 2048)


class TestDirections:
    def test_in_pages_always_load(self):
        obj = make_object(direction=Direction.IN)
        assert obj.needs_load(0)

    def test_inout_pages_always_load(self):
        obj = make_object(direction=Direction.INOUT)
        assert obj.needs_load(1)

    def test_out_pages_skip_first_load(self):
        obj = make_object(direction=Direction.OUT)
        assert not obj.needs_load(0)

    def test_out_pages_reload_after_writeback(self):
        # An evicted-dirty OUT page holds real results; losing them on
        # the reload would corrupt output.
        obj = make_object(direction=Direction.OUT)
        obj.written_back.add(1)
        assert obj.needs_load(1)
        assert not obj.needs_load(0)

    def test_reset_for_execution_clears_writebacks(self):
        obj = make_object(direction=Direction.OUT)
        obj.written_back.add(0)
        obj.reset_for_execution()
        assert not obj.needs_load(0)

    def test_direction_flags_compose(self):
        assert Direction.INOUT & Direction.IN
        assert Direction.INOUT & Direction.OUT
        assert not (Direction.IN & Direction.OUT)
