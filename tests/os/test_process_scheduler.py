"""Unit tests for processes and the round-robin scheduler."""

import pytest

from repro.errors import OsError
from repro.os.process import Process, ProcessState
from repro.os.scheduler import Scheduler


class TestProcess:
    def test_starts_ready(self):
        assert Process(1, "app").state is ProcessState.READY

    def test_sleep_wake_cycle(self):
        process = Process(1, "app")
        process.sleep()
        assert process.state is ProcessState.SLEEPING
        process.wake()
        assert process.state is ProcessState.READY
        assert process.sleeps == 1
        assert process.wakeups == 1

    def test_wake_requires_sleeping(self):
        with pytest.raises(OsError):
            Process(1, "app").wake()

    def test_terminated_cannot_sleep(self):
        process = Process(1, "app")
        process.terminate()
        with pytest.raises(OsError):
            process.sleep()

    def test_negative_pid_rejected(self):
        with pytest.raises(OsError):
            Process(-1, "app")


class TestScheduler:
    def test_pick_next_round_robin(self):
        sched = Scheduler()
        a, b = Process(1, "a"), Process(2, "b")
        sched.enqueue(a)
        sched.enqueue(b)
        assert sched.pick_next() is a
        assert sched.pick_next() is b  # a preempted to tail
        assert sched.pick_next() is a

    def test_pick_next_empty(self):
        assert Scheduler().pick_next() is None

    def test_sleep_current_releases_cpu(self):
        sched = Scheduler()
        process = Process(1, "a")
        sched.enqueue(process)
        sched.pick_next()
        sched.sleep_current()
        assert sched.current is None
        assert process.state is ProcessState.SLEEPING

    def test_sleep_without_current_rejected(self):
        with pytest.raises(OsError):
            Scheduler().sleep_current()

    def test_wake_requeues(self):
        sched = Scheduler()
        process = Process(1, "a")
        sched.enqueue(process)
        sched.pick_next()
        sched.sleep_current()
        sched.wake(process)
        assert sched.pick_next() is process

    def test_enqueue_requires_ready(self):
        sched = Scheduler()
        process = Process(1, "a")
        process.sleep()
        with pytest.raises(OsError):
            sched.enqueue(process)

    def test_terminated_processes_skipped(self):
        sched = Scheduler()
        a, b = Process(1, "a"), Process(2, "b")
        sched.enqueue(a)
        sched.enqueue(b)
        a.terminate()
        assert sched.pick_next() is b

    def test_context_switches_counted(self):
        sched = Scheduler()
        sched.enqueue(Process(1, "a"))
        sched.pick_next()
        assert sched.context_switches == 1
