"""Unit tests for user memory and the kernel accounting choke point."""

import pytest

from repro.accounting import Bucket
from repro.core.measurement import Measurement
from repro.errors import MemoryAccessError, OsError
from repro.hw.interrupts import InterruptController
from repro.os.costs import CpuCostModel
from repro.os.kernel import Kernel
from repro.os.vmm import UserBuffer, UserMemory
from repro.sim.engine import Engine
from repro.sim.time import mhz


class TestUserBuffer:
    def test_roundtrip(self):
        buffer = UserBuffer("b", 16, pid=1)
        buffer.write(4, b"abcd")
        assert buffer.read(4, 4) == b"abcd"

    def test_bounds_enforced(self):
        buffer = UserBuffer("b", 8, pid=1)
        with pytest.raises(MemoryAccessError):
            buffer.read(6, 4)
        with pytest.raises(MemoryAccessError):
            buffer.write(7, b"xy")

    def test_fill_from_exact_size(self):
        buffer = UserBuffer("b", 4, pid=1)
        buffer.fill_from(b"wxyz")
        assert buffer.snapshot() == b"wxyz"
        with pytest.raises(OsError):
            buffer.fill_from(b"toolong")

    def test_zero_initialised(self):
        assert UserBuffer("b", 4, pid=1).snapshot() == bytes(4)


class TestUserMemory:
    def test_alloc_and_track(self):
        memory = UserMemory(capacity=100)
        memory.alloc("a", 60, pid=1)
        assert memory.allocated == 60

    def test_capacity_enforced(self):
        memory = UserMemory(capacity=100)
        memory.alloc("a", 60, pid=1)
        with pytest.raises(OsError):
            memory.alloc("b", 50, pid=1)

    def test_free_process_releases(self):
        memory = UserMemory(capacity=100)
        memory.alloc("a", 60, pid=1)
        memory.alloc("b", 20, pid=2)
        memory.free_process(1)
        assert memory.allocated == 20
        assert [b.name for b in memory.buffers()] == ["b"]


def make_kernel() -> Kernel:
    return Kernel(Engine(), mhz(133.0), CpuCostModel(), InterruptController())


class TestKernelAccounting:
    def test_spend_advances_time(self):
        kernel = make_kernel()
        kernel.spend(133, Bucket.SW_OTHER)
        # 133 cycles at 133 MHz == 1 microsecond.
        assert kernel.engine.now == pytest.approx(1_000_000, rel=1e-3)

    def test_spend_charges_measurement(self):
        kernel = make_kernel()
        meas = Measurement()
        kernel.attach_measurement(meas)
        kernel.spend(1000, Bucket.SW_DP)
        assert meas.buckets[Bucket.SW_DP] > 0
        kernel.detach_measurement()
        kernel.spend(1000, Bucket.SW_DP)
        assert meas.buckets[Bucket.SW_DP] == 1000 * kernel.cpu_frequency.period_ps

    def test_spend_without_measurement_allowed(self):
        make_kernel().spend(10, Bucket.SW_OTHER)

    def test_negative_cycles_rejected(self):
        with pytest.raises(OsError):
            make_kernel().spend(-1, Bucket.SW_OTHER)

    def test_measurement_property_requires_attachment(self):
        with pytest.raises(OsError):
            _ = make_kernel().measurement

    def test_spawn_assigns_increasing_pids(self):
        kernel = make_kernel()
        first = kernel.spawn("a")
        second = kernel.spawn("b")
        assert second.pid == first.pid + 1


class TestInterruptService:
    def test_dispatch_charges_entry_and_exit(self):
        kernel = make_kernel()
        meas = Measurement()
        kernel.attach_measurement(meas)
        kernel.interrupts.register(0, lambda line: kernel.interrupts.clear(line))
        kernel.interrupts.raise_line(0)
        count = kernel.service_interrupts()
        assert count == 1
        expected = (
            kernel.costs.irq_entry_cycles + kernel.costs.irq_exit_cycles
        ) * kernel.cpu_frequency.period_ps
        assert meas.buckets[Bucket.SW_OTHER] == expected
        assert meas.counters.interrupts == 1

    def test_no_pending_no_charge(self):
        kernel = make_kernel()
        meas = Measurement()
        kernel.attach_measurement(meas)
        assert kernel.service_interrupts() == 0
        assert meas.buckets[Bucket.SW_OTHER] == 0

    def test_handler_raising_again_is_serviced_again(self):
        kernel = make_kernel()
        state = {"count": 0}

        def handler(line):
            state["count"] += 1
            kernel.interrupts.clear(line)
            if state["count"] < 2:
                kernel.interrupts.raise_line(line)

        kernel.interrupts.register(0, handler)
        kernel.interrupts.raise_line(0)
        kernel.service_interrupts()
        assert state["count"] == 2
