"""Unit tests for the DP-RAM frame allocator."""

import pytest

from repro.errors import VimError
from repro.os.vim.allocator import FrameAllocator


class TestAllocation:
    def test_all_frames_start_free(self):
        alloc = FrameAllocator(8)
        assert alloc.free_frames() == list(range(8))
        assert alloc.resident_count() == 0

    def test_allocate_free_lowest_first(self):
        alloc = FrameAllocator(8)
        assert alloc.allocate_free() == 0

    def test_assign_and_lookup(self):
        alloc = FrameAllocator(8)
        alloc.assign(3, obj_id=1, vpage=2)
        assert alloc.frame_of(1, 2) == 3
        assert alloc.owner_of(3) == (1, 2)
        assert 3 not in alloc.free_frames()

    def test_double_assign_rejected(self):
        alloc = FrameAllocator(8)
        alloc.assign(0, 1, 0)
        with pytest.raises(VimError):
            alloc.assign(0, 2, 0)

    def test_duplicate_residency_rejected(self):
        # A virtual page may live in at most one frame.
        alloc = FrameAllocator(8)
        alloc.assign(0, 1, 0)
        with pytest.raises(VimError):
            alloc.assign(1, 1, 0)

    def test_exhaustion_returns_none(self):
        alloc = FrameAllocator(2)
        alloc.assign(0, 0, 0)
        alloc.assign(1, 0, 1)
        assert alloc.allocate_free() is None

    def test_minimum_two_frames(self):
        with pytest.raises(VimError):
            FrameAllocator(1)


class TestRelease:
    def test_release_frees(self):
        alloc = FrameAllocator(4)
        alloc.assign(2, 0, 0)
        alloc.release(2)
        assert alloc.frame_of(0, 0) is None
        assert 2 in alloc.free_frames()

    def test_release_free_frame_rejected(self):
        with pytest.raises(VimError):
            FrameAllocator(4).release(0)

    def test_out_of_range_rejected(self):
        alloc = FrameAllocator(4)
        with pytest.raises(VimError):
            alloc.release(4)
        with pytest.raises(VimError):
            alloc.assign(-1, 0, 0)

    def test_reset(self):
        alloc = FrameAllocator(4)
        alloc.assign(0, 0, 0)
        alloc.assign_param(1)
        alloc.reset()
        assert alloc.free_frames() == [0, 1, 2, 3]
        assert alloc.param_frame() is None


class TestParamFrame:
    def test_assign_param(self):
        alloc = FrameAllocator(4)
        alloc.assign_param(0)
        assert alloc.param_frame() == 0
        assert alloc.owner_of(0) is None  # param is not a data page
        assert alloc.data_frames() == []

    def test_single_param_frame(self):
        alloc = FrameAllocator(4)
        alloc.assign_param(0)
        with pytest.raises(VimError):
            alloc.assign_param(1)

    def test_param_release(self):
        alloc = FrameAllocator(4)
        alloc.assign_param(2)
        alloc.release(2)
        assert alloc.param_frame() is None

    def test_data_frames_excludes_param(self):
        alloc = FrameAllocator(4)
        alloc.assign_param(0)
        alloc.assign(1, 5, 0)
        assert alloc.data_frames() == [1]
