"""Unit tests for the FPGA_LOAD / FPGA_MAP_OBJECT / FPGA_EXECUTE layer."""

import pytest

from repro.coproc.kernels import vector_add
from repro.errors import SyscallError
from repro.hw.bus import AhbBus
from repro.hw.dpram import DualPortRam
from repro.hw.fpga import PldFabric
from repro.hw.interrupts import InterruptController
from repro.imu.imu import Imu
from repro.os.costs import CpuCostModel
from repro.os.kernel import Kernel
from repro.os.process import ProcessState
from repro.os.syscalls import FpgaServices
from repro.os.vim.manager import Vim
from repro.os.vim.objects import Direction
from repro.core.measurement import Measurement
from repro.sim.engine import Engine
from repro.sim.time import mhz


@pytest.fixture
def services():
    kernel = Kernel(Engine(), mhz(133.0), CpuCostModel(), InterruptController())
    dpram = DualPortRam()
    imu = Imu(dpram, kernel.interrupts)
    vim = Vim(kernel, dpram, AhbBus(), imu)
    kernel.attach_measurement(Measurement())
    return FpgaServices(kernel, PldFabric(), vim)


@pytest.fixture
def running_process(services):
    process = services.kernel.spawn("app")
    services.kernel.scheduler.pick_next()
    return process


class TestFpgaLoad:
    def test_load_configures_and_owns(self, services, running_process):
        services.fpga_load(running_process, vector_add.bitstream())
        assert services.fabric.owner_pid == running_process.pid

    def test_load_advances_time_for_configuration(self, services, running_process):
        before = services.kernel.engine.now
        services.fpga_load(running_process, vector_add.bitstream())
        assert services.kernel.engine.now > before


class TestFpgaMapObject:
    def test_map_requires_fabric_ownership(self, services, running_process):
        buffer = services.kernel.user_memory.alloc("a", 64, running_process.pid)
        with pytest.raises(SyscallError):
            services.fpga_map_object(running_process, 0, buffer, 64, Direction.IN)

    def test_map_rejects_foreign_buffer(self, services, running_process):
        services.fpga_load(running_process, vector_add.bitstream())
        foreign = services.kernel.user_memory.alloc("f", 64, running_process.pid + 1)
        with pytest.raises(SyscallError):
            services.fpga_map_object(running_process, 0, foreign, 64, Direction.IN)

    def test_map_registers_with_vim(self, services, running_process):
        services.fpga_load(running_process, vector_add.bitstream())
        buffer = services.kernel.user_memory.alloc("a", 64, running_process.pid)
        services.fpga_map_object(running_process, 3, buffer, 64, Direction.IN)
        assert 3 in services.vim.objects

    def test_map_passes_optimisation_hints(self, services, running_process):
        # §3.1: "optionally (d) some flags used for optimisation".
        from repro.os.vim.objects import Hint

        services.fpga_load(running_process, vector_add.bitstream())
        buffer = services.kernel.user_memory.alloc("a", 64, running_process.pid)
        services.fpga_map_object(
            running_process, 0, buffer, 64, Direction.IN, Hint.PINNED | Hint.STREAM
        )
        mapped = services.vim.objects[0]
        assert mapped.pinned
        assert mapped.streaming


class TestFpgaExecute:
    def test_execute_sleeps_caller_and_starts_imu(self, services, running_process):
        services.fpga_load(running_process, vector_add.bitstream())
        buffer = services.kernel.user_memory.alloc("a", 64, running_process.pid)
        services.fpga_map_object(running_process, 0, buffer, 64, Direction.IN)
        services.fpga_execute(running_process, [16])
        assert running_process.state is ProcessState.SLEEPING
        assert services.vim.imu.sr.busy
        assert services.vim.imu.ports.cp_start.value == 1

    def test_execute_requires_ownership(self, services, running_process):
        with pytest.raises(SyscallError):
            services.fpga_execute(running_process, [1])

    def test_execute_sleeps_non_current_process_directly(
        self, services, running_process
    ):
        other = services.kernel.spawn("other")
        services.fpga_load(other, vector_add.bitstream())
        buffer = services.kernel.user_memory.alloc("a", 64, other.pid)
        services.fpga_map_object(other, 0, buffer, 64, Direction.IN)
        services.fpga_execute(other, [16])
        assert other.state is ProcessState.SLEEPING
