"""Tests for VIM operation with a TLB smaller than the frame count.

When the TLB cannot hold one entry per DP-RAM page, a translation can
be displaced while its page stays resident.  The VIM must then (a)
service translation-only faults without moving data, and (b) remember
the displaced entry's dirty bit (the *shadow*), or dirty data would be
lost at eviction or end-of-operation.
"""

import numpy as np

from repro.core.drivers import adpcm_workload, vector_add_workload
from repro.core.runner import run_vim
from repro.core.system import System


class TestTranslationOnlyFaults:
    def test_no_data_movement_on_tlb_only_miss(self):
        # With TLB=2 the working set (3 pages + param) stays resident
        # while translations churn: extra faults, no extra copies.
        workload = vector_add_workload(256, seed=3)  # 3 x 1KB objects
        full = run_vim(System(), workload)
        tiny = run_vim(System(), workload, tlb_capacity=2)
        tiny.verify()
        # The extra interrupts are translation-only refills, not page
        # faults: no data moves, so the fault count must not inflate.
        assert tiny.measurement.counters.tlb_refills > 0
        assert (
            tiny.measurement.counters.page_faults
            == full.measurement.counters.page_faults
        )
        # Same bytes moved: the extra faults were translation-only.
        assert (
            tiny.measurement.counters.bytes_to_dpram
            == full.measurement.counters.bytes_to_dpram
        )
        assert tiny.measurement.counters.evictions == 0

    def test_output_correct_with_minimal_tlb(self):
        # TLB of 2: param + one data translation at a time, on a
        # workload that also exceeds DP-RAM capacity (real evictions
        # interleaved with translation-only faults).
        workload = adpcm_workload(4 * 1024, seed=6)
        result = run_vim(System(), workload, tlb_capacity=2)
        result.verify()
        assert result.measurement.counters.evictions > 0

    def test_dirty_bit_survives_displacement(self):
        # The OUT object's pages get dirty, their translations get
        # displaced by the churn, and end-of-operation must still flush
        # them from the shadow — verify() would fail otherwise, so the
        # strongest assertion is simply bit-exactness plus churn.
        workload = vector_add_workload(700, seed=8)
        result = run_vim(System(), workload, tlb_capacity=3)
        result.verify()
        meas = result.measurement
        assert meas.counters.tlb_refills > 0
        assert meas.counters.evictions == 0

    def test_reinstalled_dirty_translation_comes_back_dirty(self):
        # TLB of 2 (param + one data entry) on a three-object workload:
        # every output page gets written (dirty), displaced into the
        # shadow by the next access, and reinstalled on a later
        # translation-only fault.  The reinstalled entry must carry the
        # dirty bit again — all output bytes reach user space exactly
        # once per page at end of operation.
        workload = vector_add_workload(512, seed=4)  # 2 KB per object
        result = run_vim(System(), workload, tlb_capacity=2)
        result.verify()
        meas = result.measurement
        # Churn actually happened: translation-only refills on top of
        # the compulsory loads.
        assert meas.counters.tlb_refills > 0
        # No evictions (everything stays resident), yet the dirty output
        # pages were written back at end of operation.
        assert meas.counters.evictions == 0
        assert meas.counters.writebacks > 0
        expected = workload.reference()
        np.testing.assert_array_equal(
            np.frombuffer(result.outputs[2], dtype="<u4"),
            np.frombuffer(expected[2], dtype="<u4"),
        )

    def test_sw_imu_time_grows_with_displacements(self):
        workload = adpcm_workload(2 * 1024, seed=2)
        full = run_vim(System(), workload)
        tiny = run_vim(System(), workload, tlb_capacity=2)
        assert tiny.measurement.sw_imu_ps > full.measurement.sw_imu_ps


class TestShadowConsistency:
    def test_all_policies_with_small_tlb(self):
        workload = adpcm_workload(3 * 1024, seed=4)
        totals = {}
        for policy in ("fifo", "lru", "random", "second-chance"):
            result = run_vim(System(), workload, tlb_capacity=3, policy=policy)
            result.verify()
            totals[policy] = result.total_ms
        assert len(totals) == 4

    def test_repeated_runs_deterministic(self):
        workload = vector_add_workload(500, seed=9)
        first = run_vim(System(), workload, tlb_capacity=2)
        second = run_vim(System(), workload, tlb_capacity=2)
        assert first.measurement.total_ps == second.measurement.total_ps
        assert first.outputs == second.outputs
