"""Unit tests for SoC presets and system assembly."""

import pytest

from repro.coproc.kernels import adpcm, idea
from repro.core.soc import EPXA1, EPXA4, EPXA10, PRESETS, SocConfig
from repro.core.system import System
from repro.errors import ReproError


class TestSocConfig:
    def test_epxa1_matches_paper(self):
        assert EPXA1.cpu_frequency.mhz == pytest.approx(133.0)
        assert EPXA1.dpram_bytes == 16 * 1024
        assert EPXA1.page_bytes == 2 * 1024
        assert EPXA1.num_pages == 8

    def test_family_dpram_growth(self):
        assert EPXA1.dpram_bytes < EPXA4.dpram_bytes < EPXA10.dpram_bytes

    def test_presets_registry(self):
        assert set(PRESETS) == {"EPXA1", "EPXA4", "EPXA10"}

    def test_page_size_must_divide(self):
        with pytest.raises(ReproError):
            SocConfig(name="bad", dpram_bytes=10_000, page_bytes=3_000)


class TestSystem:
    def test_assembly(self, system: System):
        assert system.dpram.num_pages == 8
        assert system.kernel.cpu_frequency == EPXA1.cpu_frequency
        assert system.fabric.resources == EPXA1.pld_resources

    def test_single_domain_construction(self, system: System):
        ticks = []
        domains = system.build_clock_domains(
            adpcm.bitstream(), lambda: ticks.append("imu"), lambda: ticks.append("core")
        )
        assert len(domains) == 1
        System.start_clocks(domains)
        system.engine.run_until(lambda: len(ticks) >= 2)
        System.stop_clocks(domains)
        # The interface must tick before the core on the shared edge.
        assert ticks[:2] == ["imu", "core"]

    def test_dual_domain_construction(self, system: System):
        domains = system.build_clock_domains(
            idea.bitstream(), lambda: None, lambda: None
        )
        assert len(domains) == 2
        iface_domain, core_domain = domains
        assert iface_domain.frequency.mhz == pytest.approx(24.0)
        assert core_domain.frequency.mhz == pytest.approx(6.0)

    def test_start_clocks_idempotent(self, system: System):
        domains = system.build_clock_domains(
            adpcm.bitstream(), lambda: None, lambda: None
        )
        System.start_clocks(domains)
        System.start_clocks(domains)  # already running: no error
        System.stop_clocks(domains)

    def test_ticks_limit_scales(self, system: System):
        assert system.fabric_ticks_limit(10_000) > system.fabric_ticks_limit(100)
