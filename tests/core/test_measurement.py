"""Unit tests for the measurement decomposition."""

import pytest

from repro.accounting import Bucket
from repro.core.measurement import Measurement
from repro.errors import ReproError


class TestCharging:
    def test_total_is_hw_plus_buckets(self):
        meas = Measurement()
        meas.add_hw(1000)
        meas.charge(Bucket.SW_DP, 200)
        meas.charge(Bucket.SW_IMU, 50)
        meas.charge(Bucket.SW_OTHER, 30)
        assert meas.total_ps == 1280

    def test_negative_charges_rejected(self):
        meas = Measurement()
        with pytest.raises(ReproError):
            meas.charge(Bucket.SW_DP, -1)
        with pytest.raises(ReproError):
            meas.add_hw(-1)

    def test_bucket_views(self):
        meas = Measurement()
        meas.charge(Bucket.SW_DP, 10)
        meas.charge(Bucket.SW_IMU, 20)
        meas.charge(Bucket.SW_OTHER, 30)
        meas.charge(Bucket.SW_APP, 40)
        assert meas.sw_dp_ps == 10
        assert meas.sw_imu_ps == 20
        assert meas.sw_other_ps == 30
        assert meas.sw_app_ps == 40

    def test_total_ms(self):
        meas = Measurement()
        meas.add_hw(3_000_000_000)
        assert meas.total_ms == pytest.approx(3.0)

    def test_fraction(self):
        meas = Measurement()
        meas.add_hw(900)
        meas.charge(Bucket.SW_IMU, 100)
        assert meas.fraction(Bucket.SW_IMU) == pytest.approx(0.1)

    def test_fraction_of_empty_measurement(self):
        assert Measurement().fraction(Bucket.SW_DP) == 0.0


class TestSpeedup:
    def test_speedup_over(self):
        fast = Measurement(name="hw")
        fast.add_hw(100)
        slow = Measurement(name="sw")
        slow.charge(Bucket.SW_APP, 1100)
        assert fast.speedup_over(slow) == pytest.approx(11.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ReproError):
            Measurement().speedup_over(Measurement())


class TestAsDict:
    def test_json_serialisable(self):
        import json

        meas = Measurement(name="run")
        meas.add_hw(1_000_000)
        meas.charge(Bucket.SW_DP, 500_000)
        meas.counters.page_faults = 2
        dump = meas.as_dict()
        text = json.dumps(dump)
        assert '"page_faults": 2' in text

    def test_components_consistent(self):
        meas = Measurement()
        meas.add_hw(2_000_000_000)
        meas.charge(Bucket.SW_IMU, 1_000_000_000)
        dump = meas.as_dict()
        assert dump["total_ms"] == pytest.approx(
            dump["hw_ms"]
            + dump["sw_dp_ms"]
            + dump["sw_imu_ms"]
            + dump["sw_other_ms"]
            + dump["sw_app_ms"]
        )


class TestSummary:
    def test_summary_mentions_nonzero_components(self):
        meas = Measurement(name="run")
        meas.add_hw(1_000_000)
        meas.charge(Bucket.SW_DP, 2_000_000)
        meas.counters.page_faults = 3
        text = meas.summary()
        assert "run" in text
        assert "hw=" in text
        assert "sw_dp=" in text
        assert "faults=3" in text
        assert "sw_imu" not in text  # zero components omitted
