"""Tests for multi-tenant execution (shared DP-RAM, scheduler arbitration).

The two load-bearing claims: the round-robin scheduler interleaves
tenants without starving anyone, and cross-tenant eviction can reorder
*time* but never *bytes* — every tenant's outputs stay byte-identical
to its solo-session run.
"""

import pytest

from repro.core.drivers import adpcm_workload, idea_workload, vector_add_workload
from repro.core.session import CoprocessorSession
from repro.core.system import System
from repro.core.tenancy import SharedInterface, run_tenants
from repro.coproc.kernels import vector_add as vadd_core
from repro.errors import OsError, ReproError, SyscallError
from repro.imu.imu import INT_PLD_LINE
from repro.os.vim.objects import Direction
from repro.os.workload import Workload


def _adpcm_tenants(count: int, repeats: int = 2, input_bytes: int = 2 * 1024):
    return [
        Workload(spec=adpcm_workload(input_bytes, seed=1 + i), repeats=repeats)
        for i in range(count)
    ]


class TestWorkload:
    def test_repeats_validated(self):
        with pytest.raises(OsError):
            Workload(spec=adpcm_workload(1024), repeats=0)

    def test_tenant_name_defaults(self):
        workload = Workload(spec=adpcm_workload(1024))
        assert workload.tenant_name(2) == "tenant2-adpcmdecode-1KB"
        named = Workload(spec=adpcm_workload(1024), name="svc")
        assert named.tenant_name(2) == "svc"


class TestSchedulerArbitration:
    def test_three_tenants_no_starvation(self):
        """Every tenant completes all repeats; dispatches stay balanced."""
        result = run_tenants(System(), _adpcm_tenants(3, repeats=2))
        assert len(result.tenants) == 3
        for tenant in result.tenants:
            assert tenant.stats.executions == 2
            assert tenant.stats.dispatches == 2
        # Round-robin: dispatch counts differ by at most one at any
        # point, so totals are exactly equal for equal repeats.
        dispatches = [t.stats.dispatches for t in result.tenants]
        assert max(dispatches) - min(dispatches) == 0

    def test_context_switch_accounting(self):
        """One dispatch per execution plus one final pick per tenant."""
        tenants = 3
        repeats = 2
        result = run_tenants(System(), _adpcm_tenants(tenants, repeats=repeats))
        assert result.context_switches == tenants * repeats + tenants

    def test_unequal_repeats_short_tenant_exits_early(self):
        workloads = [
            Workload(spec=adpcm_workload(2 * 1024, seed=1), repeats=1),
            Workload(spec=adpcm_workload(2 * 1024, seed=2), repeats=3),
        ]
        result = run_tenants(System(), workloads)
        assert [t.stats.executions for t in result.tenants] == [1, 3]
        assert [t.stats.dispatches for t in result.tenants] == [1, 3]

    def test_sleep_wake_cycle_per_execution(self):
        """FPGA_EXECUTE sleeps the caller; the interrupt re-queues it."""
        system = System()
        result = run_tenants(system, _adpcm_tenants(2, repeats=2))
        assert result.context_switches > 0
        # Processes were woken once per execution before terminating.
        for run in result.tenants:
            assert run.stats.executions == 2


class TestSharedResidency:
    def test_contended_outputs_byte_identical_to_solo_sessions(self):
        """Cross-tenant eviction never leaks into functional outputs.

        The solo side is a real single-tenant CoprocessorSession (not
        just the software reference), executed the same number of
        times.
        """
        def build(seed):
            return adpcm_workload(2 * 1024, seed=seed)

        repeats = 2
        contended = run_tenants(
            System(),
            [Workload(spec=build(1), repeats=repeats),
             Workload(spec=build(2), repeats=repeats)],
        )
        # Contention actually happened: somebody stole a page.
        assert sum(t.stats.steals for t in contended.tenants) > 0
        for seed, tenant in zip((1, 2), contended.tenants):
            spec = build(seed)
            system = System()
            with CoprocessorSession(system, spec.bitstream) as session:
                for obj in spec.objects:
                    session.map_object(
                        obj.obj_id, obj.name, obj.size, obj.direction,
                        data=obj.data,
                    )
                solo_outputs = []
                for _ in range(repeats):
                    run = session.execute(list(spec.params))
                    solo_outputs.append(dict(run.outputs))
            assert tuple(solo_outputs) == tenant.outputs

    def test_steals_and_losses_balance(self):
        result = run_tenants(System(), _adpcm_tenants(3, repeats=2))
        stolen = sum(t.stats.steals for t in result.tenants)
        lost = sum(t.stats.pages_lost for t in result.tenants)
        assert stolen == lost
        assert stolen > 0

    def test_solo_run_has_no_cross_tenant_traffic(self):
        result = run_tenants(System(), _adpcm_tenants(1, repeats=2))
        tenant = result.tenants[0]
        assert tenant.stats.steals == 0
        assert tenant.stats.pages_lost == 0

    def test_mixed_apps_share_the_window(self):
        """adpcm and IDEA tenants time-share fabric and DP-RAM."""
        system = System()
        workloads = [
            Workload(spec=adpcm_workload(2 * 1024, seed=1), repeats=2),
            Workload(spec=idea_workload(4 * 1024, seed=2), repeats=2),
        ]
        result = run_tenants(system, workloads)
        # Different bitstreams: the fabric is reconfigured on every
        # turn handoff.
        for tenant in result.tenants:
            assert tenant.stats.reconfigurations == 2

    def test_same_bitstream_keeps_fabric_warm_in_between(self):
        """A tenant running back-to-back turns does not reconfigure."""
        result = run_tenants(System(), _adpcm_tenants(1, repeats=3))
        assert result.tenants[0].stats.reconfigurations == 1

    def test_small_dpram_contention(self, small_soc):
        """Tenants survive on a 4-frame DP-RAM (param page contended)."""
        system = System(small_soc)
        workloads = [
            Workload(spec=vector_add_workload(96, seed=1 + i), repeats=2)
            for i in range(2)
        ]
        result = run_tenants(system, workloads)
        assert all(t.stats.executions == 2 for t in result.tenants)


class TestLifecycle:
    def test_everything_released_after_run(self):
        system = System()
        run_tenants(system, _adpcm_tenants(2))
        assert system.fabric.owner_pid is None
        assert system.kernel.user_memory.allocated == 0
        # The interrupt line is free for a follow-on solo session.
        system.interrupts.register(INT_PLD_LINE, lambda line: None)
        system.interrupts.unregister(INT_PLD_LINE)

    def test_shared_interface_close_idempotent(self):
        system = System()
        shared = SharedInterface(system)
        shared.close()
        shared.close()

    def test_empty_workload_list_rejected(self):
        with pytest.raises(ReproError):
            run_tenants(System(), [])

    def test_object_id_beyond_cp_obj_wire_rejected(self):
        """Ids outside the 8-bit CP_OBJ range would alias ASID tags."""
        system = System()
        shared = SharedInterface(system)
        session = CoprocessorSession(
            system, vadd_core.bitstream(), shared=shared
        )
        try:
            with pytest.raises(SyscallError):
                session.map_object(
                    256, "A", 32, Direction.IN, data=bytes(32)
                )
        finally:
            session.close()
            shared.close()

    def test_solo_session_object_id_range_still_enforced(self):
        with CoprocessorSession(System(), vadd_core.bitstream()) as session:
            with pytest.raises(SyscallError):
                session.map_input(300, "A", bytes(32))

    def test_tenant_lookup_by_name(self):
        result = run_tenants(System(), _adpcm_tenants(2))
        assert result.tenant(result.tenants[1].name) is result.tenants[1]
        with pytest.raises(ReproError):
            result.tenant("nonexistent")
