"""Integration tests: rogue cores, fabric contention, system reuse.

A virtualisation layer is only as good as its behaviour when the
hardware misbehaves: a coprocessor that touches an unmapped object or
strays past its dataset must produce a clean, attributable error in
the VIM — never silent corruption.
"""

import pytest

from repro.coproc.base import Behavior, Coprocessor
from repro.coproc.bitstream import Bitstream
from repro.core.drivers import vector_add_workload
from repro.core.runner import ObjectSpec, WorkloadSpec, run_vim
from repro.core.session import CoprocessorSession
from repro.core.system import System
from repro.coproc.kernels import vector_add as vadd_core
from repro.errors import VimError
from repro.hw.fpga import PldResources
from repro.os.vim.objects import Direction
from repro.sim.time import mhz


def rogue_workload(core_factory, size: int = 64) -> WorkloadSpec:
    """A one-object workload around a custom (mis)behaving core."""
    return WorkloadSpec(
        name="rogue",
        bitstream=Bitstream(
            name="rogue",
            core_factory=core_factory,
            core_frequency=mhz(40.0),
            resources=PldResources(100, 0),
        ),
        objects=(
            ObjectSpec(0, "data", Direction.IN, size, bytes(size)),
        ),
        params=(size,),
        sw_cycles=100,
        reference=dict,
    )


class UnmappedObjectCore(Coprocessor):
    """Reads from an object id the software never mapped."""

    name = "unmapped-access"

    def behavior(self) -> Behavior:
        yield from self.read(9, 0)


class OutOfBoundsCore(Coprocessor):
    """Reads far past the end of its mapped object."""

    name = "oob-access"

    def behavior(self) -> Behavior:
        yield from self.read(0, 1 << 20)


class TestRogueCores:
    def test_unmapped_object_raises_attributable_error(self):
        with pytest.raises(VimError, match="unmapped object 9"):
            run_vim(System(), rogue_workload(UnmappedObjectCore))

    def test_out_of_bounds_access_raises(self):
        with pytest.raises(VimError, match="beyond object 0"):
            run_vim(System(), rogue_workload(OutOfBoundsCore))

    def test_system_usable_after_rogue_run(self):
        # The runner's cleanup path must release the fabric and the
        # interrupt line even when the VIM aborts the execution.
        system = System()
        with pytest.raises(VimError):
            run_vim(system, rogue_workload(UnmappedObjectCore))
        good = run_vim(system, vector_add_workload(16, seed=1))
        good.verify()


class TestFabricContention:
    def test_sequential_sessions_share_system(self):
        system = System()
        for _ in range(3):
            with CoprocessorSession(system, vadd_core.bitstream()) as session:
                session.map_input(0, "A", bytes(16))
                session.map_input(1, "B", bytes(16))
                session.map_output(2, "C", 16)
                session.execute([4])
        assert system.fabric.owner_pid is None
        assert system.fabric.configurations == 3

    def test_simulated_time_is_monotonic_across_runs(self):
        system = System()
        stamps = []
        for seed in (1, 2):
            run_vim(system, vector_add_workload(16, seed=seed))
            stamps.append(system.engine.now)
        assert stamps[1] > stamps[0]


class TestMeasurementIsolation:
    def test_back_to_back_runs_identical_measurements(self):
        # Same workload on fresh systems vs a reused system: the
        # per-run measurement must not leak between runs.
        workload = vector_add_workload(128, seed=5)
        fresh = run_vim(System(), workload).measurement
        reused_system = System()
        run_vim(reused_system, workload)
        second = run_vim(reused_system, workload).measurement
        assert second.total_ps == fresh.total_ps
        assert second.counters.page_faults == fresh.counters.page_faults
