"""Tests for the CLI (driven in-process via cli.main)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("fig7", "fig8", "fig9", "overheads", "ablations",
                        "portability", "run", "sweep"):
            assert command in text


class TestCommands:
    def test_fig7_prints_waveform(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "cp_tlbhit" in out
        assert "edge 4" in out

    def test_fig7_pipelined(self, capsys):
        assert main(["fig7", "--pipelined"]) == 0
        assert "edge 2" in capsys.readouterr().out

    def test_fig8_custom_sizes(self, capsys):
        assert main(["fig8", "--kb", "2"]) == 0
        out = capsys.readouterr().out
        assert "adpcm-2KB" in out
        assert "legend:" in out  # stacked chart rendered

    def test_fig9_capacity_marker(self, capsys):
        assert main(["fig9", "--kb", "16"]) == 0
        assert "exceeds memory" in capsys.readouterr().out

    def test_ablation_single(self, capsys):
        assert main(["ablations", "tlb"]) == 0
        out = capsys.readouterr().out
        assert "ablation: tlb" in out
        assert "tlb-2" in out

    def test_ablation_invalid_name(self):
        with pytest.raises(SystemExit):
            main(["ablations", "nonsense"])

    def test_run_vadd(self, capsys):
        assert main(["run", "vadd", "--kb", "1"]) == 0
        out = capsys.readouterr().out
        assert "software" in out
        assert "VIM" in out

    def test_run_idea_large_reports_capacity(self, capsys):
        assert main(["run", "idea", "--kb", "16"]) == 0
        assert "unavailable" in capsys.readouterr().out


class TestSweep:
    def test_sweep_grid_row_per_cell(self, capsys):
        assert main(["sweep", "--app", "vadd", "--kb", "1",
                     "--policy", "fifo", "lru"]) == 0
        out = capsys.readouterr().out
        assert "2 cells: 2 simulated, 0 from cache" in out
        assert "vadd-1KB/lru" in out

    def test_sweep_cache_makes_rerun_incremental(self, capsys, tmp_path):
        args = ["sweep", "--app", "vadd", "--kb", "1",
                "--cache", str(tmp_path / "cache")]
        assert main(args) == 0
        assert "1 simulated, 0 from cache" in capsys.readouterr().out
        assert main(args) == 0
        assert "0 simulated, 1 from cache" in capsys.readouterr().out

    def test_sweep_json_dump(self, capsys, tmp_path):
        import json

        path = tmp_path / "rows.json"
        assert main(["sweep", "--app", "vadd", "--kb", "1",
                     "--json", str(path)]) == 0
        rows = json.loads(path.read_text())
        assert len(rows) == 1
        assert rows[0]["config"]["app"] == "vadd"

    def test_sweep_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--app", "doom"])

    def test_sweep_rejects_unknown_soc(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--soc", "EPXA99"])
