"""Tests for the CLI (driven in-process via cli.main)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("fig7", "fig8", "fig9", "overheads", "ablations",
                        "portability", "run", "sweep", "serve", "worker",
                        "submit", "merge", "migrate", "history", "diff"):
            assert command in text


class TestCommands:
    def test_fig7_prints_waveform(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "cp_tlbhit" in out
        assert "edge 4" in out

    def test_fig7_pipelined(self, capsys):
        assert main(["fig7", "--pipelined"]) == 0
        assert "edge 2" in capsys.readouterr().out

    def test_fig8_custom_sizes(self, capsys):
        assert main(["fig8", "--kb", "2"]) == 0
        out = capsys.readouterr().out
        assert "adpcm-2KB" in out
        assert "legend:" in out  # stacked chart rendered

    def test_fig9_capacity_marker(self, capsys):
        assert main(["fig9", "--kb", "16"]) == 0
        assert "exceeds memory" in capsys.readouterr().out

    def test_ablation_single(self, capsys):
        assert main(["ablations", "tlb"]) == 0
        out = capsys.readouterr().out
        assert "ablation: tlb" in out
        assert "tlb-2" in out

    def test_ablation_invalid_name(self):
        with pytest.raises(SystemExit):
            main(["ablations", "nonsense"])

    def test_run_vadd(self, capsys):
        assert main(["run", "vadd", "--kb", "1"]) == 0
        out = capsys.readouterr().out
        assert "software" in out
        assert "VIM" in out

    def test_run_idea_large_reports_capacity(self, capsys):
        assert main(["run", "idea", "--kb", "16"]) == 0
        assert "unavailable" in capsys.readouterr().out


class TestSweep:
    def test_sweep_grid_row_per_cell(self, capsys):
        assert main(["sweep", "--app", "vadd", "--kb", "1",
                     "--policy", "fifo", "lru"]) == 0
        out = capsys.readouterr().out
        assert "2 cells: 2 simulated, 0 from cache" in out
        assert "vadd-1KB/lru" in out

    def test_sweep_cache_makes_rerun_incremental(self, capsys, tmp_path):
        args = ["sweep", "--app", "vadd", "--kb", "1",
                "--cache", str(tmp_path / "cache")]
        assert main(args) == 0
        assert "1 simulated, 0 from cache" in capsys.readouterr().out
        assert main(args) == 0
        assert "0 simulated, 1 from cache" in capsys.readouterr().out

    def test_sweep_json_dump(self, capsys, tmp_path):
        import json

        path = tmp_path / "rows.json"
        assert main(["sweep", "--app", "vadd", "--kb", "1",
                     "--json", str(path)]) == 0
        rows = json.loads(path.read_text())
        assert len(rows) == 1
        assert rows[0]["config"]["app"] == "vadd"

    def test_sweep_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--app", "doom"])

    def test_sweep_rejects_unknown_soc(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--soc", "EPXA99"])

    def test_sweep_json_refuses_overwrite_without_force(self, capsys, tmp_path):
        path = tmp_path / "rows.json"
        path.write_text("[]", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["sweep", "--app", "vadd", "--kb", "1", "--json", str(path)])
        assert path.read_text(encoding="utf-8") == "[]"  # untouched

    def test_sweep_json_missing_parent_dir_refused_up_front(
        self, tmp_path, monkeypatch
    ):
        import repro.cli as cli

        monkeypatch.setattr(
            cli.exp, "run_sweep",
            lambda *a, **k: pytest.fail("sweep ran despite doomed --json"),
        )
        with pytest.raises(SystemExit):
            main(["sweep", "--app", "vadd", "--kb", "1",
                  "--json", str(tmp_path / "missing" / "rows.json")])

    def test_sweep_json_directory_target_refused_even_with_force(
        self, tmp_path
    ):
        target = tmp_path / "results"
        target.mkdir()
        for extra in ([], ["--force"]):
            with pytest.raises(SystemExit):
                main(["sweep", "--app", "vadd", "--kb", "1",
                      "--json", str(target), *extra])

    def test_sweep_json_force_overwrites(self, capsys, tmp_path):
        import json

        path = tmp_path / "rows.json"
        path.write_text("[]", encoding="utf-8")
        assert main(["sweep", "--app", "vadd", "--kb", "1",
                     "--json", str(path), "--force"]) == 0
        assert len(json.loads(path.read_text(encoding="utf-8"))) == 1


class TestShardMergeReport:
    GRID = ["--app", "vadd", "--kb", "1", "--policy", "fifo", "lru"]

    def test_shard_runs_a_subset(self, capsys):
        assert main(["sweep", *self.GRID, "--shard", "1/2"]) == 0
        out = capsys.readouterr().out
        assert "shard 1/2: 1 of 2 unique cells" in out
        assert "1 cells: 1 simulated" in out

    def test_shard_bad_syntax_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", *self.GRID, "--shard", "1of2"])

    def test_shard_out_of_range_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", *self.GRID, "--shard", "3/2"])

    def test_shard_merge_report_round_trip(self, capsys, tmp_path):
        for index in (1, 2):
            assert main(["sweep", *self.GRID, "--shard", f"{index}/2",
                         "--cache", str(tmp_path / f"shard{index}")]) == 0
        capsys.readouterr()
        assert main(["merge", str(tmp_path / "merged"),
                     str(tmp_path / "shard1"), str(tmp_path / "shard2")]) == 0
        assert "2 written" in capsys.readouterr().out
        # The merged cache serves the whole grid without simulating.
        assert main(["sweep", *self.GRID,
                     "--cache", str(tmp_path / "merged")]) == 0
        assert "0 simulated, 2 from cache" in capsys.readouterr().out
        # And --report renders from it, no simulation at all.
        assert main(["sweep", "--report", "--cache", str(tmp_path / "merged"),
                     "--format", "md"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("| cell |")
        assert "vadd-1KB/lru" in out

    def test_report_requires_cache(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--report"])

    def test_report_warns_about_skipped_entries_on_stderr(self, capsys,
                                                          tmp_path):
        import json

        cache = tmp_path / "cache"
        assert main(["sweep", *self.GRID, "--cache", str(cache)]) == 0
        entry = next(cache.glob("*.json"))
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["version"] = 999  # a stale-version entry
        entry.write_text(json.dumps(payload), encoding="utf-8")
        capsys.readouterr()
        assert main(["sweep", "--report", "--cache", str(cache)]) == 0
        captured = capsys.readouterr()
        # The warning goes to stderr; stdout stays the pure report.
        assert "skipped 1 stale/invalid cache entry" in captured.err
        assert "warning" not in captured.out
        assert captured.out.startswith("| cell |")

    def test_report_group_by_and_format(self, capsys, tmp_path):
        assert main(["sweep", *self.GRID,
                     "--cache", str(tmp_path / "cache")]) == 0
        capsys.readouterr()
        assert main(["sweep", "--report", "--cache", str(tmp_path / "cache"),
                     "--group-by", "policy", "--format", "ascii"]) == 0
        out = capsys.readouterr().out
        assert "== policy=fifo ==" in out
        assert "== policy=lru ==" in out

    def test_report_rejects_unknown_axis(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "--report", "--cache", str(tmp_path),
                  "--group-by", "colour"])

    def test_report_only_flags_rejected_without_report(self):
        # --group-by/--format shape --report output; a sweep run that
        # silently ignored them would mislead just like the mirror case.
        with pytest.raises(SystemExit):
            main(["sweep", *self.GRID, "--format", "csv"])
        with pytest.raises(SystemExit):
            main(["sweep", *self.GRID, "--group-by", "policy"])
        with pytest.raises(SystemExit):  # explicit default value too
            main(["sweep", *self.GRID, "--format", "md"])
        with pytest.raises(SystemExit):  # --force pairs with --json only
            main(["sweep", *self.GRID, "--force"])

    def test_preset_rejects_axis_flags(self):
        # The preset IS the grid; axis flags it would override must
        # fail loudly instead of running a different grid.
        with pytest.raises(SystemExit):
            main(["sweep", "--preset", "contention", "--app", "idea"])
        with pytest.raises(SystemExit):  # explicit default value too
            main(["sweep", "--preset", "contention", "--app", "adpcm"])

    def test_report_rejects_grid_selection_flags(self, capsys, tmp_path):
        # Axis flags have no effect under --report; silently reporting
        # the whole cache under an "--app adpcm" heading would mislead.
        assert main(["sweep", *self.GRID,
                     "--cache", str(tmp_path / "cache")]) == 0
        with pytest.raises(SystemExit):
            main(["sweep", "--report", "--cache", str(tmp_path / "cache"),
                  "--app", "idea"])
        with pytest.raises(SystemExit):
            main(["sweep", "--report", "--cache", str(tmp_path / "cache"),
                  "--shard", "1/2"])
        # A grid flag explicitly spelled with its default value is just
        # as misleading ("adpcm results") and must be caught too.
        with pytest.raises(SystemExit):
            main(["sweep", "--report", "--cache", str(tmp_path / "cache"),
                  "--app", "adpcm"])
        # And prefix abbreviations must not slip past the guard:
        # allow_abbrev is off, so --ap is rejected by argparse itself.
        with pytest.raises(SystemExit):
            main(["sweep", "--report", "--cache", str(tmp_path / "cache"),
                  "--ap", "adpcm"])

    def test_json_overwrite_refused_before_simulating(self, tmp_path,
                                                      monkeypatch):
        # The refusal must fire *before* the sweep runs, not after.
        import repro.cli as cli

        path = tmp_path / "rows.json"
        path.write_text("[]", encoding="utf-8")
        monkeypatch.setattr(
            cli.exp, "run_sweep",
            lambda *a, **k: pytest.fail("sweep ran despite doomed --json"),
        )
        with pytest.raises(SystemExit):
            main(["sweep", "--app", "vadd", "--kb", "1", "--json", str(path)])

    def test_merge_conflict_exits_nonzero(self, capsys, tmp_path):
        import json

        assert main(["sweep", *self.GRID,
                     "--cache", str(tmp_path / "a")]) == 0
        assert main(["sweep", *self.GRID,
                     "--cache", str(tmp_path / "b")]) == 0
        entry = next((tmp_path / "b").glob("*.json"))
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["result"]["vim_ms"] += 1.0
        entry.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["merge", str(tmp_path / "merged"),
                  str(tmp_path / "a"), str(tmp_path / "b")])

    def test_report_baseline_annotates_cells(self, capsys, tmp_path):
        import json

        assert main(["sweep", *self.GRID,
                     "--cache", str(tmp_path / "base")]) == 0
        assert main(["sweep", *self.GRID,
                     "--cache", str(tmp_path / "cur")]) == 0
        entry = next((tmp_path / "cur").glob("*.json"))
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["result"]["vim_ms"] *= 2.0
        entry.write_text(
            json.dumps(payload, sort_keys=True, indent=1), encoding="utf-8"
        )
        capsys.readouterr()
        assert main(["sweep", "--report", "--cache", str(tmp_path / "cur"),
                     "--baseline", str(tmp_path / "base")]) == 0
        out = capsys.readouterr().out
        assert "+100.0%)" in out   # the doubled cell
        assert "(=)" in out        # the untouched cells

    def test_baseline_rejected_without_report(self, tmp_path):
        # --baseline shapes --report output only; a sweep run that
        # silently ignored it would mislead like --group-by would.
        with pytest.raises(SystemExit):
            main(["sweep", *self.GRID, "--baseline", str(tmp_path)])


class TestDiffCLI:
    GRID = ["--app", "vadd", "--kb", "1", "--policy", "fifo", "lru"]

    def _two_caches(self, tmp_path):
        for name in ("a", "b"):
            assert main(["sweep", *self.GRID,
                         "--cache", str(tmp_path / name)]) == 0
        return tmp_path / "a", tmp_path / "b"

    @staticmethod
    def _worsen(cache, factor=1.5):
        import json

        entry = sorted(cache.glob("*.json"))[0]
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["result"]["vim_ms"] *= factor
        entry.write_text(json.dumps(payload), encoding="utf-8")

    def test_identical_caches_all_zero_table_exit_0(self, capsys, tmp_path):
        a, b = self._two_caches(tmp_path)
        capsys.readouterr()
        assert main(["diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "0 changed, 0 regression(s)" in out
        assert "REGRESSION" not in out

    def test_regression_exits_1(self, capsys, tmp_path):
        a, b = self._two_caches(tmp_path)
        self._worsen(b)
        capsys.readouterr()
        assert main(["diff", str(a), str(b)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_improvement_exits_0(self, capsys, tmp_path):
        a, b = self._two_caches(tmp_path)
        self._worsen(a)  # baseline slower -> current is an improvement
        capsys.readouterr()
        assert main(["diff", str(a), str(b), "--metric", "vim_ms"]) == 0
        assert "changed" in capsys.readouterr().out

    def test_rtol_silences_small_regressions(self, capsys, tmp_path):
        a, b = self._two_caches(tmp_path)
        self._worsen(b, factor=1.05)
        capsys.readouterr()
        assert main(["diff", str(a), str(b)]) == 1
        assert main(["diff", str(a), str(b), "--rtol", "0.1"]) == 0

    def test_md_format(self, capsys, tmp_path):
        a, b = self._two_caches(tmp_path)
        capsys.readouterr()
        assert main(["diff", str(a), str(b), "--format", "md"]) == 0
        assert capsys.readouterr().out.startswith("| cell |")

    def test_missing_side_exits_2(self, tmp_path):
        a, _ = self._two_caches(tmp_path)
        with pytest.raises(SystemExit) as excinfo:
            main(["diff", str(a), str(tmp_path / "absent")])
        assert excinfo.value.code == 2

    def test_unknown_metric_rejected(self, tmp_path):
        a, b = self._two_caches(tmp_path)
        with pytest.raises(SystemExit):
            main(["diff", str(a), str(b), "--metric", "warp_factor"])


class TestStoreCli:
    """The store-layer CLI surface: --store, migrate, history, dry-run."""

    GRID = ["--app", "vadd", "--kb", "1", "--policy", "fifo", "lru"]

    def test_sqlite_cache_round_trip(self, capsys, tmp_path):
        store = tmp_path / "results.sqlite"
        assert main(["sweep", *self.GRID, "--cache", str(store)]) == 0
        assert "2 simulated, 0 from cache" in capsys.readouterr().out
        assert main(["sweep", *self.GRID, "--cache", str(store)]) == 0
        assert "0 simulated, 2 from cache" in capsys.readouterr().out

    def test_store_flag_forces_backend(self, capsys, tmp_path):
        store = tmp_path / "oddly-named"
        assert main(["sweep", *self.GRID, "--cache", str(store),
                     "--store", "sqlite"]) == 0
        assert store.is_file()  # sqlite file despite the dir-like name

    def test_store_flag_requires_cache(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", *self.GRID, "--store", "sqlite"])
        assert excinfo.value.code == 2
        assert "pass --cache" in capsys.readouterr().err

    def test_store_flag_rejected_under_report(self, capsys, tmp_path):
        store = tmp_path / "results.sqlite"
        assert main(["sweep", *self.GRID, "--cache", str(store)]) == 0
        with pytest.raises(SystemExit):
            main(["sweep", "--report", "--cache", str(store),
                  "--store", "sqlite"])

    def test_report_byte_identical_across_backends(self, capsys, tmp_path):
        json_cache = tmp_path / "cache"
        sqlite_store = tmp_path / "results.sqlite"
        assert main(["sweep", *self.GRID, "--cache", str(json_cache)]) == 0
        capsys.readouterr()
        assert main(["migrate", str(json_cache), str(sqlite_store)]) == 0
        assert "2 written" in capsys.readouterr().out
        for fmt in ("md", "ascii", "csv"):
            outputs = []
            for path in (json_cache, sqlite_store):
                assert main(["sweep", "--report", "--cache", str(path),
                             "--format", fmt]) == 0
                outputs.append(capsys.readouterr().out)
            assert outputs[0] == outputs[1]

    def test_migrate_round_trip_restores_files(self, capsys, tmp_path):
        json_cache = tmp_path / "cache"
        assert main(["sweep", *self.GRID, "--cache", str(json_cache)]) == 0
        assert main(["migrate", str(json_cache),
                     str(tmp_path / "hop.sqlite")]) == 0
        assert main(["migrate", str(tmp_path / "hop.sqlite"),
                     str(tmp_path / "back")]) == 0
        original = {p.name: p.read_bytes() for p in json_cache.glob("*.json")}
        restored = {
            p.name: p.read_bytes()
            for p in (tmp_path / "back").glob("*.json")
        }
        assert original == restored

    def test_merge_dry_run_writes_nothing(self, capsys, tmp_path):
        source = tmp_path / "cache"
        assert main(["sweep", *self.GRID, "--cache", str(source)]) == 0
        capsys.readouterr()
        dest = tmp_path / "merged"
        assert main(["merge", "--dry-run", str(dest), str(source)]) == 0
        out = capsys.readouterr().out
        assert "dry-run: would merge" in out
        assert "2 written" in out
        assert not dest.exists()

    def test_merge_dry_run_reports_conflicts_exit_1(self, capsys, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        for name in (a, b):
            assert main(["sweep", *self.GRID, "--cache", str(name)]) == 0
        TestDiffCLI._worsen(b)
        capsys.readouterr()
        dest = tmp_path / "merged"
        assert main(["merge", "--dry-run", str(dest), str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "1 conflict(s)" in out
        assert "conflicting results for config" in out
        assert not dest.exists()

    def test_diff_group_by_aggregates_per_axis(self, capsys, tmp_path):
        a = tmp_path / "a.sqlite"
        b = tmp_path / "b.sqlite"
        for name in (a, b):
            assert main(["sweep", *self.GRID, "--cache", str(name)]) == 0
        capsys.readouterr()
        assert main(["diff", str(a), str(b), "--group-by", "policy"]) == 0
        out = capsys.readouterr().out
        assert "policy" in out.splitlines()[0]
        assert "fifo" in out and "lru" in out
        assert "vadd-1KB" not in out  # aggregated, not per-cell

    def test_diff_streams_sqlite_same_as_json(self, capsys, tmp_path):
        json_a = tmp_path / "a"
        json_b = tmp_path / "b"
        for name in (json_a, json_b):
            assert main(["sweep", *self.GRID, "--cache", str(name)]) == 0
        assert main(["migrate", str(json_a),
                     str(tmp_path / "a.sqlite")]) == 0
        assert main(["migrate", str(json_b),
                     str(tmp_path / "b.sqlite")]) == 0
        capsys.readouterr()
        assert main(["diff", str(json_a), str(json_b)]) == 0
        from_json = capsys.readouterr().out
        assert main(["diff", str(tmp_path / "a.sqlite"),
                     str(tmp_path / "b.sqlite")]) == 0
        assert capsys.readouterr().out == from_json

    def test_history_renders_per_run_series(self, capsys, tmp_path):
        store = tmp_path / "results.sqlite"
        assert main(["sweep", *self.GRID, "--cache", str(store)]) == 0
        assert main(["sweep", "--app", "vadd", "--kb", "2",
                     "--cache", str(store)]) == 0
        capsys.readouterr()
        assert main(["history", "vim_ms", str(store)]) == 0
        out = capsys.readouterr().out
        assert "vim_ms across 2 run(s)" in out
        assert "vadd-1KB" in out and "vadd-2KB" in out
        assert out.count("\n") >= 5  # title + table of two run rows

    def test_history_cells_filter_and_last(self, capsys, tmp_path):
        store = tmp_path / "results.sqlite"
        assert main(["sweep", *self.GRID, "--cache", str(store)]) == 0
        capsys.readouterr()
        assert main(["history", "vim_ms", str(store),
                     "--cells", "lru", "--last", "1"]) == 0
        out = capsys.readouterr().out
        assert "vadd-1KB/lru" in out
        assert "vadd-1KB  " not in out  # the fifo cell is filtered out

    def test_history_on_json_cache_points_at_migrate(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert main(["sweep", *self.GRID, "--cache", str(cache)]) == 0
        with pytest.raises(SystemExit) as excinfo:
            main(["history", "vim_ms", str(cache)])
        assert excinfo.value.code == 2
        assert "repro migrate" in capsys.readouterr().err

    def test_history_missing_store_exits_2(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["history", "vim_ms", str(tmp_path / "absent.sqlite")])
        assert excinfo.value.code == 2
        assert "does not exist" in capsys.readouterr().err
