"""End-to-end tests of the DMA transfer mode.

The contract: ``TransferMode.DMA`` changes *when and who* moves pages
(descriptors draining on the AHB instead of serial CPU copies) but
never *what* arrives — outputs stay byte-identical to the CPU-copy
modes and to pure software, solo and under multi-tenant contention.
"""

import pytest

from repro.core.drivers import adpcm_workload, idea_workload, vector_add_workload
from repro.core.runner import run_vim
from repro.core.session import CoprocessorSession
from repro.core.system import System
from repro.core.tenancy import run_tenants
from repro.exp.cell import build_tenant_workloads
from repro.exp.spec import CellConfig
from repro.hw.dma import INT_DMA_LINE
from repro.imu.imu import INT_PLD_LINE
from repro.os.vim.manager import TransferMode
from repro.os.workload import Workload


class TestSoloEquivalence:
    @pytest.mark.parametrize("builder", [
        lambda: adpcm_workload(8 * 1024, seed=3),
        lambda: idea_workload(8 * 1024, seed=4),
        lambda: vector_add_workload(900, seed=5),
    ])
    def test_dma_outputs_match_double(self, builder):
        double = run_vim(System(), builder())
        dma = run_vim(System(), builder(), transfer_mode=TransferMode.DMA)
        dma.verify()
        assert dma.outputs == double.outputs

    def test_dma_cuts_dp_management_time(self):
        workload = adpcm_workload(8 * 1024, seed=3)
        single = run_vim(
            System(), workload, transfer_mode=TransferMode.SINGLE
        )
        dma = run_vim(System(), workload, transfer_mode=TransferMode.DMA)
        assert dma.measurement.sw_dp_ps < single.measurement.sw_dp_ps
        assert dma.measurement.hw_ps == single.measurement.hw_ps
        assert dma.measurement.counters.dma_transfers > 0

    def test_fault_sequence_unchanged(self):
        workload = adpcm_workload(8 * 1024, seed=3)
        double = run_vim(System(), workload)
        dma = run_vim(System(), workload, transfer_mode=TransferMode.DMA)
        for name in ("page_faults", "evictions", "writebacks",
                     "bytes_to_dpram", "bytes_from_dpram"):
            assert getattr(dma.measurement.counters, name) == getattr(
                double.measurement.counters, name
            ), name


class TestCompletionOrdering:
    """Completion-interrupt ordering vs end-of-operation: the flush is
    double-buffered, so its descriptors are still draining when the
    done service has already woken the caller."""

    def _session(self, system, workload):
        session = CoprocessorSession(
            system,
            workload.bitstream,
            transfer_mode=TransferMode.DMA,
            process_name=workload.name,
        )
        for spec in workload.objects:
            session.map_object(
                spec.obj_id, spec.name, spec.size, spec.direction,
                data=spec.data,
            )
        return session

    def test_flush_drains_after_end_of_operation(self):
        system = System()
        workload = vector_add_workload(900, seed=5)  # dirty OUT pages
        with self._session(system, workload) as session:
            result = session.execute(list(workload.params))
            # execute() returned at end of operation; the flush burst
            # is still on the queue — the double-buffer window.
            assert system.dma.wait_ps() > 0
            # The bytes already landed (moved at submit), so the
            # outputs are complete despite the draining descriptors.
            expected = workload.reference()
            for spec in workload.output_specs():
                assert result.outputs[spec.obj_id] == expected[spec.obj_id]
            # The done interrupt came first; the DMA completion fires
            # strictly after it, once the queue drains.
            assert system.interrupts.raised_count[INT_PLD_LINE] > 0
            assert not system.interrupts.is_pending(INT_DMA_LINE)
            system.engine.advance(system.dma.wait_ps())
            assert system.interrupts.is_pending(INT_DMA_LINE)

    def test_next_execution_services_the_completion(self):
        system = System()
        workload = vector_add_workload(900, seed=5)
        with self._session(system, workload) as session:
            first = session.execute(list(workload.params))
            irqs_before = system.interrupts.raised_count[INT_DMA_LINE]
            second = session.execute(list(workload.params))
            assert second.outputs == first.outputs
            assert system.interrupts.raised_count[INT_DMA_LINE] > irqs_before
            # Serviced, not leaked: the line is clear again.
            assert not system.interrupts.is_pending(INT_DMA_LINE)

    def test_close_clears_a_pending_completion(self):
        system = System()
        workload = vector_add_workload(900, seed=5)
        session = self._session(system, workload)
        session.execute(list(workload.params))
        session.close()
        system.engine.drain()
        assert not system.interrupts.is_pending(INT_DMA_LINE)


class TestAhbContention:
    def test_cpu_copy_stalls_behind_draining_flush(self):
        # Back-to-back executions in DMA mode: the first execution's
        # end-of-operation flush is still draining when the next
        # FPGA_EXECUTE writes the parameter page — a CPU copy that must
        # pay the arbitration stall.  (Between *different* tenants the
        # fabric reconfiguration time absorbs the drain; it is the
        # repeat path that exposes the contention.)
        system = System()
        config = CellConfig(
            app="vadd", input_bytes=4096, tenants=1, tenant_repeats=2,
            transfer="dma",
        )
        run_tenants(
            system,
            build_tenant_workloads(config),
            transfer_mode=TransferMode.DMA,
        )
        assert system.bus.contention_stalls > 0
        assert system.bus.contention_ps > 0

    def test_solo_single_mode_never_stalls(self):
        system = System()
        run_vim(system, adpcm_workload(4 * 1024, seed=2),
                transfer_mode=TransferMode.SINGLE)
        assert system.bus.contention_stalls == 0


class TestContentionGridEquivalence:
    """`repro sweep --preset contention` cells: DMA outputs must be
    byte-identical to double-transfer outputs, tenant by tenant,
    execution by execution."""

    @pytest.mark.parametrize("tenants,mix", [
        (1, "same"),
        (2, "same"),
        (2, "adpcm+idea"),
        (3, "same"),
        (3, "adpcm+idea"),
    ])
    def test_dma_outputs_identical_to_double(self, tenants, mix):
        def outputs_for(mode):
            config = CellConfig(
                app="adpcm", input_bytes=4 * 1024, tenants=tenants,
                tenant_mix=mix, tenant_repeats=2,
                transfer=mode.name.lower(),
            )
            result = run_tenants(
                System(),
                build_tenant_workloads(config),
                transfer_mode=mode,
            )
            return [t.outputs for t in result.tenants]

        assert outputs_for(TransferMode.DMA) == outputs_for(
            TransferMode.DOUBLE
        )
