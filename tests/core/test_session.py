"""Tests for coprocessor sessions (repeated FPGA_EXECUTE, §3.3)."""

import numpy as np
import pytest

from repro.apps import adpcm, workloads
from repro.coproc.kernels import adpcm as adpcm_core
from repro.coproc.kernels import vector_add as vadd_core
from repro.core.session import CoprocessorSession
from repro.core.system import System
from repro.errors import FpgaError, VimError
from repro.os.vim.objects import Hint


def vadd_session(system=None):
    return CoprocessorSession(system or System(), vadd_core.bitstream())


class TestLifecycle:
    def test_load_happens_once(self):
        system = System()
        with vadd_session(system) as session:
            a = workloads.random_words(8, seed=1)
            b = workloads.random_words(8, seed=2)
            session.map_input(0, "A", a.astype("<u4").tobytes())
            session.map_input(1, "B", b.astype("<u4").tobytes())
            session.map_output(2, "C", 32)
            for _ in range(3):
                session.execute([8])
        assert system.fabric.configurations == 1
        assert session.executions == 3

    def test_close_releases_everything(self):
        system = System()
        session = vadd_session(system)
        session.map_input(0, "A", bytes(32))
        session.close()
        assert system.fabric.owner_pid is None
        assert system.kernel.user_memory.allocated == 0
        # Idempotent.
        session.close()

    def test_closed_session_rejects_use(self):
        session = vadd_session()
        session.close()
        with pytest.raises(VimError):
            session.map_input(0, "A", bytes(4))
        with pytest.raises(VimError):
            session.execute([1])

    def test_exclusive_fabric_across_sessions(self):
        system = System()
        first = vadd_session(system)
        with pytest.raises(FpgaError):
            CoprocessorSession(system, adpcm_core.bitstream())
        first.close()


class TestRepeatedExecution:
    def test_results_independent_per_execute(self):
        with vadd_session() as session:
            a_buf = session.map_input(0, "A", bytes(32))
            b_buf = session.map_input(1, "B", bytes(32))
            session.map_output(2, "C", 32)
            for seed in (3, 4):
                a = workloads.random_words(8, seed=seed)
                b = workloads.random_words(8, seed=seed + 100)
                a_buf.fill_from(a.astype("<u4").tobytes())
                b_buf.fill_from(b.astype("<u4").tobytes())
                result = session.execute([8])
                got = np.frombuffer(result.outputs[2], dtype="<u4")
                assert (got == a + b).all()

    def test_streaming_adpcm_chunks_bit_exact(self):
        chunk = 512
        stream = workloads.adpcm_stream(4 * chunk, seed=9)
        with CoprocessorSession(System(), adpcm_core.bitstream()) as session:
            src = session.map_input(0, "in", stream[:chunk])
            session.map_output(1, "out", 4 * chunk)
            for start in range(0, len(stream), chunk):
                src.fill_from(stream[start : start + chunk])
                result = session.execute([chunk])
                expected = adpcm.decode(stream[start : start + chunk])
                assert result.outputs[1] == expected.astype("<i2").tobytes()

    def test_each_execute_gets_fresh_measurement(self):
        with vadd_session() as session:
            session.map_input(0, "A", bytes(64))
            session.map_input(1, "B", bytes(64))
            session.map_output(2, "C", 64)
            first = session.execute([16])
            second = session.execute([16])
        assert first.measurement is not second.measurement
        assert first.measurement.total_ps == second.measurement.total_ps

    def test_partial_param_change_between_executes(self):
        # Process only a prefix of the mapped vectors on the second run.
        with vadd_session() as session:
            a = workloads.random_words(16, seed=1)
            b = workloads.random_words(16, seed=2)
            session.map_input(0, "A", a.astype("<u4").tobytes())
            session.map_input(1, "B", b.astype("<u4").tobytes())
            session.map_output(2, "C", 64)
            session.execute([16])
            result = session.execute([4])
            got = np.frombuffer(result.outputs[2], dtype="<u4")[:4]
            assert (got == (a + b)[:4]).all()


class TestHints:
    def _run_adpcm(self, hints=Hint.NONE, size=8 * 1024):
        stream = workloads.adpcm_stream(size, seed=5)
        with CoprocessorSession(System(), adpcm_core.bitstream()) as session:
            session.map_input(0, "in", stream, hints=hints)
            session.map_output(1, "out", 4 * size)
            result = session.execute([size])
            expected = adpcm.decode(stream).astype("<i2").tobytes()
            assert result.outputs[1] == expected
            return result

    def test_stream_hint_prefetches(self):
        plain = self._run_adpcm()
        hinted = self._run_adpcm(hints=Hint.STREAM)
        assert hinted.measurement.counters.prefetches > 0

    def test_pinned_object_never_evicted(self):
        result = self._run_adpcm(hints=Hint.PINNED)
        # The 8 KB input (4 pages) stays resident; only output pages
        # cycle, so no input page is ever reloaded.
        assert result.measurement.counters.bytes_to_dpram <= 8 * 1024

    def test_unpinnable_pressure_rejected(self):
        # Pinning an object larger than the DP-RAM leaves no frames to
        # service other faults: the VIM must refuse rather than hang.
        size = 20 * 1024
        stream = workloads.adpcm_stream(size, seed=6)
        with CoprocessorSession(System(), adpcm_core.bitstream()) as session:
            session.map_input(0, "in", stream, hints=Hint.PINNED)
            session.map_output(1, "out", 4 * size)
            with pytest.raises(VimError, match="pinned"):
                session.execute([size])
