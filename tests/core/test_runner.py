"""Integration tests for the three execution drivers."""

import pytest

from repro.accounting import Bucket
from repro.core.drivers import adpcm_workload, idea_workload, vector_add_workload
from repro.core.runner import ObjectSpec, run_software, run_typical, run_vim
from repro.core.soc import EPXA4
from repro.core.system import System
from repro.errors import CapacityError, VimError
from repro.os.vim.manager import TransferMode
from repro.os.vim.objects import Direction
from repro.os.vim.prefetch import SequentialPrefetcher


class TestRunSoftware:
    def test_outputs_match_reference(self, system, vadd_workload):
        result = run_software(system, vadd_workload)
        result.verify()
        assert result.version == "software"

    def test_time_comes_from_cost_model(self, system, vadd_workload):
        result = run_software(system, vadd_workload)
        expected = vadd_workload.sw_cycles * system.soc.cpu_frequency.period_ps
        assert result.measurement.sw_app_ps == expected
        assert result.measurement.hw_ps == 0


class TestRunVim:
    def test_bit_exact_output(self, system, vadd_workload):
        run_vim(system, vadd_workload).verify()

    def test_no_faults_when_working_set_fits(self, system, vadd_workload):
        result = run_vim(system, vadd_workload)
        assert result.measurement.counters.page_faults == 0
        assert result.measurement.sw_imu_ps > 0  # TLB setup still costs

    def test_faults_when_working_set_exceeds(self, system, vadd_workload_large):
        result = run_vim(system, vadd_workload_large)
        result.verify()
        assert result.measurement.counters.page_faults > 0
        assert result.measurement.counters.evictions > 0

    def test_process_lifecycle(self, system, vadd_workload):
        run_vim(system, vadd_workload)
        # The caller slept during execution and was woken at the end.
        assert system.kernel.scheduler.current is not None
        assert system.kernel.scheduler.current.wakeups == 1

    def test_fabric_released_after_run(self, system, vadd_workload):
        run_vim(system, vadd_workload)
        assert system.fabric.owner_pid is None

    def test_interrupt_line_freed_for_next_run(self, vadd_workload):
        system = System()
        run_vim(system, vadd_workload)
        run_vim(system, vadd_workload).verify()

    @pytest.mark.parametrize("policy", ["fifo", "lru", "random", "second-chance"])
    def test_all_policies_functionally_equivalent(self, policy, vadd_workload_large):
        run_vim(System(), vadd_workload_large, policy=policy).verify()

    @pytest.mark.parametrize("mode", [TransferMode.SINGLE, TransferMode.DOUBLE])
    def test_transfer_modes_functionally_equivalent(self, mode, vadd_workload_large):
        run_vim(System(), vadd_workload_large, transfer_mode=mode).verify()

    def test_single_transfer_is_faster(self, vadd_workload_large):
        double = run_vim(System(), vadd_workload_large)
        single = run_vim(
            System(), vadd_workload_large, transfer_mode=TransferMode.SINGLE
        )
        assert single.total_ms < double.total_ms
        assert single.measurement.hw_ps == double.measurement.hw_ps

    def test_pipelined_imu_faster_same_output(self, vadd_workload):
        normal = run_vim(System(), vadd_workload)
        pipelined = run_vim(System(), vadd_workload, pipelined_imu=True)
        pipelined.verify()
        assert pipelined.measurement.hw_ps < normal.measurement.hw_ps

    def test_lazy_mapping_faults_on_first_touch(self, vadd_workload):
        result = run_vim(System(), vadd_workload, eager_mapping=False)
        result.verify()
        assert result.measurement.counters.page_faults > 0

    def test_prefetch_reduces_faults(self):
        workload = adpcm_workload(4 * 1024, seed=8)
        plain = run_vim(System(), workload)
        prefetched = run_vim(
            System(),
            workload,
            prefetcher=SequentialPrefetcher(aggressive=True),
        )
        prefetched.verify()
        assert (
            prefetched.measurement.counters.page_faults
            < plain.measurement.counters.page_faults
        )

    def test_small_tlb_causes_tlb_refills_not_page_faults(self):
        workload = adpcm_workload(2 * 1024, seed=2)
        full = run_vim(System(), workload)
        tiny = run_vim(System(), workload, tlb_capacity=2)
        tiny.verify()
        # The extra interrupts are translation-only: the data-moving
        # fault count must not be inflated by them.
        assert tiny.measurement.counters.tlb_refills > 0
        assert (
            tiny.measurement.counters.page_faults
            == full.measurement.counters.page_faults
        )
        assert full.measurement.counters.tlb_refills == 0

    def test_buckets_cover_total(self, system, vadd_workload):
        meas = run_vim(system, vadd_workload).measurement
        assert meas.total_ps == meas.hw_ps + sum(meas.buckets.values())
        assert meas.hw_ps > 0
        assert meas.sw_dp_ps > 0

    def test_no_faults_means_setup_only_imu_time(self, system, vadd_workload):
        meas = run_vim(system, vadd_workload).measurement
        assert meas.counters.page_faults == 0
        # Without faults the SW_IMU cost is exactly: TLB setup (the
        # param page plus one eager-mapping insert per object page — 3
        # objects of one page each) and the two register accesses of
        # the end-of-operation service (read SR, acknowledge done).
        costs = system.costs
        cycles = (1 + 3) * costs.tlb_update_cycles + 2 * costs.imu_register_cycles
        assert meas.sw_imu_ps == cycles * system.soc.cpu_frequency.period_ps

    def test_larger_soc_absorbs_faults(self, vadd_workload_large):
        small = run_vim(System(), vadd_workload_large)
        large = run_vim(System(EPXA4), vadd_workload_large)
        large.verify()
        assert large.measurement.counters.page_faults == 0
        assert small.measurement.counters.page_faults > 0


class TestRunTypical:
    def test_bit_exact_output(self, system, vadd_workload):
        run_typical(system, vadd_workload).verify()

    def test_capacity_error_when_too_big(self, system, vadd_workload_large):
        # 3 x 8 KB on a 16 KB DP-RAM: the paper's "exceeds available
        # memory" case.
        with pytest.raises(CapacityError):
            run_typical(system, vadd_workload_large)

    def test_no_os_charges(self, system, vadd_workload):
        meas = run_typical(system, vadd_workload).measurement
        assert meas.sw_imu_ps == 0
        assert meas.sw_other_ps == 0
        assert meas.sw_dp_ps > 0  # driver still copies data

    def test_typical_beats_vim(self, idea_small):
        vim = run_vim(System(), idea_small)
        typical = run_typical(System(), idea_small)
        assert typical.total_ms < vim.total_ms


class TestObjectSpecValidation:
    def test_in_object_requires_data(self):
        with pytest.raises(VimError):
            ObjectSpec(0, "a", Direction.IN, 16)

    def test_data_length_must_match(self):
        with pytest.raises(VimError):
            ObjectSpec(0, "a", Direction.IN, 16, data=bytes(8))

    def test_out_object_without_data_ok(self):
        spec = ObjectSpec(1, "out", Direction.OUT, 16)
        assert spec.data is None


class TestVerify:
    def test_verify_reports_first_differing_byte(self, system, vadd_workload):
        result = run_vim(system, vadd_workload)
        corrupted = bytearray(result.outputs[2])
        corrupted[5] ^= 0xFF
        result.outputs[2] = bytes(corrupted)
        with pytest.raises(VimError, match="byte 5"):
            result.verify()

    def test_verify_detects_missing_output(self, system, vadd_workload):
        result = run_vim(system, vadd_workload)
        del result.outputs[2]
        with pytest.raises(VimError, match="no output"):
            result.verify()
