"""Unit tests for the workload builders."""

import numpy as np
import pytest

from repro.apps import adpcm as adpcm_app
from repro.apps import idea as idea_app
from repro.core.drivers import adpcm_workload, idea_workload, vector_add_workload
from repro.errors import ReproError
from repro.os.vim.objects import Direction


class TestAdpcmWorkload:
    def test_object_shapes(self):
        workload = adpcm_workload(2048)
        in_spec, out_spec = workload.objects
        assert in_spec.direction == Direction.IN
        assert out_spec.direction == Direction.OUT
        assert out_spec.size == 4 * in_spec.size

    def test_params_carry_input_size(self):
        assert adpcm_workload(1024).params == (1024,)

    def test_reference_decodes_stream(self):
        workload = adpcm_workload(256, seed=3)
        expected = adpcm_app.decode(workload.objects[0].data)
        assert workload.reference()[1] == expected.astype("<i2").tobytes()

    def test_invalid_size_rejected(self):
        with pytest.raises(ReproError):
            adpcm_workload(0)

    def test_seed_changes_stream(self):
        assert (
            adpcm_workload(128, seed=1).objects[0].data
            != adpcm_workload(128, seed=2).objects[0].data
        )


class TestIdeaWorkload:
    def test_params_are_count_plus_subkeys(self):
        workload = idea_workload(512)
        assert workload.params[0] == 64  # blocks
        assert len(workload.params) == 1 + idea_app.NUM_SUBKEYS

    def test_non_multiple_of_block_rejected(self):
        with pytest.raises(ReproError):
            idea_workload(100)

    def test_reference_is_real_encryption(self):
        workload = idea_workload(64, seed=2)
        ciphertext = workload.reference()[1]
        assert len(ciphertext) == 64
        assert ciphertext != workload.objects[0].data

    def test_subkeys_match_reference_key_schedule(self):
        workload = idea_workload(64, seed=5)
        subkeys = list(workload.params[1:])
        # Decrypting the reference output with the inverted schedule
        # recovers the plaintext: the params really are the schedule.
        ciphertext = workload.reference()[1]
        inv = idea_app.invert_key(subkeys)
        recovered = b"".join(
            idea_app.crypt_block(ciphertext[i : i + 8], inv)
            for i in range(0, 64, 8)
        )
        assert recovered == workload.objects[0].data


class TestVectorAddWorkload:
    def test_three_objects(self):
        workload = vector_add_workload(16)
        directions = [s.direction for s in workload.objects]
        assert directions == [Direction.IN, Direction.IN, Direction.OUT]

    def test_reference_adds(self):
        workload = vector_add_workload(8, seed=1)
        a = np.frombuffer(workload.objects[0].data, dtype="<u4")
        b = np.frombuffer(workload.objects[1].data, dtype="<u4")
        c = np.frombuffer(workload.reference()[2], dtype="<u4")
        assert (c == a + b).all()

    def test_total_bytes(self):
        assert vector_add_workload(16).total_bytes == 3 * 64

    def test_invalid_count_rejected(self):
        with pytest.raises(ReproError):
            vector_add_workload(-1)

    def test_sw_cycles_positive(self):
        assert vector_add_workload(16).sw_cycles > 0
