"""Unit tests for the parameterised synthetic access pattern.

The synthetic app is the design-space probe: these tests pin the
properties the sweep layer leans on — seeded determinism, parameter
validation, the op-count/locality/read-ratio contracts, and the
bit-exact software oracle the coprocessor core is verified against.
"""

import pytest

from repro.apps import synthetic, workloads as gen
from repro.core.drivers import synthetic_workload
from repro.errors import ReproError

NBYTES = 4096
NWORDS = NBYTES // synthetic.WORD_BYTES


class TestAccessPattern:
    def test_deterministic_per_seed(self):
        kwargs = dict(seed=7, stride=3, locality_pct=60, read_pct=40, phases=2)
        assert synthetic.access_pattern(NBYTES, **kwargs) == \
            synthetic.access_pattern(NBYTES, **kwargs)

    def test_seed_changes_the_pattern(self):
        assert synthetic.access_pattern(NBYTES, seed=1) != \
            synthetic.access_pattern(NBYTES, seed=2)

    def test_pattern_stream_decoupled_from_dataset_stream(self):
        # The pattern draws from an offset seed, so it never replays
        # the dataset generator's draws for the same cell seed.
        data = gen.random_bytes(NBYTES, seed=1)
        ops = synthetic.access_pattern(NBYTES, seed=1)
        redrawn = gen.random_bytes(NBYTES, seed=1)
        assert data == redrawn  # pattern generation is side-effect free
        assert ops == synthetic.access_pattern(NBYTES, seed=1)

    def test_one_op_per_word(self):
        for phases in (1, 3, 7):
            ops = synthetic.access_pattern(NBYTES, phases=phases)
            assert len(ops) == NWORDS

    def test_addresses_word_aligned_and_in_range(self):
        for _, addr in synthetic.access_pattern(NBYTES, locality_pct=0):
            assert addr % synthetic.WORD_BYTES == 0
            assert 0 <= addr < NBYTES

    def test_read_ratio_extremes(self):
        all_reads = synthetic.access_pattern(NBYTES, read_pct=100)
        assert not any(is_write for is_write, _ in all_reads)
        all_writes = synthetic.access_pattern(NBYTES, read_pct=0)
        assert all(is_write for is_write, _ in all_writes)

    def test_full_locality_confines_each_phase_to_a_hot_window(self):
        hot_words = max(1, NWORDS // synthetic.HOT_SET_DIVISOR)
        for phases in (1, 2):
            ops = synthetic.access_pattern(
                NBYTES, locality_pct=100, phases=phases
            )
            distinct = {addr for _, addr in ops}
            assert len(distinct) <= hot_words * phases

    def test_zero_locality_spreads_beyond_the_hot_window(self):
        hot_words = max(1, NWORDS // synthetic.HOT_SET_DIVISOR)
        ops = synthetic.access_pattern(NBYTES, locality_pct=0)
        assert len({addr for _, addr in ops}) > hot_words

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(nbytes=2), "at least one word"),
            (dict(nbytes=NBYTES, stride=0), "stride"),
            (dict(nbytes=NBYTES, locality_pct=101), "locality"),
            (dict(nbytes=NBYTES, read_pct=-1), "read ratio"),
            (dict(nbytes=NBYTES, phases=0), "phase count"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ReproError, match=match):
            synthetic.access_pattern(**kwargs)


class TestReference:
    def test_pure_read_pattern_leaves_data_untouched(self):
        data = gen.random_bytes(NBYTES, seed=3)
        ops = synthetic.access_pattern(NBYTES, seed=3, read_pct=100)
        assert synthetic.run_reference(data, ops) == data

    def test_writes_change_the_image_deterministically(self):
        data = gen.random_bytes(NBYTES, seed=3)
        ops = synthetic.access_pattern(NBYTES, seed=3, read_pct=0)
        image = synthetic.run_reference(data, ops)
        assert image != data
        assert image == synthetic.run_reference(data, ops)
        assert len(image) == len(data)

    def test_write_semantics_match_the_core_op(self):
        # One write at address 8 under the initial accumulator.
        data = bytes(16)
        image = synthetic.run_reference(data, [(True, 8)])
        expected = synthetic.write_value(synthetic.ACC_INIT, 8)
        assert image[8:12] == expected.to_bytes(4, "little")
        assert image[:8] == data[:8] and image[12:] == data[12:]

    def test_mix_functions_wrap_at_32_bits(self):
        assert 0 <= synthetic.mix_read(0xFFFFFFFF, 0x12345678) <= 0xFFFFFFFF
        assert 0 <= synthetic.write_value(0xFFFFFFFF, NBYTES) <= 0xFFFFFFFF
        assert 0 <= synthetic.mix_write(0xFFFFFFFF, 0xFFFFFFFF) <= 0xFFFFFFFF


class TestWorkload:
    def test_reference_matches_oracle(self):
        workload = synthetic_workload(
            NBYTES, seed=5, stride=3, locality_pct=60, read_pct=50, phases=2
        )
        [spec] = workload.objects
        ops = synthetic.access_pattern(
            NBYTES, seed=5, stride=3, locality_pct=60, read_pct=50, phases=2
        )
        assert workload.reference() == {
            spec.obj_id: synthetic.run_reference(spec.data, ops)
        }

    def test_cell_key_only_for_default_pattern(self):
        assert synthetic_workload(NBYTES, seed=5).cell_key == (
            "synthetic", NBYTES, 5,
        )
        assert synthetic_workload(NBYTES, seed=5, stride=2).cell_key is None

    def test_sw_cycles_scale_with_ops(self):
        workload = synthetic_workload(NBYTES)
        assert workload.sw_cycles == synthetic.sw_cycles(NWORDS)
        assert workload.params == (NWORDS,)
