"""Unit and property tests for the IDEA cipher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import idea
from repro.errors import ReproError


class TestGroupOperations:
    def test_mul_zero_means_two_to_sixteen(self):
        # In GF(2^16+1), 0 represents 2^16.
        assert idea.mul(0, 1) == 0
        assert idea.mul(1, 1) == 1

    def test_mul_known_values(self):
        assert idea.mul(2, 3) == 6
        assert idea.mul(0x8000, 2) == 0  # product 65536 is encoded as 0

    def test_mul_inverse_property(self):
        for a in (1, 2, 3, 0x1234, 0xFFFF, 0):
            inv = idea.mul_inverse(a)
            assert idea.mul(a, inv) == 1 or (a == 0 and idea.mul(a, inv) == 1)

    @given(st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=200, deadline=None)
    def test_mul_inverse_always_inverts(self, a):
        assert idea.mul(a, idea.mul_inverse(a)) == 1

    @given(st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=100, deadline=None)
    def test_add_inverse_always_inverts(self, a):
        assert idea.add(a, idea.add_inverse(a)) == 0

    def test_add_wraps(self):
        assert idea.add(0xFFFF, 1) == 0


class TestKeySchedule:
    def test_52_subkeys(self):
        subkeys = idea.expand_key(bytes(16))
        assert len(subkeys) == 52

    def test_first_eight_are_key_words(self):
        key = bytes(range(16))
        subkeys = idea.expand_key(key)
        for i in range(8):
            expected = int.from_bytes(key[2 * i : 2 * i + 2], "big")
            assert subkeys[i] == expected

    def test_wrong_key_length_rejected(self):
        with pytest.raises(ReproError):
            idea.expand_key(bytes(8))

    def test_invert_key_needs_52(self):
        with pytest.raises(ReproError):
            idea.invert_key([0] * 10)


class TestCipher:
    def test_published_test_vector(self):
        # Classic IDEA vector (Lai & Massey).
        key = (0x00010002000300040005000600070008).to_bytes(16, "big")
        plaintext = (0x0000000100020003).to_bytes(8, "big")
        expected = (0x11FBED2B01986DE5).to_bytes(8, "big")
        assert idea.encrypt(plaintext, key) == expected

    def test_decrypt_inverts_encrypt(self):
        key = bytes(range(16))
        data = bytes(range(64))
        assert idea.decrypt(idea.encrypt(data, key), key) == data

    def test_block_size_enforced(self):
        with pytest.raises(ReproError):
            idea.encrypt(bytes(7), bytes(16))
        with pytest.raises(ReproError):
            idea.crypt_block(bytes(4), [0] * 52)

    def test_ecb_blocks_independent(self):
        key = bytes(16)
        one = idea.encrypt(bytes(8), key)
        two = idea.encrypt(bytes(16), key)
        assert two == one + one

    @given(
        key=st.binary(min_size=16, max_size=16),
        data=st.binary(min_size=8, max_size=80).filter(lambda b: len(b) % 8 == 0),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, key, data):
        assert idea.decrypt(idea.encrypt(data, key), key) == data

    @given(key=st.binary(min_size=16, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_encryption_is_permutation(self, key):
        # Distinct plaintext blocks map to distinct ciphertext blocks.
        blocks = [bytes(8), bytes([0] * 7 + [1]), bytes([255] * 8)]
        subkeys = idea.expand_key(key)
        outputs = {idea.crypt_block(b, subkeys) for b in blocks}
        assert len(outputs) == len(blocks)


class TestCostModel:
    def test_sw_cycles_linear_in_blocks(self):
        assert idea.sw_cycles(800) == 100 * idea.SW_CYCLES_PER_BLOCK

    def test_paper_scale(self):
        # 4 KB at 133 MHz should land near the paper's 26 ms.
        cycles = idea.sw_cycles(4 * 1024)
        seconds = cycles / 133e6
        assert 0.020 < seconds < 0.032
