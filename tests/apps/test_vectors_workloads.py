"""Unit tests for the vector app and workload generators."""

import numpy as np
import pytest

from repro.apps import adpcm, vectors, workloads
from repro.errors import ReproError


class TestVectors:
    def test_add(self):
        a = np.array([1, 2], dtype=np.uint32)
        b = np.array([10, 20], dtype=np.uint32)
        assert (vectors.add_vectors(a, b) == [11, 22]).all()

    def test_add_wraps_uint32(self):
        a = np.array([0xFFFFFFFF], dtype=np.uint32)
        b = np.array([2], dtype=np.uint32)
        assert vectors.add_vectors(a, b)[0] == 1

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ReproError):
            vectors.add_vectors(np.zeros(2, np.uint32), np.zeros(3, np.uint32))

    def test_sw_cycles(self):
        assert vectors.sw_cycles(10) == 10 * vectors.SW_CYCLES_PER_ELEMENT


class TestGenerators:
    def test_random_bytes_deterministic_per_seed(self):
        assert workloads.random_bytes(64, seed=5) == workloads.random_bytes(64, seed=5)
        assert workloads.random_bytes(64, seed=5) != workloads.random_bytes(64, seed=6)

    def test_random_words_shape(self):
        words = workloads.random_words(10, seed=1)
        assert words.shape == (10,)
        assert words.dtype == np.uint32

    def test_negative_sizes_rejected(self):
        with pytest.raises(ReproError):
            workloads.random_bytes(-1)
        with pytest.raises(ReproError):
            workloads.random_words(-1)
        with pytest.raises(ReproError):
            workloads.pcm_waveform(-1)
        with pytest.raises(ReproError):
            workloads.adpcm_stream(-1)

    def test_pcm_waveform_in_range(self):
        wave = workloads.pcm_waveform(1000, seed=3)
        assert wave.dtype == np.int16
        assert len(wave) == 1000

    def test_pcm_waveform_is_correlated_not_noise(self):
        # Adjacent samples of an audio-like signal are close; adjacent
        # samples of white noise are not.
        wave = workloads.pcm_waveform(5000, seed=1).astype(np.float64)
        diffs = np.abs(np.diff(wave))
        assert float(diffs.mean()) < float(np.abs(wave).mean())

    def test_adpcm_stream_length_exact(self):
        stream = workloads.adpcm_stream(777, seed=2)
        assert len(stream) == 777

    def test_adpcm_stream_decodes_to_dynamic_signal(self):
        stream = workloads.adpcm_stream(2048, seed=1)
        samples = adpcm.decode(stream)
        assert int(samples.max()) > 1000
        assert int(samples.min()) < -1000

    def test_idea_key_size(self):
        assert len(workloads.idea_key(seed=1)) == 16
        assert workloads.idea_key(1) != workloads.idea_key(2)
