"""Unit and property tests for the IMA ADPCM codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import adpcm
from repro.errors import ReproError


class TestDecodeNibble:
    def test_zero_code_from_reset_state(self):
        sample, predictor, index = adpcm.decode_nibble(0, 0, 0)
        # step=7: diff = 7>>3 = 0 -> predictor unchanged; index -1 -> clamped.
        assert sample == 0
        assert predictor == 0
        assert index == 0

    def test_full_magnitude_code(self):
        sample, predictor, index = adpcm.decode_nibble(0x7, 0, 0)
        # diff = 7>>3 + 7 + 7>>1 + 7>>2 = 0+7+3+1 = 11.
        assert sample == 11
        assert index == 8  # INDEX_TABLE[7] == 8

    def test_sign_bit_subtracts(self):
        positive, _, _ = adpcm.decode_nibble(0x7, 100, 10)
        negative, _, _ = adpcm.decode_nibble(0xF, 100, 10)
        assert negative < 100 < positive

    def test_predictor_clamps_to_int16(self):
        sample, _, _ = adpcm.decode_nibble(0x7, 32760, 88)
        assert sample == 32767
        sample, _, _ = adpcm.decode_nibble(0xF, -32760, 88)
        assert sample == -32768

    def test_index_clamps(self):
        _, _, index = adpcm.decode_nibble(0x0, 0, 0)
        assert index == 0
        _, _, index = adpcm.decode_nibble(0x7, 0, 88)
        assert index == 88

    def test_invalid_code_rejected(self):
        with pytest.raises(ReproError):
            adpcm.decode_nibble(16, 0, 0)


class TestStreamCodec:
    def test_decode_two_samples_per_byte(self):
        samples = adpcm.decode(bytes([0x00, 0x77]))
        assert len(samples) == 4
        assert samples.dtype == np.int16

    def test_decode_nibble_order_low_first(self):
        # Byte 0x70 = low nibble 0 (small step) then high nibble 7.
        samples = adpcm.decode(bytes([0x70]))
        assert abs(int(samples[0])) < abs(int(samples[1]))

    def test_encode_requires_even_samples(self):
        with pytest.raises(ReproError):
            adpcm.encode(np.zeros(3, dtype=np.int16))

    def test_encode_decode_tracks_signal(self):
        t = np.arange(2000)
        wave = (8000 * np.sin(2 * np.pi * t / 50.0)).astype(np.int16)
        decoded = adpcm.decode(adpcm.encode(wave))
        # ADPCM is lossy; after convergence it tracks within ~1.5 steps.
        error = np.abs(decoded[200:].astype(np.int32) - wave[200:])
        assert float(np.mean(error)) < 600

    def test_decoder_is_deterministic(self):
        stream = bytes(range(256))
        assert (adpcm.decode(stream) == adpcm.decode(stream)).all()

    @given(st.binary(min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_decode_always_in_int16_range(self, stream):
        samples = adpcm.decode(stream)
        assert len(samples) == 2 * len(stream)
        assert int(samples.max(initial=0)) <= 32767
        assert int(samples.min(initial=0)) >= -32768

    @given(
        st.lists(
            st.integers(min_value=-32768, max_value=32767),
            min_size=2,
            max_size=200,
        ).filter(lambda xs: len(xs) % 2 == 0)
    )
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_state_lockstep(self, values):
        # The encoder embeds a decoder; decoding its output must follow
        # the exact same predictor trajectory (bit-exact property).
        pcm = np.array(values, dtype=np.int16)
        stream = adpcm.encode(pcm)
        decoded = adpcm.decode(stream)
        # Re-encode the decoded signal: a fixed point of the codec.
        assert adpcm.encode(decoded) == stream


class TestCostModel:
    def test_sw_cycles_linear_in_samples(self):
        assert adpcm.sw_cycles(100) == 2 * adpcm.sw_cycles(50)

    def test_expansion_factor(self):
        assert adpcm.OUTPUT_EXPANSION == 4
