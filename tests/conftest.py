"""Shared fixtures for the test suite.

Workload sizes here are deliberately small (hundreds of bytes to a few
KB) so the full suite runs in seconds; the paper-scale sizes live in
``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.core.drivers import adpcm_workload, idea_workload, vector_add_workload
from repro.core.soc import SocConfig
from repro.core.system import System
from repro.hw.dpram import DualPortRam
from repro.hw.interrupts import InterruptController
from repro.imu.imu import Imu
from repro.sim.engine import ENGINES, EngineBackend, make_engine
from repro.sim.time import mhz


@pytest.fixture(params=ENGINES)
def engine(request) -> EngineBackend:
    """A fresh discrete-event engine, parametrized over both backends.

    Every test built on this fixture (engine, clock, SoC plumbing)
    therefore exercises the reference and the fast kernel alike.
    """
    return make_engine(request.param)


@pytest.fixture
def system() -> System:
    """A fresh EPXA1 system."""
    return System()


@pytest.fixture
def small_soc() -> SocConfig:
    """A tiny SoC (4 pages of 256 bytes) that faults early."""
    return SocConfig(name="tiny", dpram_bytes=1024, page_bytes=256)


@pytest.fixture
def small_system(small_soc: SocConfig) -> System:
    """A system built on the tiny SoC."""
    return System(small_soc)


@pytest.fixture
def dpram() -> DualPortRam:
    """A stand-alone EPXA1-sized dual-port RAM."""
    return DualPortRam()


@pytest.fixture
def imu(dpram: DualPortRam) -> Imu:
    """An IMU over a fresh DP-RAM and interrupt controller."""
    return Imu(dpram, InterruptController())


@pytest.fixture
def vadd_workload():
    """A small vector-add workload (fits the DP-RAM, no faults)."""
    return vector_add_workload(32, seed=7)


@pytest.fixture
def vadd_workload_large():
    """A vector-add workload larger than the EPXA1 DP-RAM (faults)."""
    return vector_add_workload(2048, seed=11)


@pytest.fixture
def adpcm_small():
    """A small adpcm workload (one input page, no faults on EPXA1)."""
    return adpcm_workload(1024, seed=3)


@pytest.fixture
def idea_small():
    """A small IDEA workload (512 bytes, no faults on EPXA1)."""
    return idea_workload(512, seed=5)


@pytest.fixture
def clock_40mhz(engine: Engine):
    """A 40 MHz clock domain on the fresh engine."""
    from repro.sim.clock import ClockDomain

    return ClockDomain(engine, "fabric", mhz(40.0))
