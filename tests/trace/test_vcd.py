"""Unit tests for the VCD writer."""

from repro.sim.engine import Engine
from repro.sim.signal import Signal
from repro.trace.timeline import WaveformProbe
from repro.trace.vcd import _identifier, dump_vcd, write_vcd


def make_probe():
    engine = Engine()
    bit = Signal("hit", width=1)
    bus = Signal("addr", width=16)
    probe = WaveformProbe(engine, [bit, bus])
    engine.advance(25_000)
    bit.set(1)
    bus.set(0x1F)
    engine.advance(25_000)
    bit.set(0)
    return probe


class TestIdentifiers:
    def test_unique_and_printable(self):
        ids = {_identifier(i) for i in range(500)}
        assert len(ids) == 500
        assert all(ch.isprintable() and ch != " " for ident in ids for ch in ident)


class TestDump:
    def test_header_structure(self):
        text = dump_vcd(make_probe(), module="imu")
        assert "$timescale 1ps $end" in text
        assert "$scope module imu $end" in text
        assert "$enddefinitions $end" in text

    def test_vars_declared_with_width(self):
        text = dump_vcd(make_probe())
        assert "$var wire 1" in text
        assert "$var wire 16" in text

    def test_changes_emitted_in_time_order(self):
        text = dump_vcd(make_probe())
        stamps = [int(line[1:]) for line in text.splitlines() if line.startswith("#")]
        assert stamps == sorted(stamps)
        assert 25_000 in stamps and 50_000 in stamps

    def test_bus_values_binary(self):
        text = dump_vcd(make_probe())
        assert "b11111 " in text  # 0x1F

    def test_write_vcd(self, tmp_path):
        path = tmp_path / "trace.vcd"
        write_vcd(make_probe(), str(path))
        assert path.read_text().startswith("$date")
