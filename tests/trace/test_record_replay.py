"""Record → replay round-trip tests for the address-trace subsystem.

Three layers under test, bottom-up: the trace *file format*
(:mod:`repro.trace.record` — canonical bytes, digest checking, loud
failure on corruption), the *recording driver*
(:func:`repro.exp.record.record_cell` — deterministic byte-identical
files, verified runs), and the *replay app*
(:mod:`repro.apps.tracefile` — replaying a recorded run twice yields
byte-identical ``CellResult`` rows, and the digest pins the identity).
"""

import gzip
import json

import pytest

from repro.exp.record import record_cell
from repro.exp.cell import run_cell
from repro.exp.spec import CellConfig
from repro.trace.record import (
    TraceError,
    TraceObject,
    TraceOp,
    load_trace,
    trace_digest_of,
    write_trace,
)

#: A small, fast cell with a non-trivial access pattern to record.
RECORD_CONFIG = CellConfig(app="synthetic", input_bytes=2 * 1024)


def _tiny_trace(tmp_path, name="t.gz", **overrides):
    """Write a minimal hand-built one-object trace file."""
    fields = dict(
        meta={"note": "unit"},
        objects=[TraceObject(0, 1, "data", 8, "inout", bytes(8))],
        ops=[TraceOp(0, False, 1, 0, 4), TraceOp(0, True, 1, 4, 4)],
    )
    fields.update(overrides)
    path = tmp_path / name
    return path, write_trace(path, **fields)


class TestTraceFormat:
    def test_round_trip(self, tmp_path):
        path, written = _tiny_trace(tmp_path)
        loaded = load_trace(path)
        assert loaded == written
        assert trace_digest_of(path) == written.digest

    def test_same_content_same_bytes(self, tmp_path):
        a, _ = _tiny_trace(tmp_path, "a.gz")
        b, _ = _tiny_trace(tmp_path, "b.gz")
        assert a.read_bytes() == b.read_bytes()

    def test_existing_file_needs_force(self, tmp_path):
        path, _ = _tiny_trace(tmp_path)
        with pytest.raises(TraceError, match="force"):
            _tiny_trace(tmp_path)
        _tiny_trace(tmp_path, force=True)  # same kwargs path, now allowed

    def test_corrupt_body_fails_loudly(self, tmp_path):
        path, _ = _tiny_trace(tmp_path)
        with gzip.open(path, "rb") as stream:
            header = stream.readline()
            body = stream.read()
        tampered = json.loads(body)
        tampered["ops"][0][3] = 4  # move the first read
        with open(path, "wb") as raw:
            with gzip.GzipFile(filename="", fileobj=raw, mode="wb") as out:
                out.write(header + json.dumps(tampered).encode())
        with pytest.raises(TraceError, match="digest"):
            load_trace(path)

    def test_not_a_trace_rejected(self, tmp_path):
        path = tmp_path / "noise.gz"
        with gzip.open(path, "wb") as out:
            out.write(b'{"format": "something-else"}\nrest')
        with pytest.raises(TraceError, match="format marker"):
            trace_digest_of(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="does not exist"):
            load_trace(tmp_path / "absent.gz")

    def test_op_outside_object_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="outside object"):
            _tiny_trace(tmp_path, ops=[TraceOp(0, False, 1, 6, 4)])

    def test_op_against_unknown_object_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="unknown object"):
            _tiny_trace(tmp_path, ops=[TraceOp(0, False, 9, 0, 4)])

    def test_bad_image_length_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="declared size"):
            _tiny_trace(
                tmp_path,
                objects=[TraceObject(0, 1, "data", 8, "inout", bytes(4))],
            )


class TestRecordCell:
    def test_recording_is_deterministic(self, tmp_path):
        a = record_cell(RECORD_CONFIG, tmp_path / "a.gz")
        b = record_cell(RECORD_CONFIG, tmp_path / "b.gz")
        assert a.digest == b.digest
        assert (tmp_path / "a.gz").read_bytes() == (tmp_path / "b.gz").read_bytes()
        assert len(a.trace.ops) > 0

    def test_replicated_cell_rejected(self, tmp_path):
        with pytest.raises(Exception, match="replicates"):
            record_cell(
                CellConfig(app="synthetic", replicates=2), tmp_path / "t.gz"
            )

    def test_multi_tenant_record_remaps_tenants(self, tmp_path):
        config = CellConfig(
            app="adpcm", input_bytes=2 * 1024,
            tenants=2, tenant_mix="adpcm+idea", tenant_repeats=2,
        )
        outcome = record_cell(config, tmp_path / "mt.gz")
        assert outcome.trace.tenant_count == 2
        # Tenant ids are workload-order indices, not spawn-order pids.
        assert {o.tenant for o in outcome.trace.objects} == {0, 1}


class TestReplay:
    @pytest.fixture(scope="class")
    def recorded(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "synthetic.gz"
        return record_cell(RECORD_CONFIG, path)

    def test_two_replays_byte_identical(self, recorded):
        config = CellConfig(app="trace", trace_path=str(recorded.path))
        first = run_cell(config).to_dict()
        second = run_cell(config).to_dict()
        assert first == second

    def test_replay_verifies_against_reference(self, recorded):
        row = run_cell(
            CellConfig(app="trace", trace_path=str(recorded.path))
        )
        assert row.label == f"trace-{recorded.digest[:10]}"
        assert row.vim_ms > 0

    def test_digest_mismatch_fails_loudly(self, recorded):
        config = CellConfig(
            app="trace",
            trace_path=str(recorded.path),
            trace_digest="0" * 64,
        )
        with pytest.raises(TraceError, match="does not match"):
            run_cell(config)

    def test_identity_is_digest_not_path(self, recorded, tmp_path):
        copy = tmp_path / "elsewhere.gz"
        copy.write_bytes(recorded.path.read_bytes())
        original = CellConfig(app="trace", trace_path=str(recorded.path))
        moved = CellConfig(app="trace", trace_path=str(copy))
        assert original.key() == moved.key()
        assert original.label() == moved.label()

    def test_multi_tenant_trace_replays(self, tmp_path):
        config = CellConfig(
            app="adpcm", input_bytes=2 * 1024,
            tenants=2, tenant_mix="adpcm+idea", tenant_repeats=2,
        )
        outcome = record_cell(config, tmp_path / "mt.gz")
        row = run_cell(CellConfig(app="trace", trace_path=str(tmp_path / "mt.gz")))
        # Flattened replay covers every recorded access exactly once.
        assert row.label == f"trace-{outcome.digest[:10]}"
