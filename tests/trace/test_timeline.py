"""Unit tests for waveform capture and rendering."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.signal import Signal
from repro.trace.timeline import SignalTrace, WaveformProbe, render_cycles


class TestSignalTrace:
    def test_records_changes(self):
        trace = SignalTrace("s", 8)
        trace.record(0, 1)
        trace.record(10, 2)
        assert trace.value_at(0) == 1
        assert trace.value_at(9) == 1
        assert trace.value_at(10) == 2
        assert trace.value_at(999) == 2

    def test_same_time_overwrites(self):
        trace = SignalTrace("s", 8)
        trace.record(5, 1)
        trace.record(5, 2)
        assert trace.value_at(5) == 2
        assert len(trace.times) == 1

    def test_backwards_time_rejected(self):
        trace = SignalTrace("s", 8)
        trace.record(10, 1)
        with pytest.raises(SimulationError):
            trace.record(5, 2)

    def test_value_before_first_record_rejected(self):
        trace = SignalTrace("s", 8)
        trace.record(10, 1)
        with pytest.raises(SimulationError):
            trace.value_at(5)


class TestWaveformProbe:
    def test_captures_initial_and_changes(self):
        engine = Engine()
        sig = Signal("cp.addr", width=8, init=3)
        probe = WaveformProbe(engine, [sig])
        engine.advance(100)
        sig.set(7)
        trace = probe.trace("cp.addr")
        assert trace.value_at(0) == 3
        assert trace.value_at(100) == 7

    def test_detach_stops_recording(self):
        engine = Engine()
        sig = Signal("s", width=8)
        probe = WaveformProbe(engine, [sig])
        probe.detach()
        engine.advance(10)
        sig.set(9)
        assert probe.trace("s").value_at(10) == 0

    def test_unknown_trace_rejected(self):
        probe = WaveformProbe(Engine(), [])
        with pytest.raises(SimulationError):
            probe.trace("nope")


class TestRenderCycles:
    def _probe(self):
        engine = Engine()
        bit = Signal("bit", width=1)
        bus = Signal("bus", width=16)
        probe = WaveformProbe(engine, [bit, bus])
        engine.advance(100)
        bit.set(1)
        bus.set(0xAB)
        return probe

    def test_renders_bits_as_bars(self):
        probe = self._probe()
        text = render_cycles(probe, start_ps=50, period_ps=100, num_cycles=2)
        lines = text.splitlines()
        assert lines[0].startswith("edge")
        bit_line = next(line for line in lines if line.startswith("bit"))
        assert "▁▁▁" in bit_line and "███" in bit_line

    def test_renders_buses_as_hex(self):
        probe = self._probe()
        text = render_cycles(probe, start_ps=150, period_ps=100, num_cycles=1)
        assert "ab" in text

    def test_signal_selection_and_order(self):
        probe = self._probe()
        text = render_cycles(
            probe, start_ps=50, period_ps=100, num_cycles=1, signals=["bus"]
        )
        assert "bit" not in text

    def test_invalid_geometry_rejected(self):
        probe = self._probe()
        with pytest.raises(SimulationError):
            render_cycles(probe, 0, 100, 0)
        with pytest.raises(SimulationError):
            render_cycles(probe, 0, 0, 1)
