"""Test helpers: a scriptable coprocessor core and interface rigs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.coproc.base import Behavior, Coprocessor
from repro.hw.dpram import DualPortRam
from repro.hw.interrupts import InterruptController
from repro.imu.direct import DirectInterface
from repro.imu.imu import Imu
from repro.sim.clock import ClockDomain
from repro.sim.engine import Engine
from repro.sim.time import mhz


class ScriptCore(Coprocessor):
    """A core that executes a scripted list of interface operations.

    Operations (tuples): ``("read", obj, addr[, size])``,
    ``("write", obj, addr, value[, size])``, ``("compute", cycles)``,
    ``("param", index)``, ``("release_params",)``.  Results and the
    core-cycle stamp of each completed op are recorded for assertions.
    """

    name = "script"

    def __init__(self, script: list[tuple]) -> None:
        super().__init__()
        self.script = script
        self.results: list[int | None] = []
        self.stamps: list[int] = []

    def behavior(self) -> Behavior:
        for op in self.script:
            kind = op[0]
            if kind == "read":
                obj, addr = op[1], op[2]
                size = op[3] if len(op) > 3 else 4
                value = yield from self.read(obj, addr, size)
                self.results.append(value)
            elif kind == "write":
                obj, addr, value = op[1], op[2], op[3]
                size = op[4] if len(op) > 4 else 4
                yield from self.write(obj, addr, value, size)
                self.results.append(None)
            elif kind == "compute":
                yield from self.compute(op[1])
                self.results.append(None)
            elif kind == "param":
                value = yield from self.read_param(op[1])
                self.results.append(value)
            elif kind == "release_params":
                yield from self.release_params()
                self.results.append(None)
            else:  # pragma: no cover - script author error
                raise ValueError(f"unknown op {kind!r}")
            self.stamps.append(self.cycles)


@dataclass
class ImuRig:
    """An IMU + scripted core on a single 40 MHz clock domain."""

    engine: Engine
    interrupts: InterruptController
    dpram: DualPortRam
    imu: Imu
    core: ScriptCore
    domain: ClockDomain
    extra_domains: list[ClockDomain] = field(default_factory=list)

    def run(self, until=None, max_cycles: int = 20_000) -> None:
        """Start the core and run until *until()* (default: finished)."""
        predicate = until or (lambda: self.core.finished)
        self.imu.start_coprocessor()
        for domain in [self.domain, *self.extra_domains]:
            if not domain.running:
                domain.start()
        self.engine.run_until(
            predicate, max_time_ps=self.engine.now + max_cycles * self.domain.period_ps
        )
        for domain in [self.domain, *self.extra_domains]:
            domain.stop()


def make_imu_rig(
    script: list[tuple],
    access_cycles: int = 4,
    pipelined: bool = False,
    sync_cycles: int = 0,
    core_mhz: float | None = None,
    imu_mhz: float = 40.0,
    tlb_capacity: int | None = None,
) -> ImuRig:
    """Build an engine + IMU + scripted core rig.

    With ``core_mhz`` unset, core and IMU share one domain (IMU ticked
    first, as in the real single-domain designs); otherwise the core
    gets its own, slower domain.
    """
    engine = Engine()
    interrupts = InterruptController()
    dpram = DualPortRam()
    imu = Imu(
        dpram,
        interrupts,
        access_cycles=access_cycles,
        pipelined=pipelined,
        sync_cycles=sync_cycles,
        tlb_capacity=tlb_capacity,
    )
    core = ScriptCore(script)
    core.bind(imu)
    domain = ClockDomain(engine, "imu", mhz(imu_mhz))
    domain.attach(imu.tick)
    extra = []
    if core_mhz is None:
        domain.attach(core.tick)
    else:
        core_domain = ClockDomain(engine, "core", mhz(core_mhz))
        core_domain.attach(core.tick)
        extra.append(core_domain)
    return ImuRig(engine, interrupts, dpram, imu, core, domain, extra)


def make_direct_rig(
    script: list[tuple],
    access_cycles: int = 2,
) -> tuple[Engine, DualPortRam, DirectInterface, ScriptCore, ClockDomain]:
    """Build an engine + direct interface + scripted core rig."""
    engine = Engine()
    dpram = DualPortRam()
    iface = DirectInterface(dpram, access_cycles=access_cycles)
    core = ScriptCore(script)
    core.bind(iface)
    domain = ClockDomain(engine, "fabric", mhz(40.0))
    domain.attach(iface.tick)
    domain.attach(core.tick)
    return engine, dpram, iface, core, domain
