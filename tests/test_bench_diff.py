"""Tests for the benchmark-JSON differ (``tools/bench_diff.py``).

Mirrors the CI benchmarks job: two ``BENCH_results.json`` files go
in, a regression table comes out, and the exit status gates on the
deterministic simulated numbers in ``extra_info`` — not on noisy
wall-time means (unless ``--fail-on-wall``).
"""

import copy
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import bench_diff  # noqa: E402  (repo tool, imported from tools/)


def _bench(fullname: str, mean: float, extra: dict) -> dict:
    return {
        "fullname": fullname,
        "name": fullname.rsplit("::", 1)[-1],
        "stats": {"mean": mean},
        "extra_info": extra,
    }


BASE = {
    "benchmarks": [
        _bench("bench_a.py::test_one", 0.5, {"speedups": [1.5, 1.6], "faults": 3}),
        _bench("bench_a.py::test_two", 0.2, {"edge": 4}),
    ]
}


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


class TestBenchDiff:
    def test_identical_files_exit_0(self, tmp_path, capsys):
        a = _write(tmp_path, "a.json", BASE)
        b = _write(tmp_path, "b.json", BASE)
        assert bench_diff.main([a, b]) == 0
        out = capsys.readouterr().out
        assert "0 with simulated-number changes" in out

    def test_extra_info_change_exits_1_either_direction(self, tmp_path, capsys):
        changed = copy.deepcopy(BASE)
        changed["benchmarks"][0]["extra_info"]["faults"] = 2  # improved!
        a = _write(tmp_path, "a.json", BASE)
        b = _write(tmp_path, "b.json", changed)
        assert bench_diff.main([a, b]) == 1
        assert "faults: 3→2" in capsys.readouterr().out

    def test_list_extra_info_flattened_by_index(self, tmp_path, capsys):
        changed = copy.deepcopy(BASE)
        changed["benchmarks"][0]["extra_info"]["speedups"][1] = 1.4
        a = _write(tmp_path, "a.json", BASE)
        b = _write(tmp_path, "b.json", changed)
        assert bench_diff.main([a, b]) == 1
        assert "speedups[1]" in capsys.readouterr().out

    def test_wall_time_informational_unless_flagged(self, tmp_path, capsys):
        slower = copy.deepcopy(BASE)
        slower["benchmarks"][0]["stats"]["mean"] = 1.0
        a = _write(tmp_path, "a.json", BASE)
        b = _write(tmp_path, "b.json", slower)
        assert bench_diff.main([a, b]) == 0
        assert "slower" in capsys.readouterr().out
        assert bench_diff.main([a, b, "--fail-on-wall"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_rtol_applies(self, tmp_path):
        slower = copy.deepcopy(BASE)
        slower["benchmarks"][0]["stats"]["mean"] = 0.55  # +10%
        a = _write(tmp_path, "a.json", BASE)
        b = _write(tmp_path, "b.json", slower)
        assert bench_diff.main(
            [a, b, "--fail-on-wall", "--rtol", "0.2"]) == 0
        assert bench_diff.main(
            [a, b, "--fail-on-wall", "--rtol", "0.05"]) == 1

    def test_added_and_removed_reported_without_gating(self, tmp_path, capsys):
        grown = copy.deepcopy(BASE)
        grown["benchmarks"] = [
            grown["benchmarks"][0],
            _bench("bench_b.py::test_new", 0.1, {}),
        ]
        a = _write(tmp_path, "a.json", BASE)
        b = _write(tmp_path, "b.json", grown)
        assert bench_diff.main([a, b]) == 0
        out = capsys.readouterr().out
        assert "added (current only): bench_b.py::test_new" in out
        assert "removed (baseline only): bench_a.py::test_two" in out

    def test_md_format(self, tmp_path, capsys):
        a = _write(tmp_path, "a.json", BASE)
        assert bench_diff.main([a, a, "--format", "md"]) == 0
        assert capsys.readouterr().out.startswith("| benchmark |")

    def test_malformed_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}", encoding="utf-8")
        a = _write(tmp_path, "a.json", BASE)
        assert bench_diff.main([str(bad), a]) == 2
        assert "benchmarks" in capsys.readouterr().err

    def test_removed_extra_info_key_is_lost_coverage(self, tmp_path, capsys):
        shrunk = copy.deepcopy(BASE)
        del shrunk["benchmarks"][0]["extra_info"]["faults"]
        a = _write(tmp_path, "a.json", BASE)
        b = _write(tmp_path, "b.json", shrunk)
        assert bench_diff.main([a, b]) == 1
        out = capsys.readouterr().out
        assert "faults: removed" in out
        assert "CHANGED" in out

    def test_new_extra_info_key_reported_without_gating(self, tmp_path,
                                                        capsys):
        # Added coverage is welcome: visible in the table, exit 0.
        grown = copy.deepcopy(BASE)
        grown["benchmarks"][1]["extra_info"]["tlb"] = 7
        a = _write(tmp_path, "a.json", BASE)
        b = _write(tmp_path, "b.json", grown)
        assert bench_diff.main([a, b]) == 0
        assert "tlb: new" in capsys.readouterr().out

    def test_non_numeric_extra_info_ignored(self):
        flat = bench_diff.flatten_extra_info(
            {"note": "hi", "ok": True, "n": 3, "xs": [1, "two"], "ys": [1, 2]}
        )
        assert flat == {"n": 3, "ys[0]": 1, "ys[1]": 2}

    def test_wall_prefixed_extra_info_never_gates(self, tmp_path, capsys):
        # The paired engine benches record a wall-clock speedup ratio;
        # it drifts run to run like any harness timing, so a change is
        # reported (next to the wall mean) but must not fail the diff —
        # not even under --fail-on-wall.
        base = copy.deepcopy(BASE)
        base["benchmarks"][0]["extra_info"]["wall_speedup_vs_reference"] = 3.8
        drifted = copy.deepcopy(base)
        drifted["benchmarks"][0]["extra_info"]["wall_speedup_vs_reference"] = 3.2
        a = _write(tmp_path, "a.json", base)
        b = _write(tmp_path, "b.json", drifted)
        assert bench_diff.main([a, b]) == 0
        out = capsys.readouterr().out
        assert "wall_speedup_vs_reference: 3.800→3.200" in out
        assert "CHANGED" not in out
        assert bench_diff.main([a, b, "--fail-on-wall"]) == 0

    def test_wall_prefixed_key_removal_does_not_gate(self, tmp_path, capsys):
        base = copy.deepcopy(BASE)
        base["benchmarks"][0]["extra_info"]["wall_speedup_vs_reference"] = 3.8
        a = _write(tmp_path, "a.json", base)
        b = _write(tmp_path, "b.json", BASE)
        assert bench_diff.main([a, b]) == 0
        out = capsys.readouterr().out
        assert "wall_speedup_vs_reference: removed" not in out
        assert "CHANGED" not in out
