"""The docs gate: examples in README/docs must run, links must resolve.

Mirrors the CI docs job (``python tools/check_docs.py``) so breakage is
caught by the tier-1 suite locally, and unit-tests the checker's
failure detection so a green run actually means something.
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402  (repo tool, imported from tools/)


class TestRepositoryDocs:
    def test_all_docs_pass(self):
        assert check_docs.main() == 0

    def test_required_docs_exist_and_are_linked(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for doc in ("docs/architecture.md", "docs/extending-sweeps.md"):
            assert (REPO_ROOT / doc).exists(), doc
            assert doc in readme, f"README does not link {doc}"

    def test_readme_mentions_contention_grid(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "--preset contention" in readme
        assert "--tenants" in readme


class TestCheckerCatchesRot:
    def test_dead_link_detected(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [missing](no/such/file.md)\n", encoding="utf-8")
        failures = check_docs.check_links(page)
        assert len(failures) == 1
        assert "dead link" in failures[0]

    def test_external_and_anchor_links_ignored(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "[a](https://example.com) [b](#section) [c](mailto:x@y.z)\n",
            encoding="utf-8",
        )
        assert check_docs.check_links(page) == []

    def test_broken_doctest_detected(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "```python\n>>> 1 + 1\n3\n```\n", encoding="utf-8"
        )
        failures = check_docs.check_code_blocks(page)
        assert len(failures) == 1
        assert "doctest" in failures[0]

    def test_syntax_rot_detected(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "```python\ndef broken(:\n```\n", encoding="utf-8"
        )
        failures = check_docs.check_code_blocks(page)
        assert len(failures) == 1
        assert "does not compile" in failures[0]

    def test_non_python_blocks_ignored(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "```sh\nthis is : not python ((\n```\n", encoding="utf-8"
        )
        assert check_docs.check_code_blocks(page) == []

    def test_stale_transfer_list_detected(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "use `--transfer {double,single}` for the copy axis\n",
            encoding="utf-8",
        )
        failures = check_docs.check_transfer_modes(page)
        assert len(failures) == 1
        assert "stale transfer-mode list" in failures[0]

    def test_current_transfer_list_passes(self, tmp_path):
        from repro.exp.spec import TRANSFERS

        page = tmp_path / "page.md"
        page.write_text(
            f"use `--transfer {{{','.join(TRANSFERS)}}}`\n", encoding="utf-8"
        )
        assert check_docs.check_transfer_modes(page) == []

    def test_wrapped_transfer_list_is_still_checked(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "`--transfer\n{double,single,dma,warp}`\n", encoding="utf-8"
        )
        assert len(check_docs.check_transfer_modes(page)) == 1

    def test_stale_format_list_detected(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "render with `--format {md,pdf}`\n", encoding="utf-8"
        )
        failures = check_docs.check_report_formats(page)
        assert len(failures) == 1
        assert "stale report-format list" in failures[0]

    def test_current_format_list_passes(self, tmp_path):
        from repro.exp.report import FORMATS

        page = tmp_path / "page.md"
        page.write_text(
            f"render with `--format {{{','.join(FORMATS)}}}`\n",
            encoding="utf-8",
        )
        assert check_docs.check_report_formats(page) == []

    def test_stale_engine_list_detected(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "pick `--engine {reference,warp}` for the kernel\n",
            encoding="utf-8",
        )
        failures = check_docs.check_engines(page)
        assert len(failures) == 1
        assert "stale engine-backend list" in failures[0]

    def test_current_engine_list_passes(self, tmp_path):
        from repro.sim.engine import ENGINES

        page = tmp_path / "page.md"
        page.write_text(
            f"pick `--engine {{{','.join(ENGINES)}}}`\n", encoding="utf-8"
        )
        assert check_docs.check_engines(page) == []

    def test_stale_store_list_detected(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "pick `--store {json,parquet}` for the backend\n",
            encoding="utf-8",
        )
        failures = check_docs.check_store_kinds(page)
        assert len(failures) == 1
        assert "stale store-backend list" in failures[0]

    def test_current_store_list_passes(self, tmp_path):
        from repro.exp.store import STORES

        page = tmp_path / "page.md"
        page.write_text(
            f"pick `--store {{{','.join(STORES)}}}`\n", encoding="utf-8"
        )
        assert check_docs.check_store_kinds(page) == []

    def test_undocumented_subcommand_detected(self, tmp_path):
        # A page that never writes `repro migrate` / `repro history`
        # misses those subcommands.
        page = tmp_path / "page.md"
        page.write_text("only repro sweep here\n", encoding="utf-8")
        failures = check_docs.check_subcommands_documented(page)
        assert any("repro migrate" in f for f in failures)
        assert any("repro history" in f for f in failures)
        assert all("undocumented" in f for f in failures)

    def test_readme_documents_every_subcommand(self):
        assert check_docs.check_subcommands_documented(
            REPO_ROOT / "README.md"
        ) == []

    def test_store_commands_are_covered_by_the_checker(self):
        # The coverage direction must include the store-layer
        # subcommands, so adding a flag there without documenting it
        # fails the gate.
        for command in ("merge", "migrate", "history"):
            assert command in check_docs.DOCUMENTED_COMMANDS
        _every, per_command = check_docs._parser_options()
        assert "--dry-run" in per_command["merge"]
        assert "--store" in per_command["migrate"]
        assert "--cells" in per_command["history"]
        assert "--group-by" in per_command["diff"]

    def test_undocumented_cli_flag_detected(self, tmp_path):
        # A page mentioning no flags at all misses every sweep and
        # diff option.
        page = tmp_path / "page.md"
        page.write_text("nothing here\n", encoding="utf-8")
        failures = check_docs.check_cli_flags(page)
        assert any("--shard" in f for f in failures)
        assert any("--report" in f for f in failures)
        assert any("--baseline" in f for f in failures)
        assert any("--rtol" in f and "diff flag" in f for f in failures)
        assert any("--atol" in f for f in failures)
        assert all("undocumented" in f for f in failures)

    def test_stale_flag_mention_detected(self, tmp_path):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        page = tmp_path / "page.md"
        page.write_text(
            readme + "\nand the retired `--warp-drive` flag\n",
            encoding="utf-8",
        )
        failures = check_docs.check_cli_flags(page)
        assert len(failures) == 1
        assert "stale flag mention --warp-drive" in failures[0]

    def test_mid_span_stale_flag_detected(self, tmp_path):
        # A stale flag hiding after a valid one in the same span must
        # not escape the scan.
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        page = tmp_path / "page.md"
        page.write_text(
            readme + "\nuse `--report --warp-factor N` for speed\n",
            encoding="utf-8",
        )
        failures = check_docs.check_cli_flags(page)
        assert any("--warp-factor" in f for f in failures)

    def test_fenced_blocks_excluded_from_stale_mention_scan(self, tmp_path):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        page = tmp_path / "page.md"
        page.write_text(
            readme + "\n```sh\npytest --benchmark-only\n```\n",
            encoding="utf-8",
        )
        assert check_docs.check_cli_flags(page) == []

    def test_readme_flag_lists_are_current(self):
        assert check_docs.check_cli_flags(REPO_ROOT / "README.md") == []

    def test_diff_flags_are_covered_by_the_checker(self):
        # The coverage direction must include the diff subcommand, so
        # adding a diff flag without documenting it fails the gate.
        assert "diff" in check_docs.DOCUMENTED_COMMANDS
        _every, per_command = check_docs._parser_options()
        assert "--rtol" in per_command["diff"]
        assert "--baseline" in per_command["sweep"]

    def test_docs_flag_mentions_are_current(self):
        for doc in sorted((REPO_ROOT / "docs").glob("*.md")):
            assert check_docs.check_flag_mentions(doc) == [], doc

    def test_stale_mention_in_docs_detected(self, tmp_path):
        # The stale-mention direction covers every doc file, not just
        # the README.
        page = tmp_path / "guide.md"
        page.write_text("pass `--warp-drive` to engage\n", encoding="utf-8")
        failures = check_docs.check_flag_mentions(page)
        assert len(failures) == 1
        assert "--warp-drive" in failures[0]
