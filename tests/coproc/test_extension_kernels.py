"""Tests for the extension kernels: ADPCM encoder, IDEA decryption."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import adpcm as adpcm_app
from repro.apps import idea as idea_app
from repro.apps import workloads as gen
from repro.core.drivers import adpcm_encode_workload, adpcm_workload, idea_workload
from repro.core.runner import run_typical, run_vim
from repro.core.system import System
from repro.errors import ReproError


class TestAdpcmEncoder:
    def test_vim_matches_reference(self):
        run_vim(System(), adpcm_encode_workload(1024, seed=2)).verify()

    def test_typical_matches_reference(self):
        run_typical(System(), adpcm_encode_workload(512, seed=3)).verify()

    def test_output_is_quarter_of_input(self):
        workload = adpcm_encode_workload(1000, seed=1)
        result = run_vim(System(), workload)
        assert len(result.outputs[1]) == workload.objects[0].size // 4

    def test_hw_encode_then_hw_decode_roundtrip(self):
        # Encode on the encoder core, decode the result on the decoder
        # core: the full hardware media pipeline tracks the signal.
        num_samples = 2048
        encode = run_vim(System(), adpcm_encode_workload(num_samples, seed=7))
        encode.verify()
        stream = encode.outputs[1]
        decoded = adpcm_app.decode(stream)
        original = gen.pcm_waveform(num_samples, seed=7).astype(np.int32)
        error = np.abs(decoded[200:].astype(np.int32) - original[200:])
        assert float(np.mean(error)) < 600  # lossy but tracking

    def test_odd_sample_count_rejected(self):
        with pytest.raises(ReproError):
            adpcm_encode_workload(1001)

    def test_faulting_sizes_correct(self):
        # 8192 samples = 16 KB in + 4 KB out: exceeds the DP-RAM.
        result = run_vim(System(), adpcm_encode_workload(8192, seed=4))
        result.verify()
        assert result.measurement.counters.page_faults > 0


class TestIdeaDecrypt:
    def test_vim_decrypt_recovers_plaintext(self):
        run_vim(System(), idea_workload(512, seed=5, decrypt=True)).verify()

    def test_same_core_both_directions(self):
        enc = idea_workload(256, seed=1)
        dec = idea_workload(256, seed=1, decrypt=True)
        assert enc.bitstream.name == dec.bitstream.name
        assert enc.params != dec.params  # only the schedule differs

    def test_hw_encrypt_then_hw_decrypt_is_identity(self):
        plaintext_workload = idea_workload(512, seed=8)
        encrypted = run_vim(System(), plaintext_workload)
        encrypted.verify()
        # Feed the hardware ciphertext through the hardware decryptor.
        key = gen.idea_key(seed=8)
        inv = idea_app.invert_key(idea_app.expand_key(key))
        from repro.core.runner import ObjectSpec, WorkloadSpec
        from repro.coproc.kernels import idea as idea_core
        from repro.os.vim.objects import Direction

        ciphertext = encrypted.outputs[1]
        roundtrip = WorkloadSpec(
            name="idea-roundtrip",
            bitstream=idea_core.bitstream(),
            objects=(
                ObjectSpec(0, "ct", Direction.IN, len(ciphertext), ciphertext),
                ObjectSpec(1, "pt", Direction.OUT, len(ciphertext)),
            ),
            params=(len(ciphertext) // 8, *inv),
            sw_cycles=idea_app.sw_cycles(len(ciphertext)),
            reference=lambda: {1: plaintext_workload.objects[0].data},
        )
        run_vim(System(), roundtrip).verify()

    @given(
        blocks=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=10, deadline=None)
    def test_decrypt_property(self, blocks, seed):
        run_vim(
            System(), idea_workload(blocks * 8, seed=seed, decrypt=True)
        ).verify()
