"""Unit tests for bit-stream descriptors."""

import pytest

from repro.coproc.bitstream import Bitstream
from repro.coproc.kernels.adpcm import AdpcmDecodeCore
from repro.coproc.kernels import adpcm, idea, vector_add
from repro.errors import FpgaError
from repro.hw.fpga import PldResources
from repro.sim.time import mhz


class TestValidation:
    def test_empty_bitstream_rejected(self):
        with pytest.raises(FpgaError):
            Bitstream(
                name="bad",
                core_factory=AdpcmDecodeCore,
                core_frequency=mhz(40.0),
                resources=PldResources(1, 1),
                length_bytes=0,
            )

    def test_interface_slower_than_core_rejected(self):
        with pytest.raises(FpgaError):
            Bitstream(
                name="bad",
                core_factory=AdpcmDecodeCore,
                core_frequency=mhz(40.0),
                interface_frequency=mhz(10.0),
                resources=PldResources(1, 1),
            )


class TestDomains:
    def test_adpcm_is_single_domain(self):
        # "The adpcmdecode coprocessor and the IMU are running at the
        # frequency of 40MHz" (§4.1).
        bs = adpcm.bitstream()
        assert bs.single_domain
        assert bs.core_frequency.mhz == pytest.approx(40.0)

    def test_idea_is_dual_domain(self):
        # "A complex coprocessor core running at 6MHz ... The IMU and
        # IDEA's memory subsystem are running at 24MHz" (§4.1).
        bs = idea.bitstream()
        assert not bs.single_domain
        assert bs.core_frequency.mhz == pytest.approx(6.0)
        assert bs.iface_frequency.mhz == pytest.approx(24.0)

    def test_iface_frequency_defaults_to_core(self):
        bs = vector_add.bitstream()
        assert bs.iface_frequency == bs.core_frequency


class TestFactory:
    def test_build_core_returns_fresh_instances(self):
        bs = adpcm.bitstream()
        first = bs.build_core()
        second = bs.build_core()
        assert first is not second
        assert isinstance(first, AdpcmDecodeCore)
