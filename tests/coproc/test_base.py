"""Unit tests for the coprocessor FSM base class."""

import pytest

from repro.coproc.base import Coprocessor
from repro.errors import CoprocessorError
from tests.helpers import ScriptCore, make_direct_rig, make_imu_rig


class TestLifecycle:
    def test_core_idles_until_start(self):
        rig = make_imu_rig([("compute", 1)])
        rig.domain.start()
        rig.engine.advance(10 * rig.domain.period_ps)
        rig.domain.stop()
        assert not rig.core.started
        assert rig.core.cycles == 0

    def test_start_begins_behavior(self):
        rig = make_imu_rig([("compute", 3)])
        rig.run()
        assert rig.core.started
        assert rig.core.finished

    def test_finish_asserts_cp_fin(self):
        rig = make_imu_rig([("compute", 1)])
        rig.run()
        assert rig.imu.ports.cp_fin.value == 1

    def test_cycles_counted_per_tick(self):
        rig = make_imu_rig([("compute", 5)])
        rig.run()
        # 5 compute yields + the final generator return tick.
        assert rig.core.cycles == 6

    def test_reset_allows_rerun(self):
        rig = make_imu_rig([("compute", 2)])
        rig.run()
        rig.core.reset()
        assert not rig.core.started
        assert not rig.core.finished
        assert rig.core.cycles == 0

    def test_unbound_core_rejects_tick(self):
        core = ScriptCore([("compute", 1)])
        with pytest.raises(CoprocessorError):
            core.tick()

    def test_behavior_must_be_overridden(self):
        core = Coprocessor()
        with pytest.raises(NotImplementedError):
            next(core.behavior())

    def test_ticks_after_finish_are_noops(self):
        rig = make_imu_rig([("compute", 1)])
        rig.run()
        cycles = rig.core.cycles
        rig.core.tick()
        assert rig.core.cycles == cycles


class TestParamHelpers:
    def test_read_param_via_imu_uses_param_page(self):
        from repro.coproc.ports import PARAM_OBJECT

        rig = make_imu_rig([("param", 2)])
        rig.imu.tlb.insert(PARAM_OBJECT, 0, 0)
        rig.dpram.write_word(8, 1234)
        rig.run()
        assert rig.core.results == [1234]

    def test_read_param_via_direct_registers(self):
        engine, _, iface, core, domain = make_direct_rig([("param", 1)])
        iface.param_regs = [5, 6]
        iface.start_coprocessor()
        domain.start()
        engine.run_until(
            lambda: core.finished, max_time_ps=1_000 * domain.period_ps
        )
        domain.stop()
        assert core.results == [6]

    def test_missing_direct_param_rejected(self):
        engine, _, iface, core, domain = make_direct_rig([("param", 3)])
        iface.param_regs = [1]
        iface.start_coprocessor()
        domain.start()
        with pytest.raises(CoprocessorError):
            engine.run_until(
                lambda: core.finished, max_time_ps=1_000 * domain.period_ps
            )
        domain.stop()

    def test_release_params_noop_on_direct(self):
        engine, _, iface, core, domain = make_direct_rig([("release_params",)])
        iface.param_regs = [0]
        iface.start_coprocessor()
        domain.start()
        engine.run_until(
            lambda: core.finished, max_time_ps=1_000 * domain.period_ps
        )
        domain.stop()
        assert core.finished
        assert iface.ports.cp_param_done.value == 0
