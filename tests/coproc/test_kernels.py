"""Functional tests of the coprocessor kernels through the full stack.

Every kernel runs through the real DP-RAM-mediated path (VIM system)
and through the direct baseline, and is compared bit-exactly against
the pure-software reference — the core functional-equivalence claim of
the reproduction.
"""

import numpy as np
import pytest

from repro.core.drivers import adpcm_workload, idea_workload, vector_add_workload
from repro.core.runner import run_typical, run_vim
from repro.core.system import System


class TestVectorAddCore:
    def test_vim_matches_reference(self, vadd_workload):
        result = run_vim(System(), vadd_workload)
        result.verify()

    def test_typical_matches_reference(self, vadd_workload):
        result = run_typical(System(), vadd_workload)
        result.verify()

    def test_wrapping_addition(self):
        # Hardware adders wrap modulo 2^32; verify via a direct run.
        workload = vector_add_workload(8, seed=2)
        result = run_vim(System(), workload)
        a = np.frombuffer(workload.objects[0].data, dtype="<u4")
        b = np.frombuffer(workload.objects[1].data, dtype="<u4")
        c = np.frombuffer(result.outputs[2], dtype="<u4")
        assert (c == (a + b)).all()  # numpy uint32 wraps too

    def test_faulting_sizes_still_correct(self, vadd_workload_large):
        # 3 x 8 KB objects on a 16 KB DP-RAM: heavy fault traffic.
        result = run_vim(System(), vadd_workload_large)
        result.verify()
        assert result.measurement.counters.page_faults > 0


class TestAdpcmCore:
    def test_vim_matches_reference(self, adpcm_small):
        result = run_vim(System(), adpcm_small)
        result.verify()

    def test_output_is_four_times_input(self, adpcm_small):
        result = run_vim(System(), adpcm_small)
        in_size = adpcm_small.objects[0].size
        assert len(result.outputs[1]) == 4 * in_size

    def test_faulting_run_matches_reference(self):
        result = run_vim(System(), adpcm_workload(4 * 1024, seed=9))
        result.verify()
        assert result.measurement.counters.page_faults > 0

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_seeds_change_streams_not_correctness(self, seed):
        workload = adpcm_workload(512, seed=seed)
        run_vim(System(), workload).verify()


class TestIdeaCore:
    def test_vim_matches_reference(self, idea_small):
        result = run_vim(System(), idea_small)
        result.verify()

    def test_typical_matches_reference(self, idea_small):
        result = run_typical(System(), idea_small)
        result.verify()

    def test_ciphertext_differs_from_plaintext(self, idea_small):
        result = run_vim(System(), idea_small)
        assert result.outputs[1] != idea_small.objects[0].data

    def test_dual_domain_faulting_run(self):
        # Cross-clock-domain core under fault pressure.
        result = run_vim(System(), idea_workload(16 * 1024, seed=4))
        result.verify()
        assert result.measurement.counters.page_faults > 0

    def test_single_block(self):
        run_vim(System(), idea_workload(8, seed=6)).verify()
