"""Unit tests for the CP_* port bundle."""

from repro.coproc.ports import PARAM_OBJECT, CoprocessorPorts


class TestIssue:
    def test_read_issue_drives_lines(self):
        ports = CoprocessorPorts()
        ports.issue(obj=3, addr=0x40, write=False, size=2)
        assert ports.cp_obj.value == 3
        assert ports.cp_addr.value == 0x40
        assert ports.cp_size.value == 2
        assert ports.cp_wr.value == 0
        assert ports.cp_access.value == 1

    def test_write_issue_drives_data(self):
        ports = CoprocessorPorts()
        ports.issue(obj=1, addr=0, write=True, data=0xABCD)
        assert ports.cp_wr.value == 1
        assert ports.cp_dout.value == 0xABCD

    def test_each_issue_bumps_request_id(self):
        ports = CoprocessorPorts()
        first = ports.cp_req.value
        ports.issue(0, 0, False)
        ports.issue(0, 4, False)
        assert ports.cp_req.value == (first + 2) & 0xFFFF

    def test_request_id_wraps(self):
        ports = CoprocessorPorts()
        ports.cp_req.set(0xFFFF)
        ports.issue(0, 0, False)
        assert ports.cp_req.value == 0

    def test_retire_deasserts_access(self):
        ports = CoprocessorPorts()
        ports.issue(0, 0, False)
        ports.retire()
        assert ports.cp_access.value == 0

    def test_write_data_masked_to_bus_width(self):
        ports = CoprocessorPorts()
        ports.issue(0, 0, True, data=0x1_2345_6789)
        assert ports.cp_dout.value == 0x2345_6789


class TestConstants:
    def test_param_object_outside_user_range(self):
        # User object ids are 0..254; 255 is the parameter page.
        assert PARAM_OBJECT == 0xFF

    def test_default_access_size_is_word(self):
        assert CoprocessorPorts().cp_size.value == 4
