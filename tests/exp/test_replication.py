"""Unit tests for the replication layer and the ``cv`` band policy.

The statistical replication contract, piece by piece: derived seeds,
the mean/CV summary math, the replicated cell path's row shape, the
seed-blind replica alignment, and the variance-derived tolerance bands
that ``repro diff --bands cv`` classifies against.  The end-to-end
version (two disjoint seed sets, pass; injected cost regression, fail)
lives in the CI ``replication-gate`` job — these are the fast local
pieces.
"""

from dataclasses import replace

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.exp import run_sweep
from repro.exp.cell import replicate_seed, run_cell
from repro.exp.diff import (
    BANDS,
    CV_BAND_SIGMA,
    METRICS,
    banded_delta,
    diff_caches,
    diff_rows,
    load_side,
)
from repro.exp.results import REPLICATED_COLUMNS, replicate_summary
from repro.exp.spec import CellConfig, SweepSpec, replica_hash

#: A cheap replicable cell: 1 KB vadd is deterministic per seed but
#: its dataset (and thus nothing timing-visible) varies across seeds.
CELL = CellConfig(app="vadd", input_bytes=1024)

#: A cell whose timing genuinely varies with the seed: the synthetic
#: pattern's fault ordering depends on the drawn addresses.
SYN_CELL = CellConfig(
    app="synthetic", input_bytes=4 * 1024,
    dpram_bytes=2 * 1024, page_bytes=512,
    syn_locality_pct=50,
)


class TestReplicateSummary:
    def test_mean_and_sample_cv(self):
        mean, cv = replicate_summary([2.0, 4.0, 6.0])
        assert mean == pytest.approx(4.0)
        # Sample std (ddof=1) of [2, 4, 6] is 2.0, so CV = 2/4.
        assert cv == pytest.approx(0.5)

    def test_single_value_has_zero_cv(self):
        assert replicate_summary([3.5]) == (3.5, 0.0)

    def test_zero_mean_has_zero_cv(self):
        assert replicate_summary([-1.0, 1.0]) == (0.0, 0.0)

    def test_empty_raises(self):
        with pytest.raises(ReproError, match="at least one value"):
            replicate_summary([])


class TestReplicateSeed:
    def test_replicate_zero_is_the_cell_seed(self):
        config = replace(CELL, seed=42, replicates=3)
        assert replicate_seed(config, 0) == 42

    def test_stride_gives_distinct_seeds(self):
        config = replace(CELL, seed=1, replicates=5)
        seeds = [replicate_seed(config, k) for k in range(5)]
        assert len(set(seeds)) == 5

    def test_index_out_of_range_raises(self):
        config = replace(CELL, replicates=2)
        with pytest.raises(ReproError, match="replicate index"):
            replicate_seed(config, 2)
        with pytest.raises(ReproError, match="replicate index"):
            replicate_seed(config, -1)


class TestReplicatedCellPath:
    def test_primary_columns_match_unreplicated_run(self):
        single = run_cell(CELL)
        replicated = run_cell(replace(CELL, replicates=3))
        # Replicate 0 runs the cell's own seed, so every primary
        # column is byte-for-byte the unreplicated row's.
        assert replicated.vim_ms == single.vim_ms
        assert replicated.page_faults == single.page_faults
        assert replicated.workload == single.workload

    def test_summary_columns_cover_every_replicated_metric(self):
        row = run_cell(replace(SYN_CELL, replicates=3))
        for name in REPLICATED_COLUMNS:
            assert getattr(row, f"{name}_mean") is not None
            assert getattr(row, f"{name}_cv") is not None
        # The synthetic pattern's timing varies across seeds, so at
        # least one CV is genuinely nonzero.
        assert any(
            getattr(row, f"{name}_cv") > 0.0 for name in REPLICATED_COLUMNS
        )

    def test_unreplicated_rows_autofill_exact_summaries(self):
        row = run_cell(CELL)
        assert row.vim_ms_mean == row.vim_ms
        assert row.vim_ms_cv == 0.0
        assert row.page_faults_mean == float(row.page_faults)

    def test_row_is_keyed_by_the_replicated_config(self):
        config = replace(CELL, replicates=2)
        row = run_cell(config)
        assert row.config == config
        assert row.key == config.key()
        assert row.label == config.label()

    def test_workload_override_is_refused(self):
        from repro.exp.cell import build_workload

        workload = build_workload(CELL)
        with pytest.raises(ReproError, match="workload override"):
            run_cell(replace(CELL, replicates=2), workload)


class TestReplicaHash:
    def test_seed_blind(self):
        assert replica_hash(replace(CELL, seed=1)) == replica_hash(
            replace(CELL, seed=1001)
        )

    def test_engine_blind(self):
        assert replica_hash(replace(CELL, engine="fast")) == replica_hash(
            replace(CELL, engine="reference")
        )

    def test_other_axes_fork_the_hash(self):
        assert replica_hash(CELL) != replica_hash(replace(CELL, policy="lru"))

    def test_distinct_from_config_hash_payload(self):
        # A replica hash must never collide namespaces with the config
        # hash of the same cell (both are 16-hex digests).
        from repro.exp.spec import config_hash

        assert replica_hash(CELL) != config_hash(CELL)


class TestBandedDelta:
    def _rows(self, base_cv: float, drift: float):
        base = run_cell(replace(SYN_CELL, replicates=2))
        base = replace(base, vim_ms_cv=base_cv)
        current = replace(
            base, vim_ms_mean=base.vim_ms_mean * (1.0 + drift)
        )
        return base, current

    def test_within_cv_band_passes(self):
        base, current = self._rows(base_cv=0.02, drift=0.05)
        delta = banded_delta(METRICS["vim_ms"], base, current)
        # Band is 3 * 0.02 = 6% relative; a 5% drift is inside.
        assert not delta.regressed
        assert CV_BAND_SIGMA == 3.0

    def test_beyond_cv_band_regresses(self):
        base, current = self._rows(base_cv=0.01, drift=0.05)
        delta = banded_delta(METRICS["vim_ms"], base, current)
        assert delta.regressed

    def test_deterministic_metric_collapses_to_exact(self):
        base, current = self._rows(base_cv=0.0, drift=1e-9)
        delta = banded_delta(METRICS["vim_ms"], base, current)
        assert delta.regressed

    def test_unreplicated_metric_uses_raw_tolerance(self):
        base, _ = self._rows(base_cv=0.5, drift=0.0)
        current = replace(base, evictions=base.evictions + 1)
        delta = banded_delta(METRICS["evictions"], base, current)
        # evictions carries no CV column: the 0.5 CV must not leak.
        assert delta.regressed


class TestCvAlignment:
    def _sweep(self, tmp_path, name, seed, replicates=2):
        spec = SweepSpec(
            apps=("vadd",), input_bytes=(1024,), seeds=(seed,),
            policies=("fifo", "lru"), replicates=replicates,
        )
        run_sweep(spec, cache_dir=tmp_path / name)
        return tmp_path / name

    def test_disjoint_seed_sets_align_and_pass(self, tmp_path):
        a = self._sweep(tmp_path, "a", seed=1)
        b = self._sweep(tmp_path, "b", seed=1001)
        exact = diff_caches(a, b)
        assert not exact.cells  # config hashes differ: nothing matches
        banded = diff_caches(a, b, bands="cv")
        assert len(banded.cells) == 2
        assert not banded.has_regressions

    def test_seed_axis_within_one_run_is_refused(self, tmp_path):
        spec = SweepSpec(apps=("vadd",), input_bytes=(1024,), seeds=(1, 2))
        run_sweep(spec, cache_dir=tmp_path / "axis")
        side = load_side(tmp_path / "axis")
        with pytest.raises(ReproError, match="differing only by seed"):
            diff_rows(side, side, bands="cv")

    def test_unknown_band_policy_is_refused(self, tmp_path):
        a = self._sweep(tmp_path, "a", seed=1)
        with pytest.raises(ReproError, match="unknown band policy"):
            diff_caches(a, a, bands="sigma")
        assert BANDS == ("exact", "cv")


class TestCli:
    def test_replicates_with_preset_is_refused(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "sweep", "--preset", "smoke", "--replicates", "3",
                "--cache", str(tmp_path / "cache"),
            ])
        assert excinfo.value.code == 2
        assert "--preset" in capsys.readouterr().err

    def test_sweep_console_gains_summary_columns(self, tmp_path, capsys):
        assert main([
            "sweep", "--app", "vadd", "--kb", "1", "--replicates", "2",
            "--cache", str(tmp_path / "cache"),
        ]) == 0
        out = capsys.readouterr().out
        assert "ms mean" in out
        assert "ms CV" in out
        assert "faults mean" in out

    def test_diff_bands_cv_exits_clean_across_seed_sets(
        self, tmp_path, capsys
    ):
        for name, seed in (("a", "1"), ("b", "1001")):
            assert main([
                "sweep", "--app", "vadd", "--kb", "1",
                "--seed", seed, "--replicates", "2",
                "--cache", str(tmp_path / name),
            ]) == 0
        assert main([
            "diff", str(tmp_path / "a"), str(tmp_path / "b"),
            "--bands", "cv",
        ]) == 0
        out = capsys.readouterr().out
        assert "bands=cv" in out
