"""Cache migration behaviour across ``CACHE_VERSION`` bumps.

A version bump (v4 → v5 added the replication summary columns and the
synthetic-pattern fields) must degrade *loudly and legibly*: old
entries classify as ``"stale-version"`` — recognisably "re-run me",
never "corrupt" — and a merge fed nothing but stale entries fails with
an explicit error instead of writing an empty cache that a later
report would misdiagnose.
"""

import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.exp import run_sweep
from repro.exp.cache import iter_classified
from repro.exp.merge import merge_into
from repro.exp.spec import CACHE_VERSION, SweepSpec

#: The previous on-disk schema version, as real pre-bump caches have.
OLD_VERSION = CACHE_VERSION - 1

#: One cheap cell, used wherever a genuine current-version entry or a
#: downgraded copy of one is needed.
SPEC = SweepSpec(apps=("vadd",), input_bytes=(1024,))


def _entry_paths(root):
    return sorted(root.glob("*.json"))


@pytest.fixture()
def current_cache(tmp_path):
    """A real cache directory holding one current-version entry."""
    cache_dir = tmp_path / "current"
    run_sweep(SPEC, cache_dir=cache_dir)
    return cache_dir


def _downgrade(path) -> None:
    """Rewrite a real entry as its previous-version ancestor."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    payload["version"] = OLD_VERSION
    # Strip the columns the bump introduced, as a real v4 file lacks
    # them (CellResult.from_dict must not be what saves us here —
    # classification happens before the row parse is trusted).
    for column in list(payload["result"]):
        if column.endswith(("_mean", "_cv")):
            del payload["result"][column]
    path.write_text(json.dumps(payload), encoding="utf-8")


class TestClassification:
    def test_old_version_entry_is_stale_not_corrupt(self, current_cache):
        _downgrade(_entry_paths(current_cache)[0])
        [(path, status, result)] = iter_classified(current_cache)
        assert status == "stale-version"
        assert result is None

    def test_minimal_old_payload_is_stale(self, tmp_path):
        # Even a hand-written ancestor with an unparsable result body
        # counts as stale: the version field alone tells the story.
        (tmp_path / "deadbeefdeadbeef.json").write_text(
            json.dumps({"version": OLD_VERSION, "result": {}}),
            encoding="utf-8",
        )
        [(_, status, result)] = iter_classified(tmp_path)
        assert status == "stale-version"
        assert result is None

    def test_corrupt_json_is_invalid_not_stale(self, tmp_path):
        (tmp_path / "broken.json").write_text("{not json", encoding="utf-8")
        [(_, status, result)] = iter_classified(tmp_path)
        assert status == "invalid"
        assert result is None

    def test_current_entry_is_ok(self, current_cache):
        [(_, status, result)] = iter_classified(current_cache)
        assert status == "ok"
        assert result is not None


class TestMergeDegradesLoudly:
    def test_all_stale_source_fails_with_explicit_error(
        self, current_cache, tmp_path
    ):
        _downgrade(_entry_paths(current_cache)[0])
        with pytest.raises(ReproError, match="nothing to merge"):
            merge_into(tmp_path / "merged", [current_cache])
        # A failed merge leaves no half-written destination behind.
        assert not (tmp_path / "merged").exists()

    def test_cli_merge_exits_nonzero_on_all_stale(
        self, current_cache, tmp_path, capsys
    ):
        _downgrade(_entry_paths(current_cache)[0])
        with pytest.raises(SystemExit) as excinfo:
            main(["merge", str(tmp_path / "merged"), str(current_cache)])
        assert excinfo.value.code == 2
        assert "nothing to merge" in capsys.readouterr().err

    def test_mixed_merge_skips_stale_and_reports_it(
        self, current_cache, tmp_path
    ):
        stale_dir = tmp_path / "stale"
        run_sweep(SPEC, cache_dir=stale_dir)
        _downgrade(_entry_paths(stale_dir)[0])
        summary = merge_into(
            tmp_path / "merged", [current_cache, stale_dir]
        )
        assert summary.written == 1
        assert summary.skipped == 1
        # The merged cache holds exactly the current-version entry.
        [(_, status, result)] = iter_classified(tmp_path / "merged")
        assert status == "ok"
        assert result is not None
