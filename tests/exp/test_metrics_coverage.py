"""Regression gate: ``diff.METRICS`` must cover every numeric column.

``repro diff`` only compares the columns enumerated in
:data:`repro.exp.diff.METRICS`, so a :class:`CellResult` column that
never gets a ``Metric`` entry is silently invisible to the regression
gate — the exact failure mode that once hid ``compulsory_loads``,
``bytes_to_dpram``/``bytes_from_dpram`` and the ``typical_*`` columns
(and would have hidden every ``*_mean``/``*_cv`` replication column).

This suite derives the required set from the dataclass itself, so any
future numeric column fails here until someone adds an explicit entry
with a deliberate ``higher_is_worse`` direction.
"""

import dataclasses

from repro.exp.diff import METRICS
from repro.exp.results import REPLICATED_COLUMNS, CellResult

#: CellResult columns that are *not* comparable scalar metrics:
#: identity/bookkeeping fields, flags, and the per-tenant breakdown
#: tuples (their totals are already covered by the scalar columns).
NON_METRIC_FIELDS = {
    "config",
    "key",
    "label",
    "workload",
    "typical_fits",
    "tenant_labels",
    "tenant_ms",
    "tenant_faults",
    "tenant_evictions",
    "tenant_steals",
    "tenant_pages_lost",
}

#: Type annotations that mark a comparable numeric scalar column.
NUMERIC_TYPES = {"int", "float", "float | None"}


def _numeric_columns() -> set:
    """Every CellResult column a diff metric must exist for."""
    columns = set()
    for field in dataclasses.fields(CellResult):
        if field.name in NON_METRIC_FIELDS:
            continue
        assert str(field.type) in NUMERIC_TYPES, (
            f"CellResult.{field.name} has type {field.type!r}: either add "
            "it to NON_METRIC_FIELDS (with justification) or teach "
            "diff.METRICS to compare it"
        )
        columns.add(field.name)
    return columns


def test_every_numeric_column_has_a_metric():
    covered = {metric.field for metric in METRICS.values()}
    missing = _numeric_columns() - covered
    assert not missing, (
        f"CellResult columns invisible to `repro diff`: {sorted(missing)} — "
        "add explicit Metric entries (with a deliberate higher_is_worse "
        "direction) to repro.exp.diff.METRICS"
    )


def test_metrics_point_at_real_columns():
    # The inverse direction: a Metric whose field was renamed away
    # would silently read nothing via getattr defaults.
    columns = {field.name for field in dataclasses.fields(CellResult)}
    for name, metric in METRICS.items():
        assert metric.field in columns, (
            f"METRICS[{name!r}] reads CellResult.{metric.field}, "
            "which does not exist"
        )


def test_replicated_columns_covered_in_both_flavours():
    # Every replicated base column must contribute its _mean and _cv
    # summary columns to the gate, or `--bands cv` would compare
    # primaries while ignoring the statistics that justify the bands.
    covered = {metric.field for metric in METRICS.values()}
    for base in REPLICATED_COLUMNS:
        assert f"{base}_mean" in covered
        assert f"{base}_cv" in covered


def test_metric_directions_are_deliberate():
    # Spot-check the handful of metrics whose direction is not
    # "smaller is better": speedups improve upward, and churn counters
    # with no inherent direction are informational (None).
    assert METRICS["speedup"].higher_is_worse is False
    assert METRICS["typical_speedup"].higher_is_worse is False
    assert METRICS["vim_speedup_mean"].higher_is_worse is False
    assert METRICS["tlb_hit_rate"].higher_is_worse is False
    assert METRICS["prefetches"].higher_is_worse is None
    assert METRICS["vim_ms"].higher_is_worse is True
