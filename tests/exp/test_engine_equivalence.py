"""Backend equivalence: fast and reference cells must be byte-equal.

The whole fast-backend design rests on one falsifiable claim: for any
cell in the design space, the fast engine produces the *same result
row* as the reference engine — same timing, same counters, same fault
ordering, same cache hash.  This suite checks the claim on a curated
set of known-tricky configurations (dual-domain IDEA, faulting LRU,
DMA descriptors, contention, overlapped prefetch) plus a seeded random
sample of the axis space, so every run also probes a reproducible but
arbitrary corner.

``repro diff`` enforces the same property in CI over the smoke grid;
this suite is the fast, local, always-on version.
"""

import random
from dataclasses import replace

import pytest

from repro.exp.cell import run_cell
from repro.exp.spec import CellConfig

#: Hand-picked configurations covering each fast-path mechanism:
#: single-domain burst + wrapper hook, dual-domain bare hook, TLB
#: pressure (faults and evictions mid-burst), DMA one-shot completions
#: racing clock edges, overlapped prefetch, the pipelined IMU's
#: different translation latency, and the multi-tenant session
#: interleaving (clock stop/start per interrupt, skip-budget carry).
CURATED = [
    CellConfig(app="adpcm", input_bytes=2 * 1024),
    CellConfig(app="adpcm", input_bytes=4 * 1024, policy="lru", tlb_capacity=4),
    CellConfig(app="idea", input_bytes=2 * 1024),
    CellConfig(app="vadd", input_bytes=4 * 1024, transfer="dma"),
    CellConfig(
        app="vadd", input_bytes=4 * 1024,
        prefetch="overlapped", prefetch_depth=2, transfer="dma",
    ),
    CellConfig(app="adpcm", input_bytes=2 * 1024, pipelined_imu=True),
    CellConfig(app="adpcm", input_bytes=2 * 1024, with_typical=True),
    CellConfig(
        app="adpcm", input_bytes=2 * 1024,
        tenants=2, tenant_mix="adpcm+idea", tenant_repeats=2,
    ),
    # The synthetic app: the only workload whose access pattern is
    # non-sequential and phase-changing, so the fast-forward grant
    # path sees faults landing at irregular word offsets.  The DP-RAM
    # override forces faulting at small (fast) input sizes.
    CellConfig(app="synthetic", input_bytes=4 * 1024),
    CellConfig(
        app="synthetic", input_bytes=8 * 1024,
        dpram_bytes=4 * 1024, page_bytes=1024, policy="lru",
        syn_locality_pct=60, syn_read_pct=50, syn_phases=3,
    ),
    CellConfig(
        app="synthetic", input_bytes=8 * 1024,
        dpram_bytes=4 * 1024, page_bytes=512, transfer="dma",
        syn_stride=5, syn_read_pct=0,
    ),
    # tenant_repeats stays 1: the synthetic data object is INOUT, and
    # run_tenants refuses to repeat INOUT workloads (exec N+1 would see
    # exec N's writes, which the one-shot reference cannot model).
    CellConfig(
        app="synthetic", input_bytes=4 * 1024,
        dpram_bytes=4 * 1024, tenants=2,
        tenant_mix="synthetic+adpcm",
    ),
]


def _random_configs(count: int) -> list[CellConfig]:
    """A seeded sample of the axis space (small inputs, fast to run).

    The seed is fixed so failures reproduce, but the sample still
    sweeps corners no one thought to hand-pick.  Keep the generator
    stable: appending new axes is fine, reordering draws is not.
    """
    rng = random.Random(0xD47E2004)
    configs = []
    while len(configs) < count:
        tenants = rng.choice([1, 1, 1, 2])
        config = CellConfig(
            app=rng.choice(("adpcm", "idea", "vadd")),
            input_bytes=rng.choice((1024, 2048, 4096)),
            seed=rng.randrange(1, 100),
            policy=rng.choice(("fifo", "lru")),
            transfer=rng.choice(("double", "single", "dma")),
            prefetch=rng.choice(("none", "sequential", "overlapped")),
            tlb_capacity=rng.choice((None, 4, 8)),
            pipelined_imu=rng.random() < 0.25,
            tenants=tenants,
            tenant_repeats=rng.choice((1, 2)) if tenants > 1 else 1,
        )
        configs.append(config)
    return configs


def _random_synthetic_configs(count: int) -> list[CellConfig]:
    """A seeded sample of the synthetic-pattern axes.

    Separate generator (own seed) so adding synthetic draws cannot
    perturb the classic :func:`_random_configs` sample; same stability
    rule — append draws, never reorder them.
    """
    rng = random.Random(0x5E9D47E2)
    configs = []
    while len(configs) < count:
        configs.append(CellConfig(
            app="synthetic",
            input_bytes=rng.choice((2048, 4096, 8192)),
            seed=rng.randrange(1, 100),
            dpram_bytes=rng.choice((None, 4096)),
            page_bytes=rng.choice((None, 512, 1024)),
            policy=rng.choice(("fifo", "lru")),
            transfer=rng.choice(("double", "single", "dma")),
            syn_stride=rng.choice((1, 3, 7)),
            syn_locality_pct=rng.choice((0, 50, 80, 100)),
            syn_read_pct=rng.choice((0, 50, 70, 100)),
            syn_phases=rng.choice((1, 2, 4)),
        ))
    return configs


def _comparable(config: CellConfig) -> dict:
    """The full result row, minus the one field allowed to differ."""
    row = run_cell(config).to_dict()
    assert row["config"]["engine"] == config.engine
    del row["config"]["engine"]
    return row


@pytest.mark.parametrize(
    "config", CURATED + _random_configs(4) + _random_synthetic_configs(4),
    ids=lambda c: f"{c.label()}-s{c.seed}",
)
def test_fast_engine_matches_reference(config):
    reference = _comparable(replace(config, engine="reference"))
    fast = _comparable(replace(config, engine="fast"))
    assert fast == reference


def test_backends_share_cache_key_and_label():
    base = CellConfig(app="adpcm", engine="reference")
    fast = replace(base, engine="fast")
    assert base.key() == fast.key()
    assert base.label() == fast.label()
