"""Out-of-core guarantees of the store consumers (merge/diff/report).

The streaming rewrites only count if they actually stream: a ~5k-row
SQLite fixture goes through every consumer under two tripwires —

* a **live-row tripwire**: every :class:`CellResult` parsed out of the
  store is tracked by weakref, and at checkpoints during the pass the
  number still alive must stay a small constant.  A regression to
  "load everything, then process" trips it immediately (5k live rows
  vs a bound of 32);
* a **tracemalloc tripwire**: the traced allocation peak of a full
  pass stays far below the store's payload volume.

The fixture rows are synthesised (fast deterministic metrics under
real config hashing) because what is under test is the I/O shape, not
the simulator.
"""

import gc
import io
import tracemalloc
import weakref

import pytest

import repro.exp.store as store_module
from repro.exp.diff import diff_stores
from repro.exp.merge import merge_into, migrate_store
from repro.exp.report import stream_report
from repro.exp.results import CellResult
from repro.exp.spec import SweepSpec
from repro.exp.store import open_store

#: Rows in the big fixture.  ~5k distinct cells via the seed axis.
ROWS = 5000

#: Live parsed rows allowed at any checkpoint.  The streaming passes
#: hold one row per source plus a couple of temporaries; materialising
#: the fixture would put ~5000 here.
MAX_LIVE_ROWS = 32

#: Traced allocation ceiling for one full pass (bytes).  The fixture's
#: payloads alone exceed 5 MB, so a pass that loads them all cannot
#: stay under this.
MAX_TRACED_PEAK = 4 * 1024 * 1024

#: The diff's ceiling is higher: its *output* (one lean CellDiff with
#: six MetricDeltas per cell) is O(n) by design, just ~4x smaller than
#: two sides of materialised CellResults — which would blow well past
#: this bound.
MAX_DIFF_TRACED_PEAK = 16 * 1024 * 1024


def _fake_result(config) -> CellResult:
    """A deterministic synthetic row under *config*'s real hash."""
    seed = config.seed
    return CellResult(
        config=config,
        key=config.key(),
        label=config.label(),
        workload=f"synthetic-{seed}",
        sw_ms=10.0 + seed * 0.001,
        vim_ms=2.0 + seed * 0.0005,
        hw_ms=1.0,
        sw_dp_ms=0.5,
        sw_imu_ms=0.25,
        sw_other_ms=0.25 + seed * 0.0005,
        vim_speedup=(10.0 + seed * 0.001) / (2.0 + seed * 0.0005),
        page_faults=seed % 97,
        compulsory_loads=seed % 11,
        evictions=seed % 7,
        writebacks=seed % 5,
        prefetches=0,
        bytes_to_dpram=1024 * (seed % 13),
        bytes_from_dpram=512 * (seed % 13),
        tlb_hit_rate=0.9,
    )


def _grid(rows: int) -> SweepSpec:
    return SweepSpec(
        apps=("synthetic",), input_bytes=(1024,), seeds=tuple(range(rows))
    )


def _populate(path, configs):
    with open_store(path, create=True) as store:
        for config in configs:
            store.put(_fake_result(config))


@pytest.fixture(scope="module")
def big_store(tmp_path_factory):
    """One ~5k-row SQLite store, built once for the whole module."""
    path = tmp_path_factory.mktemp("outofcore") / "big.sqlite"
    _populate(path, _grid(ROWS).expand())
    return path


class _LiveRowTripwire:
    """Weakref-tracks every parsed row; trips if too many stay alive."""

    def __init__(self, real_parse_entry):
        self._parse = real_parse_entry
        self._refs = []
        self.parsed = 0
        self.max_alive = 0

    def __call__(self, payload):
        result = self._parse(payload)
        if result is not None:
            self._refs.append(weakref.ref(result))
            self.parsed += 1
            if self.parsed % 500 == 0:
                self.checkpoint()
        return result

    def checkpoint(self):
        gc.collect()
        alive = sum(1 for ref in self._refs if ref() is not None)
        self.max_alive = max(self.max_alive, alive)
        assert alive <= MAX_LIVE_ROWS, (
            f"{alive} parsed rows alive mid-pass (> {MAX_LIVE_ROWS}): "
            "the consumer is materialising the store"
        )


@pytest.fixture()
def live_rows(monkeypatch):
    """Arm the tripwire on the store layer's payload gatekeeper."""
    tripwire = _LiveRowTripwire(store_module.parse_entry)
    monkeypatch.setattr(store_module, "parse_entry", tripwire)
    return tripwire


class TestOutOfCore:
    def test_report_streams(self, big_store, live_rows):
        sink = io.StringIO()
        tracemalloc.start()
        with open_store(big_store) as store:
            rows = stream_report(store, sink, fmt="md")
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        live_rows.checkpoint()
        assert rows == ROWS
        assert live_rows.parsed >= ROWS
        assert sink.getvalue().count("\n") == ROWS + 1  # header + rule
        assert peak < MAX_TRACED_PEAK

    def test_diff_streams(self, big_store, tmp_path, live_rows):
        # A second store differing in a slice of cells, so the diff
        # has real changes to carry, not just an identical scan.
        other = tmp_path / "other.sqlite"
        _populate(other, _grid(ROWS).expand())
        with open_store(other) as store:
            from dataclasses import replace

            for config in _grid(10).expand():
                row = _fake_result(config)
                store.put(replace(row, vim_ms=row.vim_ms * 2.0))
        tracemalloc.start()
        result = diff_stores(big_store, other)
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        live_rows.checkpoint()
        assert len(result.cells) == ROWS
        assert sum(1 for cell in result.cells if cell.changed) == 10
        assert result.has_regressions  # vim_ms doubled on 10 cells
        assert peak < MAX_DIFF_TRACED_PEAK

    def test_merge_streams(self, big_store, tmp_path, live_rows):
        # Overlapping shards: rows 0..4999 plus 2500..5499 -> 5500
        # distinct cells, 2500 identical duplicates cross-checked.
        shard = tmp_path / "shard.sqlite"
        _populate(
            shard,
            SweepSpec(
                apps=("synthetic",),
                input_bytes=(1024,),
                seeds=tuple(range(2500, 5500)),
            ).expand(),
        )
        dest = tmp_path / "merged.sqlite"
        tracemalloc.start()
        summary = merge_into(dest, [big_store, shard])
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        live_rows.checkpoint()
        assert summary.written == 5500
        assert summary.identical == 2500
        assert peak < MAX_TRACED_PEAK
        with open_store(dest) as merged:
            assert len(merged) == 5500

    def test_migrate_to_json_streams(self, big_store, tmp_path, live_rows):
        dest = tmp_path / "json-cache"
        tracemalloc.start()
        summary = migrate_store(big_store, dest)
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        live_rows.checkpoint()
        assert summary.written == ROWS
        assert peak < MAX_TRACED_PEAK
        assert len(list(dest.glob("*.json"))) == ROWS
