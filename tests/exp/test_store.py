"""Tests for the result-store layer (``repro.exp.store``).

The :class:`~repro.exp.store.ResultStore` protocol is the one contract
between the sweep engine and everything that reads results back
(merge, diff, report, history), so its invariants are pinned
backend-parametrised: whatever holds for the JSON directory must hold
for SQLite, and a store migrated across backends must reproduce
byte-identical reports and the original files on the way back.
"""

import json
import random
import sqlite3

import pytest

from repro.errors import ReproError
from repro.exp import run_sweep
from repro.exp.cache import SweepCache
from repro.exp.merge import migrate_store
from repro.exp.report import report_from_cache
from repro.exp.spec import CACHE_VERSION, SweepSpec, grid_fingerprint
from repro.exp.store import (
    STORES,
    JsonDirStore,
    SqliteStore,
    is_sqlite_file,
    open_store,
    store_kind_of,
)

#: A fast 2-cell grid (1 KB vector-add, two policies).
GRID = SweepSpec(apps=("vadd",), input_bytes=(1024,), policies=("fifo", "lru"))


def _store_path(tmp_path, kind):
    return tmp_path / ("store.sqlite" if kind == "sqlite" else "store")


@pytest.fixture(params=STORES)
def populated(request, tmp_path):
    """One store per backend holding the 2-cell GRID, plus its rows."""
    path = _store_path(tmp_path, request.param)
    result = run_sweep(GRID, cache_dir=path, store_kind=request.param)
    return path, request.param, result.rows


class TestProtocolConformance:
    def test_kind_and_len(self, populated):
        path, kind, rows = populated
        with open_store(path) as store:
            assert store.kind == kind
            assert len(store) == len(rows) == 2

    def test_get_hits_modulo_engine(self, populated):
        from dataclasses import replace

        path, _kind, rows = populated
        with open_store(path) as store:
            for row in rows:
                assert store.get(row.config) == row
                # Engine is excluded from cell identity: a row priced
                # by either backend serves both.
                other = replace(row.config, engine="fast")
                hit = store.get(other)
                assert hit is not None and hit.key == row.key
            assert store.get(replace(rows[0].config, input_bytes=4096)) is None

    def test_iter_classified_key_sorted(self, populated):
        path, _kind, _rows = populated
        with open_store(path) as store:
            entries = list(store.iter_classified())
        assert [status for _o, status, _r in entries] == ["ok", "ok"]
        keys = [result.key for _o, _s, result in entries]
        assert keys == sorted(keys)

    def test_iter_report_rows_label_key_sorted(self, populated):
        path, _kind, _rows = populated
        with open_store(path) as store:
            rows = list(store.iter_report_rows())
        assert [(r.label, r.key) for r in rows] == sorted(
            (r.label, r.key) for r in rows
        )

    def test_counts_and_identical_report(self, populated):
        path, _kind, _rows = populated
        with open_store(path) as store:
            counts = store.counts()
        assert (counts.ok, counts.stale, counts.invalid) == (2, 0, 0)
        assert counts.skipped == 0 and counts.total == 2

    def test_rerun_simulates_nothing(self, populated):
        path, _kind, _rows = populated
        result = run_sweep(GRID, cache_dir=path)
        assert result.executed == 0
        assert result.cached == 2


class TestLenCountsOnlyLoadableRows:
    """Regression: ``len`` used to count every ``*.json`` file.

    On the seed, ``SweepCache.__len__`` counted directory entries, so
    a corrupt file or a stale-version row inflated the count past what
    any consumer could actually load.  The store protocol pins the
    corrected semantics on both backends.
    """

    def test_json_corrupt_and_stale_files_not_counted(self, tmp_path):
        run_sweep(GRID, cache_dir=tmp_path)
        (tmp_path / "0123456789abcdef.json").write_text("{not json")
        stale_payload = {
            "version": CACHE_VERSION - 1,
            "result": {"anything": True},
        }
        (tmp_path / "fedcba9876543210.json").write_text(
            json.dumps(stale_payload)
        )
        assert len(SweepCache(tmp_path)) == 2  # the seed said 4
        with open_store(tmp_path) as store:
            assert len(store) == 2
            counts = store.counts()
        assert counts.ok == 2
        assert counts.skipped == 2

    def test_sqlite_stale_versions_not_counted(self, tmp_path):
        path = tmp_path / "store.sqlite"
        run_sweep(GRID, cache_dir=path)
        db = sqlite3.connect(path)
        db.execute(
            "UPDATE results SET cache_version = cache_version - 1 "
            "WHERE rowid = 1"
        )
        db.commit()
        db.close()
        with open_store(path) as store:
            assert len(store) == 1
            assert store.counts().stale == 1


class TestSqliteVersioning:
    def test_identical_reput_appends_nothing(self, tmp_path):
        path = tmp_path / "store.sqlite"
        rows = run_sweep(GRID, cache_dir=path).rows
        with open_store(path, create=True) as store:
            for row in rows:
                store.put(row)
            versions = [v for _k, _l, v, _r, _res in store.iter_versions()]
        assert versions == [1, 1]

    def test_changed_payload_appends_next_version(self, tmp_path):
        from dataclasses import replace

        path = tmp_path / "store.sqlite"
        rows = run_sweep(GRID, cache_dir=path).rows
        changed = replace(rows[0], vim_ms=rows[0].vim_ms + 1.0)
        with open_store(path) as store:
            store.put(changed)
            latest = store.get(rows[0].config)
            versions = {
                key: version
                for key, _l, version, _r, _res in store.iter_versions()
            }
        assert latest == changed  # reads serve the latest version
        assert versions[rows[0].key] == 2

    def test_each_writing_open_is_one_run(self, tmp_path):
        path = tmp_path / "store.sqlite"
        run_sweep(GRID, cache_dir=path)
        run_sweep(
            SweepSpec(apps=("vadd",), input_bytes=(2048,)), cache_dir=path
        )
        with open_store(path) as store:
            runs = store.runs()
        assert [run.rows for run in runs] == [2, 1]
        assert [run.run_id for run in runs] == [1, 2]

    def test_readonly_open_records_no_run(self, tmp_path):
        path = tmp_path / "store.sqlite"
        run_sweep(GRID, cache_dir=path)
        with open_store(path) as store:
            list(store.iter_report_rows())
        with open_store(path) as store:
            assert len(store.runs()) == 1

    def test_wal_mode_enabled(self, tmp_path):
        path = tmp_path / "store.sqlite"
        run_sweep(GRID, cache_dir=path)
        db = sqlite3.connect(path)
        assert db.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        db.close()

    def test_metric_columns_match_payload(self, tmp_path):
        path = tmp_path / "store.sqlite"
        rows = run_sweep(GRID, cache_dir=path).rows
        db = sqlite3.connect(path)
        by_key = {
            key: (vim_ms, faults)
            for key, vim_ms, faults in db.execute(
                "SELECT key, vim_ms, page_faults FROM results"
            )
        }
        db.close()
        for row in rows:
            assert by_key[row.key] == (row.vim_ms, row.page_faults)

    def test_json_store_has_no_history(self, tmp_path):
        run_sweep(GRID, cache_dir=tmp_path)
        with open_store(tmp_path) as store:
            assert store.runs() == ()
            with pytest.raises(ReproError, match="repro migrate"):
                list(store.iter_versions())


class TestOpenStore:
    def test_detects_existing_backends(self, tmp_path):
        sqlite_path = tmp_path / "odd-name"  # magic beats the suffix
        run_sweep(GRID, cache_dir=sqlite_path, store_kind="sqlite")
        json_path = tmp_path / "cache"
        run_sweep(GRID, cache_dir=json_path)
        assert is_sqlite_file(sqlite_path)
        assert store_kind_of(sqlite_path) == "sqlite"
        assert store_kind_of(json_path) == "json"
        assert isinstance(open_store(sqlite_path), SqliteStore)
        assert isinstance(open_store(json_path), JsonDirStore)

    def test_missing_path_infers_kind_from_suffix(self, tmp_path):
        assert store_kind_of(tmp_path / "x.sqlite") == "sqlite"
        assert store_kind_of(tmp_path / "x.sqlite3") == "sqlite"
        assert store_kind_of(tmp_path / "x.db") == "sqlite"
        assert store_kind_of(tmp_path / "x") == "json"

    def test_missing_path_without_create_raises(self, tmp_path):
        with pytest.raises(ReproError, match="does not exist"):
            open_store(tmp_path / "missing")

    def test_kind_contradiction_is_an_error(self, tmp_path):
        run_sweep(GRID, cache_dir=tmp_path / "cache")
        with pytest.raises(ReproError, match="is a json store"):
            open_store(tmp_path / "cache", kind="sqlite")

    def test_row_dump_is_not_a_store(self, tmp_path):
        dump = tmp_path / "rows.json"
        dump.write_text("[]")
        assert store_kind_of(dump) is None
        with pytest.raises(ReproError, match="not a result store"):
            open_store(dump)

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="unknown store kind"):
            open_store(tmp_path / "x", kind="parquet", create=True)

    def test_sweep_store_contradiction_fails_before_simulating(
        self, tmp_path
    ):
        run_sweep(GRID, cache_dir=tmp_path / "cache")
        with pytest.raises(ReproError, match="is a json store"):
            run_sweep(GRID, cache_dir=tmp_path / "cache", store_kind="sqlite")


#: Seeded-random grids for the migration round-trip property (same
#: regression-corpus convention as test_property_invariants: append,
#: never reorder).
def _random_specs(count):
    rng = random.Random(0xC0FFEE)
    pools = {
        "apps": ("vadd", "synthetic"),
        "input_bytes": (1024, 2048),
        "policies": ("fifo", "lru"),
        "seeds": (1, 2),
    }
    for _ in range(count):
        yield SweepSpec(**{
            axis: tuple(
                rng.sample(values, rng.randint(1, len(values)))
            )
            for axis, values in pools.items()
        })


class TestMigrationRoundTrip:
    """JSON -> SQLite -> JSON must be lossless to the byte."""

    @pytest.mark.parametrize(
        "spec", _random_specs(5), ids=lambda s: grid_fingerprint(s.expand())
    )
    def test_round_trip_property(self, tmp_path, spec):
        original = tmp_path / "original"
        run_sweep(spec, cache_dir=original)
        sqlite_path = tmp_path / "migrated.sqlite"
        back = tmp_path / "back"
        migrate_store(original, sqlite_path)
        migrate_store(sqlite_path, back)
        read = {
            path.name: path.read_bytes()
            for path in sorted(original.glob("*.json"))
        }
        assert read == {
            path.name: path.read_bytes()
            for path in sorted(back.glob("*.json"))
        }
        # Same rows in, same report out — and the same fingerprint, so
        # the CI cache key is invariant under migration.
        report_md = report_from_cache(original)
        assert report_from_cache(sqlite_path) == report_md
        assert report_from_cache(back) == report_md
        from repro.exp.spec import fingerprint_from_keys

        expected = grid_fingerprint(spec.expand())
        for path in (original, sqlite_path, back):
            with open_store(path) as store:
                keys = [r.key for r in store.iter_rows()]
            assert keys == sorted(keys)
            assert fingerprint_from_keys(keys) == expected

    def test_migrated_fingerprint_matches(self, tmp_path):
        from repro.exp.spec import fingerprint_from_keys

        original = tmp_path / "original"
        run_sweep(GRID, cache_dir=original)
        sqlite_path = tmp_path / "migrated.sqlite"
        migrate_store(original, sqlite_path)
        with open_store(original) as a, open_store(sqlite_path) as b:
            fp_a = fingerprint_from_keys(r.key for r in a.iter_rows())
            fp_b = fingerprint_from_keys(r.key for r in b.iter_rows())
        assert fp_a == fp_b == grid_fingerprint(GRID.expand())
