"""Tests for the lease board (``repro.exp.leasing``).

The board is the whole fault-tolerance protocol of the sweep service
— expiry/re-issue, backoff, bounded attempts — kept free of HTTP and
wall clocks, so every timing property here runs against an injected
clock in microseconds of real time.
"""

import pytest

from repro.exp.leasing import BoardCounts, LeaseBoard


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _board(**kwargs):
    clock = FakeClock()
    events = []
    board = LeaseBoard(clock=clock, on_event=events.append, **kwargs)
    return board, clock, events


def _add_cells(board, *keys):
    for key in keys:
        assert board.add(key, {"app": "synthetic", "seed": key})


class TestIntake:
    def test_add_is_idempotent(self):
        board, _clock, _events = _board()
        assert board.add("aaaa", {}) is True
        assert board.add("aaaa", {}) is False
        assert board.counts() == BoardCounts(queued=1)

    def test_add_requeues_a_failed_cell_with_fresh_budget(self):
        board, clock, _events = _board(max_attempts=1, lease_timeout=5.0)
        _add_cells(board, "aaaa")
        board.lease("w1")
        clock.advance(6.0)  # expire -> budget gone -> failed
        assert board.status_of("aaaa") == "failed"
        assert board.add("aaaa", {}) is True  # a new job asked for it
        assert board.status_of("aaaa") == "queued"
        assert board.lease("w2") is not None  # leasable immediately

    def test_done_cells_stay_done(self):
        board, _clock, _events = _board()
        _add_cells(board, "aaaa")
        board.lease("w1")
        board.mark_done("aaaa")
        assert board.add("aaaa", {}) is False
        assert board.status_of("aaaa") == "done"

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LeaseBoard(lease_timeout=0)
        with pytest.raises(ValueError):
            LeaseBoard(max_attempts=0)
        with pytest.raises(ValueError):
            LeaseBoard(backoff=-1.0)


class TestLeasing:
    def test_grants_in_sorted_key_order(self):
        board, _clock, _events = _board()
        _add_cells(board, "cccc", "aaaa", "bbbb")
        assert [board.lease("w").key for _ in range(3)] \
            == ["aaaa", "bbbb", "cccc"]
        assert board.lease("w") is None  # everything leased

    def test_lease_carries_config_and_timeout(self):
        board, _clock, _events = _board(lease_timeout=7.0)
        _add_cells(board, "aaaa")
        lease = board.lease("w1")
        assert lease.worker == "w1"
        assert lease.timeout == 7.0
        assert lease.config == {"app": "synthetic", "seed": "aaaa"}

    def test_heartbeat_extends_the_deadline(self):
        board, clock, _events = _board(lease_timeout=10.0)
        _add_cells(board, "aaaa")
        lease = board.lease("w1")
        clock.advance(8.0)
        assert board.heartbeat(lease.lease_id) is True
        clock.advance(8.0)  # 16s total: dead without the renewal
        assert board.counts().leased == 1
        assert board.heartbeat(lease.lease_id) is True

    def test_heartbeat_on_expired_lease_is_stale(self):
        board, clock, _events = _board(lease_timeout=5.0)
        _add_cells(board, "aaaa")
        lease = board.lease("w1")
        clock.advance(6.0)
        assert board.heartbeat(lease.lease_id) is False


class TestExpiryAndRetry:
    def test_expired_lease_requeues_and_reissues(self):
        board, clock, events = _board(lease_timeout=5.0, backoff=0.0)
        _add_cells(board, "aaaa")
        first = board.lease("w1")
        clock.advance(6.0)
        assert board.counts() == BoardCounts(queued=1)
        assert any("expired" in event for event in events)
        second = board.lease("w2")
        assert second.key == "aaaa"
        assert second.lease_id != first.lease_id
        assert second.worker == "w2"

    def test_backoff_schedule_doubles_per_attempt(self):
        board, clock, _events = _board(
            lease_timeout=5.0, backoff=1.0, max_attempts=4,
        )
        _add_cells(board, "aaaa")
        for expected_backoff in (1.0, 2.0, 4.0):
            assert board.lease("w") is not None
            clock.advance(5.1)  # expire the lease
            # Inside the backoff window: not leasable yet.
            assert board.lease("w") is None
            assert board.status_of("aaaa") == "queued"
            clock.advance(expected_backoff)
        assert board.lease("w") is not None  # 4th and final attempt

    def test_attempt_budget_exhaustion_fails_the_cell(self):
        board, clock, _events = _board(
            lease_timeout=5.0, backoff=0.0, max_attempts=2,
        )
        _add_cells(board, "aaaa")
        for _ in range(2):
            assert board.lease("w") is not None
            clock.advance(6.0)
        assert board.lease("w") is None
        assert board.status_of("aaaa") == "failed"
        assert "gave up after 2 attempt(s)" in board.errors()["aaaa"]

    def test_worker_reported_failure_requeues_with_backoff(self):
        board, clock, _events = _board(backoff=2.0, max_attempts=3)
        _add_cells(board, "aaaa")
        lease = board.lease("w1")
        assert board.fail(lease.lease_id, "boom") is True
        assert board.status_of("aaaa") == "queued"
        assert board.lease("w2") is None  # inside the 2s backoff
        clock.advance(2.0)
        assert board.lease("w2") is not None

    def test_fail_on_stale_lease_is_ignored(self):
        board, clock, _events = _board(lease_timeout=5.0, backoff=0.0)
        _add_cells(board, "aaaa")
        lease = board.lease("w1")
        clock.advance(6.0)
        replacement = board.lease("w2")  # re-issued to another worker
        assert board.fail(lease.lease_id, "late crash report") is False
        # The replacement lease is untouched by the stale report.
        assert board.heartbeat(replacement.lease_id) is True

    def test_error_messages_name_the_worker_and_reason(self):
        board, _clock, events = _board(max_attempts=1)
        _add_cells(board, "aaaa")
        lease = board.lease("w1")
        board.fail(lease.lease_id, "segfault")
        error = board.errors()["aaaa"]
        assert "segfault" in error
        assert "w1" in error
        assert any("requeued" in e or "failed" in e for e in events)


class TestCompletion:
    def test_task_for_resolves_historic_leases(self):
        board, clock, _events = _board(lease_timeout=5.0, backoff=0.0)
        _add_cells(board, "aaaa")
        expired = board.lease("w1")
        clock.advance(6.0)
        live = board.lease("w2")
        # Both the expired and the live lease resolve to the one task:
        # a late completion from a presumed-dead worker is ingestible.
        assert board.task_for(expired.lease_id).key == "aaaa"
        assert board.task_for(live.lease_id).key == "aaaa"
        assert board.task_for("L999-deadbeef") is None

    def test_mark_done_releases_the_lease(self):
        board, _clock, _events = _board()
        _add_cells(board, "aaaa", "bbbb")
        lease = board.lease("w1")
        board.mark_done(lease.key)
        assert board.counts() == BoardCounts(queued=1, done=1)
        assert board.heartbeat(lease.lease_id) is False

    def test_mark_failed_is_terminal(self):
        board, _clock, _events = _board()
        _add_cells(board, "aaaa")
        board.lease("w1")
        board.mark_failed("aaaa", "result conflict")
        assert board.status_of("aaaa") == "failed"
        assert board.lease("w2") is None
        assert board.errors() == {"aaaa": "result conflict"}

    def test_counts_pending_property(self):
        board, _clock, _events = _board()
        _add_cells(board, "aaaa", "bbbb", "cccc")
        board.lease("w1")
        counts = board.counts()
        assert counts.pending == 3
        assert (counts.queued, counts.leased) == (2, 1)
