"""Property-based shard/merge invariants over seeded-random grids.

``tests/exp/test_shard.py`` and ``tests/exp/test_merge.py`` pin the
contracts on hand-picked grids; this suite re-checks them over ~50
randomly generated :class:`SweepSpec`\\ s (fixed seed, so failures
reproduce) including the synthetic-pattern axes, where axis
canonicalisation makes duplicate cells routine:

* every shard partition is pairwise disjoint and its union is exactly
  the deduplicated grid, for several shard counts per spec;
* shard sizes are balanced to within one cell;
* for a sampled subset of tiny grids, actually *running* the shards
  and merging their caches is byte-identical to the unsharded run.

Keep the generator stable: extend the value pools or append new draws
at the end, never reorder existing draws — the specs double as a
regression corpus.
"""

import random

import pytest

from repro.exp import run_sweep
from repro.exp.merge import merge_into
from repro.exp.spec import SweepSpec, config_hash, shard_cells

#: Number of random specs the pure (no-simulation) invariants cover.
SPEC_COUNT = 50

#: Value pools per axis.  Deliberately includes combinations that
#: collapse to duplicate cells (non-synthetic apps crossed with
#: synthetic-pattern axes canonicalise to the same hash), because the
#: dedup-then-partition behaviour is exactly what sharding must get
#: right.
_POOLS = {
    "apps": ("adpcm", "idea", "vadd", "synthetic"),
    "input_bytes": (1024, 2048, 4096, 8192),
    "seeds": (1, 2, 7, 42),
    "page_bytes": (None, 512, 1024, 2048),
    "dpram_bytes": (None, 4096, 8192),
    "policies": ("fifo", "lru"),
    "transfers": ("double", "single", "dma"),
    "prefetches": ("none", "sequential", "overlapped"),
    "tlb_capacities": (None, 4, 8),
    "pipelined": (False, True),
    "syn_strides": (1, 3, 7),
    "syn_locality_pcts": (0, 50, 80, 100),
    "syn_read_pcts": (0, 50, 70, 100),
    "syn_phases": (1, 2, 4),
}


def _random_spec(rng: random.Random) -> SweepSpec:
    """One random grid: 2-4 varied axes, each with 2-3 values."""
    axes = {}
    for name in rng.sample(sorted(_POOLS), k=rng.randint(2, 4)):
        pool = _POOLS[name]
        count = rng.randint(2, min(3, len(pool)))
        axes[name] = tuple(rng.sample(pool, k=count))
    # Contention axes need matched tenant counts and mixes, so draw
    # them together rather than through the generic pools.
    if rng.random() < 0.25:
        axes["tenants"] = (2,)
        axes["tenant_mixes"] = (
            rng.choice(("same", "adpcm+idea", "synthetic+adpcm")),
        )
    if rng.random() < 0.2:
        axes["replicates"] = rng.choice((2, 3))
    return SweepSpec(**axes)


def _specs(count: int) -> list[SweepSpec]:
    rng = random.Random(0x5EED5047)
    return [_random_spec(rng) for _ in range(count)]


def _hashes(cells) -> set:
    return {config_hash(cell) for cell in cells}


@pytest.mark.parametrize(
    "spec", _specs(SPEC_COUNT), ids=lambda s: f"grid{s.size}"
)
def test_shards_partition_the_deduplicated_grid(spec):
    cells = spec.expand()
    deduplicated = _hashes(cells)
    for total in (1, 2, 3, 7):
        union = set()
        covered = 0
        for index in range(1, total + 1):
            shard = shard_cells(cells, index, total)
            keys = _hashes(shard)
            # No duplicates within a shard, none across shards.
            assert len(keys) == len(shard)
            assert not (union & keys)
            union |= keys
            covered += len(shard)
        assert union == deduplicated
        # Balanced to within one cell over the deduplicated set.
        sizes = [len(shard_cells(cells, i, total)) for i in range(1, total + 1)]
        assert max(sizes) - min(sizes) <= 1
        assert covered == len(deduplicated)


@pytest.mark.parametrize(
    "spec", _specs(SPEC_COUNT), ids=lambda s: f"grid{s.size}"
)
def test_sharding_is_order_independent(spec):
    cells = spec.expand()
    shuffled = list(cells)
    random.Random(7).shuffle(shuffled)
    for index in (1, 2):
        assert [config_hash(c) for c in shard_cells(cells, index, 2)] == [
            config_hash(c) for c in shard_cells(shuffled, index, 2)
        ]


def _tiny_run_specs(count: int) -> list[SweepSpec]:
    """Random grids small and cheap enough to actually simulate."""
    rng = random.Random(0x3E6E5047)
    specs = []
    while len(specs) < count:
        spec = SweepSpec(
            apps=(rng.choice(("vadd", "synthetic")),),
            input_bytes=(1024,),
            seeds=tuple(rng.sample((1, 2, 3, 4), k=2)),
            policies=("fifo", "lru"),
            syn_read_pcts=(rng.choice((0, 70)),),
            replicates=rng.choice((1, 2)),
        )
        specs.append(spec)
    return specs


def _files(directory) -> dict:
    return {
        path.name: path.read_bytes()
        for path in sorted(directory.glob("*.json"))
    }


@pytest.mark.parametrize(
    "spec", _tiny_run_specs(3), ids=lambda s: f"{s.apps[0]}-n{s.replicates}"
)
def test_merged_shard_caches_byte_match_unsharded_run(spec, tmp_path):
    cells = spec.expand()
    for index in (1, 2):
        run_sweep(
            shard_cells(cells, index, 2),
            cache_dir=tmp_path / f"shard{index}",
        )
    run_sweep(spec, cache_dir=tmp_path / "full")
    dest = tmp_path / "merged"
    summary = merge_into(dest, [tmp_path / "shard1", tmp_path / "shard2"])
    assert summary.written == len(_hashes(cells))
    assert _files(dest) == _files(tmp_path / "full")
