"""Tests for the contention axes of the sweep engine.

The tenancy scenario family rides the same machinery as every other
axis: expansion, hashing, caching, parallel execution.  These tests
pin the integration points — config validation, per-tenant result
columns, JSON round-trips, and the CLI spelling.
"""

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.exp import build_tenant_workloads, contention, run_cell, run_sweep
from repro.exp.cache import SweepCache
from repro.exp.results import CellResult
from repro.exp.spec import CellConfig, SweepSpec


def _contended_config(**overrides):
    base = dict(
        app="adpcm", input_bytes=2 * 1024, tenants=2, tenant_repeats=2
    )
    base.update(overrides)
    return CellConfig(**base)


class TestConfigValidation:
    def test_tenants_must_be_positive(self):
        with pytest.raises(ReproError):
            CellConfig(tenants=0)

    def test_repeats_must_be_positive(self):
        with pytest.raises(ReproError):
            CellConfig(tenant_repeats=0)

    def test_mix_names_validated(self):
        with pytest.raises(ReproError):
            CellConfig(tenant_mix="adpcm+nonsense")

    def test_mix_plus_list_accepted(self):
        config = CellConfig(tenants=2, tenant_mix="adpcm+idea")
        assert config.tenant_mix == "adpcm+idea"

    def test_typical_incompatible_with_tenants(self):
        with pytest.raises(ReproError):
            CellConfig(tenants=2, with_typical=True)

    def test_label_shows_contention_axes(self):
        label = _contended_config(tenant_mix="adpcm+idea").label()
        assert "x2" in label
        assert "mix-adpcm+idea" in label
        assert "rep2" in label

    def test_default_cell_label_unchanged(self):
        assert CellConfig().label() == "adpcm-8KB"


class TestSpecExpansion:
    def test_tenant_axes_multiply_grid(self):
        spec = SweepSpec(tenants=(1, 2), tenant_repeats=(1, 2))
        assert spec.size == 4
        cells = spec.expand()
        assert len(cells) == 4
        assert [(c.tenants, c.tenant_repeats) for c in cells] == [
            (1, 1), (1, 2), (2, 1), (2, 2),
        ]

    def test_tenant_workloads_cycle_mix_and_offset_seeds(self):
        config = _contended_config(tenants=3, tenant_mix="adpcm+idea", seed=5)
        workloads = build_tenant_workloads(config)
        names = [w.spec.name for w in workloads]
        assert names[0].startswith("adpcm")
        assert names[1].startswith("idea")
        assert names[2].startswith("adpcm")
        assert [w.spec.cell_key[2] for w in workloads] == [5, 6, 7]
        assert all(w.repeats == 2 for w in workloads)


class TestContendedCell:
    def test_per_tenant_columns_consistent(self):
        row = run_cell(_contended_config())
        assert row.config.tenants == 2
        assert len(row.tenant_labels) == 2
        assert sum(row.tenant_faults) == row.page_faults
        assert sum(row.tenant_steals) == row.steals
        assert row.steals > 0
        assert row.vim_ms > 0
        assert row.sw_ms > 0

    def test_solo_cell_has_empty_tenant_columns(self):
        row = run_cell(CellConfig(app="adpcm", input_bytes=2 * 1024))
        assert row.tenant_labels == ()
        assert row.steals == 0

    def test_result_json_round_trip(self):
        row = run_cell(_contended_config())
        rebuilt = CellResult.from_dict(row.to_dict())
        assert rebuilt == row

    def test_cache_round_trip(self, tmp_path):
        row = run_cell(_contended_config())
        cache = SweepCache(tmp_path)
        cache.store(row)
        assert cache.load(row.config) == row

    def test_parallel_equals_serial(self):
        configs = [
            _contended_config(seed=seed) for seed in (1, 2)
        ]
        serial = run_sweep(configs, jobs=1)
        parallel = run_sweep(configs, jobs=2)
        assert serial.rows == parallel.rows

    def test_workload_override_rejected(self):
        from repro.core.drivers import adpcm_workload

        with pytest.raises(ReproError):
            run_cell(_contended_config(), workload=adpcm_workload(1024))


class TestContentionDriver:
    def test_contention_rows_scale_tenants(self):
        rows = contention(
            app="adpcm", input_kb=2, tenant_counts=(1, 2), repeats=2
        )
        solo, duo = rows
        assert solo.config.tenants == 1
        assert duo.config.tenants == 2
        assert solo.steals == 0
        assert duo.steals > 0
        assert duo.vim_ms > solo.vim_ms


class TestCli:
    def test_sweep_with_tenants(self, capsys):
        assert main([
            "sweep", "--app", "adpcm", "--kb", "2",
            "--tenants", "1", "2", "--tenant-repeats", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "steals" in out
        assert "/x2/" in out
        assert "t0-adpcmdecode-2KB" in out

    def test_sweep_preset_contention(self):
        # Validate the preset grid without simulating it: every cell
        # constructible, exactly one solo baseline, mixed flavours in.
        from repro.cli import _SWEEP_PRESETS

        cells = _SWEEP_PRESETS["contention"]
        assert all(cell.tenant_repeats >= 2 for cell in cells)
        assert sum(1 for cell in cells if cell.tenants == 1) == 1
        assert any(cell.tenants > 1 for cell in cells)
        assert any(cell.tenant_mix != "same" for cell in cells)
        # No two preset cells may alias to the same simulation.
        assert len({cell.key() for cell in cells}) == len(cells)

    def test_solo_mix_canonicalised(self):
        solo_mixed = CellConfig(tenants=1, tenant_mix="adpcm+idea")
        solo_plain = CellConfig(tenants=1)
        assert solo_mixed == solo_plain
        assert solo_mixed.key() == solo_plain.key()

    def test_typical_incompatible_with_repeats(self):
        with pytest.raises(ReproError):
            CellConfig(tenant_repeats=2, with_typical=True)
