"""Tests for grid execution: parallelism, caching, determinism.

The acceptance bar of the sweep engine: ``jobs=N`` output is byte-
identical to serial, re-runs against a cache simulate nothing, and any
two cells with equal configs produce equal results.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.drivers import vector_add_workload
from repro.exp import ablation_policies, figure8, run_cell, run_sweep
from repro.exp.spec import CellConfig, SweepSpec

#: Small, fault-producing grid: 2 policies x 2 page sizes on 2 KB adpcm.
GRID = SweepSpec(
    apps=("adpcm",),
    input_bytes=(2 * 1024,),
    policies=("fifo", "lru"),
    page_bytes=(512, 1024),
)

#: Hypothesis settings for full-simulation examples.
E2E = settings(max_examples=8, deadline=None)


def _dump(rows) -> bytes:
    return json.dumps(
        [r.to_dict() for r in rows], sort_keys=True
    ).encode("utf-8")


class TestGridExecution:
    def test_rows_follow_grid_order(self):
        result = run_sweep(GRID)
        assert [r.config for r in result.rows] == GRID.expand()
        assert result.executed == 4
        assert result.cached == 0

    def test_parallel_equals_serial_byte_identical(self):
        serial = run_sweep(GRID, jobs=1)
        parallel = run_sweep(GRID, jobs=4)
        assert _dump(serial.rows) == _dump(parallel.rows)

    def test_duplicate_configs_simulated_once(self):
        config = CellConfig(app="vadd", input_bytes=256)
        result = run_sweep([config, config, config])
        assert result.executed == 1
        assert len(result) == 3
        assert result.rows[0] == result.rows[1] == result.rows[2]

    def test_jobs_must_be_positive(self):
        with pytest.raises(Exception):
            run_sweep(GRID, jobs=0)


class TestCaching:
    def test_second_run_simulates_nothing(self, tmp_path):
        first = run_sweep(GRID, jobs=2, cache_dir=tmp_path)
        assert first.executed == 4
        second = run_sweep(GRID, jobs=1, cache_dir=tmp_path)
        assert second.executed == 0
        assert second.cached == 4
        assert _dump(first.rows) == _dump(second.rows)

    def test_grid_growth_is_incremental(self, tmp_path):
        run_sweep(GRID, cache_dir=tmp_path)
        grown = dataclasses.replace(GRID, policies=("fifo", "lru", "random"))
        result = run_sweep(grown, cache_dir=tmp_path)
        assert result.cached == 4  # the old cells
        assert result.executed == 2  # only the new policy's cells

    def test_api_drivers_share_the_cache(self, tmp_path):
        rows = figure8(sizes_kb=(2,), cache_dir=tmp_path)
        assert len(rows) == 1
        again = figure8(sizes_kb=(2,), cache_dir=tmp_path)
        assert rows == again
        assert len(list(tmp_path.glob("*.json"))) == 1


class TestPrefetcherEncoding:
    def test_driver_prefetcher_kwarg_round_trips(self):
        from repro.os.vim.prefetch import SequentialPrefetcher

        rows = figure8(
            sizes_kb=(2,),
            prefetcher=SequentialPrefetcher(aggressive=True, overlapped=True),
        )
        assert len(rows) == 1

    def test_unencodable_prefetcher_rejected(self):
        # overlapped-but-not-aggressive would rebuild as aggressive in
        # the worker; better a loud error than a silently different sim.
        from repro.errors import ReproError
        from repro.os.vim.prefetch import SequentialPrefetcher

        with pytest.raises(ReproError):
            figure8(
                sizes_kb=(2,),
                prefetcher=SequentialPrefetcher(overlapped=True),
            )


class TestWorkloadFallback:
    def test_keyless_workload_runs_in_process(self):
        # A hand-made spec (no cell_key) cannot cross a process
        # boundary; the drivers must still run it, serially.
        workload = dataclasses.replace(
            vector_add_workload(128, seed=2), cell_key=None
        )
        rows = ablation_policies(workload)
        assert [r.label for r in rows] == ["fifo", "lru", "random", "second-chance"]
        assert all(r.total_ms > 0 for r in rows)

    def test_keyed_workload_matches_fallback(self):
        keyed = vector_add_workload(128, seed=2)
        keyless = dataclasses.replace(keyed, cell_key=None)
        assert ablation_policies(keyed) == ablation_policies(keyless)


class TestDeterminism:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        elements=st.integers(min_value=1, max_value=256),
        policy=st.sampled_from(["fifo", "lru", "random", "second-chance"]),
    )
    @E2E
    def test_equal_configs_produce_equal_results(self, seed, elements, policy):
        config = CellConfig(
            app="vadd", input_bytes=elements * 4, seed=seed, policy=policy
        )
        first = run_cell(config)
        second = run_cell(config)
        assert first == second
        assert first.to_dict() == second.to_dict()
