"""Tests for the sweep service (``repro.exp.service``).

Two layers: :class:`SweepService` driven directly (submission dedup,
duplicate/conflicting result ingestion, graceful shutdown — fast,
using fabricated synthetic-app rows, no simulation), and one HTTP
end-to-end run over real cells proving the service path produces
exactly what a local :func:`~repro.exp.sweep.run_sweep` produces.
"""

import threading
from dataclasses import replace

import pytest

from repro.errors import ReproError
from repro.exp import run_sweep
from repro.exp.results import CellResult
from repro.exp.service import (
    ServiceServer,
    SweepService,
    call,
    submit_sweep,
)
from repro.exp.spec import CellConfig, SweepSpec
from repro.exp.store import open_store
from repro.exp.worker import run_worker

#: A fast 2-cell grid of real cells for the end-to-end test.
GRID = SweepSpec(apps=("vadd",), input_bytes=(1024,), policies=("fifo", "lru"))


def _config(seed: int) -> CellConfig:
    return CellConfig(app="synthetic", input_bytes=1024, seed=seed)


def _fake_result(config: CellConfig) -> CellResult:
    """A valid row without simulating (the bench_store fabrication)."""
    seed = config.seed
    return CellResult(
        config=config,
        key=config.key(),
        label=config.label(),
        workload=f"synthetic-{seed}",
        sw_ms=10.0 + seed * 0.001,
        vim_ms=2.0 + seed * 0.0005,
        hw_ms=1.0,
        sw_dp_ms=0.5,
        sw_imu_ms=0.25,
        sw_other_ms=0.25 + seed * 0.0005,
        vim_speedup=(10.0 + seed * 0.001) / (2.0 + seed * 0.0005),
        page_faults=seed % 97,
        compulsory_loads=seed % 11,
        evictions=seed % 7,
        writebacks=seed % 5,
        prefetches=0,
        bytes_to_dpram=1024 * (seed % 13),
        bytes_from_dpram=512 * (seed % 13),
        tlb_hit_rate=0.9,
    )


@pytest.fixture
def service(tmp_path):
    service = SweepService(tmp_path / "store", lease_timeout=10.0)
    yield service
    service.close()


def _submit(service, configs):
    return service.submit([config.to_dict() for config in configs])


def _complete_next(service, worker="w"):
    """Lease one cell and complete it with a fabricated row."""
    lease = service.lease(worker)
    assert lease is not None
    config = CellConfig.from_dict(lease["config"])
    reply = service.complete(lease["lease"], _fake_result(config).to_dict())
    assert reply == {"ok": True, "stale": False}
    return lease, config


class TestSubmission:
    def test_submit_queues_novel_cells(self, service):
        accepted = _submit(service, [_config(1), _config(2)])
        assert accepted["cells"] == 2
        assert accepted["hits"] == 0
        assert accepted["pending"] == 2
        assert service.status(accepted["job"])["state"] == "running"

    def test_submit_dedups_against_the_store(self, service):
        job1 = _submit(service, [_config(1)])
        _complete_next(service)
        assert service.status(job1["job"])["state"] == "done"
        # Same cell again: served from the store, nothing queued.
        job2 = _submit(service, [_config(1), _config(2)])
        assert job2["hits"] == 1
        assert job2["pending"] == 1

    def test_submit_dedups_in_flight_across_jobs(self, service):
        _submit(service, [_config(1)])
        job2 = _submit(service, [_config(1)])
        # Not a hit (no result yet), but not queued twice either.
        assert job2["hits"] == 0
        assert service.status()["queued"] == 1
        _complete_next(service)
        # One completion finishes both jobs.
        assert service.status(1)["state"] == "done"
        assert service.status(job2["job"])["state"] == "done"

    def test_submit_preserves_duplicate_cells_in_results(self, service):
        job = _submit(service, [_config(1), _config(1), _config(2)])
        assert job["cells"] == 2  # unique
        _complete_next(service)
        _complete_next(service)
        rows = service.results(job["job"])
        assert len(rows) == 3  # submit order, duplicates included
        assert rows[0] == rows[1]

    def test_empty_and_invalid_submissions_are_rejected(self, service):
        with pytest.raises(ReproError):
            service.submit([])
        with pytest.raises(ReproError):
            service.submit([{"app": "no-such-app"}])

    def test_results_refuse_while_running(self, service):
        job = _submit(service, [_config(1)])
        with pytest.raises(ReproError, match="still running"):
            service.results(job["job"])
        with pytest.raises(ReproError, match="unknown job"):
            service.status(999)


class TestIngestion:
    def test_identical_duplicate_completion_is_accepted(self, service):
        """Lease expiry + late worker: both rows land, once."""
        _submit(service, [_config(1)])
        lease, config = _complete_next(service)
        # The same (historic) lease completes again with an equal row —
        # deterministic cells make this legal, and it must not conflict.
        reply = service.complete(
            lease["lease"], _fake_result(config).to_dict()
        )
        assert reply["ok"] is True
        assert service.status(1)["state"] == "done"

    def test_conflicting_duplicate_completion_fails_the_cell(self, service):
        _submit(service, [_config(1)])
        lease, config = _complete_next(service)
        wrong = replace(_fake_result(config), page_faults=12345)
        with pytest.raises(ReproError, match="conflicting results"):
            service.complete(lease["lease"], wrong.to_dict())
        status = service.status(1)
        assert status["state"] == "failed"
        assert any("conflicting" in error for error in status["errors"])
        with pytest.raises(ReproError, match="failed"):
            service.results(1)

    def test_stale_lease_completion_is_flagged(self, service):
        _submit(service, [_config(1)])
        reply = service.complete(
            "L999-deadbeef", _fake_result(_config(1)).to_dict()
        )
        assert reply == {"ok": False, "stale": True}

    def test_result_for_the_wrong_cell_is_rejected(self, service):
        _submit(service, [_config(1), _config(2)])
        lease = service.lease("w")
        other = next(
            config for config in (_config(1), _config(2))
            if config.key() != lease["key"]
        )
        with pytest.raises(ReproError, match="hashes to"):
            service.complete(lease["lease"], _fake_result(other).to_dict())

    def test_worker_failure_requeues(self, service):
        _submit(service, [_config(1)])
        lease = service.lease("w")
        assert service.fail(lease["lease"], "boom") is True
        status = service.status(1)
        assert status["state"] == "running"
        assert status["queued"] == 1


class TestShutdown:
    def test_drain_stops_submissions_and_leases(self, service):
        _submit(service, [_config(1), _config(2)])
        assert service.lease("w") is not None
        service.drain()
        assert service.lease("w2") is None  # nothing new granted
        with pytest.raises(ReproError, match="shutting down"):
            _submit(service, [_config(3)])

    def test_drain_honours_in_flight_completions(self, service):
        """Graceful shutdown: a running cell still lands its result."""
        _submit(service, [_config(1)])
        lease = service.lease("w")
        service.drain()
        config = CellConfig.from_dict(lease["config"])
        assert service.heartbeat(lease["lease"]) is True
        reply = service.complete(
            lease["lease"], _fake_result(config).to_dict()
        )
        assert reply["ok"] is True
        assert service.status(1)["state"] == "done"
        # The row is durable: a fresh service over the same store
        # serves the cell as a hit.


class TestEndToEnd:
    """The service path vs the local path, over real cells, via HTTP."""

    @pytest.fixture
    def coordinator(self, tmp_path):
        service = SweepService(tmp_path / "service-store", lease_timeout=10.0)
        server = ServiceServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        stop = threading.Event()
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(url=url, worker_id="w1", poll=0.02, stop=stop,
                        log=lambda message: None),
            daemon=True,
        )
        worker.start()
        yield url, tmp_path / "service-store"
        stop.set()
        worker.join(timeout=5)
        server.shutdown()
        server.server_close()
        service.close()

    def test_submitted_rows_match_a_local_sweep(self, coordinator, tmp_path):
        url, store_path = coordinator
        outcome = submit_sweep(url, GRID.expand(), poll=0.02)
        local = run_sweep(GRID, cache_dir=tmp_path / "local-store")
        assert [row.to_dict() for row in outcome.rows] \
            == [row.to_dict() for row in local.rows]
        assert (outcome.executed, outcome.cached) == (2, 0)
        # The service store holds exactly the local store's rows.
        with open_store(store_path) as service_store, \
                open_store(tmp_path / "local-store") as local_store:
            assert [row.to_dict() for row in service_store.iter_rows()] \
                == [row.to_dict() for row in local_store.iter_rows()]

    def test_resubmission_is_all_cache_hits(self, coordinator):
        url, _store_path = coordinator
        first = submit_sweep(url, GRID.expand(), poll=0.02)
        again = submit_sweep(url, GRID.expand(), poll=0.02)
        assert (first.executed, first.cached) == (2, 0)
        assert (again.executed, again.cached) == (0, 2)
        assert [row.to_dict() for row in again.rows] \
            == [row.to_dict() for row in first.rows]

    def test_health_and_unknown_routes(self, coordinator):
        url, _store_path = coordinator
        assert call(url, "/api/health") == {"ok": True}
        with pytest.raises(ReproError, match="unknown path"):
            call(url, "/api/nonsense")
