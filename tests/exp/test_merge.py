"""Tests for merging shard caches (``repro.exp.merge``).

The merge is what turns N per-machine shard caches back into the one
durable result store: merged files must be byte-identical to an
unsharded run's cache (so re-runs simulate nothing and reports
byte-match), and two sources disagreeing about one config hash must
fail loudly instead of silently picking a winner.
"""

import json

import pytest

from repro.errors import ReproError
from repro.exp import run_sweep
from repro.exp.merge import merge_into
from repro.exp.spec import CACHE_VERSION, SweepSpec, shard_cells

#: A fast 2-cell grid (1 KB vector-add, two policies).
GRID = SweepSpec(apps=("vadd",), input_bytes=(1024,), policies=("fifo", "lru"))


def _files(directory) -> dict:
    return {
        path.name: path.read_bytes()
        for path in sorted(directory.glob("*.json"))
    }


@pytest.fixture()
def shard_caches(tmp_path):
    """Two shard caches plus the unsharded reference cache."""
    cells = GRID.expand()
    for index in (1, 2):
        run_sweep(
            shard_cells(cells, index, 2),
            cache_dir=tmp_path / f"shard{index}",
        )
    run_sweep(GRID, cache_dir=tmp_path / "full")
    return tmp_path


class TestMerge:
    def test_merged_cache_is_byte_identical_to_unsharded(self, shard_caches):
        dest = shard_caches / "merged"
        summary = merge_into(
            dest, [shard_caches / "shard1", shard_caches / "shard2"]
        )
        assert summary.written == 2
        assert summary.identical == 0
        assert summary.skipped == 0
        assert _files(dest) == _files(shard_caches / "full")

    def test_rerun_against_merged_cache_simulates_nothing(self, shard_caches):
        dest = shard_caches / "merged"
        merge_into(dest, [shard_caches / "shard1", shard_caches / "shard2"])
        result = run_sweep(GRID, cache_dir=dest)
        assert result.executed == 0
        assert result.cached == 2

    def test_remerge_is_idempotent(self, shard_caches):
        dest = shard_caches / "merged"
        merge_into(dest, [shard_caches / "shard1", shard_caches / "shard2"])
        again = merge_into(
            dest, [shard_caches / "shard1", shard_caches / "shard2"]
        )
        assert again.written == 0
        assert again.identical == 2

    def test_duplicate_entries_across_sources_are_identical_not_conflicts(
        self, shard_caches
    ):
        # Both shards plus the full cache: every entry appears twice.
        summary = merge_into(
            shard_caches / "merged",
            [
                shard_caches / "full",
                shard_caches / "shard1",
                shard_caches / "shard2",
            ],
        )
        assert summary.written == 2
        assert summary.identical == 2

    def test_engine_differing_rows_merge_as_identical(self, tmp_path):
        # A reference cache and a fast cache of the same grid hold
        # rows differing only in the recorded engine field; the merge
        # must treat them as the identical cells they are (backends
        # are result-equivalent), not as conflicts.
        from dataclasses import replace

        run_sweep(GRID, cache_dir=tmp_path / "ref")
        run_sweep(replace(GRID, engine="fast"), cache_dir=tmp_path / "fast")
        summary = merge_into(
            tmp_path / "merged", [tmp_path / "ref", tmp_path / "fast"]
        )
        assert summary.written == 2
        assert summary.identical == 2
        # First-seen provenance wins in the merged files.
        assert _files(tmp_path / "merged") == _files(tmp_path / "ref")

    def test_rows_json_dump_is_a_valid_source(self, shard_caches, tmp_path):
        rows = run_sweep(GRID, cache_dir=shard_caches / "full").rows
        dump = tmp_path / "rows.json"
        dump.write_text(
            json.dumps([r.to_dict() for r in rows]), encoding="utf-8"
        )
        dest = tmp_path / "from-dump"
        summary = merge_into(dest, [dump])
        assert summary.written == 2
        assert _files(dest) == _files(shard_caches / "full")


class TestConflicts:
    def test_failed_merge_writes_nothing(self, shard_caches):
        # A conflicted merge must not leave a half-merged destination:
        # a later report over it would silently render the first-seen
        # copy of the contested hash.
        tampered = next((shard_caches / "shard2").glob("*.json"))
        payload = json.loads(tampered.read_text(encoding="utf-8"))
        payload["result"]["vim_ms"] += 1.0
        tampered.write_text(json.dumps(payload), encoding="utf-8")
        dest = shard_caches / "merged"
        with pytest.raises(ReproError, match="nothing was written"):
            merge_into(
                dest,
                [
                    shard_caches / "shard1",
                    shard_caches / "full",  # disagrees with shard2 now
                    shard_caches / "shard2",
                ],
            )
        assert not dest.exists()  # not even an empty directory appears

    def test_conflicting_entry_for_same_hash_rejected(self, shard_caches):
        # Tamper one shard entry: same config hash, different numbers.
        tampered = next((shard_caches / "shard1").glob("*.json"))
        payload = json.loads(tampered.read_text(encoding="utf-8"))
        payload["result"]["vim_ms"] += 1.0
        tampered.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ReproError, match="conflict"):
            merge_into(
                shard_caches / "merged",
                [shard_caches / "full", shard_caches / "shard1"],
            )

    def test_conflict_message_names_the_hash(self, shard_caches):
        tampered = next((shard_caches / "shard1").glob("*.json"))
        payload = json.loads(tampered.read_text(encoding="utf-8"))
        payload["result"]["page_faults"] += 7
        tampered.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ReproError, match=tampered.stem):
            merge_into(
                shard_caches / "merged",
                [shard_caches / "full", shard_caches / "shard1"],
            )

    def test_dest_conflict_reported_once_across_duplicate_sources(
        self, shard_caches
    ):
        # The same diverging hash arriving from two source copies must
        # count as ONE contested hash, not one conflict per copy.
        dest = shard_caches / "full"
        entry = next((shard_caches / "shard1").glob("*.json"))
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["result"]["vim_ms"] += 1.0
        entry.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ReproError, match="1 merge conflict"):
            merge_into(
                dest, [shard_caches / "shard1", shard_caches / "shard1"]
            )

    def test_source_vs_source_conflict_reported_once(self, shard_caches):
        # Same dedupe rule when the first copy came from a source
        # rather than a pre-existing destination entry.
        entry = next((shard_caches / "shard1").glob("*.json"))
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["result"]["vim_ms"] += 1.0
        entry.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ReproError, match="1 merge conflict"):
            merge_into(
                shard_caches / "merged",
                [
                    shard_caches / "full",
                    shard_caches / "shard1",
                    shard_caches / "shard1",
                ],
            )

    def test_conflict_with_preexisting_destination_entry(self, shard_caches):
        # Merge into a destination that already holds a diverging row.
        dest = shard_caches / "full"
        tampered_src = shard_caches / "shard1"
        entry = next(tampered_src.glob("*.json"))
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["result"]["evictions"] += 1
        entry.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ReproError, match="pre-existing"):
            merge_into(dest, [tampered_src])


class TestDegradation:
    def test_stale_version_entries_skipped(self, shard_caches):
        stale = next((shard_caches / "shard1").glob("*.json"))
        payload = json.loads(stale.read_text(encoding="utf-8"))
        payload["version"] = CACHE_VERSION - 1
        stale.write_text(json.dumps(payload), encoding="utf-8")
        summary = merge_into(
            shard_caches / "merged",
            [shard_caches / "shard1", shard_caches / "shard2"],
        )
        assert summary.skipped == 1
        assert summary.written == 1

    def test_corrupt_entry_skipped(self, shard_caches):
        broken = next((shard_caches / "shard2").glob("*.json"))
        broken.write_text("{not json", encoding="utf-8")
        summary = merge_into(
            shard_caches / "merged",
            [shard_caches / "shard1", shard_caches / "shard2"],
        )
        assert summary.skipped == 1

    def test_renamed_cache_entry_skipped(self, shard_caches):
        # Same rule as the report loader: a dir entry must be named by
        # its config hash; a hand-renamed file is skipped, not re-keyed.
        entry = next((shard_caches / "shard1").glob("*.json"))
        entry.rename(entry.with_name("0000000000000000.json"))
        summary = merge_into(
            shard_caches / "merged",
            [shard_caches / "shard1", shard_caches / "shard2"],
        )
        assert summary.skipped == 1
        assert summary.written == 1

    def test_all_sources_unusable_rejected(self, shard_caches, tmp_path):
        # A merge that writes nothing usable (e.g. all shards predate a
        # CACHE_VERSION bump) must fail here, not downstream at report
        # time with a misleading "no loadable results".
        for source in ("shard1", "shard2"):
            for entry in (shard_caches / source).glob("*.json"):
                payload = json.loads(entry.read_text(encoding="utf-8"))
                payload["version"] = CACHE_VERSION - 1
                entry.write_text(json.dumps(payload), encoding="utf-8")
        dest = tmp_path / "dest"
        with pytest.raises(ReproError, match="nothing to merge"):
            merge_into(
                dest, [shard_caches / "shard1", shard_caches / "shard2"]
            )
        assert not dest.exists()

    def test_missing_source_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="does not exist"):
            merge_into(tmp_path / "dest", [tmp_path / "nope"])

    def test_non_list_json_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}", encoding="utf-8")
        with pytest.raises(ReproError, match="row dump"):
            merge_into(tmp_path / "dest", [bad])

    def test_file_destination_rejected(self, shard_caches, tmp_path):
        # Swapping DEST with a dump source must be a clean error, not
        # a FileExistsError traceback from mkdir.
        dump = tmp_path / "rows.json"
        dump.write_text("[]", encoding="utf-8")
        with pytest.raises(ReproError, match="not a directory"):
            merge_into(dump, [shard_caches / "shard1"])


class TestDryRun:
    """``merge --dry-run``: full validation, zero writes."""

    def test_dry_run_counts_without_writing(self, shard_caches):
        dest = shard_caches / "merged"
        summary = merge_into(
            dest,
            [shard_caches / "shard1", shard_caches / "shard2"],
            dry_run=True,
        )
        assert summary.dry_run
        assert summary.written == 2
        assert summary.identical == 0
        assert summary.conflicts == ()
        assert "dry-run: would merge" in str(summary)
        assert not dest.exists()

    def test_dry_run_counts_match_the_real_merge(self, shard_caches):
        dest = shard_caches / "merged"
        sources = [shard_caches / "shard1", shard_caches / "shard2"]
        dry = merge_into(dest, sources, dry_run=True)
        wet = merge_into(dest, sources)
        assert (dry.written, dry.identical, dry.skipped) == (
            wet.written, wet.identical, wet.skipped
        )

    def test_dry_run_collects_conflicts_instead_of_raising(
        self, shard_caches
    ):
        entry = next((shard_caches / "shard1").glob("*.json"))
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["result"]["vim_ms"] *= 2
        entry.write_text(json.dumps(payload), encoding="utf-8")
        dest = shard_caches / "merged"
        summary = merge_into(
            dest,
            [shard_caches / "shard1", shard_caches / "full"],
            dry_run=True,
        )
        assert len(summary.conflicts) == 1
        assert "conflicting results for config" in str(summary.conflicts[0])
        assert not dest.exists()

    def test_dry_run_leaves_existing_destination_untouched(
        self, shard_caches
    ):
        dest = shard_caches / "merged"
        merge_into(dest, [shard_caches / "shard1"])
        before = _files(dest)
        summary = merge_into(
            dest, [shard_caches / "shard2"], dry_run=True
        )
        assert summary.written == 1
        assert _files(dest) == before
