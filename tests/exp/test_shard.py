"""Tests for deterministic grid sharding (``SweepSpec.shard``).

The contract that makes cross-machine sharding safe: the partition is
a pure function of *which* configurations the grid contains — never of
axis declaration order, expansion order, or duplicate cells — so N
machines given the same grid and ``--shard i/N`` compute disjoint
shards whose union is exactly the full grid.
"""

import pytest

from repro.errors import ReproError
from repro.exp.spec import CellConfig, SweepSpec, shard_cells

#: A 12-cell grid over three axes.
SPEC = SweepSpec(
    apps=("adpcm", "idea"),
    policies=("fifo", "lru"),
    page_bytes=(512, 1024, 2048),
)


def _keys(cells) -> set:
    return {cell.key() for cell in cells}


class TestPartition:
    @pytest.mark.parametrize("total", [1, 2, 3, 5, 12, 17])
    def test_union_is_full_grid_and_shards_disjoint(self, total):
        shards = [SPEC.shard(i, total) for i in range(1, total + 1)]
        union = set()
        for shard in shards:
            keys = _keys(shard)
            assert len(keys) == len(shard)  # no duplicates inside a shard
            assert not (union & keys)  # pairwise disjoint
            union |= keys
        assert union == _keys(SPEC.expand())

    @pytest.mark.parametrize("total", [2, 3, 5])
    def test_shard_sizes_balanced(self, total):
        sizes = [len(SPEC.shard(i, total)) for i in range(1, total + 1)]
        assert sum(sizes) == SPEC.size
        assert max(sizes) - min(sizes) <= 1

    def test_single_shard_is_whole_grid(self):
        assert _keys(SPEC.shard(1, 1)) == _keys(SPEC.expand())

    def test_more_shards_than_cells_leaves_empties(self):
        spec = SweepSpec(policies=("fifo", "lru"))
        shards = [spec.shard(i, 5) for i in range(1, 6)]
        assert sum(len(s) for s in shards) == 2
        assert sum(1 for s in shards if not s) == 3


class TestStability:
    def test_partition_ignores_axis_value_order(self):
        # The same grid declared with every axis tuple reversed must
        # produce identical shards — the property that lets machines
        # that built their spec differently still split consistently.
        reordered = SweepSpec(
            apps=("idea", "adpcm"),
            policies=("lru", "fifo"),
            page_bytes=(2048, 1024, 512),
        )
        for index in (1, 2, 3):
            assert _keys(SPEC.shard(index, 3)) == _keys(reordered.shard(index, 3))

    def test_partition_ignores_cell_list_order(self):
        cells = SPEC.expand()
        assert shard_cells(cells, 1, 2) == shard_cells(list(reversed(cells)), 1, 2)

    def test_shard_order_is_sorted_hash(self):
        shard = SPEC.shard(1, 2)
        keys = [cell.key() for cell in shard]
        assert keys == sorted(keys)

    def test_duplicate_cells_collapse_to_one_shard_entry(self):
        # tenant_mix canonicalises to "same" for tenants == 1, so this
        # spec expands to duplicate configs; the shard partition works
        # on the unique set.
        spec = SweepSpec(tenant_mixes=("same", "adpcm+idea"))
        assert spec.size == 2
        shards = [spec.shard(i, 2) for i in (1, 2)]
        assert sum(len(s) for s in shards) == 1

    def test_explicit_cell_lists_shard_like_presets(self):
        cells = [
            CellConfig(app="adpcm", input_bytes=2048, tenants=n)
            for n in (1, 2, 3)
        ]
        shards = [shard_cells(cells, i, 2) for i in (1, 2)]
        assert _keys(shards[0]) | _keys(shards[1]) == _keys(cells)
        assert not (_keys(shards[0]) & _keys(shards[1]))


class TestValidation:
    def test_zero_index_rejected(self):
        with pytest.raises(ReproError):
            SPEC.shard(0, 2)

    def test_index_above_total_rejected(self):
        with pytest.raises(ReproError):
            SPEC.shard(3, 2)

    def test_nonpositive_total_rejected(self):
        with pytest.raises(ReproError):
            SPEC.shard(1, 0)
