"""Tests for cell configs, grid expansion, and config hashing."""

import dataclasses

import pytest

from repro.errors import ReproError
from repro.exp.spec import CellConfig, SweepSpec, config_hash


class TestCellConfig:
    def test_defaults_are_the_prototype(self):
        config = CellConfig()
        assert config.app == "adpcm"
        assert config.soc == "EPXA1"
        assert config.policy == "fifo"
        assert config.transfer == "double"
        assert config.page_bytes is None  # preset's 2 KB

    def test_unknown_app_rejected(self):
        with pytest.raises(ReproError):
            CellConfig(app="doom")

    def test_unknown_transfer_rejected(self):
        with pytest.raises(ReproError):
            CellConfig(transfer="triple")

    def test_dma_is_a_transfer_axis_value(self):
        config = CellConfig(transfer="dma")
        assert "dma" in config.label()
        assert CellConfig.from_dict(config.to_dict()) == config

    def test_unknown_prefetch_rejected(self):
        with pytest.raises(ReproError):
            CellConfig(prefetch="psychic")

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ReproError):
            CellConfig(input_bytes=0)

    def test_zero_tlb_capacity_rejected(self):
        # 0 is falsy and would silently select the full-size TLB.
        with pytest.raises(ReproError):
            CellConfig(tlb_capacity=0)

    def test_zero_prefetch_depth_rejected(self):
        with pytest.raises(ReproError):
            CellConfig(prefetch_depth=0)

    def test_zero_page_size_rejected(self):
        with pytest.raises(ReproError):
            CellConfig(page_bytes=0)

    def test_zero_dpram_size_rejected(self):
        with pytest.raises(ReproError):
            CellConfig(dpram_bytes=0)

    def test_dict_round_trip(self):
        config = CellConfig(
            app="idea", input_bytes=4096, policy="lru", tlb_capacity=4
        )
        assert CellConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ReproError):
            CellConfig.from_dict({"app": "adpcm", "input_bytes": 1024, "nope": 1})

    def test_label_mentions_non_default_axes_only(self):
        assert CellConfig(input_bytes=4096).label() == "adpcm-4KB"
        label = CellConfig(input_bytes=4096, policy="lru", page_bytes=512).label()
        assert "lru" in label and "page512" in label
        assert "fifo" not in label


class TestConfigHash:
    def test_stable_for_equal_configs(self):
        assert config_hash(CellConfig()) == config_hash(CellConfig())

    def test_every_field_is_significant(self):
        base = CellConfig()
        changed = [
            CellConfig(app="idea"),
            CellConfig(input_bytes=4096),
            CellConfig(seed=2),
            CellConfig(soc="EPXA4"),
            CellConfig(page_bytes=1024),
            CellConfig(dpram_bytes=32 * 1024),
            CellConfig(policy="lru"),
            CellConfig(transfer="single"),
            CellConfig(prefetch="sequential"),
            CellConfig(prefetch_depth=2),
            CellConfig(tlb_capacity=4),
            CellConfig(pipelined_imu=True),
            CellConfig(access_cycles=2),
            CellConfig(with_typical=True),
        ]
        digests = {config_hash(c) for c in changed}
        assert config_hash(base) not in digests
        assert len(digests) == len(changed)  # pairwise distinct too

    def test_hash_is_short_hex(self):
        digest = config_hash(CellConfig())
        assert len(digest) == 16
        int(digest, 16)  # parses as hex


class TestSweepSpec:
    def test_expansion_size_is_axes_product(self):
        spec = SweepSpec(
            apps=("adpcm", "idea"),
            input_bytes=(2048, 4096, 8192),
            policies=("fifo", "lru"),
        )
        cells = spec.expand()
        assert len(cells) == 12
        assert spec.size == 12

    def test_expansion_order_is_deterministic(self):
        spec = SweepSpec(policies=("fifo", "lru"), page_bytes=(1024, 2048))
        assert spec.expand() == spec.expand()

    def test_axis_nesting_order(self):
        # apps vary outermost, later axes innermost.
        spec = SweepSpec(apps=("adpcm", "idea"), policies=("fifo", "lru"))
        cells = spec.expand()
        assert [(c.app, c.policy) for c in cells] == [
            ("adpcm", "fifo"), ("adpcm", "lru"),
            ("idea", "fifo"), ("idea", "lru"),
        ]

    def test_with_typical_applies_to_every_cell(self):
        cells = SweepSpec(with_typical=True).expand()
        assert all(c.with_typical for c in cells)

    def test_default_spec_is_one_cell(self):
        cells = SweepSpec().expand()
        assert len(cells) == 1
        assert cells[0] == CellConfig()

    def test_spec_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SweepSpec().apps = ("idea",)


class TestGridFingerprint:
    def test_pure_function_of_the_config_set(self):
        from repro.exp.spec import grid_fingerprint

        grid = SweepSpec(policies=("fifo", "lru")).expand()
        shuffled = list(reversed(grid))
        duplicated = grid + grid
        prints = {
            grid_fingerprint(grid),
            grid_fingerprint(shuffled),
            grid_fingerprint(duplicated),
        }
        assert len(prints) == 1
        assert len(prints.pop()) == 12

    def test_different_grids_fingerprint_differently(self):
        from repro.exp.spec import grid_fingerprint

        a = SweepSpec(policies=("fifo",)).expand()
        b = SweepSpec(policies=("lru",)).expand()
        assert grid_fingerprint(a) != grid_fingerprint(b)
