"""Tests for cache-driven reporting (``repro.exp.report``).

Golden-output tests render the committed fixture cache
(``tests/exp/fixtures/report_cache``, written by
``tools/make_report_fixture.py``) and compare byte-for-byte against
the committed golden files — if ``CACHE_VERSION`` is ever bumped, the
fixture goes stale and these tests fail until the regeneration script
is re-run (one command; see the tool's docstring).

The end-to-end class asserts the PR's acceptance criterion: a report
rendered from two merged shard caches is byte-identical to the report
of a single unsharded run.
"""

import json
import random
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.exp import run_sweep
from repro.exp.merge import merge_into
from repro.exp.report import (
    FORMATS,
    load_cache_rows,
    render_report,
    render_table,
    report_from_cache,
)
from repro.exp.spec import CACHE_VERSION, SweepSpec, shard_cells

FIXTURES = Path(__file__).parent / "fixtures"


def _golden(name: str) -> str:
    return (FIXTURES / name).read_text(encoding="utf-8").rstrip("\n")


class TestGoldenOutputs:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_flat_report_matches_golden(self, fmt):
        text = report_from_cache(FIXTURES / "report_cache", fmt=fmt)
        assert text == _golden(f"report.{fmt}")

    @pytest.mark.parametrize("fmt", ["md", "csv"])
    def test_grouped_report_matches_golden(self, fmt):
        text = report_from_cache(
            FIXTURES / "report_cache", group_by=("policy",), fmt=fmt
        )
        assert text == _golden(f"report_by_policy.{fmt}")

    def test_rendering_order_is_canonical(self):
        rows = list(load_cache_rows(FIXTURES / "report_cache").rows)
        shuffled = rows[:]
        random.Random(7).shuffle(shuffled)
        assert render_report(shuffled) == render_report(rows)

    def test_baseline_annotated_report_matches_golden(self):
        text = report_from_cache(
            FIXTURES / "report_cache",
            baseline_dir=FIXTURES / "baseline_cache",
        )
        assert text == _golden("report_vs_baseline.md")

    def test_no_baseline_is_byte_identical_to_pre_feature_output(self):
        # baseline=None must not perturb the historical golden bytes.
        assert report_from_cache(FIXTURES / "report_cache", fmt="md") == \
            _golden("report.md")


class TestCacheLoading:
    def test_rows_sorted_by_label_then_key(self):
        loaded = load_cache_rows(FIXTURES / "report_cache")
        order = [(r.label, r.key) for r in loaded.rows]
        assert order == sorted(order)
        assert loaded.skipped == 0

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="does not exist"):
            load_cache_rows(tmp_path / "absent")

    def test_empty_directory_rejected(self, tmp_path):
        (tmp_path / "cache").mkdir()
        with pytest.raises(ReproError, match="no loadable"):
            load_cache_rows(tmp_path / "cache")

    def test_allow_empty_returns_no_rows(self, tmp_path):
        # The baseline loader's degradation path: an empty or all-stale
        # directory means "nothing to compare", not a failed report.
        (tmp_path / "cache").mkdir()
        loaded = load_cache_rows(tmp_path / "cache", allow_empty=True)
        assert loaded.rows == () and loaded.skipped == 0

    def test_stale_and_corrupt_entries_skipped(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        for name, payload in _fixture_payloads():
            (cache / name).write_text(json.dumps(payload), encoding="utf-8")
        good = load_cache_rows(cache)
        # Break one entry's version and another's JSON.
        entries = sorted(cache.glob("*.json"))
        stale = json.loads(entries[0].read_text(encoding="utf-8"))
        stale["version"] = CACHE_VERSION + 1
        entries[0].write_text(json.dumps(stale), encoding="utf-8")
        entries[1].write_text("][", encoding="utf-8")
        degraded = load_cache_rows(cache)
        assert degraded.skipped == 2
        assert len(degraded.rows) == len(good.rows) - 2

    def test_strict_report_refuses_partial_cache(self, tmp_path):
        # The library path must not render a partial cache as if it
        # were the whole grid (the CLI passes strict=False and warns).
        cache = tmp_path / "cache"
        cache.mkdir()
        for name, payload in _fixture_payloads():
            (cache / name).write_text(json.dumps(payload), encoding="utf-8")
        stale = sorted(cache.glob("*.json"))[0]
        payload = json.loads(stale.read_text(encoding="utf-8"))
        payload["version"] = CACHE_VERSION + 1
        stale.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ReproError, match="stale/invalid"):
            report_from_cache(cache)
        assert report_from_cache(cache, strict=False)  # subset renders

    def test_renamed_entry_fails_hash_check(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        payloads = _fixture_payloads()
        for name, payload in payloads:
            (cache / name).write_text(json.dumps(payload), encoding="utf-8")
        first = sorted(cache.glob("*.json"))[0]
        first.rename(cache / "0000000000000000.json")
        assert load_cache_rows(cache).skipped == 1


def _fixture_payloads():
    return [
        (path.name, json.loads(path.read_text(encoding="utf-8")))
        for path in sorted((FIXTURES / "report_cache").glob("*.json"))
    ]


def _synthetic_row(config, index=0):
    """A hand-written CellResult (no simulation) for rendering tests."""
    from repro.exp.results import CellResult

    return CellResult(
        config=config,
        key=config.key(),
        label=config.label(),
        workload="synthetic",
        sw_ms=10.0,
        vim_ms=1.0 + index,
        hw_ms=0.5,
        sw_dp_ms=0.3,
        sw_imu_ms=0.02,
        sw_other_ms=0.01,
        vim_speedup=10.0 / (1.0 + index),
        page_faults=index,
        compulsory_loads=1,
        evictions=0,
        writebacks=0,
        prefetches=0,
        bytes_to_dpram=1024,
        bytes_from_dpram=1024,
        tlb_hit_rate=1.0,
    )


class TestGrouping:
    def test_numeric_axes_group_in_numeric_order(self):
        from repro.exp.spec import CellConfig

        rows = [
            _synthetic_row(CellConfig(page_bytes=page), index)
            for index, page in enumerate((512, 1024, 2048))
        ]
        text = render_report(rows, group_by=("page_bytes",), fmt="md")
        positions = [text.index(f"page_bytes={p}") for p in (512, 1024, 2048)]
        assert positions == sorted(positions)

    def test_none_axis_values_group_first(self):
        from repro.exp.spec import CellConfig

        rows = [
            _synthetic_row(CellConfig(page_bytes=1024), 0),
            _synthetic_row(CellConfig(), 1),  # page_bytes=None (preset)
        ]
        text = render_report(rows, group_by=("page_bytes",), fmt="md")
        assert text.index("page_bytes=None") < text.index("page_bytes=1024")

    def test_baseline_annotations(self):
        from repro.exp.spec import CellConfig

        configs = [CellConfig(), CellConfig(policy="lru")]
        current = [_synthetic_row(configs[0], 0), _synthetic_row(configs[1], 1)]
        baseline = [_synthetic_row(configs[0], 2)]  # lru cell is new
        text = render_report(
            current, columns=("cell", "vim_ms"), fmt="csv", baseline=baseline
        )
        lines = text.splitlines()
        assert lines[1].endswith('"1.000 (-2.000, -66.7%)"')
        assert lines[2].endswith("2.000 (new)")

    def test_baseline_equal_cells_annotated_as_equal(self):
        from repro.exp.spec import CellConfig

        rows = [_synthetic_row(CellConfig())]
        text = render_report(
            rows, columns=("cell", "vim_ms"), fmt="md", baseline=rows
        )
        assert "1.000 (=)" in text

    def test_baseline_only_cells_listed_after_tables(self):
        from repro.exp.spec import CellConfig

        kept = _synthetic_row(CellConfig())
        gone = _synthetic_row(CellConfig(policy="lru"), 1)
        text = render_report([kept], fmt="md", baseline=[kept, gone])
        assert text.endswith(
            "1 baseline cell(s) absent from this cache: adpcm-8KB/lru"
        )

    def test_baseline_csv_stays_pure_records(self):
        # The prose trailer would corrupt a CSV consumer; annotations
        # ride inside quoted fields instead.
        import csv as csv_module
        import io

        from repro.exp.spec import CellConfig

        kept = _synthetic_row(CellConfig())
        gone = _synthetic_row(CellConfig(policy="lru"), 1)
        text = render_report([kept], fmt="csv", baseline=[kept, gone])
        assert "absent from this cache" not in text
        parsed = list(csv_module.reader(io.StringIO(text)))
        assert len(parsed) == 2  # header + the one current row
        assert all(len(row) == len(parsed[0]) for row in parsed)

    def test_typical_column_renders_dash_when_not_requested(self):
        from repro.exp.spec import CellConfig

        rows = [_synthetic_row(CellConfig())]  # typical_ms=None, fits=True
        text = render_report(
            rows, columns=("cell", "typical_ms"), fmt="csv"
        )
        assert text.splitlines()[1].endswith(",-")
        assert "None" not in text


class TestValidation:
    def test_unknown_format_rejected(self):
        rows = load_cache_rows(FIXTURES / "report_cache").rows
        with pytest.raises(ReproError, match="format"):
            render_report(rows, fmt="pdf")

    def test_unknown_group_axis_rejected(self):
        rows = load_cache_rows(FIXTURES / "report_cache").rows
        with pytest.raises(ReproError, match="axis"):
            render_report(rows, group_by=("colour",))

    def test_unknown_column_rejected(self):
        rows = load_cache_rows(FIXTURES / "report_cache").rows
        with pytest.raises(ReproError, match="column"):
            render_report(rows, columns=("cell", "warp_factor"))

    def test_render_table_rejects_unknown_format(self):
        with pytest.raises(ReproError, match="format"):
            render_table(["a"], [[1]], fmt="html")

    def test_csv_grouping_is_flat_with_leading_axes(self):
        rows = load_cache_rows(FIXTURES / "report_cache").rows
        text = render_report(rows, group_by=("policy",), fmt="csv")
        lines = text.splitlines()
        assert lines[0].startswith("policy,")
        assert len(lines) == 1 + len(rows)


class TestEndToEnd:
    #: Fast 2-cell grid for the real-simulation acceptance check.
    GRID = SweepSpec(
        apps=("vadd",), input_bytes=(1024,), policies=("fifo", "lru")
    )

    def test_sharded_merge_report_byte_identical_to_unsharded(self, tmp_path):
        cells = self.GRID.expand()
        for index in (1, 2):
            run_sweep(
                shard_cells(cells, index, 2),
                cache_dir=tmp_path / f"shard{index}",
            )
        run_sweep(self.GRID, cache_dir=tmp_path / "full")
        merge_into(
            tmp_path / "merged",
            [tmp_path / "shard1", tmp_path / "shard2"],
        )
        for fmt in FORMATS:
            merged = report_from_cache(tmp_path / "merged", fmt=fmt)
            unsharded = report_from_cache(tmp_path / "full", fmt=fmt)
            assert merged == unsharded, fmt
