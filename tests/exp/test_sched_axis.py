"""Tests for the scheduling axis and trace-replay axis of the sweep.

Covers the spec-level canonicalisation rules (solo cells are always
``rr``, priorities live in ``tenant_mix`` slots, trace identity is the
digest), the CLI spelling, and the headline equivalence invariant:
strict priority with all-equal priorities produces *byte-identical*
result rows to round-robin across the contention grid.
"""

import pytest

from repro.cli import main, spec_from_args, build_parser
from repro.errors import ReproError
from repro.exp import run_cell
from repro.exp.spec import CellConfig, SweepSpec, parse_mix_part


def _contended(**overrides):
    base = dict(
        app="adpcm", input_bytes=2 * 1024, tenants=2, tenant_repeats=2
    )
    base.update(overrides)
    return CellConfig(**base)


class TestMixPriorities:
    def test_parse_mix_part(self):
        assert parse_mix_part("adpcm") == ("adpcm", 1)
        assert parse_mix_part("idea:3") == ("idea", 3)

    def test_bad_priority_rejected(self):
        with pytest.raises(ReproError):
            parse_mix_part("adpcm:0")
        with pytest.raises(ReproError):
            parse_mix_part("adpcm:x")

    def test_neutral_priority_spelled_out_is_canonicalised(self):
        config = _contended(tenant_mix="adpcm:1+idea:2", sched="priority")
        assert config.tenant_mix == "adpcm+idea:2"

    def test_rr_strips_all_priorities(self):
        # Round-robin ignores weights entirely; keeping them in the
        # canonical mix would split the cache for identical runs.
        config = _contended(tenant_mix="adpcm:2+idea:3", sched="rr")
        assert config.tenant_mix == "adpcm+idea"

    def test_equal_cells_share_hash_across_spelling(self):
        a = _contended(tenant_mix="adpcm:1+idea", sched="priority")
        b = _contended(tenant_mix="adpcm+idea:1", sched="priority")
        assert a.key() == b.key()


class TestSchedCanonicalisation:
    def test_unknown_sched_rejected(self):
        with pytest.raises(ReproError):
            CellConfig(sched="lottery")

    def test_solo_cell_canonicalises_to_rr(self):
        # One process on the queue: every policy dispatches identically,
        # so solo cells collapse to one cache entry.
        assert CellConfig(app="adpcm", sched="priority").sched == "rr"

    def test_contended_cell_keeps_sched(self):
        assert _contended(sched="priority").sched == "priority"

    def test_label_shows_sched(self):
        assert "sched-priority" in _contended(sched="priority").label()
        assert "sched" not in _contended(sched="rr").label()

    def test_sched_axis_expands(self):
        spec = SweepSpec(
            apps=("adpcm",), input_bytes=(2048,), tenants=(2,),
            scheds=("rr", "priority"),
        )
        assert spec.size == 2
        assert {c.sched for c in spec.expand()} == {"rr", "priority"}


class TestTraceConfigRules:
    def test_trace_app_requires_path(self):
        with pytest.raises(ReproError, match="trace_path"):
            CellConfig(app="trace")

    def test_trace_forbidden_as_mix_slot(self):
        with pytest.raises(ReproError):
            _contended(tenant_mix="trace+adpcm")

    def test_non_trace_app_drops_trace_fields(self):
        config = CellConfig(app="adpcm", trace_path="ignored.gz")
        assert config.trace_path is None
        assert config.trace_digest is None


class TestEquivalence:
    """The falsifiable scheduling claims, at the result-row level."""

    #: Small contention grid: same-app and mixed-app, 2 and 3 tenants.
    GRID = [
        dict(tenants=2, tenant_mix="same"),
        dict(tenants=2, tenant_mix="adpcm+idea"),
        dict(tenants=3, tenant_mix="same"),
    ]

    @staticmethod
    def _comparable(config: CellConfig) -> dict:
        """The result row minus the scheduling identity fields."""
        row = run_cell(config).to_dict()
        del row["config"]["sched"]
        del row["key"]
        del row["label"]
        return row

    @pytest.mark.parametrize("axes", GRID, ids=lambda a: f"x{a['tenants']}-{a['tenant_mix']}")
    def test_equal_priority_strict_priority_matches_rr(self, axes):
        rr = self._comparable(_contended(sched="rr", **axes))
        prio = self._comparable(_contended(sched="priority", **axes))
        assert prio == rr

    def test_all_weights_one_wrr_matches_rr(self):
        rr = self._comparable(_contended(sched="rr"))
        wrr = self._comparable(_contended(sched="wrr"))
        assert wrr == rr

    def test_unequal_priorities_change_the_schedule(self):
        base = _contended(tenant_mix="adpcm+idea")
        rr = self._comparable(base)
        prio = self._comparable(
            _contended(tenant_mix="adpcm:3+idea", sched="priority")
        )
        # The boosted tenant's executions run back-to-back, which must
        # show up in the interleaving-sensitive numbers.
        del rr["config"]["tenant_mix"]
        del prio["config"]["tenant_mix"]
        assert prio != rr


class TestCliSpelling:
    def test_sched_flag_reaches_spec(self):
        parser = build_parser()
        args = parser.parse_args(
            ["sweep", "--app", "adpcm", "--tenants", "2",
             "--sched", "rr", "priority"]
        )
        args.argv = []
        spec = spec_from_args(args)
        assert spec.scheds == ("rr", "priority")

    def test_trace_flag_reaches_spec(self):
        parser = build_parser()
        args = parser.parse_args(
            ["sweep", "--app", "trace", "--trace", "a.gz", "b.gz"]
        )
        args.argv = []
        assert spec_from_args(args).trace_paths == ("a.gz", "b.gz")

    def test_record_then_sweep_then_report(self, tmp_path, capsys):
        trace = tmp_path / "t.gz"
        assert main(
            ["record", str(trace), "--app", "synthetic", "--kb", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "digest" in out and str(trace) in out
        cache = tmp_path / "cache"
        assert main(
            ["sweep", "--app", "trace", "--trace", str(trace),
             "--cache", str(cache)]
        ) == 0
        capsys.readouterr()
        assert main(["report", "--cache", str(cache)]) == 0
        assert "trace-" in capsys.readouterr().out

    def test_record_rejects_a_grid(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["record", str(tmp_path / "t.gz"),
                  "--app", "synthetic", "--kb", "2", "4"])

    def test_record_rejects_trace_app(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["record", str(tmp_path / "t.gz"), "--app", "trace",
                  "--trace", "x.gz"])

    def test_sweep_report_warns_deprecated(self, tmp_path, capsys):
        trace = tmp_path / "t.gz"
        main(["record", str(trace), "--app", "synthetic", "--kb", "2"])
        cache = tmp_path / "cache"
        main(["sweep", "--app", "trace", "--trace", str(trace),
              "--cache", str(cache)])
        capsys.readouterr()
        assert main(["sweep", "--report", "--cache", str(cache)]) == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        legacy_out = captured.out
        assert main(["report", "--cache", str(cache)]) == 0
        captured = capsys.readouterr()
        # The alias forwards to the same renderer: identical stdout,
        # and the dedicated subcommand never warns.
        assert captured.out == legacy_out
        assert "deprecated" not in captured.err
