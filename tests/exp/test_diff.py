"""Tests for cross-run diffing (``repro.exp.diff``).

All caches here are synthetic (hand-written rows stored through the
real :class:`~repro.exp.cache.SweepCache`, no simulation), so each
test controls the injected deltas exactly.  The golden test renders
the committed ``tests/exp/fixtures/baseline_cache`` against
``report_cache`` — regenerate both with
``tools/make_report_fixture.py`` after a ``CACHE_VERSION`` bump.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.exp.cache import SweepCache
from repro.exp.diff import (
    DEFAULT_METRICS,
    METRICS,
    diff_caches,
    load_side,
    render_diff,
    scalar_delta,
)
from repro.exp.results import CellResult
from repro.exp.spec import CACHE_VERSION, CellConfig

FIXTURES = Path(__file__).parent / "fixtures"


def _row(config: CellConfig, vim_ms=1.0, faults=0, dma=0) -> CellResult:
    """A hand-written result row with controllable diff metrics."""
    return CellResult(
        config=config,
        key=config.key(),
        label=config.label(),
        workload="synthetic",
        sw_ms=10.0,
        vim_ms=vim_ms,
        hw_ms=0.5,
        sw_dp_ms=0.3,
        sw_imu_ms=0.02,
        sw_other_ms=0.01,
        vim_speedup=10.0 / vim_ms,
        page_faults=faults,
        compulsory_loads=1,
        evictions=0,
        writebacks=0,
        prefetches=0,
        bytes_to_dpram=1024,
        bytes_from_dpram=1024,
        tlb_hit_rate=1.0,
        dma_transfers=dma,
    )


CONFIGS = [
    CellConfig(app="vadd", input_bytes=1024, policy=policy)
    for policy in ("fifo", "lru")
]


def _write_cache(path, rows):
    cache = SweepCache(path)
    for row in rows:
        cache.store(row)
    return path


@pytest.fixture
def identical_caches(tmp_path):
    rows = [_row(config) for config in CONFIGS]
    return (
        _write_cache(tmp_path / "a", rows),
        _write_cache(tmp_path / "b", rows),
    )


class TestIdenticalRuns:
    def test_empty_diff_and_no_regressions(self, identical_caches):
        result = diff_caches(*identical_caches)
        assert len(result.cells) == len(CONFIGS)
        assert result.changed_cells == ()
        assert result.regressions == ()
        assert not result.has_regressions
        assert result.added == () and result.removed == ()

    def test_renders_all_zero_table(self, identical_caches):
        text = render_diff(diff_caches(*identical_caches))
        for line in text.splitlines()[2:2 + len(CONFIGS)]:
            cells = line.split()
            assert set(cells[1:-1]) == {"0"}
            assert cells[-1] == "ok"
        assert "0 changed, 0 regression(s)" in text

    def test_fingerprints_match(self, identical_caches):
        base, current = diff_caches(*identical_caches).fingerprints()
        assert base == current


class TestToleranceClassification:
    def _diff(self, tmp_path, vim_factor, **kwargs):
        base = [_row(config) for config in CONFIGS]
        current = [
            dataclasses.replace(
                row, vim_ms=row.vim_ms * vim_factor,
                vim_speedup=row.sw_ms / (row.vim_ms * vim_factor),
            )
            for row in base
        ]
        return diff_caches(
            _write_cache(tmp_path / "a", base),
            _write_cache(tmp_path / "b", current),
            **kwargs,
        )

    def test_exact_by_default_any_drift_is_a_change(self, tmp_path):
        result = self._diff(tmp_path, 1.000001)
        assert len(result.changed_cells) == len(CONFIGS)
        assert result.has_regressions  # vim_ms up = worse

    def test_rtol_straddle(self, tmp_path):
        # +5% vim_ms: invisible at rtol=0.1, a regression at rtol=0.01.
        assert not self._diff(tmp_path, 1.05, rtol=0.1).changed_cells
        tight = self._diff(tmp_path, 1.05, rtol=0.01)
        assert tight.has_regressions
        delta = tight.cells[0].deltas[0]
        assert delta.metric == "vim_ms"
        assert delta.changed and delta.regressed
        assert delta.relative == pytest.approx(0.05)

    def test_atol_straddle(self, tmp_path):
        # +0.05 ms on vim_ms: invisible at atol=0.1, visible at 0.01.
        only_vim = {"metrics": ("vim_ms",)}
        assert not self._diff(tmp_path, 1.05, atol=0.1,
                              **only_vim).changed_cells
        assert self._diff(tmp_path, 1.05, atol=0.01,
                          **only_vim).changed_cells

    def test_improvement_changes_but_never_regresses(self, tmp_path):
        result = self._diff(tmp_path, 0.9)  # faster + higher speedup
        assert len(result.changed_cells) == len(CONFIGS)
        assert not result.has_regressions

    def test_lower_speedup_is_a_regression(self):
        delta = scalar_delta("speedup", 10.0, 9.0, higher_is_worse=False)
        assert delta.changed and delta.regressed
        assert scalar_delta("speedup", 9.0, 10.0,
                            higher_is_worse=False).regressed is False

    def test_directionless_metric_never_gates(self, tmp_path):
        base = [_row(config, dma=4) for config in CONFIGS]
        current = [dataclasses.replace(row, dma_transfers=8) for row in base]
        result = diff_caches(
            _write_cache(tmp_path / "a", base),
            _write_cache(tmp_path / "b", current),
            metrics=("dma_transfers",),
        )
        assert len(result.changed_cells) == len(CONFIGS)
        assert not result.has_regressions

    def test_negative_tolerance_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="tolerances"):
            self._diff(tmp_path, 1.0, rtol=-0.1)

    def test_unknown_metric_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="metric"):
            self._diff(tmp_path, 1.0, metrics=("warp_factor",))


class TestAddedRemovedStale:
    def test_added_and_removed_cells_reported(self, tmp_path):
        extra = CellConfig(app="vadd", input_bytes=2048)
        base = _write_cache(
            tmp_path / "a", [_row(CONFIGS[0]), _row(CONFIGS[1])]
        )
        current = _write_cache(
            tmp_path / "b", [_row(CONFIGS[0]), _row(extra)]
        )
        result = diff_caches(base, current)
        assert [r.label for r in result.added] == [extra.label()]
        assert [r.label for r in result.removed] == [CONFIGS[1].label()]
        assert not result.has_regressions  # shape changes never gate
        text = render_diff(result)
        assert "added (current only): vadd-2KB" in text
        assert "removed (baseline only): vadd-1KB/lru" in text
        assert "grids differ" in text

    def test_stale_version_reported_distinctly(self, tmp_path):
        rows = [_row(config) for config in CONFIGS]
        base = _write_cache(tmp_path / "a", rows)
        current = _write_cache(tmp_path / "b", rows)
        entry = sorted(base.glob("*.json"))[0]
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["version"] = CACHE_VERSION + 1
        entry.write_text(json.dumps(payload), encoding="utf-8")
        result = diff_caches(base, current)
        assert result.baseline.stale == 1
        assert result.baseline.invalid == 0
        assert len(result.added) == 1  # its counterpart lost its match
        text = render_diff(result)
        assert "1 stale-version file(s)" in text
        assert "CACHE_VERSION" in text

    def test_invalid_file_reported_separately_from_stale(self, tmp_path):
        rows = [_row(config) for config in CONFIGS]
        base = _write_cache(tmp_path / "a", rows)
        current = _write_cache(tmp_path / "b", rows)
        sorted(base.glob("*.json"))[0].write_text("][", encoding="utf-8")
        result = diff_caches(base, current)
        assert result.baseline.stale == 0
        assert result.baseline.invalid == 1
        assert "1 invalid file(s)" in render_diff(result)

    def test_all_stale_baseline_is_not_a_regression(self, tmp_path):
        # The CACHE_VERSION-bump escape hatch: nothing comparable, no
        # gate, and the renderer says so.
        rows = [_row(config) for config in CONFIGS]
        base = _write_cache(tmp_path / "a", rows)
        current = _write_cache(tmp_path / "b", rows)
        for entry in base.glob("*.json"):
            payload = json.loads(entry.read_text(encoding="utf-8"))
            payload["version"] = CACHE_VERSION + 1
            entry.write_text(json.dumps(payload), encoding="utf-8")
        result = diff_caches(base, current)
        assert result.cells == ()
        assert not result.has_regressions
        assert "no comparable cells" in render_diff(result)


class TestSources:
    def test_json_dump_as_either_side(self, tmp_path):
        rows = [_row(config) for config in CONFIGS]
        cache = _write_cache(tmp_path / "a", rows)
        dump = tmp_path / "rows.json"
        dump.write_text(
            json.dumps([row.to_dict() for row in rows]), encoding="utf-8"
        )
        for pair in ((cache, dump), (dump, cache)):
            result = diff_caches(*pair)
            assert len(result.cells) == len(CONFIGS)
            assert not result.changed_cells

    def test_dump_with_conflicting_duplicates_rejected(self, tmp_path):
        row = _row(CONFIGS[0])
        clash = dataclasses.replace(row, vim_ms=row.vim_ms + 1.0)
        dump = tmp_path / "rows.json"
        dump.write_text(
            json.dumps([row.to_dict(), clash.to_dict()]), encoding="utf-8"
        )
        with pytest.raises(ReproError, match="two different results"):
            load_side(dump)

    def test_missing_source_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="does not exist"):
            load_side(tmp_path / "absent")

    def test_empty_directory_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ReproError, match="no cache entries"):
            load_side(tmp_path / "empty")

    def test_non_list_dump_rejected(self, tmp_path):
        dump = tmp_path / "rows.json"
        dump.write_text("{}", encoding="utf-8")
        with pytest.raises(ReproError, match="not a cache directory"):
            load_side(dump)


class TestRendering:
    def test_golden_fixture_diff(self):
        result = diff_caches(FIXTURES / "baseline_cache",
                             FIXTURES / "report_cache")
        text = render_diff(result, fmt="md")
        golden = (FIXTURES / "diff.md").read_text(encoding="utf-8")
        assert text == golden.rstrip("\n")

    def test_metrics_become_columns(self, identical_caches):
        result = diff_caches(*identical_caches, metrics=("vim_ms", "faults"))
        header = render_diff(result, fmt="md").splitlines()[0]
        assert header == "| cell | Δ vim_ms | Δ faults | status |"

    def test_default_metrics_are_known(self):
        assert set(DEFAULT_METRICS) <= set(METRICS)

    def test_csv_is_pure_records(self, tmp_path):
        # csv must stay machine-parseable: the table only, no summary
        # prose, notes, or bars (those are md/ascii furniture).
        import csv as csv_module
        import io

        base = [_row(config) for config in CONFIGS]
        current = [
            dataclasses.replace(row, vim_ms=row.vim_ms * 2) for row in base
        ]
        result = diff_caches(
            _write_cache(tmp_path / "a", base),
            _write_cache(tmp_path / "b", current),
        )
        ascii_text = render_diff(result, fmt="ascii")
        assert "Δ vim_ms vs baseline:" in ascii_text
        assert "cell(s) compared" in ascii_text
        csv_text = render_diff(result, fmt="csv")
        assert "vs baseline:" not in csv_text
        assert "cell(s) compared" not in csv_text
        parsed = list(csv_module.reader(io.StringIO(csv_text)))
        assert len(parsed) == 1 + len(CONFIGS)
        assert all(len(row) == len(parsed[0]) for row in parsed)

    def test_md_bars_are_fenced(self, tmp_path):
        base = [_row(CONFIGS[0])]
        current = [dataclasses.replace(base[0], vim_ms=2.0)]
        result = diff_caches(
            _write_cache(tmp_path / "a", base),
            _write_cache(tmp_path / "b", current),
        )
        text = render_diff(result, fmt="md")
        assert "```\nΔ vim_ms vs baseline:" in text
