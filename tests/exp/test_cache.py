"""Tests for the per-cell JSON result cache."""

import json

from repro.exp import cache as cache_module
from repro.exp import spec as spec_module
from repro.exp.cache import SweepCache
from repro.exp.cell import run_cell
from repro.exp.spec import CellConfig

#: The smallest meaningful cell: a 64-element vector add.
TINY = CellConfig(app="vadd", input_bytes=256)


class TestRoundTrip:
    def test_store_then_load(self, tmp_path):
        cache = SweepCache(tmp_path)
        result = run_cell(TINY)
        cache.store(result)
        assert cache.load(TINY) == result

    def test_miss_on_empty_cache(self, tmp_path):
        assert SweepCache(tmp_path).load(TINY) is None

    def test_miss_on_different_config(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.store(run_cell(TINY))
        other = CellConfig(app="vadd", input_bytes=256, policy="lru")
        assert cache.load(other) is None

    def test_row_serves_the_other_engine(self, tmp_path):
        # The engine backend is excluded from cell identity: a row
        # priced by either backend must serve a sweep running the
        # other (the CI equivalence job's cache-hit guard relies on
        # this).  The returned row keeps its own provenance.
        from dataclasses import replace

        cache = SweepCache(tmp_path)
        result = run_cell(TINY)
        cache.store(result)
        hit = cache.load(replace(TINY, engine="fast"))
        assert hit == result
        assert hit.config.engine == "reference"

    def test_len_counts_entries(self, tmp_path):
        cache = SweepCache(tmp_path)
        assert len(cache) == 0
        cache.store(run_cell(TINY))
        assert len(cache) == 1


class TestDefensiveLoads:
    def test_corrupt_file_degrades_to_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        path = cache.store(run_cell(TINY))
        path.write_text("{not json", encoding="utf-8")
        assert cache.load(TINY) is None

    def test_version_mismatch_degrades_to_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        path = cache.store(run_cell(TINY))
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["version"] = -1
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.load(TINY) is None

    def test_config_mismatch_inside_file_degrades_to_miss(self, tmp_path):
        # A renamed/collided file whose stored config differs from the
        # requested one must never be returned.
        cache = SweepCache(tmp_path)
        stored_path = cache.store(run_cell(TINY))
        other = CellConfig(app="vadd", input_bytes=256, seed=9)
        stored_path.rename(tmp_path / f"{other.key()}.json")
        assert cache.load(other) is None

    def test_creates_directory(self, tmp_path):
        root = tmp_path / "deep" / "cache"
        SweepCache(root)
        assert root.is_dir()

    def test_cache_version_bump_invalidates_everything(
        self, tmp_path, monkeypatch
    ):
        # A schema bump (e.g. 2 -> 3 for the dma axis and the
        # tlb_refills column) must turn every stored cell into a clean
        # miss: the hash moves (new key file) *and* an entry written
        # under the old version is refused even if found.
        cache = SweepCache(tmp_path)
        old_path = cache.store(run_cell(TINY))
        monkeypatch.setattr(spec_module, "CACHE_VERSION", spec_module.CACHE_VERSION + 1)
        monkeypatch.setattr(cache_module, "CACHE_VERSION", cache_module.CACHE_VERSION + 1)
        assert TINY.key() != old_path.stem  # the hash covers the version
        assert cache.load(TINY) is None
        # Even a hash collision cannot resurrect it: rename the old
        # entry onto the new key and the version check still refuses.
        old_path.rename(tmp_path / f"{TINY.key()}.json")
        assert cache.load(TINY) is None


class TestIterClassified:
    def test_statuses_cover_ok_stale_and_invalid(self, tmp_path):
        from repro.exp.cache import iter_classified, iter_entries
        from repro.exp.spec import CACHE_VERSION

        cache = SweepCache(tmp_path)
        ok_path = cache.store(run_cell(TINY))
        other = CellConfig(app="vadd", input_bytes=256, seed=2)
        stale_path = cache.store(run_cell(other))
        payload = json.loads(stale_path.read_text(encoding="utf-8"))
        payload["version"] = CACHE_VERSION + 1
        stale_path.write_text(json.dumps(payload), encoding="utf-8")
        (tmp_path / "zz-corrupt.json").write_text("][", encoding="utf-8")
        by_status = {
            status: path.name
            for path, status, _result in iter_classified(tmp_path)
        }
        assert by_status == {
            "ok": ok_path.name,
            "stale-version": stale_path.name,
            "invalid": "zz-corrupt.json",
        }
        # iter_entries is the status-blind view of the same walk.
        assert [(p.name, r is not None) for p, r in iter_entries(tmp_path)] \
            == [(p.name, s == "ok") for p, s, _ in iter_classified(tmp_path)]

    def test_renamed_entry_is_invalid_not_stale(self, tmp_path):
        from repro.exp.cache import iter_classified

        cache = SweepCache(tmp_path)
        path = cache.store(run_cell(TINY))
        path.rename(tmp_path / f"{'0' * 16}.json")
        [(_, status, result)] = list(iter_classified(tmp_path))
        assert status == "invalid" and result is None
