"""Unit tests for the interrupt controller."""

import pytest

from repro.errors import HardwareError
from repro.hw.interrupts import InterruptController


class TestLines:
    def test_raise_and_pending(self):
        ic = InterruptController()
        ic.raise_line(0)
        assert ic.is_pending(0)
        assert ic.pending_unmasked() == [0]

    def test_raise_is_idempotent_while_pending(self):
        ic = InterruptController()
        ic.raise_line(2)
        ic.raise_line(2)
        assert ic.raised_count[2] == 1

    def test_clear(self):
        ic = InterruptController()
        ic.raise_line(1)
        ic.clear(1)
        assert not ic.is_pending(1)

    def test_re_raise_after_clear_counts(self):
        ic = InterruptController()
        ic.raise_line(1)
        ic.clear(1)
        ic.raise_line(1)
        assert ic.raised_count[1] == 2

    def test_out_of_range_rejected(self):
        ic = InterruptController(num_lines=4)
        with pytest.raises(HardwareError):
            ic.raise_line(4)
        with pytest.raises(HardwareError):
            ic.clear(-1)

    def test_at_least_one_line_required(self):
        with pytest.raises(HardwareError):
            InterruptController(num_lines=0)


class TestMasking:
    def test_masked_line_not_dispatched(self):
        ic = InterruptController()
        ic.raise_line(0)
        ic.mask(0)
        assert ic.pending_unmasked() == []
        assert ic.is_pending(0)  # still asserted, just masked

    def test_unmask_restores_dispatch(self):
        ic = InterruptController()
        ic.raise_line(0)
        ic.mask(0)
        ic.unmask(0)
        assert ic.pending_unmasked() == [0]


class TestDispatch:
    def test_dispatch_runs_handler(self):
        ic = InterruptController()
        seen = []

        def handler(line):
            seen.append(line)
            ic.clear(line)

        ic.register(3, handler)
        ic.raise_line(3)
        assert ic.dispatch() == 1
        assert seen == [3]

    def test_unhandled_interrupt_raises(self):
        ic = InterruptController()
        ic.raise_line(0)
        with pytest.raises(HardwareError):
            ic.dispatch()

    def test_duplicate_handler_rejected(self):
        ic = InterruptController()
        ic.register(0, lambda line: None)
        with pytest.raises(HardwareError):
            ic.register(0, lambda line: None)

    def test_unregister_allows_reregister(self):
        ic = InterruptController()
        ic.register(0, lambda line: None)
        ic.unregister(0)
        ic.register(0, lambda line: ic.clear(line))

    def test_level_triggered_semantics(self):
        # A handler that does not clear leaves the line pending.
        ic = InterruptController()
        ic.register(0, lambda line: None)
        ic.raise_line(0)
        ic.dispatch()
        assert ic.is_pending(0)

    def test_lower_lines_dispatch_first(self):
        ic = InterruptController()
        order = []

        def make(line):
            def handler(which):
                order.append(which)
                ic.clear(which)

            return handler

        ic.register(2, make(2))
        ic.register(1, make(1))
        ic.raise_line(2)
        ic.raise_line(1)
        ic.dispatch()
        assert order == [1, 2]
