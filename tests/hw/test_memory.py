"""Unit tests for the backing-store memory models."""

import pytest

from repro.errors import MemoryAccessError
from repro.hw.memory import Flash, Memory, Sdram


class TestMemory:
    def test_roundtrip(self):
        mem = Memory("m", 64)
        mem.write(10, b"hello")
        assert mem.read(10, 5) == b"hello"

    def test_initialised_to_zero(self):
        mem = Memory("m", 16)
        assert mem.read(0, 16) == bytes(16)

    def test_out_of_range_read_rejected(self):
        mem = Memory("m", 16)
        with pytest.raises(MemoryAccessError):
            mem.read(12, 8)

    def test_out_of_range_write_rejected(self):
        mem = Memory("m", 16)
        with pytest.raises(MemoryAccessError):
            mem.write(15, b"ab")

    def test_negative_address_rejected(self):
        mem = Memory("m", 16)
        with pytest.raises(MemoryAccessError):
            mem.read(-1, 4)

    def test_zero_size_rejected(self):
        with pytest.raises(MemoryAccessError):
            Memory("m", 0)

    def test_word_roundtrip_little_endian(self):
        mem = Memory("m", 16)
        mem.write_word(4, 0x11223344, size=4)
        assert mem.read(4, 4) == bytes([0x44, 0x33, 0x22, 0x11])
        assert mem.read_word(4, size=4) == 0x11223344

    def test_half_and_byte_words(self):
        mem = Memory("m", 16)
        mem.write_word(0, 0xBEEF, size=2)
        mem.write_word(2, 0x7F, size=1)
        assert mem.read_word(0, size=2) == 0xBEEF
        assert mem.read_word(2, size=1) == 0x7F

    def test_unsupported_word_size_rejected(self):
        mem = Memory("m", 16)
        with pytest.raises(MemoryAccessError):
            mem.read_word(0, size=3)
        with pytest.raises(MemoryAccessError):
            mem.write_word(0, 1, size=8)

    def test_access_counters(self):
        mem = Memory("m", 16)
        mem.write(0, b"x")
        mem.read(0, 1)
        mem.read(0, 1)
        assert mem.writes == 1
        assert mem.reads == 2

    def test_fill(self):
        mem = Memory("m", 8)
        mem.fill(0xAA)
        assert mem.read(0, 8) == bytes([0xAA] * 8)

    def test_view_is_shared(self):
        mem = Memory("m", 8)
        mem.view()[3] = 99
        assert mem.read(3, 1) == bytes([99])


class TestPresets:
    def test_sdram_board_size(self):
        assert Sdram().size == 64 * 1024 * 1024

    def test_flash_board_size(self):
        assert Flash().size == 4 * 1024 * 1024

    def test_flash_write_is_expensive(self):
        flash = Flash()
        assert flash.write_latency > flash.read_latency
