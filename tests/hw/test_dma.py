"""Unit tests for the modelled DMA engine.

The engine's contract: bytes move at submit time (functional state),
bus time drains FIFO on the event queue, the AHB is held while a burst
is active, and one coalesced completion interrupt fires when a queue
containing an interrupt-requesting descriptor drains.
"""

import pytest

from repro.errors import HardwareError
from repro.hw.bus import AhbBus
from repro.hw.dma import INT_DMA_LINE, DmaDescriptor, DmaEngine
from repro.hw.interrupts import InterruptController
from repro.sim.engine import Engine
from repro.sim.time import mhz


def make_engine():
    engine = Engine()
    bus = AhbBus()
    interrupts = InterruptController()
    dma = DmaEngine(engine, bus, interrupts, mhz(66.5))
    return engine, bus, interrupts, dma


class TestSubmit:
    def test_bytes_move_at_submit(self):
        _, _, _, dma = make_engine()
        moved = []
        dma.submit(DmaDescriptor(nbytes=64, move=lambda: moved.append(64)))
        assert moved == [64]

    def test_completion_time_matches_bus_cost(self):
        engine, bus, _, dma = make_engine()
        descriptor = dma.submit(DmaDescriptor(nbytes=2048, move=lambda: None))
        expected = mhz(66.5).cycles_to_ps(bus.transfer_cycles(2048))
        assert descriptor.start_ps == 0
        assert descriptor.complete_ps == expected
        assert dma.busy
        assert dma.wait_ps() == expected
        engine.advance(expected)
        assert descriptor.done
        assert not dma.busy

    def test_fifo_queueing(self):
        engine, _, _, dma = make_engine()
        first = dma.submit(DmaDescriptor(nbytes=1024, move=lambda: None))
        second = dma.submit(DmaDescriptor(nbytes=1024, move=lambda: None))
        assert second.start_ps == first.complete_ps
        engine.advance(first.complete_ps)
        assert first.done and not second.done
        assert dma.in_flight == 1
        engine.advance(second.complete_ps - engine.now)
        assert second.done
        assert dma.descriptors_completed == 2

    def test_zero_byte_descriptor_rejected(self):
        _, _, _, dma = make_engine()
        with pytest.raises(HardwareError):
            dma.submit(DmaDescriptor(nbytes=0, move=lambda: None))

    def test_traffic_recorded_on_bus(self):
        _, bus, _, dma = make_engine()
        dma.submit(DmaDescriptor(nbytes=512, move=lambda: None))
        assert bus.bytes_transferred == 512
        assert bus.transactions == 1
        assert dma.bytes_moved == 512


class TestBusHold:
    def test_burst_holds_the_ahb(self):
        engine, bus, _, dma = make_engine()
        descriptor = dma.submit(DmaDescriptor(nbytes=2048, move=lambda: None))
        assert bus.grant_delay_ps(engine.now) == descriptor.complete_ps
        engine.advance(descriptor.complete_ps)
        assert bus.grant_delay_ps(engine.now) == 0

    def test_queue_extends_the_hold(self):
        engine, bus, _, dma = make_engine()
        dma.submit(DmaDescriptor(nbytes=1024, move=lambda: None))
        second = dma.submit(DmaDescriptor(nbytes=1024, move=lambda: None))
        assert bus.grant_delay_ps(engine.now) == second.complete_ps

    def test_contention_accounting(self):
        _, bus, _, _ = make_engine()
        bus.note_contention(500)
        bus.note_contention(0)  # a granted transfer is not a stall
        assert bus.contention_stalls == 1
        assert bus.contention_ps == 500


class TestCompletionInterrupt:
    def test_irq_raised_when_armed_queue_drains(self):
        engine, _, interrupts, dma = make_engine()
        dma.submit(DmaDescriptor(nbytes=256, move=lambda: None, irq=True))
        assert not interrupts.is_pending(INT_DMA_LINE)
        engine.drain()
        assert interrupts.is_pending(INT_DMA_LINE)
        assert dma.completion_irqs == 1

    def test_no_irq_without_request(self):
        engine, _, interrupts, dma = make_engine()
        dma.submit(DmaDescriptor(nbytes=256, move=lambda: None, irq=False))
        engine.drain()
        assert not interrupts.is_pending(INT_DMA_LINE)
        assert dma.completion_irqs == 0

    def test_irq_coalesced_per_burst(self):
        engine, _, interrupts, dma = make_engine()
        for _ in range(4):
            dma.submit(DmaDescriptor(nbytes=256, move=lambda: None, irq=True))
        engine.drain()
        # One queue-drained interrupt for the whole burst, not four.
        assert dma.completion_irqs == 1
        assert interrupts.raised_count[INT_DMA_LINE] == 1

    def test_irq_fires_at_queue_drain_not_first_completion(self):
        engine, _, interrupts, dma = make_engine()
        first = dma.submit(DmaDescriptor(nbytes=256, move=lambda: None, irq=True))
        second = dma.submit(DmaDescriptor(nbytes=256, move=lambda: None))
        engine.advance(first.complete_ps)
        assert not interrupts.is_pending(INT_DMA_LINE)
        engine.advance(second.complete_ps - engine.now)
        assert interrupts.is_pending(INT_DMA_LINE)
