"""Unit tests for the PLD fabric model."""

import pytest

from repro.coproc.kernels import adpcm, idea, vector_add
from repro.errors import FpgaError
from repro.hw.fpga import (
    EPXA1_RESOURCES,
    EPXA4_RESOURCES,
    EPXA10_RESOURCES,
    PldFabric,
    PldResources,
)


class TestResources:
    def test_fits_in(self):
        small = PldResources(100, 1000)
        big = PldResources(200, 2000)
        assert small.fits_in(big)
        assert not big.fits_in(small)

    def test_negative_rejected(self):
        with pytest.raises(FpgaError):
            PldResources(-1, 0)

    def test_family_ordering(self):
        # The Excalibur family grows monotonically.
        assert EPXA1_RESOURCES.fits_in(EPXA4_RESOURCES)
        assert EPXA4_RESOURCES.fits_in(EPXA10_RESOURCES)

    def test_paper_cores_fit_epxa1(self):
        # All three benchmark cores were synthesised on the EPXA1.
        for bitstream in (vector_add.bitstream(), adpcm.bitstream(), idea.bitstream()):
            assert bitstream.resources.fits_in(EPXA1_RESOURCES)


class TestConfigure:
    def test_configure_and_ownership(self):
        fabric = PldFabric()
        config_us = fabric.configure(vector_add.bitstream(), owner_pid=7)
        assert fabric.is_configured
        assert fabric.owner_pid == 7
        assert config_us > 0

    def test_exclusive_use_enforced(self):
        # FPGA_LOAD "ensures the exclusive use of the resource" (§3.1).
        fabric = PldFabric()
        fabric.configure(vector_add.bitstream(), owner_pid=1)
        with pytest.raises(FpgaError):
            fabric.configure(idea.bitstream(), owner_pid=2)

    def test_owner_may_reconfigure(self):
        fabric = PldFabric()
        fabric.configure(vector_add.bitstream(), owner_pid=1)
        fabric.configure(idea.bitstream(), owner_pid=1)
        assert fabric.configurations == 2

    def test_oversized_bitstream_rejected(self):
        fabric = PldFabric(PldResources(10, 10))
        with pytest.raises(FpgaError):
            fabric.configure(vector_add.bitstream(), owner_pid=1)

    def test_config_time_scales_with_length(self):
        fabric = PldFabric()
        short = fabric.configure(vector_add.bitstream(), owner_pid=1)
        fabric.release(1)
        long = fabric.configure(idea.bitstream(), owner_pid=1)
        assert long > short


class TestRelease:
    def test_release_frees_fabric(self):
        fabric = PldFabric()
        fabric.configure(vector_add.bitstream(), owner_pid=1)
        fabric.release(1)
        assert not fabric.is_configured
        fabric.configure(idea.bitstream(), owner_pid=2)

    def test_non_owner_release_rejected(self):
        fabric = PldFabric()
        fabric.configure(vector_add.bitstream(), owner_pid=1)
        with pytest.raises(FpgaError):
            fabric.release(2)
