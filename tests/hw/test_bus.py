"""Unit tests for the AHB cost model."""

import pytest

from repro.errors import BusError
from repro.hw.bus import AhbBus, AhbTiming


class TestTransferCycles:
    def test_zero_bytes_free(self):
        assert AhbBus().transfer_cycles(0) == 0

    def test_single_word(self):
        # One burst setup + one beat.
        bus = AhbBus(AhbTiming(setup_cycles=2, cycles_per_beat=1, burst_len=8))
        assert bus.transfer_cycles(4) == 3

    def test_partial_word_rounds_up(self):
        bus = AhbBus(AhbTiming(setup_cycles=2, cycles_per_beat=1, burst_len=8))
        assert bus.transfer_cycles(1) == bus.transfer_cycles(4)

    def test_burst_amortises_setup(self):
        bus = AhbBus(AhbTiming(setup_cycles=2, cycles_per_beat=1, burst_len=8))
        # 8 words: one burst: 2 + 8 = 10.
        assert bus.transfer_cycles(32) == 10
        # 9 words: two bursts: 4 + 9 = 13.
        assert bus.transfer_cycles(36) == 13

    def test_page_cost_scales_linearly_in_bursts(self):
        bus = AhbBus()
        one_page = bus.transfer_cycles(2048)
        two_pages = bus.transfer_cycles(4096)
        assert two_pages == 2 * one_page

    def test_negative_size_rejected(self):
        with pytest.raises(BusError):
            AhbBus().transfer_cycles(-1)


class TestStats:
    def test_record_accumulates(self):
        bus = AhbBus()
        bus.record(100)
        bus.record(50)
        assert bus.bytes_transferred == 150
        assert bus.transactions == 2

    def test_reset_stats(self):
        bus = AhbBus()
        bus.record(100)
        bus.reset_stats()
        assert bus.bytes_transferred == 0
        assert bus.transactions == 0


class TestTimingValidation:
    def test_invalid_timing_rejected(self):
        with pytest.raises(BusError):
            AhbTiming(setup_cycles=-1)
        with pytest.raises(BusError):
            AhbTiming(cycles_per_beat=0)
        with pytest.raises(BusError):
            AhbTiming(burst_len=0)
