"""Unit tests for the paged dual-port RAM."""

import pytest

from repro.errors import MemoryAccessError
from repro.hw.dpram import DualPortRam


class TestGeometry:
    def test_epxa1_defaults(self, dpram: DualPortRam):
        # "logically organised in eight 2KB pages (total 16KB)" (§4)
        assert dpram.size == 16 * 1024
        assert dpram.page_size == 2 * 1024
        assert dpram.num_pages == 8

    def test_page_base(self, dpram: DualPortRam):
        assert dpram.page_base(0) == 0
        assert dpram.page_base(3) == 3 * 2048

    def test_page_of(self, dpram: DualPortRam):
        assert dpram.page_of(0) == 0
        assert dpram.page_of(2047) == 0
        assert dpram.page_of(2048) == 1

    def test_page_out_of_range(self, dpram: DualPortRam):
        with pytest.raises(MemoryAccessError):
            dpram.page_base(8)
        with pytest.raises(MemoryAccessError):
            dpram.page_of(16 * 1024)

    def test_page_size_must_divide(self):
        with pytest.raises(MemoryAccessError):
            DualPortRam(size=10_000, page_size=3_000)

    def test_page_size_must_be_power_of_two(self):
        with pytest.raises(MemoryAccessError):
            DualPortRam(size=12_000, page_size=3_000)


class TestPorts:
    def test_pld_word_roundtrip(self, dpram: DualPortRam):
        dpram.pld_write(100, 0xCAFE, size=2)
        assert dpram.pld_read(100, size=2) == 0xCAFE
        assert dpram.pld_writes == 1
        assert dpram.pld_reads == 1

    def test_both_ports_see_same_bytes(self, dpram: DualPortRam):
        # The defining property of a dual-port memory.
        dpram.cpu_write_page(1, b"\x11\x22\x33\x44")
        assert dpram.pld_read(dpram.page_base(1), size=4) == 0x44332211

    def test_cpu_page_read_clamped(self, dpram: DualPortRam):
        dpram.cpu_write_page(0, b"abc")
        assert dpram.cpu_read_page(0, 3) == b"abc"

    def test_cpu_page_overflow_rejected(self, dpram: DualPortRam):
        with pytest.raises(MemoryAccessError):
            dpram.cpu_write_page(0, bytes(2049))
        with pytest.raises(MemoryAccessError):
            dpram.cpu_read_page(0, 4096)

    def test_cpu_write_offset(self, dpram: DualPortRam):
        dpram.cpu_write_page(2, b"zz", offset=10)
        assert dpram.read(dpram.page_base(2) + 10, 2) == b"zz"

    def test_cpu_write_offset_overflow_rejected(self, dpram: DualPortRam):
        with pytest.raises(MemoryAccessError):
            dpram.cpu_write_page(0, bytes(100), offset=2000)

    def test_port_counters_independent(self, dpram: DualPortRam):
        dpram.cpu_write_page(0, b"x")
        dpram.pld_read(0, size=1)
        assert dpram.cpu_writes == 1
        assert dpram.cpu_reads == 0
        assert dpram.pld_reads == 1
