"""Legacy setup shim.

The environment this reproduction targets is fully offline and may
lack the ``wheel`` package, in which case PEP 517 editable installs
fail with ``invalid command 'bdist_wheel'``.  With this shim,
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on older pips) falls back to ``setup.py develop``,
which needs nothing beyond setuptools.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
