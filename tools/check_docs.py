#!/usr/bin/env python
"""Documentation checker: executable examples + resolvable links.

Run from the repository root (the CI docs job does)::

    PYTHONPATH=src python tools/check_docs.py

Three guarantees over ``README.md`` and every ``docs/*.md``:

1. **Code blocks work.**  Fenced ``python`` blocks containing ``>>>``
   prompts are executed through :mod:`doctest` (in a temporary working
   directory, so examples may create caches/files freely); plain
   ``python`` blocks are compiled, which catches syntax rot in
   illustrative fragments.
2. **Intra-repo links resolve.**  Every relative markdown link target
   must exist on disk; dead links fail the job.
3. **Axis-value lists are current.**  Every ``--transfer {...}`` list
   must match ``repro.exp.spec.TRANSFERS``, every ``--format {...}``
   list must match ``repro.exp.report.FORMATS``, every ``--engine
   {...}`` list must match ``repro.sim.engine.ENGINES``, every
   ``--bands {...}`` list must match ``repro.exp.diff.BANDS``, every
   ``--sched {...}`` list must match ``repro.os.scheduler.SCHEDS``,
   and every ``--store {...}`` list must match
   ``repro.exp.store.STORES`` exactly — adding a value without
   documenting it (or documenting one that does not exist) fails the
   job.
4. **The CLI flag lists are current.**  Every option the parser
   defines on the :data:`DOCUMENTED_COMMANDS` subcommands (``sweep``,
   ``record``, ``report``, ``serve``, ``worker``, ``submit``,
   ``merge``, ``migrate``, ``history``, ``diff``) must be mentioned
   in README.md, and every inline-code flag the README mentions must
   exist on some ``repro`` subcommand — renaming or removing a flag
   without updating the docs fails the job (both directions).
5. **Every subcommand is documented.**  Each subcommand the parser
   registers must appear in README.md as ``repro <name>`` — adding a
   subcommand (``migrate``, ``history``, …) without documenting it
   fails the job.

``main()`` returns the number of failing checks; the process exit
status is 1 if anything failed, else 0 (a raw count would wrap modulo
256 and could report success at exactly 256 failures).
"""

from __future__ import annotations

import doctest
import functools
import os
import re
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import iter_option_actions  # noqa: E402  (repo import)
from repro.exp.diff import BANDS  # noqa: E402
from repro.exp.report import FORMATS  # noqa: E402
from repro.exp.spec import TRANSFERS  # noqa: E402
from repro.exp.store import STORES  # noqa: E402
from repro.os.scheduler import SCHEDS  # noqa: E402
from repro.sim.engine import ENGINES  # noqa: E402

#: Markdown files the checker covers.
DOC_FILES = ["README.md", *sorted(
    str(p.relative_to(REPO_ROOT)) for p in (REPO_ROOT / "docs").glob("*.md")
)]

#: Extra markdown that carries axis-value lists but is not end-user
#: documentation (no doctest/link guarantees): checked only for stale
#: transfer-mode lists.
AXIS_LIST_FILES = [
    str(p.relative_to(REPO_ROOT))
    for p in (REPO_ROOT / ".claude" / "skills").glob("*/SKILL.md")
]

_FENCE_RE = re.compile(
    r"^```(?P<lang>[\w+-]*)[ \t]*\n(?P<body>.*?)^```[ \t]*$",
    re.MULTILINE | re.DOTALL,
)
#: Inline markdown links [text](target); images excluded via (?<!!).
_LINK_RE = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
#: A documented transfer-mode list: ``--transfer {double,single,...}``
#: (possibly wrapped across a line inside a code span).
_TRANSFER_LIST_RE = re.compile(r"--transfer[ \t]*\n?[ \t]*\{([^}]*)\}")
#: A documented report-format list: ``--format {md,csv,ascii}``.
_FORMAT_LIST_RE = re.compile(r"--format[ \t]*\n?[ \t]*\{([^}]*)\}")
#: A documented engine-backend list: ``--engine {reference,fast}``.
_ENGINE_LIST_RE = re.compile(r"--engine[ \t]*\n?[ \t]*\{([^}]*)\}")
#: A documented tolerance-band list: ``--bands {exact,cv}``.
_BANDS_LIST_RE = re.compile(r"--bands[ \t]*\n?[ \t]*\{([^}]*)\}")
#: A documented store-backend list: ``--store {json,sqlite}``.
_STORE_LIST_RE = re.compile(r"--store[ \t]*\n?[ \t]*\{([^}]*)\}")
#: A documented scheduling-policy list: ``--sched {rr,priority,wrr}``.
_SCHED_LIST_RE = re.compile(r"--sched[ \t]*\n?[ \t]*\{([^}]*)\}")
#: An inline-code span (fenced blocks are stripped before scanning).
_CODE_SPAN_RE = re.compile(r"`([^`]+)`")
#: A ``--flag`` token anywhere inside a span.
_FLAG_TOKEN_RE = re.compile(r"--[a-z][a-z0-9-]*")
#: Flags the docs may legitimately mention inline although no repro
#: subcommand defines them: third-party tools' options and the docs'
#: own ``--flag`` placeholder spelling.  Extend this when documenting
#: another tool's option in prose.
FOREIGN_FLAGS = frozenset({
    "--benchmark-only", "--benchmark-json", "--flag",
    "--fail-on-wall",  # tools/bench_diff.py
})


def _rel(path: Path) -> str:
    """*path* relative to the repo root, or absolute when outside it."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def iter_python_blocks(text: str):
    """Yield (line_number, body) for every fenced python block."""
    for match in _FENCE_RE.finditer(text):
        if match.group("lang") != "python":
            continue
        line = text.count("\n", 0, match.start()) + 1
        yield line, match.group("body")


def check_code_blocks(path: Path) -> list[str]:
    """Doctest-run (or compile) the python blocks of one file."""
    failures = []
    text = path.read_text(encoding="utf-8")
    for line, body in iter_python_blocks(text):
        where = f"{_rel(path)}:{line}"
        if ">>>" in body:
            parser = doctest.DocTestParser()
            runner = doctest.DocTestRunner(verbose=False)
            try:
                test = parser.get_doctest(
                    body, {"__name__": "__docs__"}, where, str(path), line
                )
            except ValueError as error:
                failures.append(f"{where}: malformed doctest block: {error}")
                continue
            # Examples may write caches or result files: give them a
            # scratch working directory.
            previous_cwd = os.getcwd()
            with tempfile.TemporaryDirectory() as scratch:
                os.chdir(scratch)
                try:
                    results = runner.run(test)
                finally:
                    os.chdir(previous_cwd)
            if results.failed:
                failures.append(
                    f"{where}: {results.failed} of {results.attempted} "
                    "doctest example(s) failed (run with python -m doctest "
                    "for details)"
                )
        else:
            try:
                compile(body, where, "exec")
            except SyntaxError as error:
                failures.append(f"{where}: python block does not compile: {error}")
    return failures


def check_links(path: Path) -> list[str]:
    """Verify every relative link target of one file exists on disk."""
    failures = []
    text = path.read_text(encoding="utf-8")
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            failures.append(
                f"{_rel(path)}:{line}: dead link {target!r}"
            )
    return failures


def _check_value_list(
    path: Path, pattern: re.Pattern, expected, label: str
) -> list[str]:
    """Fail any documented ``--flag {...}`` list that drifted.

    Every match of *pattern* (group 1 = the comma-separated values)
    must equal *expected* exactly — a new value must land in the docs
    in the same commit, and a value the engine does not know must
    never be advertised.
    """
    failures = []
    text = path.read_text(encoding="utf-8")
    for match in pattern.finditer(text):
        listed = {v.strip() for v in match.group(1).split(",") if v.strip()}
        if listed != set(expected):
            line = text.count("\n", 0, match.start()) + 1
            failures.append(
                f"{_rel(path)}:{line}: stale {label} list "
                f"{sorted(listed)} != {sorted(expected)}"
            )
    return failures


def check_transfer_modes(path: Path) -> list[str]:
    """Stale ``--transfer {...}`` lists vs :data:`repro.exp.spec.TRANSFERS`."""
    return _check_value_list(
        path, _TRANSFER_LIST_RE, TRANSFERS, "transfer-mode"
    )


def check_report_formats(path: Path) -> list[str]:
    """Stale ``--format {...}`` lists vs :data:`repro.exp.report.FORMATS`."""
    return _check_value_list(
        path, _FORMAT_LIST_RE, FORMATS, "report-format"
    )


def check_engines(path: Path) -> list[str]:
    """Stale ``--engine {...}`` lists vs :data:`repro.sim.engine.ENGINES`."""
    return _check_value_list(
        path, _ENGINE_LIST_RE, ENGINES, "engine-backend"
    )


def check_bands(path: Path) -> list[str]:
    """Stale ``--bands {...}`` lists vs :data:`repro.exp.diff.BANDS`."""
    return _check_value_list(
        path, _BANDS_LIST_RE, BANDS, "tolerance-band"
    )


def check_store_kinds(path: Path) -> list[str]:
    """Stale ``--store {...}`` lists vs :data:`repro.exp.store.STORES`."""
    return _check_value_list(
        path, _STORE_LIST_RE, STORES, "store-backend"
    )


def check_scheds(path: Path) -> list[str]:
    """Stale ``--sched {...}`` lists vs :data:`repro.os.scheduler.SCHEDS`."""
    return _check_value_list(
        path, _SCHED_LIST_RE, SCHEDS, "scheduling-policy"
    )


#: Subcommands whose full flag set must be documented in README.md
#: (the coverage direction; the stale-mention direction covers every
#: subcommand automatically).
DOCUMENTED_COMMANDS = (
    "sweep", "record", "report", "serve", "worker", "submit", "merge",
    "migrate", "history", "diff",
)


@functools.lru_cache(maxsize=1)
def _parser_options() -> tuple[frozenset[str], dict[str, frozenset[str]]]:
    """All long options of the ``repro`` CLI, and the per-subcommand sets.

    Cached: the walk rebuilds the whole parser, and the flag checks
    run once per scanned doc file.
    """
    every: set[str] = set()
    per_command: dict[str, set[str]] = {}
    for command, action in iter_option_actions():
        longs = {o for o in action.option_strings if o.startswith("--")}
        longs.discard("--help")
        every |= longs
        if command is not None:
            per_command.setdefault(command, set()).update(longs)
    return frozenset(every), {
        name: frozenset(flags) for name, flags in per_command.items()
    }


def check_flag_mentions(path: Path) -> list[str]:
    """Fail stale ``--flag`` mentions in one file's inline-code spans.

    Every ``--flag`` token inside an inline-code span must exist on
    some ``repro`` subcommand (or be allowlisted in
    :data:`FOREIGN_FLAGS`), so removing or renaming a flag cannot
    leave a stale mention behind anywhere in the docs.  Fenced code
    blocks are excluded (they may drive other tools, e.g. pytest).
    """
    failures = []
    text = path.read_text(encoding="utf-8")
    every, _per_command = _parser_options()
    prose = _FENCE_RE.sub("", text)
    for span in _CODE_SPAN_RE.finditer(prose):
        for flag in _FLAG_TOKEN_RE.findall(span.group(1)):
            if flag not in every and flag not in FOREIGN_FLAGS:
                failures.append(
                    f"{_rel(path)}: stale flag mention {flag} "
                    "(no repro subcommand defines it; add it to "
                    "FOREIGN_FLAGS if it belongs to another tool)"
                )
    return failures


def check_cli_flags(path: Path) -> list[str]:
    """Keep the README's CLI flag lists in lockstep with the parser.

    Two directions: every option of every :data:`DOCUMENTED_COMMANDS`
    subcommand (``sweep`` and ``diff``) must be mentioned in the file
    (tokenized, not substring: a mention of ``--shard-size`` would not
    satisfy ``--shard``; fenced examples count — a worked sh example
    documents a flag), plus the per-file stale-mention scan of
    :func:`check_flag_mentions`.
    """
    failures = []
    text = path.read_text(encoding="utf-8")
    _every, per_command = _parser_options()
    documented = set(_FLAG_TOKEN_RE.findall(text))
    for command in DOCUMENTED_COMMANDS:
        for flag in sorted(per_command.get(command, ())):
            if flag not in documented:
                failures.append(
                    f"{_rel(path)}: {command} flag {flag} is undocumented"
                )
    return failures + check_flag_mentions(path)


def check_subcommands_documented(path: Path) -> list[str]:
    """Every registered subcommand must appear as ``repro <name>``.

    A new subcommand (``migrate``, ``history``, …) that never shows up
    in the README is invisible to users; requiring the literal
    ``repro <name>`` spelling also guarantees at least one usable
    invocation example exists.
    """
    failures = []
    text = path.read_text(encoding="utf-8")
    _every, per_command = _parser_options()
    for command in sorted(per_command):
        if not re.search(rf"repro {re.escape(command)}\b", text):
            failures.append(
                f"{_rel(path)}: subcommand `repro {command}` is undocumented"
            )
    return failures


def main() -> int:
    failures: list[str] = []
    checked_blocks = 0
    for name in DOC_FILES:
        path = REPO_ROOT / name
        if not path.exists():
            failures.append(f"{name}: file missing")
            continue
        checked_blocks += sum(1 for _ in iter_python_blocks(path.read_text(encoding="utf-8")))
        failures += check_code_blocks(path)
        failures += check_links(path)
        failures += check_transfer_modes(path)
        failures += check_report_formats(path)
        failures += check_engines(path)
        failures += check_bands(path)
        failures += check_store_kinds(path)
        failures += check_scheds(path)
        if name != "README.md":
            # README gets the full two-direction check below; other
            # docs get the stale-mention direction only.
            failures += check_flag_mentions(path)
    failures += check_cli_flags(REPO_ROOT / "README.md")
    failures += check_subcommands_documented(REPO_ROOT / "README.md")
    for name in AXIS_LIST_FILES:
        failures += check_transfer_modes(REPO_ROOT / name)
        failures += check_report_formats(REPO_ROOT / name)
        failures += check_engines(REPO_ROOT / name)
        failures += check_bands(REPO_ROOT / name)
        failures += check_store_kinds(REPO_ROOT / name)
        failures += check_scheds(REPO_ROOT / name)
    for failure in failures:
        print(f"FAIL {failure}")
    print(
        f"checked {len(DOC_FILES)} file(s), {checked_blocks} python "
        f"block(s): {len(failures)} failure(s)"
    )
    return len(failures)


if __name__ == "__main__":
    sys.exit(1 if main() else 0)
