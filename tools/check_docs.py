#!/usr/bin/env python
"""Documentation checker: executable examples + resolvable links.

Run from the repository root (the CI docs job does)::

    PYTHONPATH=src python tools/check_docs.py

Three guarantees over ``README.md`` and every ``docs/*.md``:

1. **Code blocks work.**  Fenced ``python`` blocks containing ``>>>``
   prompts are executed through :mod:`doctest` (in a temporary working
   directory, so examples may create caches/files freely); plain
   ``python`` blocks are compiled, which catches syntax rot in
   illustrative fragments.
2. **Intra-repo links resolve.**  Every relative markdown link target
   must exist on disk; dead links fail the job.
3. **Axis-value lists are current.**  Every ``--transfer {...}`` list
   must match ``repro.exp.spec.TRANSFERS`` exactly — adding a transfer
   mode without documenting it (or documenting one that does not
   exist) fails the job.

Exit status is the number of failing checks (0 = everything passed).
"""

from __future__ import annotations

import doctest
import os
import re
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.exp.spec import TRANSFERS  # noqa: E402  (repo import, after path setup)

#: Markdown files the checker covers.
DOC_FILES = ["README.md", *sorted(
    str(p.relative_to(REPO_ROOT)) for p in (REPO_ROOT / "docs").glob("*.md")
)]

#: Extra markdown that carries axis-value lists but is not end-user
#: documentation (no doctest/link guarantees): checked only for stale
#: transfer-mode lists.
AXIS_LIST_FILES = [
    str(p.relative_to(REPO_ROOT))
    for p in (REPO_ROOT / ".claude" / "skills").glob("*/SKILL.md")
]

_FENCE_RE = re.compile(
    r"^```(?P<lang>[\w+-]*)[ \t]*\n(?P<body>.*?)^```[ \t]*$",
    re.MULTILINE | re.DOTALL,
)
#: Inline markdown links [text](target); images excluded via (?<!!).
_LINK_RE = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
#: A documented transfer-mode list: ``--transfer {double,single,...}``
#: (possibly wrapped across a line inside a code span).
_TRANSFER_LIST_RE = re.compile(r"--transfer[ \t]*\n?[ \t]*\{([^}]*)\}")


def _rel(path: Path) -> str:
    """*path* relative to the repo root, or absolute when outside it."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def iter_python_blocks(text: str):
    """Yield (line_number, body) for every fenced python block."""
    for match in _FENCE_RE.finditer(text):
        if match.group("lang") != "python":
            continue
        line = text.count("\n", 0, match.start()) + 1
        yield line, match.group("body")


def check_code_blocks(path: Path) -> list[str]:
    """Doctest-run (or compile) the python blocks of one file."""
    failures = []
    text = path.read_text(encoding="utf-8")
    for line, body in iter_python_blocks(text):
        where = f"{_rel(path)}:{line}"
        if ">>>" in body:
            parser = doctest.DocTestParser()
            runner = doctest.DocTestRunner(verbose=False)
            try:
                test = parser.get_doctest(
                    body, {"__name__": "__docs__"}, where, str(path), line
                )
            except ValueError as error:
                failures.append(f"{where}: malformed doctest block: {error}")
                continue
            # Examples may write caches or result files: give them a
            # scratch working directory.
            previous_cwd = os.getcwd()
            with tempfile.TemporaryDirectory() as scratch:
                os.chdir(scratch)
                try:
                    results = runner.run(test)
                finally:
                    os.chdir(previous_cwd)
            if results.failed:
                failures.append(
                    f"{where}: {results.failed} of {results.attempted} "
                    "doctest example(s) failed (run with python -m doctest "
                    "for details)"
                )
        else:
            try:
                compile(body, where, "exec")
            except SyntaxError as error:
                failures.append(f"{where}: python block does not compile: {error}")
    return failures


def check_links(path: Path) -> list[str]:
    """Verify every relative link target of one file exists on disk."""
    failures = []
    text = path.read_text(encoding="utf-8")
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            failures.append(
                f"{_rel(path)}:{line}: dead link {target!r}"
            )
    return failures


def check_transfer_modes(path: Path) -> list[str]:
    """Fail any stale ``--transfer {...}`` list in one file.

    The documented set must equal :data:`repro.exp.spec.TRANSFERS` —
    a new axis value must land in the docs in the same commit, and a
    value the engine does not know must never be advertised.
    """
    failures = []
    text = path.read_text(encoding="utf-8")
    for match in _TRANSFER_LIST_RE.finditer(text):
        listed = {v.strip() for v in match.group(1).split(",") if v.strip()}
        if listed != set(TRANSFERS):
            line = text.count("\n", 0, match.start()) + 1
            failures.append(
                f"{_rel(path)}:{line}: stale transfer-mode list "
                f"{sorted(listed)} != {sorted(TRANSFERS)}"
            )
    return failures


def main() -> int:
    failures: list[str] = []
    checked_blocks = 0
    for name in DOC_FILES:
        path = REPO_ROOT / name
        if not path.exists():
            failures.append(f"{name}: file missing")
            continue
        checked_blocks += sum(1 for _ in iter_python_blocks(path.read_text(encoding="utf-8")))
        failures += check_code_blocks(path)
        failures += check_links(path)
        failures += check_transfer_modes(path)
    for name in AXIS_LIST_FILES:
        failures += check_transfer_modes(REPO_ROOT / name)
    for failure in failures:
        print(f"FAIL {failure}")
    print(
        f"checked {len(DOC_FILES)} file(s), {checked_blocks} python "
        f"block(s): {len(failures)} failure(s)"
    )
    return len(failures)


if __name__ == "__main__":
    sys.exit(main())
