#!/usr/bin/env python
"""Diff two pytest-benchmark JSON files (``BENCH_results.json``).

Run from the repository root::

    PYTHONPATH=src python tools/bench_diff.py BASELINE.json CURRENT.json \
        [--rtol R] [--atol A] [--format {md,csv,ascii}] [--fail-on-wall]

The benchmarks job uploads ``BENCH_results.json`` every run; this tool
turns two of them into the same kind of regression table ``repro
diff`` renders for sweep caches, through the same tolerance machinery
(:func:`repro.exp.diff.scalar_delta`).  Two kinds of numbers live in a
benchmark row, and they are treated differently:

* ``extra_info`` — the **simulated** milliseconds/speedups/fault
  counts the bench asserted on.  These are deterministic, so any
  beyond-tolerance change is a behaviour change and fails the diff
  (exit 1) regardless of direction — and a key that *vanishes* is
  lost gate coverage, which fails the same way.  Keys prefixed
  ``wall_`` are the exception: they hold wall-clock-derived numbers
  (e.g. the paired engine benches' ``wall_speedup_vs_reference``),
  which are as noisy as ``stats.mean`` — they are reported alongside
  it but never gate, not even under ``--fail-on-wall`` (a ratio has
  no regression direction a tolerance could classify).
* ``stats.mean`` — harness **wall time**.  Noisy on shared CI
  runners, so it is reported but gates only with ``--fail-on-wall``
  (where an increase beyond tolerance is the regression).

Added/removed benchmarks are reported distinctly and never fail the
diff.  Exit status: 1 on failures as defined above, 2 on usage errors,
else 0.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import ReproError  # noqa: E402  (repo import)
from repro.exp.diff import (  # noqa: E402
    MetricDelta,
    format_delta_cell,
    scalar_delta,
)
from repro.exp.report import FORMATS, format_cell, render_table  # noqa: E402


def load_benchmarks(path: Path) -> dict[str, dict]:
    """Read one pytest-benchmark JSON file, keyed by benchmark fullname."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise ReproError(f"unreadable benchmark file {path}: {error}")
    rows = payload.get("benchmarks") if isinstance(payload, dict) else None
    if not isinstance(rows, list) or not rows:
        raise ReproError(
            f"{path} is not a pytest-benchmark JSON file "
            "(no 'benchmarks' list)"
        )
    return {row["fullname"]: row for row in rows}


def flatten_extra_info(info: dict) -> dict[str, float]:
    """Numeric ``extra_info`` entries, lists flattened as ``name[i]``."""
    flat: dict[str, float] = {}
    for key, value in sorted(info.items()):
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            flat[key] = value
        elif isinstance(value, list) and all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in value
        ):
            for index, item in enumerate(value):
                flat[f"{key}[{index}]"] = item
    return flat


def diff_benchmarks(
    baseline: dict[str, dict],
    current: dict[str, dict],
    rtol: float,
    atol: float,
):
    """Match benchmarks by fullname and classify wall + extra_info.

    Returns
    -------
    tuple
        ``(matched, added, removed)``: per matched benchmark its wall
        mean delta, the extra_info deltas over the shared keys, and
        the extra_info keys that vanished / appeared (a vanished key
        is lost gate coverage, so it counts as a change); added /
        removed are the unmatched benchmark fullnames of each side.
    """
    matched = []
    for name in sorted(baseline.keys() & current.keys()):
        base_row, current_row = baseline[name], current[name]
        wall = scalar_delta(
            "wall_mean_s",
            base_row["stats"]["mean"],
            current_row["stats"]["mean"],
            rtol=rtol,
            atol=atol,
            higher_is_worse=True,
        )
        base_info = flatten_extra_info(base_row.get("extra_info") or {})
        current_info = flatten_extra_info(current_row.get("extra_info") or {})
        shared = sorted(base_info.keys() & current_info.keys())
        info_deltas = [
            # Direction-agnostic: extra_info holds deterministic
            # simulated numbers, so any change is a behaviour change.
            scalar_delta(
                key, base_info[key], current_info[key],
                rtol=rtol, atol=atol, higher_is_worse=None,
            )
            for key in shared
            if not key.startswith("wall_")
        ]
        # wall_-prefixed keys are harness timing (see module docstring):
        # tracked for the report, never part of the deterministic gate.
        wall_info = [
            (key, base_info[key], current_info[key])
            for key in shared
            if key.startswith("wall_")
        ]
        lost_keys = sorted(
            key for key in base_info.keys() - current_info.keys()
            if not key.startswith("wall_")
        )
        new_keys = sorted(
            key for key in current_info.keys() - base_info.keys()
            if not key.startswith("wall_")
        )
        matched.append((name, wall, info_deltas, wall_info, lost_keys, new_keys))
    added = sorted(current.keys() - baseline.keys())
    removed = sorted(baseline.keys() - current.keys())
    return matched, added, removed


def _info_cell(deltas: list[MetricDelta], lost: list[str],
               new: list[str]) -> str:
    changed = [d for d in deltas if d.changed]
    if not deltas and not lost and not new:
        return "-"
    if not changed and not lost and not new:
        return "="
    parts = [
        f"{d.metric}: {format_cell(d.base)}→{format_cell(d.current)}"
        for d in changed
    ]
    parts += [f"{key}: removed" for key in lost]
    parts += [f"{key}: new" for key in new]
    return "; ".join(parts)


def render_bench_diff(
    matched, added, removed, rtol: float, atol: float, fmt: str,
    fail_on_wall: bool,
) -> tuple[str, bool]:
    """Render the table + summary; returns (text, failed)."""
    rows = []
    info_changed = 0
    wall_regressed = 0
    for name, wall, info_deltas, wall_info, lost_keys, new_keys in matched:
        changed = [d for d in info_deltas if d.changed]
        # A vanished key is lost gate coverage — as loud as a change.
        info_changed += bool(changed or lost_keys)
        wall_regressed += wall.regressed
        if changed or lost_keys:
            status = "CHANGED"
        elif wall.regressed:
            status = "slower" if not fail_on_wall else "REGRESSION"
        else:
            status = "ok"
        wall_cell = format_delta_cell(wall, marker="")
        if wall_info:
            # Keep the harness-timing ratios next to the wall mean they
            # share a noise profile with, away from the gated column.
            wall_cell += "; " + "; ".join(
                f"{key}: {format_cell(base)}→{format_cell(current)}"
                for key, base, current in wall_info
            )
        rows.append([
            # The status column carries the verdict, so the wall cell
            # skips the regression marker.
            name, wall_cell,
            _info_cell(info_deltas, lost_keys, new_keys), status,
        ])
    table = render_table(
        ["benchmark", "Δ wall (s); wall_* info", "simulated numbers", "status"],
        rows,
        fmt,
    )
    failed = info_changed > 0 or (fail_on_wall and wall_regressed > 0)
    lines = [
        table,
        "",
        f"{len(matched)} benchmark(s) compared: {info_changed} with "
        f"simulated-number changes, {wall_regressed} wall-time "
        f"regression(s){' (gated)' if fail_on_wall else ' (informational)'}; "
        f"{len(added)} added, {len(removed)} removed "
        f"(rtol={rtol:g}, atol={atol:g})",
    ]
    if added:
        lines.append("added (current only): " + ", ".join(added))
    if removed:
        lines.append("removed (baseline only): " + ", ".join(removed))
    return "\n".join(lines), failed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_diff",
        description="diff two pytest-benchmark JSON files "
        "(deterministic extra_info gates; wall time is informational)",
    )
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--rtol", type=float, default=0.0)
    parser.add_argument("--atol", type=float, default=0.0)
    parser.add_argument("--format", default="ascii", choices=FORMATS)
    parser.add_argument(
        "--fail-on-wall", action="store_true",
        help="also fail on wall-time mean regressions beyond tolerance "
        "(noisy on shared runners; off by default)",
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_benchmarks(args.baseline)
        current = load_benchmarks(args.current)
        text, failed = render_bench_diff(
            *diff_benchmarks(baseline, current, args.rtol, args.atol),
            rtol=args.rtol,
            atol=args.atol,
            fmt=args.format,
            fail_on_wall=args.fail_on_wall,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(text)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
