#!/usr/bin/env python
"""Regenerate the committed report-fixture cache and golden outputs.

Run from the repository root::

    PYTHONPATH=src python tools/make_report_fixture.py

The report golden tests (``tests/exp/test_report.py``) render tables
from a **committed** cache directory so the expected bytes live in git
and never depend on simulation timing.  The fixture rows are synthetic
— deterministic hand-written numbers, no simulation — but they are
stored through the real :class:`~repro.exp.cache.SweepCache`, so their
file names embed :data:`~repro.exp.spec.CACHE_VERSION` via the config
hash.

Consequently, **whenever ``CACHE_VERSION`` is bumped** (or a
``CellConfig``/``CellResult`` field changes), the committed fixture
goes stale and the golden tests fail with "no loadable cell results".
The fix is one command: re-run this script and commit the refreshed
``tests/exp/fixtures/`` tree alongside the bump.
"""

from __future__ import annotations

import dataclasses
import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.exp.cache import SweepCache  # noqa: E402
from repro.exp.diff import diff_caches, render_diff  # noqa: E402
from repro.exp.report import render_report  # noqa: E402
from repro.exp.results import CellResult  # noqa: E402
from repro.exp.spec import CellConfig  # noqa: E402

FIXTURE_DIR = REPO_ROOT / "tests" / "exp" / "fixtures"
CACHE_DIR = FIXTURE_DIR / "report_cache"
BASELINE_DIR = FIXTURE_DIR / "baseline_cache"

#: The fixture grid: 2 apps x 2 policies at 4 KB.
GRID = [
    CellConfig(app=app, input_bytes=4 * 1024, policy=policy)
    for app in ("adpcm", "idea")
    for policy in ("fifo", "lru")
]

#: Golden renderings the tests compare byte-for-byte.
GOLDENS = {
    "report.md": {"fmt": "md", "group_by": ()},
    "report.csv": {"fmt": "csv", "group_by": ()},
    "report.ascii": {"fmt": "ascii", "group_by": ()},
    "report_by_policy.md": {"fmt": "md", "group_by": ("policy",)},
    "report_by_policy.csv": {"fmt": "csv", "group_by": ("policy",)},
}


def synthetic_result(config: CellConfig, index: int) -> CellResult:
    """A deterministic hand-written row for one fixture config."""
    base = 1.0 + index * 0.25
    hw = base * 0.5
    sw_dp = base * 0.3
    sw_imu = base * 0.02
    sw_other = base * 0.01
    vim = hw + sw_dp + sw_imu + sw_other
    sw = base * 10.0
    return CellResult(
        config=config,
        key=config.key(),
        label=config.label(),
        workload=f"{config.app}-fixture",
        sw_ms=sw,
        vim_ms=vim,
        hw_ms=hw,
        sw_dp_ms=sw_dp,
        sw_imu_ms=sw_imu,
        sw_other_ms=sw_other,
        vim_speedup=sw / vim,
        page_faults=3 * index,
        compulsory_loads=2,
        evictions=index,
        writebacks=index // 2,
        prefetches=0,
        bytes_to_dpram=4096 * (index + 1),
        bytes_from_dpram=4096,
        tlb_hit_rate=0.9,
    )


def baseline_result(row: CellResult, index: int) -> CellResult | None:
    """The baseline-cache variant of one fixture row.

    Deliberately exercises every diff classification: row 0 is
    identical, row 1's baseline is *faster* (so the current row reads
    as a regression), row 2's baseline has *more* faults (so the
    current row reads as an improvement), and row 3 is absent from the
    baseline entirely (an added cell / ``(new)`` annotation).
    """
    if index == 3:
        return None
    if index == 1:
        vim = row.vim_ms * 0.9
        return dataclasses.replace(
            row, vim_ms=vim, vim_speedup=row.sw_ms / vim
        )
    if index == 2:
        return dataclasses.replace(row, page_faults=row.page_faults + 2)
    return row


def main() -> int:
    for stale in (CACHE_DIR, BASELINE_DIR):
        if stale.exists():
            shutil.rmtree(stale)
    cache = SweepCache(CACHE_DIR)
    baseline_cache = SweepCache(BASELINE_DIR)
    rows = [
        synthetic_result(config, index)
        for index, config in enumerate(
            sorted(GRID, key=lambda c: (c.app, c.policy))
        )
    ]
    baseline_rows = []
    for index, row in enumerate(rows):
        cache.store(row)
        base = baseline_result(row, index)
        if base is not None:
            baseline_cache.store(base)
            baseline_rows.append(base)
    for name, options in GOLDENS.items():
        text = render_report(
            rows, group_by=options["group_by"], fmt=options["fmt"]
        )
        (FIXTURE_DIR / name).write_text(text + "\n", encoding="utf-8")
    annotated = render_report(rows, fmt="md", baseline=baseline_rows)
    (FIXTURE_DIR / "report_vs_baseline.md").write_text(
        annotated + "\n", encoding="utf-8"
    )
    diff_text = render_diff(diff_caches(BASELINE_DIR, CACHE_DIR), fmt="md")
    (FIXTURE_DIR / "diff.md").write_text(diff_text + "\n", encoding="utf-8")
    print(
        f"wrote {len(rows)}+{len(baseline_rows)} cache entries and "
        f"{len(GOLDENS) + 2} golden file(s) under "
        f"{FIXTURE_DIR.relative_to(REPO_ROOT)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
