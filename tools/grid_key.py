#!/usr/bin/env python
"""Print the baseline-cache key for a ``repro sweep`` flag string.

Run from the repository root (the CI baseline jobs do)::

    PYTHONPATH=src python tools/grid_key.py "$SMOKE_GRID"
    v3-1a2b3c4d5e6f

The output is ``v<CACHE_VERSION>-<grid_fingerprint>``: the fingerprint
is computed over the sorted config hashes of the expanded grid
(:func:`repro.exp.spec.grid_fingerprint`), so it is a pure function of
*which* configurations the flags describe — reformatting or reordering
the flag string cannot fork a baseline lineage, and a ``CACHE_VERSION``
bump (covered by the config hashes, and spelled out in the prefix for
debuggability) starts a fresh one.  CI uses it to key the
``actions/cache`` entries the PR regression gate restores.

Arguments are the sweep axis flags, as separate argv entries or as one
quoted string (both spellings shell-split identically).
"""

from __future__ import annotations

import shlex
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import build_parser, spec_from_args  # noqa: E402
from repro.exp.spec import (  # noqa: E402
    CACHE_VERSION,
    SweepSpec,
    grid_fingerprint,
)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    tokens = [token for arg in argv for token in shlex.split(arg)]
    if not tokens:
        print("usage: grid_key.py SWEEP_FLAGS...", file=sys.stderr)
        return 2
    args = build_parser().parse_args(["sweep", *tokens])
    spec = spec_from_args(args)
    cells = spec.expand() if isinstance(spec, SweepSpec) else list(spec)
    print(f"v{CACHE_VERSION}-{grid_fingerprint(cells)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
