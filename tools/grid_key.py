#!/usr/bin/env python
"""Print the baseline-cache key for a ``repro sweep`` flag string.

Run from the repository root (the CI baseline jobs do)::

    PYTHONPATH=src python tools/grid_key.py "$SMOKE_GRID"
    v3-1a2b3c4d5e6f

The output is ``v<CACHE_VERSION>-<grid_fingerprint>``: the fingerprint
is computed over the sorted config hashes of the expanded grid
(:func:`repro.exp.spec.grid_fingerprint`), so it is a pure function of
*which* configurations the flags describe — reformatting or reordering
the flag string cannot fork a baseline lineage, and a ``CACHE_VERSION``
bump (covered by the config hashes, and spelled out in the prefix for
debuggability) starts a fresh one.  CI uses it to key the
``actions/cache`` entries the PR regression gate restores.

Arguments are the sweep axis flags, as separate argv entries or as one
quoted string (both spellings shell-split identically).  A design
space built from *several* sweep invocations into one cache (the CI
smoke grid plus its extra scheduling/trace cells) is keyed by joining
the flag strings with a literal ``--`` separator::

    PYTHONPATH=src python tools/grid_key.py "$SMOKE_GRID" -- \
        "$SMOKE_SCHED_CELL" -- "$SMOKE_TRACE_CELL"

Each segment is parsed as its own grid and the fingerprint covers the
de-duplicated union of the expanded cells, so segment order cannot
fork the lineage either.  Note a trace segment resolves its digest
from the trace file, which therefore must exist (record it first).
"""

from __future__ import annotations

import shlex
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import build_parser, spec_from_args  # noqa: E402
from repro.exp.spec import (  # noqa: E402
    CACHE_VERSION,
    SweepSpec,
    grid_fingerprint,
)


def _split_segments(tokens: list[str]) -> list[list[str]]:
    """Split the token stream on literal ``--`` separators."""
    segments: list[list[str]] = [[]]
    for token in tokens:
        if token == "--":
            segments.append([])
        else:
            segments[-1].append(token)
    return [segment for segment in segments if segment]


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    tokens = [token for arg in argv for token in shlex.split(arg)]
    segments = _split_segments(tokens)
    if not segments:
        print("usage: grid_key.py SWEEP_FLAGS [-- SWEEP_FLAGS]...",
              file=sys.stderr)
        return 2
    cells = []
    seen = set()
    for segment in segments:
        args = build_parser().parse_args(["sweep", *segment])
        spec = spec_from_args(args)
        expanded = spec.expand() if isinstance(spec, SweepSpec) else list(spec)
        for cell in expanded:
            if cell.key() not in seen:
                seen.add(cell.key())
                cells.append(cell)
    print(f"v{CACHE_VERSION}-{grid_fingerprint(cells)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
