"""Port bundles between a coprocessor and its interface.

Figure 4 of the paper fixes the *portable* side of the IMU: address
lines ``CP_OBJ`` and ``CP_ADDR``, data lines ``CP_DIN``/``CP_DOUT`` and
the ``CP_CONTROL`` group (start, access, write, TLB hit, finish).  The
platform-specific side (``DP_*``) is owned by the IMU model itself.

A coprocessor written against :class:`CoprocessorPorts` never sees a
physical address — that is the portability contract the whole paper is
about, and the reason the same kernel classes run unchanged on every
SoC preset in :mod:`repro.core.soc`.

Handshake (one access)
----------------------
1. The core drives ``cp_obj``, ``cp_addr`` (byte address inside the
   object), ``cp_wr`` (+ ``cp_dout`` for writes) and pulses a new
   request by incrementing ``cp_req`` with ``cp_access`` high.
2. The IMU notices the new request id, drops ``cp_tlbhit``, translates
   (multi-cycle), then performs the DP-RAM access and raises
   ``cp_tlbhit`` — data valid on ``cp_din`` for reads.  On a
   translation miss the hit line simply stays low while the OS services
   the fault, which is exactly the stall mechanism of the paper.
3. The core, which has been sampling ``cp_tlbhit`` every cycle of its
   own clock, proceeds.

The request-id line makes back-to-back accesses unambiguous across
clock-domain ratios (the IDEA core at 6 MHz talks to an IMU at 24 MHz).
"""

from __future__ import annotations

from repro.sim.signal import Signal, SignalBundle

#: Object id reserved for the parameter-passing page (§3.2: "the
#: coprocessor looks for parameters in a memory page designated to
#: parameter passing").
PARAM_OBJECT = 0xFF

#: Width of the CP_OBJ lines: 8 bits of object identifier.
OBJ_BITS = 8

#: Address-space ids tag object ids in the bits above CP_OBJ: the IMU
#: widens every CAM match tag to ``asid ++ obj`` so several processes'
#: translations can coexist (see :attr:`repro.imu.imu.Imu.asid`).
ASID_SHIFT = OBJ_BITS


def tag_obj(asid: int, obj: int) -> int:
    """The global (ASID-tagged) id of CP_OBJ value *obj* under *asid*."""
    return (asid << ASID_SHIFT) | obj


def obj_asid(tagged: int) -> int:
    """The owning address-space id of a tagged object id (0 = solo)."""
    return tagged >> ASID_SHIFT


def obj_local(tagged: int) -> int:
    """The 8-bit CP_OBJ wire value of a tagged object id."""
    return tagged & ((1 << ASID_SHIFT) - 1)
#: Width of the CP_ADDR lines: 32-bit byte address within an object.
ADDR_BITS = 32
#: Width of the data lines.
DATA_BITS = 32


class CoprocessorPorts(SignalBundle):
    """The portable CP_* interface between a core and an IMU."""

    def __init__(self, name: str = "cp") -> None:
        super().__init__(name)
        # Driven by the coprocessor.
        self.cp_obj = self.new("cp_obj", OBJ_BITS)
        self.cp_addr = self.new("cp_addr", ADDR_BITS)
        self.cp_dout = self.new("cp_dout", DATA_BITS)
        self.cp_size = self.new("cp_size", 3, init=4)  # access bytes: 1/2/4
        self.cp_access = self.new("cp_access", 1)
        self.cp_wr = self.new("cp_wr", 1)
        self.cp_req = self.new("cp_req", 16)  # request id (new-access strobe)
        self.cp_fin = self.new("cp_fin", 1)
        self.cp_param_done = self.new("cp_param_done", 1)
        # Driven by the interface (IMU or direct wrapper).
        self.cp_start = self.new("cp_start", 1)
        self.cp_din = self.new("cp_din", DATA_BITS)
        self.cp_tlbhit = self.new("cp_tlbhit", 1)

    def issue(
        self,
        obj: int,
        addr: int,
        write: bool,
        data: int = 0,
        size: int = 4,
        time_ps: int = 0,
    ) -> None:
        """Drive one new access request (coprocessor side)."""
        self.cp_obj.set(obj, time_ps)
        self.cp_addr.set(addr, time_ps)
        self.cp_size.set(size, time_ps)
        self.cp_wr.set(1 if write else 0, time_ps)
        if write:
            self.cp_dout.set(data & ((1 << DATA_BITS) - 1), time_ps)
        self.cp_access.set(1, time_ps)
        self.cp_req.set((self.cp_req.value + 1) & 0xFFFF, time_ps)

    def retire(self, time_ps: int = 0) -> None:
        """De-assert the access lines after a completed access."""
        self.cp_access.set(0, time_ps)
