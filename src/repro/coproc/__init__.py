"""Portable coprocessor framework: ports, FSM base, bit-streams, kernels."""

from repro.coproc.base import Behavior, Coprocessor
from repro.coproc.bitstream import Bitstream
from repro.coproc.ports import (
    ADDR_BITS,
    DATA_BITS,
    OBJ_BITS,
    PARAM_OBJECT,
    CoprocessorPorts,
)

__all__ = [
    "Behavior",
    "Bitstream",
    "Coprocessor",
    "CoprocessorPorts",
    "PARAM_OBJECT",
    "ADDR_BITS",
    "DATA_BITS",
    "OBJ_BITS",
]
