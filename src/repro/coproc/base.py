"""Portable coprocessor framework.

A coprocessor core is written as a Python generator: **each ``yield``
is one rising edge of the core's clock**, playing the role of one state
of the VHDL finite state machine in Figure 5.  Cores interact with the
outside world only through the CP_* port helpers below, so — like the
paper's VHDL cores — they contain *no physical address and no knowledge
of the interface memory size*, and run unchanged against:

* an :class:`~repro.imu.imu.Imu` (the VIM-based system),
* a :class:`~repro.imu.direct.DirectInterface` (the typical,
  hand-integrated baseline).

The paper's elementary example (Figure 5) looks like this here::

    class VectorAdd(Coprocessor):
        def behavior(self):
            n = yield from self.read_param(0)
            yield from self.release_params()
            for i in range(n):
                a = yield from self.read(0, 4 * i)       # object A[]
                b = yield from self.read(1, 4 * i)       # object B[]
                yield from self.write(2, 4 * i, a + b)   # object C[]

No address calculation, no memory-size knowledge — the properties §3.4
calls out.
"""

from __future__ import annotations

from typing import Generator, Iterator

from repro.coproc.ports import DATA_BITS, PARAM_OBJECT, CoprocessorPorts
from repro.errors import CoprocessorError

#: Generator type produced by coprocessor behaviours.
Behavior = Generator[None, None, None]

_DATA_MASK = (1 << DATA_BITS) - 1


class Coprocessor:
    """Base class of all coprocessor cores.

    Subclasses implement :meth:`behavior` as a generator and may use
    the ``read`` / ``write`` / ``read_param`` / ``compute`` helpers.
    The core is *bound* to an interface (IMU or direct wrapper) by the
    system builder, then driven one generator step per clock edge by
    :meth:`tick`.
    """

    #: Human-readable core name (subclasses override).
    name = "coprocessor"

    def __init__(self) -> None:
        self.ports: CoprocessorPorts | None = None
        self.iface = None
        self._gen: Behavior | None = None
        self.started = False
        self.finished = False
        self.cycles = 0

    # -- wiring ---------------------------------------------------------

    def bind(self, iface) -> None:
        """Attach the core to an interface's port bundle."""
        self.iface = iface
        self.ports = iface.ports

    def _require_ports(self) -> CoprocessorPorts:
        if self.ports is None:
            raise CoprocessorError(f"core {self.name!r} is not bound to an interface")
        return self.ports

    # -- clocked behaviour -----------------------------------------------

    def tick(self) -> None:
        """One rising edge of the core clock.

        The core idles until ``CP_START``; afterwards each edge advances
        the behaviour generator by one step.  Exhaustion of the
        generator asserts ``CP_FIN`` automatically.
        """
        ports = self._require_ports()
        if self.finished:
            return
        if not self.started:
            if not ports.cp_start.value:
                return
            self.started = True
            self._gen = self.behavior()
        self.cycles += 1
        try:
            next(self._gen)  # type: ignore[arg-type]
        except StopIteration:
            self.finish()

    def behavior(self) -> Behavior:
        """The core FSM; subclasses must override."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for type checkers

    def reset(self) -> None:
        """Return the core to its pre-start state (new execution)."""
        self._gen = None
        self.started = False
        self.finished = False
        self.cycles = 0

    def finish(self) -> None:
        """Assert CP_FIN, signalling end of operation to the interface."""
        self.finished = True
        self._require_ports().cp_fin.set(1)

    # -- interface helpers (generators: cost is in core clock cycles) ----

    def read(self, obj: int, addr: int, size: int = 4) -> Generator[None, None, int]:
        """Read ``size`` bytes at byte address *addr* of object *obj*.

        The helper issues the request, then samples ``CP_TLBHIT`` every
        core cycle; a TLB miss therefore stalls the core here, without
        the core being aware of it — the paper's stall mechanism.
        """
        ports = self._require_ports()
        ports.issue(obj, addr, write=False, size=size)
        yield
        while not ports.cp_tlbhit.value:
            yield
        data = ports.cp_din.value
        ports.retire()
        return data

    def write(
        self, obj: int, addr: int, value: int, size: int = 4
    ) -> Generator[None, None, None]:
        """Write ``size`` bytes of *value* at byte address *addr*."""
        ports = self._require_ports()
        ports.issue(obj, addr, write=True, data=value & _DATA_MASK, size=size)
        yield
        while not ports.cp_tlbhit.value:
            yield
        ports.retire()

    def read_param(self, index: int) -> Generator[None, None, int]:
        """Read scalar parameter *index*.

        On an IMU, parameters live in the designated parameter-passing
        page (object :data:`~repro.coproc.ports.PARAM_OBJECT`); on a
        direct interface they come from driver-loaded registers — the
        typical system's ad-hoc equivalent.
        """
        param_regs = getattr(self.iface, "param_regs", None)
        if param_regs is not None:
            yield  # one cycle to latch the register
            try:
                return param_regs[index]
            except IndexError as exc:
                raise CoprocessorError(
                    f"core {self.name!r}: parameter {index} not loaded"
                ) from exc
        value = yield from self.read(PARAM_OBJECT, index * 4, 4)
        return value

    def release_params(self) -> Generator[None, None, None]:
        """Declare the parameter page consumed (§3.2).

        "When the parameters are read, the coprocessor ... invalidates
        the parameter-passing page, in this way making it available for
        data mapping purposes."  No-op on a direct interface.
        """
        if getattr(self.iface, "param_regs", None) is not None:
            return
            yield  # pragma: no cover
        self._require_ports().cp_param_done.set(1)
        yield

    def compute(self, cycles: int) -> Iterator[None]:
        """Model *cycles* clock cycles of datapath computation."""
        for _ in range(cycles):
            yield
