"""Configuration bit-stream descriptors.

``FPGA_LOAD`` takes "a pointer to the configuration bit-stream"
(§3.1).  In the model a bit-stream bundles everything the synthesis
flow would have baked into the real file: a factory for the core FSM,
the clock frequencies of the core and of its memory/IMU subsystem, and
the PLD resources the design consumes.

The frequency split matters: the paper's IDEA core runs at 6 MHz while
"the IMU and IDEA's memory subsystem are running at 24 MHz and the
synchronisation with the IDEA core is provided by a stall mechanism";
the adpcm core and its IMU share a single 40 MHz clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.coproc.base import Coprocessor
from repro.errors import FpgaError
from repro.hw.fpga import PldResources
from repro.sim.time import Frequency


@dataclass(frozen=True)
class Bitstream:
    """A loadable coprocessor design.

    Parameters
    ----------
    name:
        Identifier (used in logs, errors and Flash storage).
    core_factory:
        Zero-argument callable building a fresh core FSM.
    core_frequency:
        Clock of the coprocessor core.
    interface_frequency:
        Clock of the IMU / memory subsystem (defaults to the core
        clock when the design is single-domain, like adpcm).
    resources:
        PLD resource demand checked by ``FPGA_LOAD``.
    length_bytes:
        Size of the configuration file; drives configuration time.
    """

    name: str
    core_factory: Callable[[], Coprocessor]
    core_frequency: Frequency
    resources: PldResources
    interface_frequency: Frequency | None = None
    length_bytes: int = 128 * 1024

    def __post_init__(self) -> None:
        if self.length_bytes <= 0:
            raise FpgaError(f"bitstream {self.name!r}: empty configuration file")
        iface = self.interface_frequency or self.core_frequency
        if iface.hz < self.core_frequency.hz:
            raise FpgaError(
                f"bitstream {self.name!r}: interface clock {iface} slower than "
                f"core clock {self.core_frequency} is not supported"
            )

    @property
    def iface_frequency(self) -> Frequency:
        """Interface clock (core clock when not explicitly split)."""
        return self.interface_frequency or self.core_frequency

    @property
    def single_domain(self) -> bool:
        """True when core and interface share one clock."""
        return self.iface_frequency.period_ps == self.core_frequency.period_ps

    def build_core(self) -> Coprocessor:
        """Instantiate a fresh core FSM."""
        return self.core_factory()
