"""Synthetic access-pattern coprocessor (the design-space probe).

The core replays a pre-generated word-op sequence over one virtual
data object: reads fold the word into a running accumulator, writes
store an accumulator-derived word back.  Like every core in this
package, it sees only virtual ``(object, offset)`` addresses — the
pattern generator decides *where* to touch, the VIM decides what that
costs — so the same bitstream runs unchanged on any SoC preset.

Unlike the fixed kernels, the op sequence is workload data: the
builder (:func:`repro.core.drivers.synthetic_workload`) generates it
from the cell's seed and pattern parameters and closes the core
factory over it, exactly as the parameters of a configurable VHDL
generic would be baked into a generated bitstream.
"""

from __future__ import annotations

from repro.apps.synthetic import ACC_INIT, mix_read, mix_write, write_value
from repro.coproc.base import Behavior, Coprocessor
from repro.coproc.bitstream import Bitstream
from repro.hw.fpga import PldResources
from repro.sim.time import mhz

#: The single data object (FPGA_MAP_OBJECT argument (a), §3.1).
OBJ_DATA = 0


class SyntheticCore(Coprocessor):
    """Replay a ``(is_write, addr)`` op list over the data object."""

    name = "synthetic"

    def __init__(self, ops: list[tuple[bool, int]]) -> None:
        super().__init__()
        self.ops = ops

    def behavior(self) -> Behavior:
        num_ops = yield from self.read_param(0)
        yield from self.release_params()
        acc = ACC_INIT
        for is_write, addr in self.ops[:num_ops]:
            if is_write:
                value = write_value(acc, addr)
                yield from self.write(OBJ_DATA, addr, value)
                acc = mix_write(acc, value)
            else:
                value = yield from self.read(OBJ_DATA, addr)
                acc = mix_read(acc, value)


def bitstream(
    ops: list[tuple[bool, int]], frequency_mhz: float = 40.0
) -> Bitstream:
    """A synthetic-core bit-stream replaying *ops* (single clock domain)."""
    return Bitstream(
        name="synthetic",
        core_factory=lambda: SyntheticCore(ops),
        core_frequency=mhz(frequency_mhz),
        resources=PldResources(logic_elements=1_200, memory_bits=4_096),
        length_bytes=96 * 1024,
    )
