"""Coprocessor kernel cores: the paper's workloads plus the example."""

from repro.coproc.kernels import adpcm, idea, vector_add

__all__ = ["adpcm", "idea", "vector_add"]
