"""Vector-addition coprocessor — Figure 5 of the paper.

The core adds two uint32 vectors element by element.  Exactly as the
paper stresses: "no physical address appears in the code.  A vector
identifier (0, 1, and 2) and the corresponding index constitute a
virtual address".
"""

from __future__ import annotations

from repro.coproc.base import Behavior, Coprocessor
from repro.coproc.bitstream import Bitstream
from repro.hw.fpga import PldResources
from repro.sim.time import mhz

#: Object identifiers agreed between hardware and software designers
#: (the argument (a) of FPGA_MAP_OBJECT, §3.1).
OBJ_A = 0
OBJ_B = 1
OBJ_C = 2


class VectorAddCore(Coprocessor):
    """C[i] = A[i] + B[i] over 32-bit words."""

    name = "add_vectors"

    def behavior(self) -> Behavior:
        num_elements = yield from self.read_param(0)
        yield from self.release_params()
        for i in range(num_elements):
            addr = 4 * i
            a = yield from self.read(OBJ_A, addr)
            b = yield from self.read(OBJ_B, addr)
            yield from self.write(OBJ_C, addr, (a + b) & 0xFFFFFFFF)


def bitstream(frequency_mhz: float = 40.0) -> Bitstream:
    """The vector-add configuration bit-stream (single clock domain)."""
    return Bitstream(
        name="add_vectors",
        core_factory=VectorAddCore,
        core_frequency=mhz(frequency_mhz),
        resources=PldResources(logic_elements=900, memory_bits=2_048),
        length_bytes=96 * 1024,
    )
