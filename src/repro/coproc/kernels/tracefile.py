"""Trace-replay coprocessor: re-issue a recorded address stream.

The replay core is the trace-driven sibling of the synthetic core: it
walks a pre-flattened ``(is_write, obj, addr, size)`` op list — the
address stream :mod:`repro.trace.record` captured at the IMU — and
reuses the synthetic app's accumulator pipeline for the data plane.
The recorded trace fixes *where* the core touches memory; the platform
under test (policy, page size, TLB, transfer engine) decides what
those touches cost.  Data values are deliberately not part of the
trace: reads fold whatever the replayed platform returns into the
accumulator and writes store accumulator-derived words, so the
software reference (:mod:`repro.apps.tracefile`) can recompute the
exact final images without any simulation and verification stays
bit-exact.
"""

from __future__ import annotations

from repro.apps.synthetic import ACC_INIT, mix_read, mix_write, write_value
from repro.coproc.base import Behavior, Coprocessor
from repro.coproc.bitstream import Bitstream
from repro.hw.fpga import PldResources
from repro.sim.time import mhz

#: One replay op: (is_write, replay object id, byte address, size).
ReplayOp = tuple[bool, int, int, int]


def masked_write_value(acc: int, addr: int, size: int) -> int:
    """The word a replay write stores: accumulator-derived, truncated
    to the recorded access width (sub-word writes carry sub-word
    data on the bus)."""
    return write_value(acc, addr) & ((1 << (8 * size)) - 1)


class TraceReplayCore(Coprocessor):
    """Replay a flattened trace op list over its remapped objects."""

    name = "trace-replay"

    def __init__(self, ops: list[ReplayOp]) -> None:
        super().__init__()
        self.ops = ops

    def behavior(self) -> Behavior:
        num_ops = yield from self.read_param(0)
        yield from self.release_params()
        acc = ACC_INIT
        for is_write, obj, addr, size in self.ops[:num_ops]:
            if is_write:
                value = masked_write_value(acc, addr, size)
                yield from self.write(obj, addr, value, size)
                acc = mix_write(acc, value)
            else:
                value = yield from self.read(obj, addr, size)
                acc = mix_read(acc, value)


def bitstream(
    ops: list[ReplayOp], digest: str, frequency_mhz: float = 40.0
) -> Bitstream:
    """A replay-core bit-stream for *ops* (single clock domain)."""
    return Bitstream(
        name=f"trace-{digest[:10]}",
        core_factory=lambda: TraceReplayCore(ops),
        core_frequency=mhz(frequency_mhz),
        resources=PldResources(logic_elements=1_400, memory_bits=4_096),
        length_bytes=96 * 1024,
    )
