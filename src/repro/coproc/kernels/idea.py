"""IDEA coprocessor core (Figure 9's hardware version).

"A complex coprocessor core running at 6 MHz with 3 pipeline stages is
designed for IDEA.  The IMU and IDEA's memory subsystem are running at
24 MHz and the synchronisation with the IDEA core is provided by a
stall mechanism" (§4.1).

The datapath reuses the reference round functions, so the core is
bit-exact with :func:`repro.apps.idea.encrypt`.  The 3-stage pipeline
is modelled as throughput: once the pipeline is full a round retires
every core cycle (``ROUND_CYCLES = 1``) instead of the several cycles a
purely serial FSM would need.  The paper notes the EPXA1's PLD was too
small to exploit more parallelism.

Parameters via the designated parameter page: word 0 is the block
count, words 1..52 are the 16-bit round subkeys — the software side
computes the key schedule, as in any driver for a block-cipher engine.
"""

from __future__ import annotations

from repro.apps.idea import NUM_SUBKEYS, output_transform, round_function
from repro.coproc.base import Behavior, Coprocessor
from repro.coproc.bitstream import Bitstream
from repro.hw.fpga import PldResources
from repro.sim.time import mhz

#: Object identifiers agreed between HW and SW designers.
OBJ_IN = 0
OBJ_OUT = 1

#: Cycles per round with the 3-stage pipeline full.
ROUND_CYCLES = 1
#: Cycles for the output transformation and the block sequencing state
#: (address increment, next-block dispatch).
FINAL_CYCLES = 3


class IdeaCore(Coprocessor):
    """IDEA ECB engine: 8-byte blocks in, 8-byte blocks out."""

    name = "idea"

    def behavior(self) -> Behavior:
        num_blocks = yield from self.read_param(0)
        subkeys = []
        for i in range(NUM_SUBKEYS):
            subkey = yield from self.read_param(1 + i)
            subkeys.append(subkey & 0xFFFF)
        yield from self.release_params()
        for block in range(num_blocks):
            base = block * 8
            lo = yield from self.read(OBJ_IN, base, size=4)
            hi = yield from self.read(OBJ_IN, base + 4, size=4)
            # The byte stream is big-endian 16-bit words; the 32-bit
            # data bus is little-endian, so unpack explicitly.
            raw = lo.to_bytes(4, "little") + hi.to_bytes(4, "little")
            x = (
                int.from_bytes(raw[0:2], "big"),
                int.from_bytes(raw[2:4], "big"),
                int.from_bytes(raw[4:6], "big"),
                int.from_bytes(raw[6:8], "big"),
            )
            for round_index in range(8):
                keys = tuple(subkeys[round_index * 6 : round_index * 6 + 6])
                x = round_function(*x, keys)  # type: ignore[arg-type]
                yield from self.compute(ROUND_CYCLES)
            x = output_transform(*x, tuple(subkeys[48:52]))  # type: ignore[arg-type]
            yield from self.compute(FINAL_CYCLES)
            out = b"".join(v.to_bytes(2, "big") for v in x)
            yield from self.write(
                OBJ_OUT, base, int.from_bytes(out[0:4], "little"), size=4
            )
            yield from self.write(
                OBJ_OUT, base + 4, int.from_bytes(out[4:8], "little"), size=4
            )


def bitstream(
    core_mhz: float = 6.0,
    interface_mhz: float = 24.0,
) -> Bitstream:
    """The IDEA bit-stream: 6 MHz core, 24 MHz IMU/memory subsystem."""
    return Bitstream(
        name="idea",
        core_factory=IdeaCore,
        core_frequency=mhz(core_mhz),
        interface_frequency=mhz(interface_mhz),
        resources=PldResources(logic_elements=3_900, memory_bits=24_576),
        length_bytes=160 * 1024,
    )
