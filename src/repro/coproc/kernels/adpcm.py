"""ADPCM-decode coprocessor core (Figure 8's hardware version).

The core streams 4-bit codes from the input object and writes 16-bit
PCM samples to the output object; the datapath is the shared
:func:`repro.apps.adpcm.decode_nibble`, so the hardware is bit-exact
with the software reference by construction.

The paper's core runs at 40 MHz in the same clock domain as its IMU.
It is a straightforward, unpipelined FSM — ADPCM's tight dependency
chain (predictor and step index feed the next sample) leaves little to
pipeline, which is why the measured speedup over 133 MHz software is a
modest ~1.5x.
"""

from __future__ import annotations

from repro.apps.adpcm import decode_nibble, encode_sample
from repro.coproc.base import Behavior, Coprocessor
from repro.coproc.bitstream import Bitstream
from repro.hw.fpga import PldResources
from repro.sim.time import mhz

#: Object identifiers agreed between HW and SW designers.
OBJ_IN = 0
OBJ_OUT = 1

#: Datapath cycles per decoded sample: step-table ROM access, the
#: difference accumulation chain, int16 saturation and index clamping,
#: serialised in a simple FSM (calibration constant, see DESIGN.md §5).
COMPUTE_CYCLES_PER_SAMPLE = 20


class AdpcmDecodeCore(Coprocessor):
    """IMA ADPCM decoder: one input byte -> two int16 samples."""

    name = "adpcmdecode"

    def behavior(self) -> Behavior:
        num_bytes = yield from self.read_param(0)
        yield from self.release_params()
        predictor, index = 0, 0
        sample_pos = 0
        for byte_pos in range(num_bytes):
            byte = yield from self.read(OBJ_IN, byte_pos, size=1)
            for code in (byte & 0xF, byte >> 4):
                sample, predictor, index = decode_nibble(code, predictor, index)
                yield from self.compute(COMPUTE_CYCLES_PER_SAMPLE)
                yield from self.write(
                    OBJ_OUT, sample_pos * 2, sample & 0xFFFF, size=2
                )
                sample_pos += 1


class AdpcmEncodeCore(Coprocessor):
    """IMA ADPCM encoder: two int16 samples -> one packed code byte.

    Not part of the paper's evaluation — the natural companion core a
    real deployment would ship (capture path of the same media
    pipeline), and a second single-domain workload for the framework.
    The encoder embeds the decoder datapath (state lockstep), so its
    per-sample cost is slightly higher than the decoder's.
    """

    name = "adpcmencode"

    def behavior(self) -> Behavior:
        num_samples = yield from self.read_param(0)
        yield from self.release_params()
        predictor, index = 0, 0
        for byte_pos in range(num_samples // 2):
            codes = []
            for half in range(2):
                sample = yield from self.read(
                    OBJ_IN, (byte_pos * 2 + half) * 2, size=2
                )
                # int16 arrives as a raw half-word; sign-extend.
                if sample >= 0x8000:
                    sample -= 0x10000
                code, predictor, index = encode_sample(sample, predictor, index)
                yield from self.compute(COMPUTE_CYCLES_PER_SAMPLE + 4)
                codes.append(code)
            yield from self.write(
                OBJ_OUT, byte_pos, codes[0] | (codes[1] << 4), size=1
            )


def bitstream(frequency_mhz: float = 40.0) -> Bitstream:
    """The adpcmdecode bit-stream: core and IMU share one 40 MHz clock."""
    return Bitstream(
        name="adpcmdecode",
        core_factory=AdpcmDecodeCore,
        core_frequency=mhz(frequency_mhz),
        resources=PldResources(logic_elements=2_100, memory_bits=12_288),
        length_bytes=128 * 1024,
    )


def encoder_bitstream(frequency_mhz: float = 40.0) -> Bitstream:
    """The adpcmencode bit-stream (encoder embeds the decoder datapath)."""
    return Bitstream(
        name="adpcmencode",
        core_factory=AdpcmEncodeCore,
        core_frequency=mhz(frequency_mhz),
        resources=PldResources(logic_elements=2_600, memory_bits=12_288),
        length_bytes=128 * 1024,
    )
