"""repro — Operating-system support for interface virtualisation of
reconfigurable coprocessors.

A laptop-scale reproduction of Vuletic, Righetti, Pozzi and Ienne
(DATE 2004): a cycle-level reconfigurable-SoC simulator, the IMU
(Interface Management Unit) with its CAM TLB, a mini operating system
hosting the VIM (Virtual Interface Manager), portable coprocessor
kernels (vector add, ADPCM decode, IDEA), and a benchmark harness
regenerating every figure of the paper's evaluation.

Quick start::

    from repro import System, adpcm_workload, run_software, run_vim

    workload = adpcm_workload(2 * 1024)
    sw = run_software(System(), workload)
    hw = run_vim(System(), workload)
    hw.verify()                       # bit-exact vs the reference
    print(hw.measurement.speedup_over(sw.measurement))
"""

from repro.core import (
    EPXA1,
    EPXA4,
    EPXA10,
    PRESETS,
    CoprocessorSession,
    Measurement,
    ObjectSpec,
    RunResult,
    SocConfig,
    System,
    WorkloadSpec,
    adpcm_encode_workload,
    adpcm_workload,
    idea_workload,
    run_software,
    run_typical,
    run_vim,
    vector_add_workload,
)
from repro.errors import CapacityError, ReproError
from repro.os.vim.manager import TransferMode
from repro.os.vim.objects import Direction, Hint
from repro.os.vim.prefetch import SequentialPrefetcher

__version__ = "0.1.0"

__all__ = [
    "CapacityError",
    "CoprocessorSession",
    "Direction",
    "Hint",
    "Measurement",
    "ObjectSpec",
    "PRESETS",
    "ReproError",
    "RunResult",
    "SequentialPrefetcher",
    "SocConfig",
    "System",
    "TransferMode",
    "WorkloadSpec",
    "adpcm_encode_workload",
    "adpcm_workload",
    "idea_workload",
    "run_software",
    "run_typical",
    "run_vim",
    "vector_add_workload",
    "EPXA1",
    "EPXA4",
    "EPXA10",
    "__version__",
]
