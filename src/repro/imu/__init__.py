"""The paper's hardware contribution: IMU, TLB, registers, baseline."""

from repro.imu.direct import DirectInterface
from repro.imu.imu import INT_PLD_LINE, Imu, ImuState
from repro.imu.registers import AddressRegister, ControlRegister, StatusRegister
from repro.imu.tlb import Tlb, TlbEntry, TlbStats

__all__ = [
    "AddressRegister",
    "ControlRegister",
    "DirectInterface",
    "Imu",
    "ImuState",
    "INT_PLD_LINE",
    "StatusRegister",
    "Tlb",
    "TlbEntry",
    "TlbStats",
]
