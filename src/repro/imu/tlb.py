"""The IMU's Translation Lookaside Buffer.

"The key part of the IMU is actually the TLB that performs address
translation for coprocessor accesses" (§3.2).  An entry maps a virtual
page — the pair *(object id, virtual page number within the object)* —
to a physical page of the dual-port RAM, and carries validity and
dirtiness information exactly like a processor TLB.

On the EPXA1 prototype the TLB was built from the PLD's content
addressable memories.  Here the CAM state lives in flat parallel
columns (stdlib ``array`` rows per slot: obj, vpage, ppage, valid,
dirty, last_used, referenced) indexed by two hash maps — the match tag
``(obj, vpage) -> slot`` and the reverse ``ppage -> slot`` — which
preserves the architectural property that matters (fully associative,
single-match lookup) while making every query O(1) and the bulk
queries (flush set, victim scan) single passes over the columns.

:class:`TlbEntry` objects handed out by the query methods are live
*views* of their slot: mutations through them (``entry.dirty = True``)
hit the columns directly, and hardware-side updates (the usage assist
on a hit) are visible through previously returned views.  When a
translation is invalidated — or displaced by a reinstall — its view is
detached with the final values frozen in, so held references keep
reading the removed translation and can never alias a reused slot.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from repro.errors import HardwareError


class TlbEntry:
    """One translation: (obj, vpage) -> ppage, with valid/dirty bits.

    ``last_used`` and ``referenced`` are the usage assist for
    recency-based replacement (the hardware updates them on every hit;
    the VIM reads and clears them through the register interface).

    A live entry is a view over its TLB slot; a detached one (its
    translation was removed) is a plain value snapshot.
    """

    __slots__ = (
        "obj", "vpage", "_tlb", "_slot",
        "_ppage", "_valid", "_dirty", "_last_used", "_referenced",
    )

    def __init__(self, tlb: "Tlb | None", slot: int, obj: int, vpage: int) -> None:
        self.obj = obj
        self.vpage = vpage
        self._tlb = tlb
        self._slot = slot

    def key(self) -> tuple[int, int]:
        """The CAM match tag of this entry."""
        return (self.obj, self.vpage)

    def _detach(self) -> None:
        """Freeze the current slot values and sever the slot binding."""
        tlb = self._tlb
        if tlb is None:
            return
        slot = self._slot
        self._ppage = tlb._col_ppage[slot]
        self._valid = bool(tlb._col_valid[slot])
        self._dirty = bool(tlb._col_dirty[slot])
        self._last_used = tlb._col_last_used[slot]
        self._referenced = bool(tlb._col_referenced[slot])
        self._tlb = None

    @property
    def ppage(self) -> int:
        tlb = self._tlb
        return tlb._col_ppage[self._slot] if tlb is not None else self._ppage

    @ppage.setter
    def ppage(self, value: int) -> None:
        tlb = self._tlb
        if tlb is not None:
            tlb._col_ppage[self._slot] = value
        else:
            self._ppage = value

    @property
    def valid(self) -> bool:
        tlb = self._tlb
        return bool(tlb._col_valid[self._slot]) if tlb is not None else self._valid

    @valid.setter
    def valid(self, value: bool) -> None:
        tlb = self._tlb
        if tlb is not None:
            tlb._col_valid[self._slot] = 1 if value else 0
        else:
            self._valid = bool(value)

    @property
    def dirty(self) -> bool:
        tlb = self._tlb
        return bool(tlb._col_dirty[self._slot]) if tlb is not None else self._dirty

    @dirty.setter
    def dirty(self, value: bool) -> None:
        tlb = self._tlb
        if tlb is not None:
            tlb._col_dirty[self._slot] = 1 if value else 0
        else:
            self._dirty = bool(value)

    @property
    def last_used(self) -> int:
        tlb = self._tlb
        return tlb._col_last_used[self._slot] if tlb is not None else self._last_used

    @last_used.setter
    def last_used(self, value: int) -> None:
        tlb = self._tlb
        if tlb is not None:
            tlb._col_last_used[self._slot] = value
        else:
            self._last_used = value

    @property
    def referenced(self) -> bool:
        tlb = self._tlb
        return (
            bool(tlb._col_referenced[self._slot])
            if tlb is not None
            else self._referenced
        )

    @referenced.setter
    def referenced(self, value: bool) -> None:
        tlb = self._tlb
        if tlb is not None:
            tlb._col_referenced[self._slot] = 1 if value else 0
        else:
            self._referenced = bool(value)

    def __repr__(self) -> str:
        return (
            f"TlbEntry(obj={self.obj}, vpage={self.vpage}, "
            f"ppage={self.ppage}, valid={self.valid}, dirty={self.dirty}, "
            f"last_used={self.last_used}, referenced={self.referenced})"
        )


@dataclass
class TlbStats:
    """Hit/miss counters, exposed to benchmarks and the VIM."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when no lookups yet)."""
        return self.hits / self.lookups if self.lookups else 0.0


class Tlb:
    """A fully-associative TLB sized to the number of DP-RAM pages.

    Because every resident DP-RAM page has exactly one translation, the
    natural capacity is the number of physical pages — the organisation
    of the paper's prototype.  A smaller capacity can be configured for
    ablation studies (then a valid translation can be evicted from the
    TLB while its page stays resident, causing extra faults).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise HardwareError(f"TLB capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = TlbStats()
        # Parallel columns, one row per CAM slot.
        self._col_obj = array("q", bytes(8 * capacity))
        self._col_vpage = array("q", bytes(8 * capacity))
        self._col_ppage = array("q", bytes(8 * capacity))
        self._col_valid = array("b", bytes(capacity))
        self._col_dirty = array("b", bytes(capacity))
        self._col_last_used = array("q", bytes(8 * capacity))
        self._col_referenced = array("b", bytes(capacity))
        # Match tag -> slot.  Insertion-ordered like the old dict CAM:
        # entries()/dirty_entries() iterate in install order, which the
        # VIM's flush and victim-displacement behaviour depends on.
        self._slot_of: dict[tuple[int, int], int] = {}
        # Reverse index: physical page -> slot, so invalidate_ppage and
        # entry_for_ppage are O(1) instead of scans.  Coherent under
        # the VIM invariant that at most one translation maps a frame.
        self._ppage_slot: dict[int, int] = {}
        # Cached live views, one per occupied slot.
        self._views: list[TlbEntry | None] = [None] * capacity
        self._free = list(range(capacity - 1, -1, -1))

    def __len__(self) -> int:
        return len(self._slot_of)

    def _view(self, slot: int) -> TlbEntry:
        view = self._views[slot]
        if view is None:
            view = TlbEntry(
                self, slot, self._col_obj[slot], self._col_vpage[slot]
            )
            self._views[slot] = view
        return view

    def _release_slot(self, slot: int) -> TlbEntry:
        """Detach the slot's view (creating one if needed) and free it."""
        view = self._view(slot)
        view._detach()
        self._views[slot] = None
        ppage = self._col_ppage[slot]
        if self._ppage_slot.get(ppage) == slot:
            del self._ppage_slot[ppage]
        self._free.append(slot)
        return view

    def lookup(self, obj: int, vpage: int) -> TlbEntry | None:
        """CAM match; returns the entry on hit, ``None`` on miss."""
        stats = self.stats
        stats.lookups += 1
        slot = self._slot_of.get((obj, vpage))
        if slot is not None and self._col_valid[slot]:
            stats.hits += 1
            self._col_last_used[slot] = stats.lookups
            self._col_referenced[slot] = 1
            return self._view(slot)
        stats.misses += 1
        return None

    def probe(self, obj: int, vpage: int) -> TlbEntry | None:
        """Like :meth:`lookup` but without touching the statistics.

        Used by the OS model, which walks the TLB through the register
        interface rather than through the translation datapath.
        """
        slot = self._slot_of.get((obj, vpage))
        if slot is not None and self._col_valid[slot]:
            return self._view(slot)
        return None

    def insert(self, obj: int, vpage: int, ppage: int) -> TlbEntry:
        """Install a translation (done by the VIM after a page load).

        Reinstalling over an existing ``(obj, vpage)`` entry that still
        maps the *same* physical page keeps the dirty bit: the page's
        contents have not been reloaded, so forgetting its dirtiness
        would silently lose the write-back at eviction or end of
        operation.  A reinstall pointing at a different frame means the
        page was freshly loaded there, so the new entry starts clean.
        """
        key = (obj, vpage)
        slot = self._slot_of.get(key)
        dirty = 0
        if slot is None:
            if len(self._slot_of) >= self.capacity:
                raise HardwareError(
                    f"TLB full ({self.capacity} entries); VIM must invalidate first"
                )
            slot = self._free.pop()
            # A new key appends; a reinstall below reuses its slot, so
            # the key keeps its original position in insertion order —
            # exactly the old ``cam[key] = entry`` dict behaviour.
            self._slot_of[key] = slot
        else:
            if self._col_valid[slot] and self._col_ppage[slot] == ppage:
                dirty = self._col_dirty[slot]
            # The previous entry object dies here (the old CAM replaced
            # it wholesale): detach its view so held references keep
            # the pre-reinstall values, then rebind the slot.
            view = self._views[slot]
            if view is not None:
                view._detach()
                self._views[slot] = None
            old_ppage = self._col_ppage[slot]
            if self._ppage_slot.get(old_ppage) == slot:
                del self._ppage_slot[old_ppage]
        self._col_obj[slot] = obj
        self._col_vpage[slot] = vpage
        self._col_ppage[slot] = ppage
        self._col_valid[slot] = 1
        self._col_dirty[slot] = dirty
        self._col_last_used[slot] = 0
        self._col_referenced[slot] = 0
        self._ppage_slot[ppage] = slot
        self.stats.insertions += 1
        return self._view(slot)

    def invalidate(self, obj: int, vpage: int) -> TlbEntry | None:
        """Remove a translation; returns the removed entry if present."""
        slot = self._slot_of.pop((obj, vpage), None)
        if slot is None:
            return None
        self.stats.invalidations += 1
        return self._release_slot(slot)

    def invalidate_ppage(self, ppage: int) -> TlbEntry | None:
        """Remove whichever translation maps to physical page *ppage*."""
        slot = self._ppage_slot.get(ppage)
        if slot is None:
            return None
        del self._slot_of[(self._col_obj[slot], self._col_vpage[slot])]
        self.stats.invalidations += 1
        return self._release_slot(slot)

    def invalidate_all(self) -> None:
        """Flush the whole TLB (done between coprocessor executions)."""
        self.stats.invalidations += len(self._slot_of)
        for slot in self._slot_of.values():
            view = self._views[slot]
            if view is not None:
                view._detach()
                self._views[slot] = None
        self._slot_of.clear()
        self._ppage_slot.clear()
        self._free = list(range(self.capacity - 1, -1, -1))

    def entries(self) -> list[TlbEntry]:
        """Snapshot of the valid entries (OS-side inspection)."""
        valid = self._col_valid
        return [
            self._view(slot)
            for slot in self._slot_of.values()
            if valid[slot]
        ]

    def dirty_entries(self, match=None) -> list[TlbEntry]:
        """Valid entries with the dirty bit set (end-of-op flush set).

        *match*, if given, is a predicate over the entry's object id;
        filtering happens over the columns so no view is materialised
        for entries outside the flush set.
        """
        valid = self._col_valid
        dirty = self._col_dirty
        objs = self._col_obj
        return [
            self._view(slot)
            for slot in self._slot_of.values()
            if valid[slot] and dirty[slot] and (match is None or match(objs[slot]))
        ]

    def entry_for_ppage(self, ppage: int) -> TlbEntry | None:
        """The entry currently mapping physical page *ppage*, if any."""
        slot = self._ppage_slot.get(ppage)
        if slot is not None and self._col_valid[slot]:
            return self._view(slot)
        return None

    def coldest_entry(self, skip_obj=None) -> TlbEntry | None:
        """The valid entry with the smallest ``(last_used, ppage)``.

        This is the VIM's TLB-displacement victim query, run as one
        pass over the columns.  *skip_obj* excludes entries by object
        id (the parameter page must never be displaced).  Ties and
        ordering match ``min()`` over insertion order: the first
        minimal entry wins.
        """
        best_slot = None
        best_rank = None
        valid = self._col_valid
        last_used = self._col_last_used
        ppages = self._col_ppage
        objs = self._col_obj
        for slot in self._slot_of.values():
            if not valid[slot]:
                continue
            if skip_obj is not None and skip_obj(objs[slot]):
                continue
            rank = (last_used[slot], ppages[slot])
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_slot = slot
        return self._view(best_slot) if best_slot is not None else None
