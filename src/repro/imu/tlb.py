"""The IMU's Translation Lookaside Buffer.

"The key part of the IMU is actually the TLB that performs address
translation for coprocessor accesses" (§3.2).  An entry maps a virtual
page — the pair *(object id, virtual page number within the object)* —
to a physical page of the dual-port RAM, and carries validity and
dirtiness information exactly like a processor TLB.

On the EPXA1 prototype the TLB was built from the PLD's content
addressable memories; here the CAM is a dict keyed by (obj, vpage),
which preserves the architectural property that matters: fully
associative, single-match lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HardwareError


@dataclass
class TlbEntry:
    """One translation: (obj, vpage) -> ppage, with valid/dirty bits.

    ``last_used`` and ``referenced`` are the usage assist for
    recency-based replacement (the hardware updates them on every hit;
    the VIM reads and clears them through the register interface).
    """

    obj: int
    vpage: int
    ppage: int
    valid: bool = True
    dirty: bool = False
    last_used: int = 0
    referenced: bool = False

    def key(self) -> tuple[int, int]:
        """The CAM match tag of this entry."""
        return (self.obj, self.vpage)


@dataclass
class TlbStats:
    """Hit/miss counters, exposed to benchmarks and the VIM."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when no lookups yet)."""
        return self.hits / self.lookups if self.lookups else 0.0


class Tlb:
    """A fully-associative TLB sized to the number of DP-RAM pages.

    Because every resident DP-RAM page has exactly one translation, the
    natural capacity is the number of physical pages — the organisation
    of the paper's prototype.  A smaller capacity can be configured for
    ablation studies (then a valid translation can be evicted from the
    TLB while its page stays resident, causing extra faults).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise HardwareError(f"TLB capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._cam: dict[tuple[int, int], TlbEntry] = {}
        self.stats = TlbStats()

    def __len__(self) -> int:
        return len(self._cam)

    def lookup(self, obj: int, vpage: int) -> TlbEntry | None:
        """CAM match; returns the entry on hit, ``None`` on miss."""
        self.stats.lookups += 1
        entry = self._cam.get((obj, vpage))
        if entry is not None and entry.valid:
            self.stats.hits += 1
            entry.last_used = self.stats.lookups
            entry.referenced = True
            return entry
        self.stats.misses += 1
        return None

    def probe(self, obj: int, vpage: int) -> TlbEntry | None:
        """Like :meth:`lookup` but without touching the statistics.

        Used by the OS model, which walks the TLB through the register
        interface rather than through the translation datapath.
        """
        entry = self._cam.get((obj, vpage))
        return entry if entry is not None and entry.valid else None

    def insert(self, obj: int, vpage: int, ppage: int) -> TlbEntry:
        """Install a translation (done by the VIM after a page load).

        Reinstalling over an existing ``(obj, vpage)`` entry that still
        maps the *same* physical page keeps the dirty bit: the page's
        contents have not been reloaded, so forgetting its dirtiness
        would silently lose the write-back at eviction or end of
        operation.  A reinstall pointing at a different frame means the
        page was freshly loaded there, so the new entry starts clean.
        """
        existing = self._cam.get((obj, vpage))
        if existing is None and len(self._cam) >= self.capacity:
            raise HardwareError(
                f"TLB full ({self.capacity} entries); VIM must invalidate first"
            )
        entry = TlbEntry(obj=obj, vpage=vpage, ppage=ppage)
        if existing is not None and existing.valid and existing.ppage == ppage:
            entry.dirty = existing.dirty
        self._cam[entry.key()] = entry
        self.stats.insertions += 1
        return entry

    def invalidate(self, obj: int, vpage: int) -> TlbEntry | None:
        """Remove a translation; returns the removed entry if present."""
        entry = self._cam.pop((obj, vpage), None)
        if entry is not None:
            self.stats.invalidations += 1
        return entry

    def invalidate_ppage(self, ppage: int) -> TlbEntry | None:
        """Remove whichever translation maps to physical page *ppage*."""
        for key, entry in list(self._cam.items()):
            if entry.ppage == ppage:
                del self._cam[key]
                self.stats.invalidations += 1
                return entry
        return None

    def invalidate_all(self) -> None:
        """Flush the whole TLB (done between coprocessor executions)."""
        self.stats.invalidations += len(self._cam)
        self._cam.clear()

    def entries(self) -> list[TlbEntry]:
        """Snapshot of the valid entries (OS-side inspection)."""
        return [e for e in self._cam.values() if e.valid]

    def dirty_entries(self) -> list[TlbEntry]:
        """Valid entries with the dirty bit set (end-of-op flush set)."""
        return [e for e in self._cam.values() if e.valid and e.dirty]

    def entry_for_ppage(self, ppage: int) -> TlbEntry | None:
        """The entry currently mapping physical page *ppage*, if any."""
        for entry in self._cam.values():
            if entry.ppage == ppage and entry.valid:
                return entry
        return None
