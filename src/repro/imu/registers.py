"""The IMU's processor-visible registers: AR, SR, CR.

Figure 4 shows three registers accessible by the main processor:

* **AR** (address register) — "holds the address of the coprocessor
  memory access performed most recently.  By examining this register,
  the OS can determine which memory access possibly caused an access
  fault."
* **SR** (status register) — fault / done / busy / parameter-released
  flags the VIM reads to decide which service routine to run.
* **CR** (control register) — start, restart-translation, reset and
  interrupt-enable bits the VIM writes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class AddressRegister:
    """Most recent coprocessor access: object id, byte address, kind."""

    obj: int = 0
    addr: int = 0
    write: bool = False

    def capture(self, obj: int, addr: int, write: bool) -> None:
        """Latch the current access (called by the IMU every access)."""
        self.obj = obj
        self.addr = addr
        self.write = write

    def as_word(self) -> int:
        """Encode as a 32-bit register image (obj in the top byte)."""
        return ((self.obj & 0xFF) << 24) | (self.addr & 0x7FFFFF) << 1 | int(self.write)


class StatusRegister:
    """IMU status flags, read by the OS to classify an interrupt."""

    FAULT = 1 << 0
    DONE = 1 << 1
    BUSY = 1 << 2
    PARAM_RELEASED = 1 << 3

    def __init__(self) -> None:
        self.value = 0

    def set(self, flag: int) -> None:
        """Assert a status flag."""
        self.value |= flag

    def clear(self, flag: int) -> None:
        """De-assert a status flag."""
        self.value &= ~flag

    def test(self, flag: int) -> bool:
        """True if *flag* is asserted."""
        return bool(self.value & flag)

    @property
    def fault(self) -> bool:
        """A coprocessor access missed in the TLB; OS service needed."""
        return self.test(self.FAULT)

    @property
    def done(self) -> bool:
        """The coprocessor signalled end of operation (CP_FIN)."""
        return self.test(self.DONE)

    @property
    def busy(self) -> bool:
        """The coprocessor is running."""
        return self.test(self.BUSY)

    @property
    def param_released(self) -> bool:
        """The coprocessor has consumed and released the parameter page."""
        return self.test(self.PARAM_RELEASED)


class ControlRegister:
    """IMU control bits, written by the OS."""

    START = 1 << 0
    RESTART = 1 << 1
    RESET = 1 << 2
    INT_ENABLE = 1 << 3

    def __init__(self) -> None:
        self.value = self.INT_ENABLE

    def set(self, flag: int) -> None:
        """Assert a control bit."""
        self.value |= flag

    def clear(self, flag: int) -> None:
        """De-assert a control bit."""
        self.value &= ~flag

    def test(self, flag: int) -> bool:
        """True if *flag* is asserted."""
        return bool(self.value & flag)
