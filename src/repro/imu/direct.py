"""Direct (non-virtualised) coprocessor interface — the baseline.

This models the paper's *typical coprocessor* version (Figures 3 and
9): the coprocessor addresses the dual-port RAM through fixed,
driver-programmed base offsets, with no TLB, no faults and no OS
involvement.  It is faster per access — a direct DP-RAM port needs no
translation cycles — but the whole working set must fit the physical
memory, which is exactly why Figure 9 marks the 16 KB and 32 KB IDEA
points "exceeds available memory".

The same port bundle as the IMU is exposed so that the identical
coprocessor kernel classes run against either interface; only the
*system* differs, which is the comparison the paper makes.
"""

from __future__ import annotations

from repro.coproc.ports import CoprocessorPorts
from repro.errors import CapacityError, HardwareError
from repro.hw.dpram import DualPortRam


class DirectInterface:
    """Fixed-offset DP-RAM wrapper for a hand-integrated coprocessor.

    Parameters
    ----------
    dpram:
        The physical interface memory.
    access_cycles:
        Rising edges from request to data, inclusive (default 2: one to
        present the address, one for the synchronous DP-RAM read).
    """

    def __init__(self, dpram: DualPortRam, access_cycles: int = 2) -> None:
        if access_cycles < 2:
            raise HardwareError("access_cycles must be >= 2 (request + reply)")
        self.dpram = dpram
        self.access_cycles = access_cycles
        self.ports = CoprocessorPorts()
        self._bases: dict[int, tuple[int, int]] = {}
        self.param_regs: list[int] = []
        self._last_req = 0
        self._remaining = 0
        self._pending = False
        self.reads = 0
        self.writes = 0
        self.ticks = 0
        self.done = False

    # -- driver-side configuration (the "platform-related details" a
    #    programmer of the typical version must manage by hand) --------

    def set_object_window(self, obj: int, base: int, size: int) -> None:
        """Map object *obj* to ``[base, base + size)`` in the DP-RAM.

        Raises :class:`CapacityError` if the window does not fit — the
        hard limit virtualisation removes.
        """
        if base < 0 or size < 0 or base + size > self.dpram.size:
            raise CapacityError(
                f"object {obj}: window [{base}, {base + size}) exceeds "
                f"DP-RAM size {self.dpram.size}"
            )
        self._bases[obj] = (base, size)

    def clear_windows(self) -> None:
        """Forget all object windows (between chunked invocations)."""
        self._bases.clear()

    def start_coprocessor(self) -> None:
        """Assert CP_START (driver launches the core)."""
        self.done = False
        self.ports.cp_start.set(1)

    # -- clocked behaviour --------------------------------------------

    def tick(self) -> None:
        """One rising edge of the interface clock domain."""
        self.ticks += 1
        ports = self.ports
        if ports.cp_fin.value:
            self.done = True
        if self._pending:
            self._remaining -= 1
            if self._remaining <= 0:
                self._fire()
            return
        if ports.cp_access.value and ports.cp_req.value != self._last_req:
            self._last_req = ports.cp_req.value
            ports.cp_tlbhit.set(0)
            latency = self.access_cycles - 2
            if latency <= 0:
                self._fire()
            else:
                self._pending = True
                self._remaining = latency

    def _fire(self) -> None:
        ports = self.ports
        self._pending = False
        obj = ports.cp_obj.value
        addr = ports.cp_addr.value
        window = self._bases.get(obj)
        if window is None:
            raise HardwareError(f"object {obj} has no DP-RAM window configured")
        base, size = window
        access_size = ports.cp_size.value
        if addr + access_size > size:
            raise HardwareError(
                f"object {obj}: access at {addr} (+{access_size}) exceeds "
                f"window size {size}"
            )
        paddr = base + addr
        if ports.cp_wr.value:
            self.dpram.pld_write(paddr, ports.cp_dout.value, access_size)
            self.writes += 1
        else:
            ports.cp_din.set(self.dpram.pld_read(paddr, access_size))
            self.reads += 1
        ports.cp_tlbhit.set(1)

    def reset(self) -> None:
        """Reset handshake state for a fresh chunk invocation."""
        self._pending = False
        self._remaining = 0
        self.done = False
        ports = self.ports
        ports.cp_start.set(0)
        ports.cp_tlbhit.set(0)
        ports.cp_fin.set(0)
        ports.cp_access.set(0)
        self._last_req = ports.cp_req.value
