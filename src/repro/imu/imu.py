"""The Interface Management Unit.

The IMU sits between a *portable* coprocessor (CP_* ports) and the
*platform-specific* dual-port RAM (Figure 4).  Every coprocessor memory
access passes through it:

* on a TLB **hit** the virtual address ``(CP_OBJ, CP_ADDR)`` is
  translated to a physical DP-RAM address and the access is performed —
  in the paper's prototype "four cycles are needed from the moment when
  the coprocessor generates an access to the moment when the data is
  read or written" (Figure 7);
* on a TLB **miss** the coprocessor is stalled (``CP_TLBHIT`` stays
  low) and ``INT_PLD`` is raised so the OS-side Virtual Interface
  Manager can service the page fault;
* ``CP_FIN`` sets the *done* status and raises the same interrupt for
  end-of-operation handling.

Timing model
------------
The IMU is a clocked FSM.  With the IMU's tick attached to its clock
domain *before* the coprocessor's, a request issued on edge *n* is
detected on edge *n+1* and completes on edge ``n + access_cycles - 1``
with ``CP_TLBHIT`` high, so data is ready on the ``access_cycles``-th
rising edge counted from the request — matching Figure 7 for the
default ``access_cycles = 4``.

The *pipelined* variant the paper announces as work in progress
("expected to mask almost completely the translation overhead") keeps
the same detection handshake but completes the translation in the
detection cycle, i.e. an effective 2-cycle access.
"""

from __future__ import annotations

from enum import Enum

from repro.coproc.ports import ASID_SHIFT, PARAM_OBJECT, CoprocessorPorts, tag_obj
from repro.errors import HardwareError
from repro.hw.dpram import DualPortRam
from repro.hw.interrupts import InterruptController
from repro.imu.registers import AddressRegister, ControlRegister, StatusRegister
from repro.imu.tlb import Tlb

#: Interrupt line used by the IMU (INT_PLD in Figure 4).
INT_PLD_LINE = 0


class ImuState(Enum):
    """Translation FSM states."""

    IDLE = "idle"
    TRANSLATE = "translate"
    FAULT = "fault"


class Imu:
    """Interface Management Unit: CAM TLB + AR/SR/CR + translation FSM.

    Parameters
    ----------
    dpram:
        The physical interface memory whose pages are being virtualised.
    interrupts:
        Interrupt controller carrying ``INT_PLD``.
    access_cycles:
        Rising edges from request to data, inclusive (paper: 4).
    pipelined:
        If True, model the pipelined IMU (translation overlapped with
        the request path; only the synchroniser latency remains).
    tlb_capacity:
        Override the TLB size (defaults to one entry per DP-RAM page,
        which is how the prototype is organised).
    sync_cycles:
        Extra IMU cycles per access for clock-domain-crossing
        synchronisers.  Zero in single-domain designs (adpcm); the
        dual-domain IDEA system pays the 6 MHz <-> 24 MHz stall
        handshake here ("the synchronisation with the IDEA core is
        provided by a stall mechanism", §4.1).
    """

    #: Default synchroniser cost when core and IMU clocks differ:
    #: two-flop synchronisers on the request and grant paths plus CAM
    #: re-timing, in IMU cycles.
    CDC_SYNC_CYCLES = 6

    #: Bits of the CP_OBJ lines; the ASID occupies the tag bits above.
    ASID_SHIFT = ASID_SHIFT

    def __init__(
        self,
        dpram: DualPortRam,
        interrupts: InterruptController,
        access_cycles: int = 4,
        pipelined: bool = False,
        tlb_capacity: int | None = None,
        irq_line: int = INT_PLD_LINE,
        sync_cycles: int = 0,
    ) -> None:
        if access_cycles < 2:
            raise HardwareError("access_cycles must be >= 2 (request + reply)")
        if sync_cycles < 0:
            raise HardwareError("sync_cycles must be >= 0")
        self.dpram = dpram
        self.interrupts = interrupts
        self.access_cycles = access_cycles
        self.pipelined = pipelined
        self.sync_cycles = sync_cycles
        self.irq_line = irq_line
        self.ports = CoprocessorPorts()
        self.tlb = Tlb(tlb_capacity or dpram.num_pages)
        self.ar = AddressRegister()
        self.sr = StatusRegister()
        self.cr = ControlRegister()
        #: Address-space id of the executing process, written by the OS
        #: on a tenant switch.  It widens every CAM match tag from
        #: (obj, vpage) to (asid ++ obj, vpage), so translations of
        #: several processes can coexist in the TLB while only the
        #: active tenant's entries match.  Zero (the default) makes the
        #: tag the identity — single-tenant behaviour is unchanged.
        self.asid = 0
        #: Optional address-trace sink (``record(asid, write, obj,
        #: addr, size)``, e.g. a :class:`repro.trace.record.
        #: TraceRecorder`).  Called once per *completed* data access —
        #: after fault service, on the retried access's hit — with the
        #: untagged CP_OBJ id; parameter-page traffic is not recorded
        #: (it is protocol, not workload).  The call sits on the firing
        #: edge, which both engine backends execute for real, so a
        #: recording changes nothing about timing or backend
        #: equivalence.
        self.trace_sink = None
        self.state = ImuState.IDLE
        self._remaining = 0
        self._last_req = 0
        self._param_handled = False
        # Statistics (reset per execution by the runner).
        self.translations = 0
        self.faults = 0
        self.reads = 0
        self.writes = 0
        self.fault_stall_cycles = 0
        self.translate_cycles = 0
        self.ticks = 0

    # ------------------------------------------------------------------
    # Clocked behaviour
    # ------------------------------------------------------------------

    def tick(self) -> None:
        """One rising edge of the IMU clock domain."""
        self.ticks += 1
        ports = self.ports
        if ports.cp_fin.value and not self.sr.done:
            self._finish()
        if ports.cp_param_done.value and not self._param_handled:
            self._release_param_page()
        if self.state is ImuState.IDLE:
            if ports.cp_access.value and ports.cp_req.value != self._last_req:
                self._begin_translation()
        elif self.state is ImuState.TRANSLATE:
            self.translate_cycles += 1
            self._remaining -= 1
            if self._remaining <= 0:
                self._fire()
        elif self.state is ImuState.FAULT:
            self.fault_stall_cycles += 1

    def translate_burst(self) -> int:
        """Pre-account a run of inert edges; returns how many to skip.

        This is the fast engine's ``fast_forward`` hook (called right
        after each executed edge).  It recognises the two windows in
        which every upcoming edge is provably a pure stall — the
        coprocessor is suspended inside its ``CP_TLBHIT`` wait, so its
        edges are cycle counts over an unchanged generator state, and
        the IMU edges are pure countdown decrements:

        * mid-``TRANSLATE`` with *r* edges to the access firing: the
          first ``r - 1`` are decrement-only;
        * a freshly issued, not yet detected request: the detection
          edge plus the countdown, up to the edge before the firing.

        It applies those edges' counter effects (``ticks``,
        ``translate_cycles``) now, leaves ``_remaining = 1`` so the
        access still **fires on a real edge** — lookups, port writes,
        faults and interrupts happen at their exact reference times —
        and returns the number of edges granted.  Anything else
        (pending CP_FIN / param release, a fault stall, zero-latency
        pipelined translation) returns 0: those edges must run for
        real.
        """
        ports = self.ports
        if ports.cp_fin.value and not self.sr.done:
            return 0
        if ports.cp_param_done.value and not self._param_handled:
            return 0
        state = self.state
        if state is ImuState.TRANSLATE:
            skip = self._remaining - 1
            if skip <= 0:
                return 0
            self.ticks += skip
            self.translate_cycles += skip
            self._remaining = 1
            return skip
        if state is ImuState.IDLE:
            if ports.cp_access.value and ports.cp_req.value != self._last_req:
                latency = self._translation_latency()
                if latency <= 0:
                    return 0
                # Perform the detection edge's state change now (AR
                # latch, CP_TLBHIT drop — invisible to the stalled
                # core), then collapse it plus the countdown.
                self._begin_translation()
                self.ticks += latency
                self.translate_cycles += latency - 1
                self._remaining = 1
                return latency
        return 0

    def tag(self, obj: int) -> int:
        """Widen a CP_OBJ value with the active ASID (CAM match tag).

        With the default ``asid == 0`` this is the identity, so every
        single-tenant call site sees exactly the historical keys.
        """
        return tag_obj(self.asid, obj)

    def _begin_translation(self) -> None:
        ports = self.ports
        self._last_req = ports.cp_req.value
        ports.cp_tlbhit.set(0)
        # AR latches the asid-tagged object id: the VIM services faults
        # against its global (per-tenant) object table.
        self.ar.capture(
            self.tag(ports.cp_obj.value),
            ports.cp_addr.value,
            bool(ports.cp_wr.value),
        )
        # Detection is one edge after the request; the access completes
        # access_cycles - 2 edges later so data lands on the
        # access_cycles-th edge overall (Figure 7).  The pipelined IMU
        # overlaps translation with the request path, leaving only the
        # synchroniser latency of dual-domain designs.
        latency = self._translation_latency()
        if latency <= 0:
            self.state = ImuState.TRANSLATE
            self.translate_cycles += 1
            self._fire()
        else:
            self.state = ImuState.TRANSLATE
            self._remaining = latency

    def _translation_latency(self) -> int:
        """IMU edges between request detection and the access firing."""
        translate = 0 if self.pipelined else self.access_cycles - 2
        return translate + self.sync_cycles

    def _fire(self) -> None:
        """Perform the TLB lookup and, on a hit, the DP-RAM access."""
        ports = self.ports
        obj = self.tag(ports.cp_obj.value)
        addr = ports.cp_addr.value
        vpage = addr >> self.dpram.page_bits
        offset = addr & (self.dpram.page_size - 1)
        entry = self.tlb.lookup(obj, vpage)
        if entry is None:
            self.state = ImuState.FAULT
            self.sr.set(StatusRegister.FAULT)
            self.faults += 1
            if self.cr.test(ControlRegister.INT_ENABLE):
                self.interrupts.raise_line(self.irq_line)
            return
        paddr = (entry.ppage << self.dpram.page_bits) | offset
        size = ports.cp_size.value
        if ports.cp_wr.value:
            self.dpram.pld_write(paddr, ports.cp_dout.value, size)
            entry.dirty = True
            self.writes += 1
        else:
            ports.cp_din.set(self.dpram.pld_read(paddr, size))
            self.reads += 1
        if self.trace_sink is not None and ports.cp_obj.value != PARAM_OBJECT:
            self.trace_sink.record(
                self.asid, bool(ports.cp_wr.value), ports.cp_obj.value,
                addr, size,
            )
        ports.cp_tlbhit.set(1)
        self.translations += 1
        self.state = ImuState.IDLE

    def _finish(self) -> None:
        self.sr.set(StatusRegister.DONE)
        self.sr.clear(StatusRegister.BUSY)
        if self.cr.test(ControlRegister.INT_ENABLE):
            self.interrupts.raise_line(self.irq_line)

    def _release_param_page(self) -> None:
        """Invalidate the parameter-passing page once consumed (§3.2)."""
        self._param_handled = True
        self.tlb.invalidate(self.tag(PARAM_OBJECT), 0)
        self.sr.set(StatusRegister.PARAM_RELEASED)

    # ------------------------------------------------------------------
    # Processor-side (MMIO) interface, used by the VIM
    # ------------------------------------------------------------------

    def start_coprocessor(self) -> None:
        """Assert CP_START and mark the IMU busy (FPGA_EXECUTE tail)."""
        self.sr.set(StatusRegister.BUSY)
        self.sr.clear(StatusRegister.DONE)
        self.ports.cp_start.set(1)

    def restart_translation(self) -> None:
        """Re-run the faulted translation after the VIM fixed the TLB.

        "the OS allows the IMU to restart the translation and lets the
        coprocessor exit from the stalled state" (§3.3).
        """
        if self.state is not ImuState.FAULT:
            raise HardwareError("restart_translation while not in fault state")
        self.sr.clear(StatusRegister.FAULT)
        self.interrupts.clear(self.irq_line)
        self.state = ImuState.TRANSLATE
        self._remaining = max(1, self._translation_latency())

    def acknowledge_done(self) -> None:
        """Clear the done status after end-of-operation service."""
        self.sr.clear(StatusRegister.DONE)
        self.interrupts.clear(self.irq_line)

    def reset(self, keep_tlb: bool = False) -> None:
        """Reset FSM and ports for a fresh execution.

        ``keep_tlb=True`` preserves the CAM contents: a shared
        multi-tenant interface resets the datapath between tenant turns
        while resident translations (tagged with their owners' ASIDs)
        stay live, which is what lets pages survive a tenant switch.
        The default flushes the TLB, matching single-tenant behaviour.
        """
        self.state = ImuState.IDLE
        self._remaining = 0
        self._param_handled = False
        if not keep_tlb:
            self.tlb.invalidate_all()
        self.sr.value = 0
        ports = self.ports
        ports.cp_start.set(0)
        ports.cp_tlbhit.set(0)
        ports.cp_fin.set(0)
        ports.cp_param_done.set(0)
        ports.cp_access.set(0)
        self._last_req = ports.cp_req.value

    def reset_stats(self) -> None:
        """Zero the per-execution counters."""
        self.translations = 0
        self.faults = 0
        self.reads = 0
        self.writes = 0
        self.fault_stall_cycles = 0
        self.translate_cycles = 0
        self.ticks = 0

    @property
    def stalled_on_fault(self) -> bool:
        """True while the coprocessor is stalled waiting for the VIM."""
        return self.state is ImuState.FAULT
