"""AMBA AHB bus cost model.

On the EPXA1 the processor reaches the dual-port RAM through an AMBA
Advanced High-performance Bus.  We do not model bus *protocol* (that is
exactly the wrapper problem the paper sets aside as well-studied); we
model bus *cost*: cycles per beat, burst amortisation, and arbitration
setup, so that OS page copies carry a realistic price.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BusError


@dataclass(frozen=True)
class AhbTiming:
    """Cycle costs of AHB transfers, in bus-clock cycles.

    ``setup_cycles`` is paid once per transaction (arbitration, address
    phase); ``cycles_per_beat`` once per 32-bit beat; bursts of
    ``burst_len`` beats pay the setup only once.
    """

    setup_cycles: int = 2
    cycles_per_beat: int = 1
    burst_len: int = 8

    def __post_init__(self) -> None:
        if self.setup_cycles < 0 or self.cycles_per_beat < 1 or self.burst_len < 1:
            raise BusError(f"invalid AHB timing {self}")


class AhbBus:
    """Cost accountant for CPU <-> DP-RAM transfers.

    The bus does not move data itself (the OS model performs the copies
    on the functional memories); it answers "how many bus cycles does a
    transfer of N bytes cost?" and keeps traffic statistics.
    """

    WORD_BYTES = 4

    def __init__(self, timing: AhbTiming | None = None) -> None:
        self.timing = timing or AhbTiming()
        self.bytes_transferred = 0
        self.transactions = 0
        #: Absolute time (ps) until which a burst-mode master (the DMA
        #: engine) holds the bus; CPU transfers stall until then.
        self.held_until_ps = 0
        self.contention_stalls = 0
        self.contention_ps = 0

    def transfer_cycles(self, nbytes: int) -> int:
        """Bus cycles to move *nbytes* (rounded up to whole words)."""
        if nbytes < 0:
            raise BusError(f"negative transfer size {nbytes}")
        if nbytes == 0:
            return 0
        words = (nbytes + self.WORD_BYTES - 1) // self.WORD_BYTES
        bursts = (words + self.timing.burst_len - 1) // self.timing.burst_len
        return bursts * self.timing.setup_cycles + words * self.timing.cycles_per_beat

    def record(self, nbytes: int) -> int:
        """Account a transfer and return its cost in bus cycles."""
        cycles = self.transfer_cycles(nbytes)
        self.bytes_transferred += nbytes
        self.transactions += 1
        return cycles

    def hold_until(self, time_ps: int) -> None:
        """Extend the bus hold: a DMA burst masters the AHB until then.

        Holds only ever grow — queueing another descriptor behind a
        draining burst extends the window, it never shortens it.
        """
        if time_ps > self.held_until_ps:
            self.held_until_ps = time_ps

    def grant_delay_ps(self, now_ps: int) -> int:
        """Arbitration stall a CPU transfer starting at *now_ps* pays."""
        return max(0, self.held_until_ps - now_ps)

    def note_contention(self, stall_ps: int) -> None:
        """Account one CPU transfer stalled behind a DMA burst."""
        if stall_ps > 0:
            self.contention_stalls += 1
            self.contention_ps += stall_ps

    def reset_stats(self) -> None:
        """Clear traffic statistics (the hold window is state, not a
        statistic, and survives)."""
        self.bytes_transferred = 0
        self.transactions = 0
        self.contention_stalls = 0
        self.contention_ps = 0
