"""PLD fabric model: resources, configuration, exclusive ownership.

``FPGA_LOAD`` "loads a coprocessor definition in the reconfigurable
hardware and ensures the exclusive use of the resource" (§3.1).  The
fabric model enforces both halves: a bitstream only configures if its
resource demand fits the device, and only one process may own the
fabric at a time.

Resource figures use the Excalibur family's vocabulary: logic elements
(LEs) and embedded system blocks (ESBs).  The paper notes that IDEA's
hardware parallelism "was limited by the limited PLD resources of the
device used" — the EPXA1 is the smallest member of the family.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FpgaError


@dataclass(frozen=True)
class PldResources:
    """Resource capacity or demand of a PLD fabric / bitstream."""

    logic_elements: int
    memory_bits: int

    def __post_init__(self) -> None:
        if self.logic_elements < 0 or self.memory_bits < 0:
            raise FpgaError(f"negative PLD resources: {self}")

    def fits_in(self, capacity: "PldResources") -> bool:
        """True if this demand fits inside *capacity*."""
        return (
            self.logic_elements <= capacity.logic_elements
            and self.memory_bits <= capacity.memory_bits
        )


#: Device capacities, from the Excalibur family datasheet ballpark.
EPXA1_RESOURCES = PldResources(logic_elements=4_160, memory_bits=53_248)
EPXA4_RESOURCES = PldResources(logic_elements=16_640, memory_bits=212_992)
EPXA10_RESOURCES = PldResources(logic_elements=38_400, memory_bits=327_680)


class PldFabric:
    """The reconfigurable lattice: configure, own, release.

    Configuration time is modelled as proportional to the bitstream
    length (bytes / ``config_bytes_per_us``); it is charged by the OS
    when servicing ``FPGA_LOAD`` and is visible in measurements as part
    of setup time (the paper excludes it from the reported kernels, and
    so do the benchmarks, but examples can report it).
    """

    def __init__(
        self,
        resources: PldResources = EPXA1_RESOURCES,
        config_bytes_per_us: int = 50,
    ) -> None:
        if config_bytes_per_us <= 0:
            raise FpgaError("config_bytes_per_us must be positive")
        self.resources = resources
        self.config_bytes_per_us = config_bytes_per_us
        self.configured_bitstream = None  # type: object | None
        self.owner_pid: int | None = None
        self.configurations = 0

    @property
    def is_configured(self) -> bool:
        """True once a bitstream has been configured."""
        return self.configured_bitstream is not None

    def configure(self, bitstream, owner_pid: int) -> int:
        """Configure *bitstream* for *owner_pid*.

        Returns the configuration time in microseconds.  Raises
        :class:`FpgaError` if the fabric is owned by another live
        process or the bitstream does not fit.
        """
        if self.owner_pid is not None and self.owner_pid != owner_pid:
            raise FpgaError(
                f"fabric owned by pid {self.owner_pid}, "
                f"pid {owner_pid} cannot configure"
            )
        demand: PldResources = bitstream.resources
        if not demand.fits_in(self.resources):
            raise FpgaError(
                f"bitstream {bitstream.name!r} needs {demand}, "
                f"device offers {self.resources}"
            )
        self.configured_bitstream = bitstream
        self.owner_pid = owner_pid
        self.configurations += 1
        return max(1, bitstream.length_bytes // self.config_bytes_per_us)

    def release(self, owner_pid: int) -> None:
        """Release fabric ownership (e.g. when the process exits)."""
        if self.owner_pid != owner_pid:
            raise FpgaError(
                f"pid {owner_pid} does not own the fabric "
                f"(owner is {self.owner_pid})"
            )
        self.owner_pid = None
        self.configured_bitstream = None
