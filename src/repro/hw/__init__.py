"""Platform hardware substrate: memories, bus, interrupts, PLD fabric."""

from repro.hw.bus import AhbBus, AhbTiming
from repro.hw.dma import INT_DMA_LINE, DmaDescriptor, DmaEngine
from repro.hw.dpram import DualPortRam
from repro.hw.fpga import (
    EPXA1_RESOURCES,
    EPXA4_RESOURCES,
    EPXA10_RESOURCES,
    PldFabric,
    PldResources,
)
from repro.hw.interrupts import InterruptController
from repro.hw.memory import Flash, Memory, Sdram

__all__ = [
    "AhbBus",
    "AhbTiming",
    "DmaDescriptor",
    "DmaEngine",
    "DualPortRam",
    "INT_DMA_LINE",
    "Flash",
    "InterruptController",
    "Memory",
    "PldFabric",
    "PldResources",
    "Sdram",
    "EPXA1_RESOURCES",
    "EPXA4_RESOURCES",
    "EPXA10_RESOURCES",
]
