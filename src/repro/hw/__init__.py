"""Platform hardware substrate: memories, bus, interrupts, PLD fabric."""

from repro.hw.bus import AhbBus, AhbTiming
from repro.hw.dpram import DualPortRam
from repro.hw.fpga import (
    EPXA1_RESOURCES,
    EPXA4_RESOURCES,
    EPXA10_RESOURCES,
    PldFabric,
    PldResources,
)
from repro.hw.interrupts import InterruptController
from repro.hw.memory import Flash, Memory, Sdram

__all__ = [
    "AhbBus",
    "AhbTiming",
    "DualPortRam",
    "Flash",
    "InterruptController",
    "Memory",
    "PldFabric",
    "PldResources",
    "Sdram",
    "EPXA1_RESOURCES",
    "EPXA4_RESOURCES",
    "EPXA10_RESOURCES",
]
