"""Interrupt controller.

The IMU requests OS service by raising ``INT_PLD`` (Figure 4).  The
controller models level-triggered lines with masking and a registry of
handlers, mirroring how the VIM kernel module hooks the PLD interrupt
on the real board.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import HardwareError

Handler = Callable[[int], None]


class InterruptController:
    """Level-triggered interrupt lines with per-line masking.

    Lines are raised by hardware models and *dispatched* by whoever owns
    the CPU control flow (the kernel model), which matches the paper's
    structure: the IMU raises ``INT_PLD``; Linux dispatches to the VIM.
    """

    def __init__(self, num_lines: int = 8) -> None:
        if num_lines < 1:
            raise HardwareError("interrupt controller needs at least one line")
        self.num_lines = num_lines
        self._pending = [False] * num_lines
        self._masked = [False] * num_lines
        self._handlers: dict[int, Handler] = {}
        self.raised_count = [0] * num_lines

    def _check(self, line: int) -> None:
        if not 0 <= line < self.num_lines:
            raise HardwareError(f"interrupt line {line} out of range")

    def register(self, line: int, handler: Handler) -> None:
        """Install *handler* for *line* (one handler per line)."""
        self._check(line)
        if line in self._handlers:
            raise HardwareError(f"interrupt line {line} already has a handler")
        self._handlers[line] = handler

    def unregister(self, line: int) -> None:
        """Remove the handler for *line*."""
        self._check(line)
        self._handlers.pop(line, None)

    def raise_line(self, line: int) -> None:
        """Assert an interrupt line (idempotent while pending)."""
        self._check(line)
        if not self._pending[line]:
            self._pending[line] = True
            self.raised_count[line] += 1

    def clear(self, line: int) -> None:
        """De-assert a line (done by the handler after servicing)."""
        self._check(line)
        self._pending[line] = False

    def mask(self, line: int) -> None:
        """Prevent a line from being dispatched."""
        self._check(line)
        self._masked[line] = True

    def unmask(self, line: int) -> None:
        """Allow a line to be dispatched again."""
        self._check(line)
        self._masked[line] = False

    def is_pending(self, line: int) -> bool:
        """True if *line* is asserted (whether or not masked)."""
        self._check(line)
        return self._pending[line]

    def pending_unmasked(self) -> list[int]:
        """Lines that are pending and unmasked, lowest number first."""
        return [
            line
            for line in range(self.num_lines)
            if self._pending[line] and not self._masked[line]
        ]

    def dispatch(self) -> int:
        """Run handlers for all pending unmasked lines.

        Returns the number of handler invocations.  A handler is
        expected to :meth:`clear` its line; if it does not, the line is
        considered still pending (level-triggered semantics) and will be
        dispatched again on the next call.
        """
        count = 0
        for line in self.pending_unmasked():
            handler = self._handlers.get(line)
            if handler is None:
                raise HardwareError(f"unhandled interrupt on line {line}")
            handler(line)
            count += 1
        return count
