"""Paged dual-port RAM — the physical interface memory of the paper.

On the EPXA1 the coprocessor and the ARM share a 16 KB on-chip
dual-port RAM, logically organised by the VIM into eight 2 KB pages.
One port faces the PLD (the coprocessor, through the IMU); the other
faces the processor across the AHB.

The model keeps real bytes, so data flows through the exact path of the
paper: user space → DP-RAM page → coprocessor → DP-RAM page → user
space.  Functional equivalence with pure software is therefore a real
end-to-end check, not an assumption.
"""

from __future__ import annotations

from repro.errors import MemoryAccessError
from repro.hw.memory import Memory


class DualPortRam(Memory):
    """Dual-port on-chip RAM divided into equal pages.

    Parameters
    ----------
    size:
        Total capacity in bytes (16 KB on the EPXA1).
    page_size:
        VIM page size in bytes (2 KB in the paper).  Must divide
        *size* exactly and be a power of two, so that page numbers can
        be extracted from addresses by shifting — the same constraint a
        hardware TLB imposes.
    """

    def __init__(self, size: int = 16 * 1024, page_size: int = 2 * 1024) -> None:
        if page_size <= 0 or size % page_size != 0:
            raise MemoryAccessError(
                f"page size {page_size} must divide DP-RAM size {size}"
            )
        if page_size & (page_size - 1):
            raise MemoryAccessError(f"page size {page_size} must be a power of two")
        super().__init__("dpram", size, read_latency=1, write_latency=1)
        self.page_size = page_size
        self.num_pages = size // page_size
        self.page_bits = page_size.bit_length() - 1
        # Per-port access counters (observability for benches/tests).
        self.pld_reads = 0
        self.pld_writes = 0
        self.cpu_reads = 0
        self.cpu_writes = 0

    def page_base(self, page: int) -> int:
        """Byte address of the first byte of physical page *page*."""
        if not 0 <= page < self.num_pages:
            raise MemoryAccessError(
                f"physical page {page} out of range [0, {self.num_pages})"
            )
        return page << self.page_bits

    def page_of(self, addr: int) -> int:
        """Physical page number containing byte address *addr*."""
        if not 0 <= addr < self.size:
            raise MemoryAccessError(f"address {addr} outside DP-RAM")
        return addr >> self.page_bits

    # -- PLD-side port (used by the IMU on behalf of the coprocessor) --

    def pld_read(self, addr: int, size: int = 4) -> int:
        """Word read on the PLD port."""
        self.pld_reads += 1
        return self.read_word(addr, size)

    def pld_write(self, addr: int, value: int, size: int = 4) -> None:
        """Word write on the PLD port."""
        self.pld_writes += 1
        self.write_word(addr, value, size)

    # -- CPU-side port (used by the OS across the AHB) --

    def cpu_read_page(self, page: int, length: int | None = None) -> bytes:
        """Read up to a full page on the CPU port."""
        length = self.page_size if length is None else length
        if length > self.page_size:
            raise MemoryAccessError(
                f"read of {length} bytes exceeds page size {self.page_size}"
            )
        self.cpu_reads += 1
        return self.read(self.page_base(page), length)

    def cpu_write_page(self, page: int, data: bytes, offset: int = 0) -> None:
        """Write into a page on the CPU port (offset + data within page)."""
        if offset + len(data) > self.page_size:
            raise MemoryAccessError(
                f"write of {len(data)} bytes at offset {offset} exceeds page "
                f"size {self.page_size}"
            )
        self.cpu_writes += 1
        self.write(self.page_base(page) + offset, data)

    def __repr__(self) -> str:
        return (
            f"DualPortRam(size={self.size}, page_size={self.page_size}, "
            f"pages={self.num_pages})"
        )
