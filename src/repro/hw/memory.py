"""Byte-addressable backing-store models (SDRAM, Flash).

These are functional models with latency parameters: data lives in a
numpy byte array, and each access reports how many cycles of its
clock domain the access costs.  The EPXA1 board of the paper carries
64 MB of SDRAM and 4 MB of Flash; the defaults mirror that.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MemoryAccessError


class Memory:
    """A flat byte-addressable memory with simple access-latency data.

    Parameters
    ----------
    name:
        Human-readable identifier used in error messages.
    size:
        Capacity in bytes.
    read_latency / write_latency:
        Cycles charged per word access by bus models; the memory itself
        is functional and does not advance time.
    """

    def __init__(
        self,
        name: str,
        size: int,
        read_latency: int = 1,
        write_latency: int = 1,
    ) -> None:
        if size <= 0:
            raise MemoryAccessError(f"memory {name!r}: size must be positive")
        self.name = name
        self.size = size
        self.read_latency = read_latency
        self.write_latency = write_latency
        self._data = np.zeros(size, dtype=np.uint8)
        self.reads = 0
        self.writes = 0

    def _check(self, addr: int, length: int) -> None:
        if addr < 0 or length < 0 or addr + length > self.size:
            raise MemoryAccessError(
                f"memory {self.name!r}: access [{addr}, {addr + length}) "
                f"outside size {self.size}"
            )

    def read(self, addr: int, length: int) -> bytes:
        """Read *length* bytes starting at *addr*."""
        self._check(addr, length)
        self.reads += 1
        return self._data[addr : addr + length].tobytes()

    def write(self, addr: int, data: bytes) -> None:
        """Write *data* starting at *addr*."""
        self._check(addr, len(data))
        self.writes += 1
        self._data[addr : addr + len(data)] = np.frombuffer(
            bytes(data), dtype=np.uint8
        )

    def read_word(self, addr: int, size: int = 4) -> int:
        """Read a little-endian word of 1, 2, or 4 bytes."""
        if size not in (1, 2, 4):
            raise MemoryAccessError(f"unsupported word size {size}")
        return int.from_bytes(self.read(addr, size), "little")

    def write_word(self, addr: int, value: int, size: int = 4) -> None:
        """Write a little-endian word of 1, 2, or 4 bytes."""
        if size not in (1, 2, 4):
            raise MemoryAccessError(f"unsupported word size {size}")
        self.write(addr, int(value).to_bytes(size, "little"))

    def fill(self, value: int = 0) -> None:
        """Set every byte of the memory to *value*."""
        self._data[:] = value

    def view(self) -> np.ndarray:
        """Raw numpy view of the memory contents (shared, mutable)."""
        return self._data

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, size={self.size})"


class Sdram(Memory):
    """Off-chip SDRAM: cheap capacity, multi-cycle access."""

    def __init__(self, size: int = 64 * 1024 * 1024) -> None:
        super().__init__("sdram", size, read_latency=6, write_latency=6)


class Flash(Memory):
    """Flash memory holding coprocessor configuration bit-streams.

    Writes model programming latency; in the experiments Flash is only
    read (by ``FPGA_LOAD``) so the write latency rarely matters.
    """

    def __init__(self, size: int = 4 * 1024 * 1024) -> None:
        super().__init__("flash", size, read_latency=10, write_latency=500)
