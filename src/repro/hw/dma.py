"""Modelled DMA transfer engine for CPU-free page movement.

§4.1 blames "the significant overhead in the dual-port RAM management"
on the VIM's two CPU copies per page movement and announces that the
limitation is being removed.  The end point of that road is not one CPU
copy but none: a DMA controller on the AHB that moves a page between
user-space memory and the dual-port RAM by itself, leaving the ARM only
descriptor programming and a completion interrupt to service.

The model keeps the repository's simulation convention: **bytes are
state, cycles are cost**.  A submitted descriptor performs its
functional byte movement immediately (so functional equivalence checks
see exactly the same data flow as the CPU-copy modes), while its *time*
is modelled asynchronously — the transfer occupies the AHB for
``AhbBus.transfer_cycles`` bus cycles, descriptors queue FIFO behind
each other, and the engine raises ``INT_DMA`` when a queue containing
an interrupt-requesting descriptor drains.

While a burst is draining the DMA is the AHB master: the bus is held
(:meth:`AhbBus.hold_until`) and any CPU copy issued in that window pays
an arbitration stall before it is granted — the contention the
OS-side transfer engines charge explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import HardwareError
from repro.hw.bus import AhbBus
from repro.hw.interrupts import InterruptController
from repro.sim.engine import Engine
from repro.sim.time import Frequency

#: Interrupt line of the DMA controller (INT_PLD is line 0).
INT_DMA_LINE = 1


@dataclass
class DmaDescriptor:
    """One queued page movement.

    Parameters
    ----------
    nbytes:
        Transfer length in bytes (positive).
    move:
        The functional byte movement, executed at submit time.
    kind:
        Why the VIM queued it (``load`` / ``writeback`` / ``prefetch``
        / ``flush`` / ``preload``); statistics only.
    irq:
        Request the completion interrupt when the queue this descriptor
        belongs to drains.
    """

    nbytes: int
    move: Callable[[], None]
    kind: str = "load"
    irq: bool = False
    #: Filled in by the engine at submit time (absolute picoseconds).
    start_ps: int = 0
    complete_ps: int = 0
    done: bool = False


class DmaEngine:
    """A FIFO descriptor queue moving pages across the AHB.

    Parameters
    ----------
    engine:
        The discrete-event engine completions are scheduled on.
    bus:
        The AHB the transfers occupy; provides per-transfer cycle costs
        and carries the hold window CPU copies stall on.
    interrupts:
        Controller carrying ``INT_DMA``.
    frequency:
        The AHB clock the bus-cycle costs are converted with.
    """

    def __init__(
        self,
        engine: Engine,
        bus: AhbBus,
        interrupts: InterruptController,
        frequency: Frequency,
        irq_line: int = INT_DMA_LINE,
    ) -> None:
        self.engine = engine
        self.bus = bus
        self.interrupts = interrupts
        self.frequency = frequency
        self.irq_line = irq_line
        self._busy_until = 0
        self._queue: list[DmaDescriptor] = []
        self._irq_armed = False
        # Statistics (per-System lifetime; benches and tests read them).
        self.descriptors_submitted = 0
        self.descriptors_completed = 0
        self.bytes_moved = 0
        self.bursts = 0
        self.completion_irqs = 0

    @property
    def busy(self) -> bool:
        """True while descriptors are draining."""
        return self.engine.now < self._busy_until or bool(self._queue)

    @property
    def in_flight(self) -> int:
        """Descriptors submitted but not yet completed."""
        return len(self._queue)

    def wait_ps(self) -> int:
        """Picoseconds until the current queue drains (0 when idle)."""
        return max(0, self._busy_until - self.engine.now)

    def quiesce(self) -> None:
        """Disarm the completion interrupt (driver teardown).

        In-flight descriptors still drain — their bytes already moved
        and the bus hold stands — but no interrupt will fire into a
        handler that is no longer registered.
        """
        self._irq_armed = False

    def submit(self, descriptor: DmaDescriptor) -> DmaDescriptor:
        """Queue one transfer; returns the descriptor with times filled.

        The byte movement happens now (bytes are state); the bus time
        is scheduled behind every earlier descriptor, the AHB is held
        until the queue drains, and a completion event fires at the
        descriptor's ``complete_ps``.
        """
        if descriptor.nbytes <= 0:
            raise HardwareError(
                f"DMA descriptor of {descriptor.nbytes} bytes"
            )
        descriptor.move()
        if not self.busy:
            self.bursts += 1
        duration_ps = self.frequency.cycles_to_ps(
            self.bus.transfer_cycles(descriptor.nbytes)
        )
        descriptor.start_ps = max(self.engine.now, self._busy_until)
        descriptor.complete_ps = descriptor.start_ps + duration_ps
        self._busy_until = descriptor.complete_ps
        self.bus.hold_until(self._busy_until)
        self.bus.record(descriptor.nbytes)
        self._queue.append(descriptor)
        if descriptor.irq:
            self._irq_armed = True
        self.descriptors_submitted += 1
        self.bytes_moved += descriptor.nbytes
        self.engine.schedule_at(
            descriptor.complete_ps, lambda: self._complete(descriptor)
        )
        return descriptor

    def _complete(self, descriptor: DmaDescriptor) -> None:
        descriptor.done = True
        self._queue.remove(descriptor)
        self.descriptors_completed += 1
        if not self._queue and self._irq_armed:
            # One coalesced queue-drained interrupt per burst, not one
            # per descriptor — matching how real controllers bound the
            # completion-IRQ rate for chained descriptor lists.
            self._irq_armed = False
            self.completion_irqs += 1
            self.interrupts.raise_line(self.irq_line)
