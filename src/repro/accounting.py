"""CPU-time accounting buckets and per-tenant statistics.

The paper decomposes VIM-based execution time into hardware time plus
two software components (§4.1): dual-port-RAM management and IMU
management.  Every modelled CPU charge in the library is tagged with
one of these buckets (plus ``SW_OTHER`` for OS plumbing and ``SW_APP``
for pure-software compute), so the paper's decomposition falls out of
the measurements instead of being reconstructed afterwards.

Multi-tenant runs (several coprocessor sessions contending for one
DP-RAM, see :mod:`repro.core.tenancy`) additionally need the same
decomposition *per tenant*: who faulted, who evicted whom, and who
lost resident pages to a neighbour.  :class:`TenantStats` is that
record.

This lives in its own module because the hardware-facing measurement
layer, the OS cost model, and the tenancy layer all need it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Bucket(Enum):
    """Accounting buckets for modelled CPU time."""

    #: Dual-port RAM management: user-space <-> DP-RAM copies.
    SW_DP = "sw_dp"
    #: IMU management: fault decode, AR/SR/CR traffic, TLB updates.
    SW_IMU = "sw_imu"
    #: Everything else the OS does: syscalls, IRQ entry, wakeups.
    SW_OTHER = "sw_other"
    #: Application-level software compute (the pure-SW version).
    SW_APP = "sw_app"


@dataclass
class TenantStats:
    """Per-tenant fault/eviction/steal accounting of a contended run.

    One record per tenant process of a multi-tenant execution.  The
    eviction numbers distinguish the two sides of contention:
    ``steals`` counts evictions *this* tenant performed on pages owned
    by another tenant, while ``pages_lost`` counts this tenant's own
    resident pages that a neighbour evicted.  In a solo run both are
    zero and ``evictions`` degenerates to the classic single-process
    count.
    """

    asid: int
    name: str
    #: FPGA_EXECUTE calls completed by this tenant.
    executions: int = 0
    #: Times the scheduler dispatched this tenant's process.
    dispatches: int = 0
    #: Page faults serviced while this tenant was executing.
    page_faults: int = 0
    #: Evictions this tenant's faults triggered (any victim).
    evictions: int = 0
    #: Evictions of *another* tenant's page, performed by this tenant.
    steals: int = 0
    #: This tenant's resident pages evicted by other tenants.
    pages_lost: int = 0
    #: Dirty-page copies back to this tenant's user space.
    writebacks: int = 0
    #: Fabric reconfigurations paid when this tenant took the PLD over.
    reconfigurations: int = 0
    #: Modelled end-to-end CPU+HW time charged to this tenant (ms).
    total_ms: float = 0.0
