"""CPU-time accounting buckets.

The paper decomposes VIM-based execution time into hardware time plus
two software components (§4.1): dual-port-RAM management and IMU
management.  Every modelled CPU charge in the library is tagged with
one of these buckets (plus ``SW_OTHER`` for OS plumbing and ``SW_APP``
for pure-software compute), so the paper's decomposition falls out of
the measurements instead of being reconstructed afterwards.

This lives in its own module because both the hardware-facing
measurement layer and the OS cost model need it.
"""

from __future__ import annotations

from enum import Enum


class Bucket(Enum):
    """Accounting buckets for modelled CPU time."""

    #: Dual-port RAM management: user-space <-> DP-RAM copies.
    SW_DP = "sw_dp"
    #: IMU management: fault decode, AR/SR/CR traffic, TLB updates.
    SW_IMU = "sw_imu"
    #: Everything else the OS does: syscalls, IRQ entry, wakeups.
    SW_OTHER = "sw_other"
    #: Application-level software compute (the pure-SW version).
    SW_APP = "sw_app"
