"""The result-store layer: every durable row lives behind one protocol.

Historically the sweep cache *was* a directory of JSON files, and every
consumer (the merger, the differ, the report renderer) walked that
directory itself.  This module inverts that: :class:`ResultStore` is
the one contract — put/get by config hash, classified streaming
iteration in canonical order, loadable-row counts, run metadata — and
the consumers above it never touch files.  Two implementations exist:

* :class:`JsonDirStore` — the per-cell JSON directory, now a thin
  adapter over :mod:`repro.exp.cache`.  It stays the migration reader
  and writer: its files are byte-identical to what
  :meth:`~repro.exp.cache.SweepCache.store` always wrote, so a store
  migrated to SQLite and back reproduces the original directory
  exactly.
* :class:`SqliteStore` — an append-only SQLite database, one row per
  ``(key, version)`` with the full payload, flattened metric columns
  for analytics, and an insertion timestamp / run id.  WAL journaling
  keeps concurrent shard writers safe, and reads stream straight off
  indexed cursors, so a 10k-cell report never materialises 10k rows.

Store selection is by path inspection (:func:`open_store`): a
directory is a JSON store, a ``.sqlite`` file (or anything carrying
the SQLite magic) is a SQLite store.  ``repro migrate SRC DEST``
copies any store into any other through the merge machinery.

Run identity (``run_id``, timestamps) deliberately lives *next to* the
payload, never inside it: :func:`~repro.exp.spec.config_hash` covers
what was computed, not when, so re-running an identical cell is a
no-op append-wise and reports stay byte-identical across backends and
migrations.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass, replace
from datetime import datetime, timezone
from pathlib import Path

from repro.errors import ReproError
from repro.exp.cache import SweepCache, iter_classified, parse_entry
from repro.exp.results import CellResult
from repro.exp.spec import CACHE_VERSION, CellConfig

#: Store kinds :func:`open_store` understands (the CLI spells this
#: ``--store {json,sqlite}``).
STORES = ("json", "sqlite")

#: File suffixes that select the SQLite backend for a not-yet-existing
#: destination path.
_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")

#: The on-disk magic every SQLite database file starts with.
_SQLITE_MAGIC = b"SQLite format 3\x00"


@dataclass(frozen=True)
class StoreCounts:
    """Classified entry counts of one store (latest versions only)."""

    ok: int  #: loadable current-version rows
    stale: int  #: rows written under a different CACHE_VERSION
    invalid: int  #: corrupt / renamed / unparsable entries

    @property
    def skipped(self) -> int:
        """Rows a report or diff must leave out (stale + invalid)."""
        return self.stale + self.invalid

    @property
    def total(self) -> int:
        return self.ok + self.stale + self.invalid


@dataclass(frozen=True)
class RunRecord:
    """One recorded write session of a SQLite store."""

    run_id: int  #: monotonically increasing per store
    created: str  #: UTC timestamp of the run's first write
    rows: int  #: result versions appended by the run


class ResultStore:
    """The store contract everything above the store layer codes to.

    Notes
    -----
    Iteration methods are **streaming**: they yield one row at a time
    in a canonical order and never materialise the whole store, which
    is what lets merge/diff/report run out-of-core.  ``len(store)``
    counts only loadable current-version rows — a stale or corrupt
    entry is not an entry (the historical ``SweepCache.__len__``
    counted every ``*.json`` file; the protocol inherits the corrected
    semantics).
    """

    #: One of :data:`STORES`; set by each implementation.
    kind: str = ""

    def __init__(self, location: str) -> None:
        self.location = location

    # -- write/read by config -----------------------------------------

    def put(self, result: CellResult) -> None:
        """Persist one executed cell under its config hash."""
        raise NotImplementedError

    def get(self, config: CellConfig) -> CellResult | None:
        """The stored row for *config*, or ``None`` on any miss.

        Matching is modulo the ``engine`` field, exactly like
        :meth:`~repro.exp.cache.SweepCache.load`: backends are
        result-equivalent, so a row priced by either serves both.
        """
        raise NotImplementedError

    # -- streaming iteration ------------------------------------------

    def iter_classified(self):
        """Yield ``(origin, status, CellResult | None)`` in key order.

        *status* is one of :data:`~repro.exp.cache.ENTRY_STATUSES`;
        the result is non-``None`` only for ``"ok"``.  *origin* names
        the entry for conflict/skip messages.
        """
        raise NotImplementedError

    def iter_rows(self):
        """Yield every loadable row, sorted by config hash."""
        for _origin, status, result in self.iter_classified():
            if status == "ok":
                yield result

    def iter_report_rows(self):
        """Yield every loadable row in report order: ``(label, key)``.

        The canonical rendering order of :mod:`repro.exp.report`; the
        base implementation re-sorts the key-ordered stream via a
        small ``(label, key)`` index, holding at most one full row at
        a time.  Backends with a native sorted cursor override this.
        """
        raise NotImplementedError

    # -- metadata ------------------------------------------------------

    def counts(self) -> StoreCounts:
        """Classified entry counts (one streaming pass)."""
        ok = stale = invalid = 0
        for _origin, status, _result in self.iter_classified():
            if status == "ok":
                ok += 1
            elif status == "stale-version":
                stale += 1
            else:
                invalid += 1
        return StoreCounts(ok=ok, stale=stale, invalid=invalid)

    def any_replicated(self) -> bool:
        """Whether any loadable row was swept with ``--replicates``>1
        (selects the widened default report column set)."""
        return any(row.config.replicates > 1 for row in self.iter_rows())

    def runs(self) -> tuple[RunRecord, ...]:
        """Recorded write sessions, oldest first.

        Only the SQLite backend records run history; the JSON
        directory returns an empty tuple (files carry no insertion
        metadata — one reason the CI baselines moved to SQLite).
        """
        return ()

    def iter_versions(self):
        """Yield every stored version for trend analytics.

        ``(key, label, version, run_id, CellResult | None)`` ordered
        by ``(label, key, version)``.  Raises on backends that keep no
        version history.
        """
        raise ReproError(
            f"{self.kind} store {self.location} records no run history; "
            "migrate it to SQLite first: repro migrate "
            f"{self.location} {self.location}.sqlite"
        )

    def __len__(self) -> int:
        return self.counts().ok

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Release any underlying handle (idempotent)."""

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class JsonDirStore(ResultStore):
    """The per-cell JSON directory as a :class:`ResultStore`.

    A thin adapter over :class:`~repro.exp.cache.SweepCache` and
    :func:`~repro.exp.cache.iter_classified` — same files, same bytes,
    same gatekeeper.  The directory is created lazily on first
    :meth:`put` (or eagerly with ``create=True``) so read-only opens
    of a merge destination leave the filesystem untouched.
    """

    kind = "json"

    def __init__(self, root: str | Path, create: bool = False) -> None:
        super().__init__(str(root))
        self.root = Path(root)
        self._cache: SweepCache | None = None
        if create:
            self._sweep_cache()

    def _sweep_cache(self) -> SweepCache:
        if self._cache is None:
            self._cache = SweepCache(self.root)
        return self._cache

    def put(self, result: CellResult) -> None:
        self._sweep_cache().store(result)

    def get(self, config: CellConfig) -> CellResult | None:
        if not self.root.is_dir():
            return None
        return self._sweep_cache().load(config)

    def iter_classified(self):
        for path, status, result in iter_classified(self.root):
            yield str(path), status, result

    def iter_report_rows(self):
        # Pass 1 builds a (label, key, path) index — strings only, no
        # row objects retained; pass 2 re-parses each file on demand,
        # so at most one CellResult is alive at a time.
        index: list[tuple[str, str, Path]] = []
        for path, status, result in iter_classified(self.root):
            if status == "ok":
                index.append((result.label, result.key, path))
        index.sort(key=lambda item: item[:2])
        for _label, _key, path in index:
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue  # deleted or corrupted between the passes
            result = parse_entry(payload)
            if result is not None:
                yield result


class SqliteStore(ResultStore):
    """An append-only SQLite result store.

    One row per ``(config hash, version)``: the verified JSON payload
    (the exact bytes the JSON store would parse), flattened metric
    columns for SQL analytics, the writing run's id and a UTC
    timestamp.  A re-put of a byte-identical payload is a no-op; a
    *different* payload for a known key appends the next version —
    nothing is ever overwritten, which is what makes ``repro history``
    possible.  Reads serve the latest version per key.

    WAL journaling is enabled at creation so concurrent shard writers
    (and a reader rendering a report mid-sweep) do not block each
    other.
    """

    kind = "sqlite"

    #: Result columns flattened into SQL columns (analytics can GROUP
    #: BY / aggregate without parsing payloads).  The payload stays the
    #: source of truth for reads.
    METRIC_COLUMNS = (
        "sw_ms", "vim_ms", "hw_ms", "sw_dp_ms", "sw_imu_ms",
        "vim_speedup", "page_faults", "tlb_hit_rate",
    )

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS store_meta (
        key TEXT PRIMARY KEY,
        value TEXT NOT NULL
    );
    CREATE TABLE IF NOT EXISTS runs (
        run_id INTEGER PRIMARY KEY AUTOINCREMENT,
        created_utc TEXT NOT NULL,
        rows INTEGER NOT NULL DEFAULT 0
    );
    CREATE TABLE IF NOT EXISTS results (
        key TEXT NOT NULL,
        version INTEGER NOT NULL,
        cache_version INTEGER NOT NULL,
        run_id INTEGER NOT NULL,
        created_utc TEXT NOT NULL,
        label TEXT NOT NULL,
        replicates INTEGER NOT NULL,
        payload TEXT NOT NULL,
        sw_ms REAL, vim_ms REAL, hw_ms REAL, sw_dp_ms REAL,
        sw_imu_ms REAL, vim_speedup REAL, page_faults INTEGER,
        tlb_hit_rate REAL,
        PRIMARY KEY (key, version)
    );
    CREATE INDEX IF NOT EXISTS results_label_key ON results (label, key);
    """

    #: Latest version per key — the read view every query builds on.
    _LATEST = (
        "FROM results AS r WHERE version = "
        "(SELECT MAX(version) FROM results WHERE key = r.key)"
    )

    def __init__(
        self,
        path: str | Path,
        create: bool = False,
        threadsafe: bool = False,
    ) -> None:
        super().__init__(str(path))
        self.path = Path(path)
        if not create and not self.path.exists():
            raise ReproError(f"result store {self.path} does not exist")
        try:
            # threadsafe drops sqlite3's same-thread check for callers
            # that serialise access themselves (the sweep service holds
            # one lock around every store operation but handles HTTP
            # requests on per-connection threads).
            self._db = sqlite3.connect(
                self.path,
                isolation_level=None,
                check_same_thread=not threadsafe,
            )
            self._db.execute("PRAGMA journal_mode=WAL")
            self._db.execute("PRAGMA busy_timeout=30000")
            self._db.execute("PRAGMA synchronous=NORMAL")
            self._db.executescript(self._SCHEMA)
            self._db.execute(
                "INSERT OR IGNORE INTO store_meta (key, value) VALUES "
                "('schema', '1')"
            )
        except sqlite3.Error as error:
            raise ReproError(f"cannot open SQLite store {self.path}: {error}")
        self._run_id: int | None = None  # one run row per writing open

    @staticmethod
    def _now() -> str:
        return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")

    def _current_run(self) -> int:
        if self._run_id is None:
            cursor = self._db.execute(
                "INSERT INTO runs (created_utc) VALUES (?)", (self._now(),)
            )
            self._run_id = cursor.lastrowid
        return self._run_id

    def put(self, result: CellResult) -> None:
        payload = json.dumps(
            {"version": CACHE_VERSION, "result": result.to_dict()},
            sort_keys=True,
        )
        key = result.key
        row = self._db.execute(
            "SELECT cache_version, payload FROM results WHERE key = ? "
            "ORDER BY version DESC LIMIT 1",
            (key,),
        ).fetchone()
        if row is not None and row[0] == CACHE_VERSION and row[1] == payload:
            return  # identical re-put (cache hit re-store, re-merge)
        run_id = self._current_run()
        metrics = tuple(
            getattr(result, column) for column in self.METRIC_COLUMNS
        )
        try:
            self._db.execute(
                "INSERT INTO results (key, version, cache_version, run_id, "
                "created_utc, label, replicates, payload, "
                + ", ".join(self.METRIC_COLUMNS)
                + ") SELECT ?, COALESCE((SELECT MAX(version) FROM results "
                "WHERE key = ?), 0) + 1, ?, ?, ?, ?, ?, ?"
                + ", ?" * len(self.METRIC_COLUMNS),
                (key, key, CACHE_VERSION, run_id, self._now(), result.label,
                 result.config.replicates, payload) + metrics,
            )
        except sqlite3.Error as error:
            raise ReproError(f"cannot write to store {self.path}: {error}")
        self._db.execute(
            "UPDATE runs SET rows = rows + 1 WHERE run_id = ?", (run_id,)
        )

    def _parse(self, key: str, payload: str) -> CellResult | None:
        try:
            decoded = json.loads(payload)
        except ValueError:
            return None
        result = parse_entry(decoded)
        if result is not None and result.key != key:
            return None  # re-keyed row: skipped, never served under key
        return result

    def get(self, config: CellConfig) -> CellResult | None:
        row = self._db.execute(
            "SELECT payload FROM results WHERE key = ? "
            "ORDER BY version DESC LIMIT 1",
            (config.key(),),
        ).fetchone()
        if row is None:
            return None
        result = self._parse(config.key(), row[0])
        if result is None:
            return None
        if replace(result.config, engine=config.engine) != config:
            return None  # same engine-modulo contract as SweepCache.load
        return result

    def _classify(self, key, cache_version, payload):
        if cache_version != CACHE_VERSION:
            return "stale-version", None
        result = self._parse(key, payload)
        if result is None:
            return "invalid", None
        return "ok", result

    def iter_classified(self):
        cursor = self._db.execute(
            f"SELECT key, cache_version, payload {self._LATEST} ORDER BY key"
        )
        for key, cache_version, payload in cursor:
            status, result = self._classify(key, cache_version, payload)
            yield f"{self.location}[{key}]", status, result

    def iter_report_rows(self):
        cursor = self._db.execute(
            f"SELECT key, cache_version, payload {self._LATEST} "
            "ORDER BY label, key"
        )
        for key, cache_version, payload in cursor:
            status, result = self._classify(key, cache_version, payload)
            if status == "ok":
                yield result

    def counts(self) -> StoreCounts:
        ok = stale = invalid = 0
        cursor = self._db.execute(
            f"SELECT key, cache_version, payload {self._LATEST}"
        )
        for key, cache_version, payload in cursor:
            status, _result = self._classify(key, cache_version, payload)
            if status == "ok":
                ok += 1
            elif status == "stale-version":
                stale += 1
            else:
                invalid += 1
        return StoreCounts(ok=ok, stale=stale, invalid=invalid)

    def any_replicated(self) -> bool:
        row = self._db.execute(
            f"SELECT 1 {self._LATEST} AND cache_version = ? "
            "AND replicates > 1 LIMIT 1",
            (CACHE_VERSION,),
        ).fetchone()
        return row is not None

    def runs(self) -> tuple[RunRecord, ...]:
        cursor = self._db.execute(
            "SELECT run_id, created_utc, rows FROM runs ORDER BY run_id"
        )
        return tuple(
            RunRecord(run_id=run_id, created=created, rows=rows)
            for run_id, created, rows in cursor
        )

    def iter_versions(self):
        cursor = self._db.execute(
            "SELECT key, label, version, run_id, cache_version, payload "
            "FROM results ORDER BY label, key, version"
        )
        for key, label, version, run_id, cache_version, payload in cursor:
            result = None
            if cache_version == CACHE_VERSION:
                result = self._parse(key, payload)
            yield key, label, version, run_id, result

    def close(self) -> None:
        if self._db is not None:
            self._db.close()
            self._db = None


def is_sqlite_file(path: str | Path) -> bool:
    """Whether an existing *path* is a SQLite store file.

    Sniffs the on-disk magic first (works for any filename), falling
    back to the suffix for empty just-created files.
    """
    path = Path(path)
    if not path.is_file():
        return False
    try:
        with path.open("rb") as handle:
            if handle.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC:
                return True
    except OSError:
        return False
    return path.stat().st_size == 0 and path.suffix in _SQLITE_SUFFIXES


def store_kind_of(path: str | Path) -> str | None:
    """The store kind *path* denotes, or ``None`` if it is neither.

    An existing directory is ``json``; an existing SQLite file is
    ``sqlite``; a missing path infers from its suffix (``.sqlite`` /
    ``.sqlite3`` / ``.db`` → sqlite, anything else → json).  An
    existing non-SQLite *file* returns ``None`` — that is a ``--json``
    row dump or garbage, not a store.
    """
    path = Path(path)
    if path.is_dir():
        return "json"
    if path.is_file():
        return "sqlite" if is_sqlite_file(path) else None
    return "sqlite" if path.suffix in _SQLITE_SUFFIXES else "json"


def open_store(
    path: str | Path,
    kind: str | None = None,
    create: bool = False,
    threadsafe: bool = False,
) -> ResultStore:
    """Open the result store at *path*, selecting the backend by
    inspection.

    Parameters
    ----------
    path : str or Path
        A cache directory (JSON store) or a SQLite database file.
    kind : str, optional
        Force a backend from :data:`STORES` instead of inferring it —
        used by ``repro sweep --store`` and ``repro migrate --store``
        for not-yet-existing destinations.  Contradicting an existing
        path is an error, never a reinterpretation.
    create : bool
        Allow *path* not to exist yet: a JSON store creates its
        directory lazily on first put, a SQLite store initialises its
        schema immediately.  With the default ``False`` a missing path
        raises — readers must not conjure empty stores.
    threadsafe : bool
        Allow the returned store to be used from threads other than
        the opening one, for callers that serialise access themselves
        (the sweep service).  Only the SQLite backend behaves
        differently (sqlite3's same-thread check is dropped).

    Raises
    ------
    ReproError
        On an unknown *kind*, a contradiction between *kind* and what
        exists at *path*, a missing path without *create*, or an
        existing file that is not a SQLite database.
    """
    path = Path(path)
    if kind is not None and kind not in STORES:
        raise ReproError(f"unknown store kind {kind!r}; choices: {STORES}")
    inferred = store_kind_of(path)
    if path.exists():
        if inferred is None:
            raise ReproError(
                f"{path} is not a result store (expected a cache directory "
                "or a SQLite .sqlite file)"
            )
        if kind is not None and kind != inferred:
            raise ReproError(
                f"{path} is a {inferred} store, but --store {kind} was "
                "requested; pass a matching path or drop the flag"
            )
        kind = inferred
    else:
        if not create:
            raise ReproError(f"result store {path} does not exist")
        kind = kind or inferred
    if kind == "sqlite":
        return SqliteStore(
            path, create=create or path.exists(), threadsafe=threadsafe
        )
    return JsonDirStore(path, create=create and not path.is_dir())
