"""Sweep specifications: cells, grids, and stable config hashes.

A :class:`CellConfig` is one point of the design space, expressed
entirely in primitives (strings, ints, bools) so it can cross a
``multiprocessing`` boundary, be hashed into a cache key, and be
round-tripped through JSON without loss.  A :class:`SweepSpec` is the
declarative product of axis values that expands to the run grid.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, fields

from repro.errors import ReproError

#: Bump when CellResult semantics change, so stale caches miss.
CACHE_VERSION = 1

#: Applications the cell runner knows how to build (see exp.cell).
APPS = ("adpcm", "idea", "idea-dec", "vadd", "adpcm-enc")

#: Transfer-mode axis values (maps onto os.vim.manager.TransferMode).
TRANSFERS = ("double", "single")

#: Prefetch axis values (maps onto os.vim.prefetch builders).
PREFETCHES = ("none", "sequential", "aggressive", "overlapped")


@dataclass(frozen=True)
class CellConfig:
    """One fully-specified simulation: workload x platform x VIM knobs.

    ``page_bytes`` / ``dpram_bytes`` of ``None`` mean "the SoC preset's
    value"; ``tlb_capacity`` of ``None`` means one entry per DP-RAM
    page (the prototype's organisation).
    """

    app: str = "adpcm"
    input_bytes: int = 8 * 1024
    seed: int = 1
    soc: str = "EPXA1"
    page_bytes: int | None = None
    dpram_bytes: int | None = None
    policy: str = "fifo"
    transfer: str = "double"
    prefetch: str = "none"
    prefetch_depth: int = 1
    tlb_capacity: int | None = None
    pipelined_imu: bool = False
    access_cycles: int = 4
    with_typical: bool = False

    def __post_init__(self) -> None:
        if self.app not in APPS:
            raise ReproError(f"unknown app {self.app!r}; choices: {APPS}")
        if self.transfer not in TRANSFERS:
            raise ReproError(
                f"unknown transfer mode {self.transfer!r}; choices: {TRANSFERS}"
            )
        if self.prefetch not in PREFETCHES:
            raise ReproError(
                f"unknown prefetch {self.prefetch!r}; choices: {PREFETCHES}"
            )
        if self.input_bytes <= 0:
            raise ReproError(f"input size must be positive, got {self.input_bytes}")
        if self.page_bytes is not None and self.page_bytes < 1:
            raise ReproError(f"page size must be >= 1, got {self.page_bytes}")
        if self.dpram_bytes is not None and self.dpram_bytes < 1:
            raise ReproError(f"DP-RAM size must be >= 1, got {self.dpram_bytes}")
        if self.tlb_capacity is not None and self.tlb_capacity < 1:
            # 0 would read as "preset default" downstream (Imu treats a
            # falsy capacity as one-entry-per-frame) — reject instead of
            # mislabelling a full-TLB run.
            raise ReproError(
                f"TLB capacity must be >= 1, got {self.tlb_capacity}"
            )
        if self.prefetch_depth < 1:
            raise ReproError(
                f"prefetch depth must be >= 1, got {self.prefetch_depth}"
            )

    def to_dict(self) -> dict:
        """JSON-friendly dump (field order fixed by the dataclass)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CellConfig":
        names = {f.name for f in fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ReproError(f"unknown cell config fields: {sorted(unknown)}")
        return cls(**data)

    def key(self) -> str:
        """Stable hash identifying this configuration (cache key)."""
        return config_hash(self)

    def label(self) -> str:
        """Compact human label: workload plus every non-default axis."""
        parts = [f"{self.app}-{_size_label(self.input_bytes)}"]
        default = CellConfig(app=self.app, input_bytes=self.input_bytes)
        for name, text in (
            ("soc", self.soc),
            ("page_bytes", f"page{self.page_bytes}"),
            ("dpram_bytes", f"dpram{self.dpram_bytes}"),
            ("policy", self.policy),
            ("transfer", self.transfer),
            ("prefetch", self.prefetch),
            ("tlb_capacity", f"tlb{self.tlb_capacity}"),
            ("pipelined_imu", "pipelined"),
            ("access_cycles", f"ac{self.access_cycles}"),
        ):
            if getattr(self, name) != getattr(default, name):
                parts.append(text)
        return "/".join(parts)


def _size_label(nbytes: int) -> str:
    if nbytes % 1024 == 0:
        return f"{nbytes // 1024}KB"
    return f"{nbytes}B"


def config_hash(config: CellConfig) -> str:
    """A deterministic 16-hex-digit digest of *config*.

    The digest covers every field plus :data:`CACHE_VERSION`, so any
    change to either the configuration or the result schema produces a
    clean cache miss rather than a stale read.
    """
    payload = {"version": CACHE_VERSION, "config": config.to_dict()}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class SweepSpec:
    """A declarative run grid: the cartesian product of axis values.

    Axis order in :meth:`expand` is fixed (apps outermost, access
    cycles innermost), so the same spec always yields the same cell
    sequence — the property that makes ``--jobs N`` output byte-
    identical to serial execution.
    """

    apps: tuple[str, ...] = ("adpcm",)
    input_bytes: tuple[int, ...] = (8 * 1024,)
    seeds: tuple[int, ...] = (1,)
    socs: tuple[str, ...] = ("EPXA1",)
    page_bytes: tuple[int | None, ...] = (None,)
    dpram_bytes: tuple[int | None, ...] = (None,)
    policies: tuple[str, ...] = ("fifo",)
    transfers: tuple[str, ...] = ("double",)
    prefetches: tuple[str, ...] = ("none",)
    prefetch_depths: tuple[int, ...] = (1,)
    tlb_capacities: tuple[int | None, ...] = (None,)
    pipelined: tuple[bool, ...] = (False,)
    access_cycles: tuple[int, ...] = (4,)
    with_typical: bool = False

    def expand(self) -> list[CellConfig]:
        """The full run grid, in deterministic axis-product order."""
        cells = []
        for (
            app, nbytes, seed, soc, page, dpram, policy, transfer,
            prefetch, depth, tlb, pipe, cycles,
        ) in itertools.product(
            self.apps, self.input_bytes, self.seeds, self.socs,
            self.page_bytes, self.dpram_bytes, self.policies,
            self.transfers, self.prefetches, self.prefetch_depths,
            self.tlb_capacities, self.pipelined, self.access_cycles,
        ):
            cells.append(
                CellConfig(
                    app=app,
                    input_bytes=nbytes,
                    seed=seed,
                    soc=soc,
                    page_bytes=page,
                    dpram_bytes=dpram,
                    policy=policy,
                    transfer=transfer,
                    prefetch=prefetch,
                    prefetch_depth=depth,
                    tlb_capacity=tlb,
                    pipelined_imu=pipe,
                    access_cycles=cycles,
                    with_typical=self.with_typical,
                )
            )
        return cells

    @property
    def size(self) -> int:
        """Number of cells the spec expands to."""
        axes = (
            self.apps, self.input_bytes, self.seeds, self.socs,
            self.page_bytes, self.dpram_bytes, self.policies,
            self.transfers, self.prefetches, self.prefetch_depths,
            self.tlb_capacities, self.pipelined, self.access_cycles,
        )
        size = 1
        for axis in axes:
            size *= len(axis)
        return size
