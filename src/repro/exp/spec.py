"""Sweep specifications: cells, grids, and stable config hashes.

A :class:`CellConfig` is one point of the design space, expressed
entirely in primitives (strings, ints, bools) so it can cross a
``multiprocessing`` boundary, be hashed into a cache key, and be
round-tripped through JSON without loss.  A :class:`SweepSpec` is the
declarative product of axis values that expands to the run grid.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, fields
from functools import lru_cache

from repro.errors import ReproError
from repro.os.scheduler import SCHEDS
from repro.sim.engine import ENGINES

#: Bump when CellResult semantics change, so stale caches miss.
#: (6: the ``sched`` scheduling-policy axis, per-tenant priorities in
#: ``tenant_mix``, and the ``trace`` app with its content digest join
#: the cell config — old rows must miss.)
CACHE_VERSION = 6

#: Applications the cell runner knows how to build (see exp.cell).
#: ``trace`` replays a recorded address trace (``--trace FILE``).
APPS = ("adpcm", "idea", "idea-dec", "vadd", "adpcm-enc", "synthetic", "trace")

#: Transfer-mode axis values (maps onto os.vim.transfer.TransferMode):
#: two CPU copies (measured), one (announced), or DMA descriptors.
TRANSFERS = ("double", "single", "dma")

#: Prefetch axis values (maps onto os.vim.prefetch builders).
PREFETCHES = ("none", "sequential", "aggressive", "overlapped")


def parse_mix_part(part: str) -> tuple[str, int]:
    """Split one ``tenant_mix`` slot into its app and priority.

    A slot is ``app`` or ``app:priority`` (e.g. ``adpcm:2``); the
    priority defaults to 1 (the neutral weight every scheduling policy
    treats as plain round-robin).
    """
    app, sep, prio_text = part.partition(":")
    if not sep:
        return app, 1
    try:
        priority = int(prio_text)
    except ValueError:
        raise ReproError(
            f"tenant mix slot {part!r}: priority {prio_text!r} is not an "
            "integer (expected app or app:priority)"
        ) from None
    if priority < 1:
        raise ReproError(
            f"tenant mix slot {part!r}: priority must be >= 1"
        )
    return app, priority


@lru_cache(maxsize=None)
def _trace_digest_cached(path: str) -> str:
    """Header digest of the trace at *path* (one read per path).

    Cached so expanding a grid of N platform cells over one trace file
    reads its header once.  Service submissions never hit this: their
    configs arrive with the digest already resolved (it travels in
    ``to_dict``), so the coordinator needs no access to the file.
    """
    from repro.trace.record import trace_digest_of

    return trace_digest_of(path)


@dataclass(frozen=True)
class CellConfig:
    """One fully-specified simulation: workload x platform x VIM knobs.

    A frozen bag of primitives (strings, ints, bools) so it can cross a
    ``multiprocessing`` boundary, be hashed into a cache key, and
    round-trip through JSON without loss.

    Parameters
    ----------
    app : str
        Workload axis value, one of :data:`APPS`.
    input_bytes : int
        Dataset size in bytes (positive).
    seed : int
        Dataset seed; changing it changes the generated input bytes.
    soc : str
        SoC preset name from :data:`repro.core.soc.PRESETS`.
    page_bytes, dpram_bytes : int or None
        Interface-memory geometry overrides; ``None`` means "the SoC
        preset's value".
    policy : str
        DP-RAM replacement policy (see
        :func:`repro.os.vim.policies.policy_names`).
    transfer : str
        Copy cost model, one of :data:`TRANSFERS`.
    prefetch : str
        Prefetch strategy, one of :data:`PREFETCHES`; ``prefetch_depth``
        is the pages-per-fault lookahead.
    tlb_capacity : int or None
        IMU TLB entries; ``None`` means one entry per DP-RAM page (the
        prototype's organisation).
    pipelined_imu : bool
        Model the announced pipelined IMU instead of the measured
        multi-cycle one.
    access_cycles : int
        Rising edges from coprocessor request to data (paper: 4).
    with_typical : bool
        Also run the non-virtualised "typical" coprocessor version.
        Incompatible with ``tenants > 1`` (the typical driver owns the
        whole DP-RAM).
    tenants : int
        Number of tenant processes contending for the one DP-RAM.  1
        (the default) is the classic single-shot cell; above 1 the cell
        runs through :func:`repro.core.tenancy.run_tenants` and fills
        the per-tenant columns of :class:`~repro.exp.results.CellResult`.
    tenant_mix : str
        How apps are assigned to tenants: ``"same"`` gives every tenant
        ``app``; a ``"+"``-joined list of :data:`APPS` values (e.g.
        ``"adpcm+idea"``) assigns tenant *i* the *i*-th entry, cycling.
        A slot may carry a scheduling priority as ``app:priority``
        (e.g. ``"adpcm:2+idea"``): the weight the ``priority`` and
        ``wrr`` policies dispatch that tenant by.  Tenant *i* always
        gets dataset seed ``seed + i`` so same-app tenants still stream
        distinct data.  With ``tenants == 1`` a mix is meaningless and
        is canonicalised to ``"same"`` (after validation), so
        equivalent solo configs share one cache hash; default ``:1``
        priorities are likewise stripped, and under ``sched == "rr"``
        (which ignores weights) all priorities are.
    tenant_repeats : int
        FPGA_EXECUTE calls per tenant; with >= 2, a tenant re-touches
        pages a neighbour may have stolen between its turns.
    syn_stride, syn_locality_pct, syn_read_pct, syn_phases : int
        The ``synthetic`` app's access-pattern axes (hot-window walk
        stride in words, percentage of ops aimed at the hot window,
        percentage of ops that read, and the number of hot-window
        relocations — see :func:`repro.apps.synthetic.access_pattern`).
        For cells in which no tenant runs the synthetic app, the
        pattern is meaningless and the four fields are canonicalised
        back to their defaults (after validation), so equivalent
        non-synthetic configs share one cache hash — the same rule as
        ``tenant_mix`` for solo cells.
    replicates : int
        Independent replicate seeds the cell is executed with.  1 (the
        default) is the classic single-shot cell.  Above 1, the cell
        runs once per derived seed (replicate 0 uses ``seed`` itself),
        its primary columns report replicate 0, and the ``*_mean`` /
        ``*_cv`` columns of :class:`~repro.exp.results.CellResult`
        summarise the spread — the basis of the variance-derived
        tolerance bands of ``repro diff --bands cv``.  Included in the
        config hash: a replicated cell measures something a single
        run does not.
    sched : str
        Scheduling-policy axis (one of
        :data:`repro.os.scheduler.SCHEDS`): how the contended run
        queue dispatches tenants.  Meaningless with ``tenants == 1``
        (one process cannot be scheduled against anyone) and
        canonicalised to ``"rr"`` there, so equivalent solo configs
        share one cache hash.
    trace_path, trace_digest : str or None
        The ``trace`` app's input: the trace file to replay and its
        content digest.  The *digest* — resolved from the file's
        header when not given — is part of the config hash; the *path*
        is **excluded** from it (and from labels), because a path says
        nothing about content: the same trace copied elsewhere must
        hit the same cached cells, and a changed file under the same
        path must miss.  Both are canonicalised to ``None`` for every
        other app.
    engine : str
        Simulation kernel backend, one of
        :data:`repro.sim.engine.ENGINES`.  **Not an axis of the design
        space**: both backends are required to produce byte-identical
        results, so the field is excluded from :func:`config_hash` and
        from :meth:`label` — a fast-backend sweep reads and writes the
        same cache cells a reference sweep would, which is exactly what
        lets ``repro diff`` check the two against each other.
    """

    app: str = "adpcm"
    input_bytes: int = 8 * 1024
    seed: int = 1
    soc: str = "EPXA1"
    page_bytes: int | None = None
    dpram_bytes: int | None = None
    policy: str = "fifo"
    transfer: str = "double"
    prefetch: str = "none"
    prefetch_depth: int = 1
    tlb_capacity: int | None = None
    pipelined_imu: bool = False
    access_cycles: int = 4
    with_typical: bool = False
    tenants: int = 1
    tenant_mix: str = "same"
    tenant_repeats: int = 1
    syn_stride: int = 1
    syn_locality_pct: int = 80
    syn_read_pct: int = 70
    syn_phases: int = 1
    replicates: int = 1
    sched: str = "rr"
    trace_path: str | None = None
    trace_digest: str | None = None
    engine: str = "reference"

    def __post_init__(self) -> None:
        if self.app not in APPS:
            raise ReproError(f"unknown app {self.app!r}; choices: {APPS}")
        if self.engine not in ENGINES:
            raise ReproError(
                f"unknown engine backend {self.engine!r}; choices: {ENGINES}"
            )
        if self.transfer not in TRANSFERS:
            raise ReproError(
                f"unknown transfer mode {self.transfer!r}; choices: {TRANSFERS}"
            )
        if self.prefetch not in PREFETCHES:
            raise ReproError(
                f"unknown prefetch {self.prefetch!r}; choices: {PREFETCHES}"
            )
        if self.input_bytes <= 0:
            raise ReproError(f"input size must be positive, got {self.input_bytes}")
        if self.page_bytes is not None and self.page_bytes < 1:
            raise ReproError(f"page size must be >= 1, got {self.page_bytes}")
        if self.dpram_bytes is not None and self.dpram_bytes < 1:
            raise ReproError(f"DP-RAM size must be >= 1, got {self.dpram_bytes}")
        if self.tlb_capacity is not None and self.tlb_capacity < 1:
            # 0 would read as "preset default" downstream (Imu treats a
            # falsy capacity as one-entry-per-frame) — reject instead of
            # mislabelling a full-TLB run.
            raise ReproError(
                f"TLB capacity must be >= 1, got {self.tlb_capacity}"
            )
        if self.prefetch_depth < 1:
            raise ReproError(
                f"prefetch depth must be >= 1, got {self.prefetch_depth}"
            )
        if self.tenants < 1:
            raise ReproError(f"tenants must be >= 1, got {self.tenants}")
        if self.tenant_repeats < 1:
            raise ReproError(
                f"tenant repeats must be >= 1, got {self.tenant_repeats}"
            )
        if self.sched not in SCHEDS:
            raise ReproError(
                f"unknown scheduling policy {self.sched!r}; choices: {SCHEDS}"
            )
        if self.tenants == 1 and self.sched != "rr":
            # One process cannot be scheduled against anyone; every
            # policy degenerates to "dispatch it".  Canonicalise so
            # equivalent solo configs share one cache hash and label.
            object.__setattr__(self, "sched", "rr")
        if self.tenant_mix != "same":
            slots = [parse_mix_part(p) for p in self.tenant_mix.split("+")]
            bad = [app for app, _ in slots if app not in APPS]
            if not slots or bad:
                raise ReproError(
                    f"tenant mix {self.tenant_mix!r} must be 'same' or "
                    f"'+'-joined app[:priority] slots with apps from "
                    f"{APPS} (bad: {bad})"
                )
            if any(app == "trace" for app, _ in slots):
                raise ReproError(
                    "the trace app cannot be a tenant-mix slot: a replay "
                    "is a single flattened workload (record the "
                    "multi-tenant run instead and replay that trace)"
                )
            if self.tenants == 1:
                # A mix is meaningless with one tenant; canonicalise so
                # equivalent configs share one cache hash and label.
                object.__setattr__(self, "tenant_mix", "same")
            else:
                # Canonical slot spelling: the default ":1" priority is
                # dropped, and under round-robin — which ignores
                # weights — every priority is.
                canonical = "+".join(
                    app if prio == 1 or self.sched == "rr" else f"{app}:{prio}"
                    for app, prio in slots
                )
                object.__setattr__(self, "tenant_mix", canonical)
        if self.syn_stride < 1:
            raise ReproError(
                f"synthetic stride must be >= 1 words, got {self.syn_stride}"
            )
        if not 0 <= self.syn_locality_pct <= 100:
            raise ReproError(
                f"synthetic locality must be 0..100 %, got "
                f"{self.syn_locality_pct}"
            )
        if not 0 <= self.syn_read_pct <= 100:
            raise ReproError(
                f"synthetic read ratio must be 0..100 %, got "
                f"{self.syn_read_pct}"
            )
        if self.syn_phases < 1:
            raise ReproError(
                f"synthetic phase count must be >= 1, got {self.syn_phases}"
            )
        mix_apps = [
            parse_mix_part(p)[0] for p in self.tenant_mix.split("+")
        ]
        if "synthetic" not in (self.app, *mix_apps):
            # No tenant runs the synthetic app, so the pattern fields
            # are meaningless; canonicalise (after validation) so
            # equivalent non-synthetic configs share one cache hash —
            # the same rule as tenant_mix for solo cells.
            object.__setattr__(self, "syn_stride", 1)
            object.__setattr__(self, "syn_locality_pct", 80)
            object.__setattr__(self, "syn_read_pct", 70)
            object.__setattr__(self, "syn_phases", 1)
        if self.replicates < 1:
            raise ReproError(
                f"replicates must be >= 1, got {self.replicates}"
            )
        if self.with_typical and (self.tenants > 1 or self.tenant_repeats > 1):
            raise ReproError(
                "with_typical is incompatible with the multi-tenant cell "
                "path (tenants or tenant_repeats > 1): the typical "
                "coprocessor owns the whole DP-RAM and runs once"
            )
        if self.app == "trace":
            if not self.trace_path:
                raise ReproError(
                    "the trace app needs a trace file: pass trace_path "
                    "(CLI: --trace FILE, recorded with `repro record`)"
                )
            if self.tenants > 1 or self.tenant_mix != "same":
                raise ReproError(
                    "the trace app is a single flattened replay; it is "
                    "incompatible with tenants > 1 or a tenant mix "
                    "(record the contended run and replay its trace)"
                )
            if self.tenant_repeats > 1:
                raise ReproError(
                    "the trace app replays INOUT object images and "
                    "cannot repeat; use tenant_repeats=1"
                )
            if self.with_typical:
                raise ReproError(
                    "with_typical is incompatible with the trace app: "
                    "the replay measures the virtualised path the trace "
                    "was recorded through"
                )
            # The replay's identity is its content digest: the dataset
            # axes (size, seed) belong to the *recorded* run, so they
            # are neutralised here and equivalent replays share a hash.
            object.__setattr__(self, "input_bytes", 1)
            object.__setattr__(self, "seed", 1)
            if self.trace_digest is None:
                object.__setattr__(
                    self, "trace_digest", _trace_digest_cached(self.trace_path)
                )
        else:
            # Not a replay: the trace fields are meaningless —
            # canonicalise so they never fork other apps' hashes.
            object.__setattr__(self, "trace_path", None)
            object.__setattr__(self, "trace_digest", None)

    def to_dict(self) -> dict:
        """JSON-friendly dump (field order fixed by the dataclass)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CellConfig":
        names = {f.name for f in fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ReproError(f"unknown cell config fields: {sorted(unknown)}")
        return cls(**data)

    def key(self) -> str:
        """Stable hash identifying this configuration (cache key)."""
        return config_hash(self)

    def label(self) -> str:
        """Compact human label: workload plus every non-default axis."""
        if self.app == "trace":
            # The digest *is* the workload identity (size and seed are
            # the recorded run's, not the replay's); the default
            # template below only supplies the other axes' defaults.
            parts = [f"trace-{(self.trace_digest or '')[:10]}"]
            default = CellConfig()
        else:
            parts = [f"{self.app}-{_size_label(self.input_bytes)}"]
            default = CellConfig(app=self.app, input_bytes=self.input_bytes)
        for name, text in (
            ("soc", self.soc),
            ("page_bytes", f"page{self.page_bytes}"),
            ("dpram_bytes", f"dpram{self.dpram_bytes}"),
            ("policy", self.policy),
            ("transfer", self.transfer),
            ("prefetch", self.prefetch),
            ("tlb_capacity", f"tlb{self.tlb_capacity}"),
            ("pipelined_imu", "pipelined"),
            ("access_cycles", f"ac{self.access_cycles}"),
            ("tenants", f"x{self.tenants}"),
            ("tenant_mix", f"mix-{self.tenant_mix}"),
            ("tenant_repeats", f"rep{self.tenant_repeats}"),
            ("sched", f"sched-{self.sched}"),
            ("syn_stride", f"stride{self.syn_stride}"),
            ("syn_locality_pct", f"loc{self.syn_locality_pct}"),
            ("syn_read_pct", f"rd{self.syn_read_pct}"),
            ("syn_phases", f"ph{self.syn_phases}"),
            ("replicates", f"n{self.replicates}"),
        ):
            if getattr(self, name) != getattr(default, name):
                parts.append(text)
        return "/".join(parts)


def _size_label(nbytes: int) -> str:
    if nbytes % 1024 == 0:
        return f"{nbytes // 1024}KB"
    return f"{nbytes}B"


def config_hash(config: CellConfig) -> str:
    """A deterministic 16-hex-digit digest of *config*.

    The digest covers every field plus :data:`CACHE_VERSION`, so any
    change to either the configuration or the result schema produces a
    clean cache miss rather than a stale read.

    The ``engine`` field is the one exception: the backend is required
    to be observationally equivalent, so it must not fork the cache
    identity — reference and fast sweeps share cells, and ``repro
    diff`` aligns their caches row for row.  ``trace_path`` is the
    other: the trace's *content digest* is hashed in its stead, so
    moving a trace file never forks the cache while changing its
    contents always does.
    """
    config_dict = config.to_dict()
    config_dict.pop("engine", None)
    config_dict.pop("trace_path", None)
    payload = {"version": CACHE_VERSION, "config": config_dict}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def replica_hash(config: CellConfig) -> str:
    """A 16-hex-digit digest of *config* that is blind to the seed.

    Two runs of the same grid with disjoint seed sets produce rows
    whose :func:`config_hash` keys never collide (the seed is part of
    the cache identity).  ``repro diff --bands cv`` still has to pair
    those rows up: this digest drops ``seed`` (and ``engine``, like
    :func:`config_hash`) so replicate families align across seed sets
    while every other axis still separates rows.
    """
    config_dict = config.to_dict()
    config_dict.pop("engine", None)
    config_dict.pop("trace_path", None)
    config_dict.pop("seed", None)
    payload = {"version": CACHE_VERSION, "replica": config_dict}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def grid_fingerprint(cells) -> str:
    """A 12-hex-digit identity of *which* configurations a grid holds.

    Computed over the **sorted config hashes** of the deduplicated cell
    set — the same canonicalisation :func:`shard_cells` partitions by —
    so two grids fingerprint equal exactly when they contain the same
    configurations, regardless of axis declaration order, expansion
    order, or duplicates.  Cross-run diffing uses it to state whether
    two caches describe the same design space, and CI uses it to key
    baseline caches per grid.

    Parameters
    ----------
    cells : iterable of CellConfig
        The grid (e.g. ``SweepSpec.expand()`` or a preset list).

    Returns
    -------
    str
        12 hex digits; covers :data:`CACHE_VERSION` via the config
        hashes themselves.
    """
    return fingerprint_from_keys(cell.key() for cell in cells)


def fingerprint_from_keys(keys) -> str:
    """:func:`grid_fingerprint` from already-computed config hashes.

    The streaming differ aligns two stores without ever materialising
    their rows, so it has hashes (store keys) rather than
    :class:`CellConfig` objects; this is the same digest over the same
    canonicalisation (sorted, deduplicated), factored out so the two
    entry points cannot drift.
    """
    keys = sorted(set(keys))
    digest = hashlib.sha256("\n".join(keys).encode("ascii"))
    return digest.hexdigest()[:12]


def replica_fingerprint(cells) -> str:
    """The seed-blind sibling of :func:`grid_fingerprint`.

    Computed over sorted :func:`replica_hash` digests, so two grids
    fingerprint equal exactly when they cover the same design space
    *up to seeds* — the identity ``repro diff --bands cv`` compares,
    where the whole point is that the two runs used different seeds.
    """
    keys = sorted({replica_hash(cell) for cell in cells})
    digest = hashlib.sha256("\n".join(keys).encode("ascii"))
    return digest.hexdigest()[:12]


@dataclass(frozen=True)
class SweepSpec:
    """A declarative run grid: the cartesian product of axis values.

    Each field is one *axis*: a tuple of values for the matching
    :class:`CellConfig` field.  Axis order in :meth:`expand` is fixed
    (``apps`` outermost, ``syn_phases`` innermost), so the same
    spec always yields the same cell sequence — the property that makes
    ``--jobs N`` output byte-identical to serial execution.

    Parameters
    ----------
    apps, input_bytes, seeds, socs, page_bytes, dpram_bytes, policies,
    transfers, prefetches, prefetch_depths, tlb_capacities, pipelined,
    access_cycles : tuple
        Per-axis value tuples; see the same-named :class:`CellConfig`
        fields for the meaning and the accepted values of each.
    tenants, tenant_mixes, tenant_repeats, scheds : tuple
        The multi-process contention axes (tenant count, app mix per
        tenant — optionally with ``app:priority`` weights —
        FPGA_EXECUTE calls per tenant, and the scheduling policy the
        run queue dispatches by).
    trace_paths : tuple
        Trace files for the ``trace`` app (``(None,)`` when no cell
        replays one); each expands like any other axis value, and the
        cell's cache identity uses the file's content digest, never
        the path.
    syn_strides, syn_locality_pcts, syn_read_pcts, syn_phases : tuple
        The ``synthetic`` app's access-pattern axes; only meaningful
        for cells in which some tenant runs the synthetic app (other
        cells canonicalise them away, see :class:`CellConfig`).
    with_typical : bool
        Applied to every cell (not an axis): also run the typical
        coprocessor version where it fits.
    replicates : int
        Applied to every cell (not an axis): independent replicate
        seeds each cell runs with (``repro sweep --replicates N``).
        Deliberately a whole-spec knob — mixing replicated and
        unreplicated rows in one cache would leave ``repro diff
        --bands cv`` without bands for half the grid.
    engine : str
        Applied to every cell (not an axis): the simulation kernel
        backend, one of :data:`repro.sim.engine.ENGINES`.  Deliberately
        a whole-spec knob — as an axis it would be futile, because the
        engine is excluded from the config hash and the duplicate cells
        would collapse to one.

    Examples
    --------
    >>> spec = SweepSpec(apps=("adpcm",), policies=("fifo", "lru"))
    >>> spec.size
    2
    >>> [cell.policy for cell in spec.expand()]
    ['fifo', 'lru']
    """

    apps: tuple[str, ...] = ("adpcm",)
    input_bytes: tuple[int, ...] = (8 * 1024,)
    seeds: tuple[int, ...] = (1,)
    socs: tuple[str, ...] = ("EPXA1",)
    page_bytes: tuple[int | None, ...] = (None,)
    dpram_bytes: tuple[int | None, ...] = (None,)
    policies: tuple[str, ...] = ("fifo",)
    transfers: tuple[str, ...] = ("double",)
    prefetches: tuple[str, ...] = ("none",)
    prefetch_depths: tuple[int, ...] = (1,)
    tlb_capacities: tuple[int | None, ...] = (None,)
    pipelined: tuple[bool, ...] = (False,)
    access_cycles: tuple[int, ...] = (4,)
    tenants: tuple[int, ...] = (1,)
    tenant_mixes: tuple[str, ...] = ("same",)
    tenant_repeats: tuple[int, ...] = (1,)
    scheds: tuple[str, ...] = ("rr",)
    trace_paths: tuple[str | None, ...] = (None,)
    syn_strides: tuple[int, ...] = (1,)
    syn_locality_pcts: tuple[int, ...] = (80,)
    syn_read_pcts: tuple[int, ...] = (70,)
    syn_phases: tuple[int, ...] = (1,)
    with_typical: bool = False
    replicates: int = 1
    engine: str = "reference"

    def expand(self) -> list[CellConfig]:
        """Expand the grid to concrete cells.

        Returns
        -------
        list of CellConfig
            Every point of the axis product, in deterministic
            axis-product order (last axis varies fastest).
        """
        cells = []
        for (
            app, nbytes, seed, soc, page, dpram, policy, transfer,
            prefetch, depth, tlb, pipe, cycles, ntenants, mix, repeats,
            sched, trace_path, stride, locality, read_pct, phases,
        ) in itertools.product(
            self.apps, self.input_bytes, self.seeds, self.socs,
            self.page_bytes, self.dpram_bytes, self.policies,
            self.transfers, self.prefetches, self.prefetch_depths,
            self.tlb_capacities, self.pipelined, self.access_cycles,
            self.tenants, self.tenant_mixes, self.tenant_repeats,
            self.scheds, self.trace_paths,
            self.syn_strides, self.syn_locality_pcts,
            self.syn_read_pcts, self.syn_phases,
        ):
            cells.append(
                CellConfig(
                    app=app,
                    input_bytes=nbytes,
                    seed=seed,
                    soc=soc,
                    page_bytes=page,
                    dpram_bytes=dpram,
                    policy=policy,
                    transfer=transfer,
                    prefetch=prefetch,
                    prefetch_depth=depth,
                    tlb_capacity=tlb,
                    pipelined_imu=pipe,
                    access_cycles=cycles,
                    with_typical=self.with_typical,
                    tenants=ntenants,
                    tenant_mix=mix,
                    tenant_repeats=repeats,
                    sched=sched,
                    trace_path=trace_path,
                    syn_stride=stride,
                    syn_locality_pct=locality,
                    syn_read_pct=read_pct,
                    syn_phases=phases,
                    replicates=self.replicates,
                    engine=self.engine,
                )
            )
        return cells

    @property
    def size(self) -> int:
        """Number of cells the spec expands to (no expansion needed)."""
        axes = (
            self.apps, self.input_bytes, self.seeds, self.socs,
            self.page_bytes, self.dpram_bytes, self.policies,
            self.transfers, self.prefetches, self.prefetch_depths,
            self.tlb_capacities, self.pipelined, self.access_cycles,
            self.tenants, self.tenant_mixes, self.tenant_repeats,
            self.scheds, self.trace_paths,
            self.syn_strides, self.syn_locality_pcts,
            self.syn_read_pcts, self.syn_phases,
        )
        size = 1
        for axis in axes:
            size *= len(axis)
        return size

    def shard(self, index: int, total: int) -> list[CellConfig]:
        """The *index*-th of *total* deterministic grid partitions.

        Parameters
        ----------
        index : int
            1-based shard number (matching the CLI's ``--shard I/N``).
        total : int
            Number of shards the grid is split into.

        Returns
        -------
        list of CellConfig
            This shard's cells; see :func:`shard_cells` for the
            partition guarantees.
        """
        return shard_cells(self.expand(), index, total)


def shard_cells(
    cells: list[CellConfig], index: int, total: int
) -> list[CellConfig]:
    """Select the *index*-th of *total* shards of a cell list.

    The partition is computed over the **sorted config hashes** of the
    deduplicated cell set, so it is a pure function of *which*
    configurations the grid contains: every machine computes the same
    split regardless of axis declaration order, expansion order, or
    duplicate cells (duplicates share a hash and therefore a shard).
    Shard *i* takes every *total*-th hash starting at offset *i - 1*,
    so shard sizes differ by at most one.

    Parameters
    ----------
    cells : list of CellConfig
        The full grid (e.g. ``SweepSpec.expand()`` or a preset list).
    index : int
        1-based shard number, ``1 <= index <= total``.
    total : int
        Number of shards.

    Returns
    -------
    list of CellConfig
        The shard's unique cells, in sorted-hash order.  The union of
        all *total* shards is exactly the deduplicated input set and
        the shards are pairwise disjoint.

    Raises
    ------
    ReproError
        If *total* is not positive or *index* is out of range.
    """
    if total < 1:
        raise ReproError(f"shard count must be >= 1, got {total}")
    if not 1 <= index <= total:
        raise ReproError(
            f"shard index must be in 1..{total}, got {index} "
            "(shards are numbered 1/N .. N/N)"
        )
    unique = {cell.key(): cell for cell in cells}
    ordered = [unique[key] for key in sorted(unique)]
    return ordered[index - 1::total]
