"""The paper's figure/ablation drivers, as thin sweeps.

Every driver here regenerates one artefact of the evaluation section:

=============  =====================================================
``figure7``    timing diagram of a translated read (data on edge 4)
``figure8``    adpcmdecode: SW vs VIM-based at 2/4/8 KB
``figure9``    IDEA: SW vs typical vs VIM at 4/8/16/32 KB
``imu_overhead_rows``       §4.1: SW(IMU) <= 2.5 % of total
``translation_overhead``    §4.1: translation ~= 20 % of HW (IDEA)
``ablation_*``  pipelined IMU, policies, transfer modes, prefetch
``portability`` same binaries on EPXA1 / EPXA4 / EPXA10
=============  =====================================================

Except for the Figure 7 waveform capture (a single instrumented read,
not a grid cell), each driver is a list of :class:`~repro.exp.spec.
CellConfig` variants handed to :func:`~repro.exp.sweep.run_sweep` —
so every one of them inherits ``--jobs`` parallelism and result
caching for free, and adding a scenario means adding an axis value,
not a driver.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coproc.base import Behavior, Coprocessor
from repro.core.drivers import adpcm_workload, idea_workload
from repro.core.runner import WorkloadSpec
from repro.core.soc import PRESETS
from repro.core.system import System
from repro.errors import ReproError
from repro.exp.cell import run_cell
from repro.exp.results import CellResult
from repro.exp.spec import CellConfig
from repro.exp.sweep import run_sweep
from repro.imu.imu import Imu
from repro.os.vim.manager import TransferMode
from repro.os.vim.policies import policy_names
from repro.os.vim.prefetch import Prefetcher, SequentialPrefetcher
from repro.sim.clock import ClockDomain
from repro.sim.time import mhz
from repro.trace.timeline import WaveformProbe, render_cycles

# ----------------------------------------------------------------------
# Workload/kwargs -> cell translation
# ----------------------------------------------------------------------


def _base_fields(workload: WorkloadSpec) -> tuple[dict, WorkloadSpec | None]:
    """Cell fields identifying *workload*, plus an in-process override.

    Workloads made by :mod:`repro.core.drivers` carry a ``cell_key``
    and rebuild cleanly inside sweep workers; hand-made specs fall back
    to passing the object itself to :func:`run_cell` (serial, uncached).
    """
    if workload.cell_key is not None:
        app, input_bytes, seed = workload.cell_key
        return {"app": app, "input_bytes": input_bytes, "seed": seed}, None
    return {"app": "adpcm", "input_bytes": max(1, workload.total_bytes)}, workload


def _prefetch_fields(prefetcher: Prefetcher | None) -> dict:
    if prefetcher is None:
        return {"prefetch": "none"}
    if isinstance(prefetcher, SequentialPrefetcher):
        if prefetcher.overlapped:
            if not prefetcher.aggressive:
                # The "overlapped" axis value rebuilds with
                # aggressive=True; encoding this combination would
                # silently change the simulated configuration.
                raise ReproError(
                    "overlapped-but-not-aggressive prefetch has no "
                    "sweep-axis encoding"
                )
            mode = "overlapped"
        elif prefetcher.aggressive:
            mode = "aggressive"
        else:
            mode = "sequential"
        return {"prefetch": mode, "prefetch_depth": prefetcher.depth}
    raise ReproError(
        f"prefetcher {type(prefetcher).__name__} has no sweep-axis encoding"
    )


def _vim_fields(**vim_kwargs) -> dict:
    """Translate legacy ``run_vim`` keyword arguments to cell fields."""
    fields: dict = {}
    for name in ("policy", "pipelined_imu", "access_cycles", "tlb_capacity"):
        if name in vim_kwargs:
            fields[name] = vim_kwargs.pop(name)
    if "transfer_mode" in vim_kwargs:
        mode = vim_kwargs.pop("transfer_mode")
        fields["transfer"] = (
            mode.name.lower() if isinstance(mode, TransferMode) else str(mode)
        )
    if "prefetcher" in vim_kwargs:
        fields.update(_prefetch_fields(vim_kwargs.pop("prefetcher")))
    if vim_kwargs:
        raise ReproError(
            f"keyword(s) {sorted(vim_kwargs)} have no sweep-axis encoding"
        )
    return fields


def _cells_for(
    workload: WorkloadSpec,
    variants: list[dict],
    jobs: int = 1,
    cache_dir=None,
) -> list[CellResult]:
    """Run one cell per variant dict, all against *workload*."""
    base, override = _base_fields(workload)
    configs = [CellConfig(**{**base, **variant}) for variant in variants]
    if override is not None:
        return [run_cell(config, workload=override) for config in configs]
    return list(run_sweep(configs, jobs=jobs, cache_dir=cache_dir).rows)


# ----------------------------------------------------------------------
# Figure 7 — translated read access timing (bespoke waveform capture)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Figure7Result:
    """One captured read access through the IMU."""

    diagram: str
    data_ready_edge: int
    value_read: int
    access_cycles: int
    pipelined: bool


class _OneReadCore(Coprocessor):
    """A minimal core issuing exactly one read (for the timing capture)."""

    name = "one-read"

    def __init__(self) -> None:
        super().__init__()
        self.value: int | None = None

    def behavior(self) -> Behavior:
        self.value = yield from self.read(0, 4)


def figure7(access_cycles: int = 4, pipelined: bool = False) -> Figure7Result:
    """Capture the waveform of Figure 7: one translated read.

    The TLB is pre-loaded so the access hits; the returned
    ``data_ready_edge`` counts rising edges from the request edge
    inclusive — 4 for the paper's IMU.
    """
    system = System()
    imu = Imu(
        system.dpram,
        system.interrupts,
        access_cycles=access_cycles,
        pipelined=pipelined,
    )
    core = _OneReadCore()
    core.bind(imu)
    frame = 2
    imu.tlb.insert(0, 0, frame)
    system.dpram.write_word(system.dpram.page_base(frame) + 4, 0x2A)
    domain = ClockDomain(system.engine, "fabric", mhz(40.0))
    domain.attach(imu.tick)
    domain.attach(core.tick)
    ports = imu.ports
    probe = WaveformProbe(
        system.engine,
        [ports.cp_addr, ports.cp_access, ports.cp_tlbhit, ports.cp_din],
    )
    imu.start_coprocessor()
    domain.start()
    system.engine.run_until(
        lambda: core.finished, max_time_ps=100 * domain.period_ps
    )
    domain.stop()
    probe.detach()
    hit_trace = probe.trace("cp.cp_tlbhit")
    rise_time = next(
        t for t, v in zip(hit_trace.times, hit_trace.values) if v == 1
    )
    data_ready_edge = rise_time // domain.period_ps
    diagram = render_cycles(
        probe,
        start_ps=domain.period_ps,
        period_ps=domain.period_ps,
        num_cycles=max(6, data_ready_edge + 2),
        signals=["cp.cp_addr", "cp.cp_access", "cp.cp_tlbhit", "cp.cp_din"],
    )
    return Figure7Result(
        diagram=diagram,
        data_ready_edge=data_ready_edge,
        value_read=core.value if core.value is not None else -1,
        access_cycles=access_cycles,
        pipelined=pipelined,
    )


# ----------------------------------------------------------------------
# Figures 8 and 9 — application execution times
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AppRow:
    """One input-size point of Figure 8 or 9."""

    label: str
    input_kb: int
    sw_ms: float
    vim_ms: float
    hw_ms: float
    sw_dp_ms: float
    sw_imu_ms: float
    sw_other_ms: float
    vim_speedup: float
    page_faults: int
    typical_ms: float | None = None
    typical_speedup: float | None = None
    typical_fits: bool = True

    @property
    def sw_imu_fraction(self) -> float:
        """SW(IMU) share of the VIM total (the <= 2.5 % claim)."""
        return self.sw_imu_ms / self.vim_ms if self.vim_ms else 0.0


def _app_row(label: str, input_kb: int, cell: CellResult) -> AppRow:
    return AppRow(
        label=label,
        input_kb=input_kb,
        sw_ms=cell.sw_ms,
        vim_ms=cell.vim_ms,
        hw_ms=cell.hw_ms,
        sw_dp_ms=cell.sw_dp_ms,
        sw_imu_ms=cell.sw_imu_ms,
        sw_other_ms=cell.sw_other_ms,
        vim_speedup=cell.vim_speedup,
        page_faults=cell.page_faults,
        typical_ms=cell.typical_ms,
        typical_speedup=cell.typical_speedup,
        typical_fits=cell.typical_fits,
    )


def _app_figure(
    app: str,
    label_prefix: str,
    sizes_kb: tuple[int, ...],
    with_typical: bool,
    jobs: int,
    cache_dir,
    **vim_kwargs,
) -> list[AppRow]:
    fields = _vim_fields(**vim_kwargs)
    configs = [
        CellConfig(
            app=app,
            input_bytes=kb * 1024,
            with_typical=with_typical,
            **fields,
        )
        for kb in sizes_kb
    ]
    sweep = run_sweep(configs, jobs=jobs, cache_dir=cache_dir)
    return [
        _app_row(f"{label_prefix}-{kb}KB", kb, cell)
        for kb, cell in zip(sizes_kb, sweep.rows)
    ]


def figure8(
    sizes_kb: tuple[int, ...] = (2, 4, 8),
    jobs: int = 1,
    cache_dir=None,
    **vim_kwargs,
) -> list[AppRow]:
    """adpcmdecode at the paper's input sizes (SW and VIM versions)."""
    return _app_figure(
        "adpcm", "adpcm", tuple(sizes_kb), False, jobs, cache_dir, **vim_kwargs
    )


def figure9(
    sizes_kb: tuple[int, ...] = (4, 8, 16, 32),
    jobs: int = 1,
    cache_dir=None,
    **vim_kwargs,
) -> list[AppRow]:
    """IDEA at the paper's input sizes (SW, typical, and VIM versions)."""
    return _app_figure(
        "idea", "idea", tuple(sizes_kb), True, jobs, cache_dir, **vim_kwargs
    )


# ----------------------------------------------------------------------
# §4.1 textual claims
# ----------------------------------------------------------------------


def imu_overhead_rows(
    adpcm_sizes: tuple[int, ...] = (2, 4, 8),
    idea_sizes: tuple[int, ...] = (4, 8, 16, 32),
    jobs: int = 1,
    cache_dir=None,
) -> list[tuple[str, float]]:
    """SW(IMU) fraction of total time for every measured point.

    The paper: "the software execution time for IMU management ... is
    up to 2.5% of the total execution time."
    """
    rows = [
        (r.label, r.sw_imu_fraction)
        for r in figure8(adpcm_sizes, jobs=jobs, cache_dir=cache_dir)
    ]
    rows += [
        (r.label, r.sw_imu_fraction)
        for r in figure9(idea_sizes, jobs=jobs, cache_dir=cache_dir)
    ]
    return rows


@dataclass(frozen=True)
class TranslationOverheadResult:
    """HW-time share attributable to address translation."""

    label: str
    hw_ms: float
    ideal_hw_ms: float

    @property
    def overhead_fraction(self) -> float:
        """(translated - translation-free) / translated HW time."""
        return 1.0 - self.ideal_hw_ms / self.hw_ms if self.hw_ms else 0.0


def translation_overhead(
    workload: WorkloadSpec | None = None,
    jobs: int = 1,
    cache_dir=None,
) -> TranslationOverheadResult:
    """Translation overhead of the IDEA hardware time (§4.1, ~20 %).

    Measured by comparing the normal IMU against an idealised one with
    single-cycle translation — same datapath, same clock-domain
    synchronisers, no TLB translation latency.
    """
    workload = workload or idea_workload(8 * 1024)
    normal, ideal = _cells_for(
        workload,
        [{"access_cycles": 4}, {"access_cycles": 2}],
        jobs=jobs,
        cache_dir=cache_dir,
    )
    return TranslationOverheadResult(
        label=workload.name,
        hw_ms=normal.hw_ms,
        ideal_hw_ms=ideal.hw_ms,
    )


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AblationRow:
    """One configuration point of an ablation sweep."""

    label: str
    total_ms: float
    hw_ms: float
    sw_dp_ms: float
    sw_imu_ms: float
    page_faults: int
    prefetches: int = 0
    tlb_refills: int = 0
    dma_transfers: int = 0


def _ablation_row(label: str, cell: CellResult) -> AblationRow:
    return AblationRow(
        label=label,
        total_ms=cell.vim_ms,
        hw_ms=cell.hw_ms,
        sw_dp_ms=cell.sw_dp_ms,
        sw_imu_ms=cell.sw_imu_ms,
        page_faults=cell.page_faults,
        prefetches=cell.prefetches,
        tlb_refills=cell.tlb_refills,
        dma_transfers=cell.dma_transfers,
    )


def _ablation(
    workload: WorkloadSpec,
    labelled_variants: list[tuple[str, dict]],
    jobs: int = 1,
    cache_dir=None,
) -> list[AblationRow]:
    cells = _cells_for(
        workload,
        [variant for _, variant in labelled_variants],
        jobs=jobs,
        cache_dir=cache_dir,
    )
    return [
        _ablation_row(label, cell)
        for (label, _), cell in zip(labelled_variants, cells)
    ]


def ablation_pipelined(
    workload: WorkloadSpec | None = None, jobs: int = 1, cache_dir=None
) -> list[AblationRow]:
    """Multi-cycle vs pipelined IMU (the paper's announced improvement)."""
    workload = workload or idea_workload(8 * 1024)
    return _ablation(
        workload,
        [
            ("multi-cycle", {"pipelined_imu": False}),
            ("pipelined", {"pipelined_imu": True}),
        ],
        jobs=jobs,
        cache_dir=cache_dir,
    )


def ablation_policies(
    workload: WorkloadSpec | None = None, jobs: int = 1, cache_dir=None
) -> list[AblationRow]:
    """The replacement policies §3.3 enumerates, on one faulting run."""
    workload = workload or adpcm_workload(8 * 1024)
    return _ablation(
        workload,
        [(name, {"policy": name}) for name in policy_names()],
        jobs=jobs,
        cache_dir=cache_dir,
    )


def ablation_transfers(
    workload: WorkloadSpec | None = None, jobs: int = 1, cache_dir=None
) -> list[AblationRow]:
    """Double-transfer (measured) vs single-transfer (announced) vs
    DMA-descriptor (the modelled end point of §4.1's roadmap) VIM."""
    workload = workload or adpcm_workload(8 * 1024)
    return _ablation(
        workload,
        [
            (mode.name.lower(), {"transfer": mode.name.lower()})
            for mode in (TransferMode.DOUBLE, TransferMode.SINGLE, TransferMode.DMA)
        ],
        jobs=jobs,
        cache_dir=cache_dir,
    )


def ablation_prefetch(
    workload: WorkloadSpec | None = None, jobs: int = 1, cache_dir=None
) -> list[AblationRow]:
    """No prefetch vs conservative / aggressive / overlapped prefetch.

    The *overlapped* row models the paper's full future-work vision:
    prefetch copies proceed concurrently with coprocessor execution
    ("the latter allowing overlapping of processor and coprocessor
    execution"), so avoided faults turn into saved time.
    """
    workload = workload or adpcm_workload(8 * 1024)
    return _ablation(
        workload,
        [
            ("none", {"prefetch": "none"}),
            ("sequential", {"prefetch": "sequential"}),
            ("aggressive", {"prefetch": "aggressive"}),
            ("overlapped", {"prefetch": "overlapped"}),
        ],
        jobs=jobs,
        cache_dir=cache_dir,
    )


def ablation_page_size(
    input_bytes: int = 8 * 1024,
    page_sizes: tuple[int, ...] = (512, 1024, 2048, 4096),
    jobs: int = 1,
    cache_dir=None,
) -> list[AblationRow]:
    """Page-size sweep at fixed 16 KB DP-RAM capacity.

    The classic virtual-memory trade-off transplanted to the interface
    memory: small pages mean more faults (more OS round-trips), large
    pages mean fewer faults but coarser copies and fewer frames to
    allocate.  Not measured in the paper (the prototype fixes 2 KB);
    this quantifies how load-bearing that choice is.
    """
    workload = adpcm_workload(input_bytes)
    return _ablation(
        workload,
        [
            (f"{page}B", {"page_bytes": page, "dpram_bytes": 16 * 1024})
            for page in page_sizes
        ],
        jobs=jobs,
        cache_dir=cache_dir,
    )


def ablation_tlb_capacity(
    workload: WorkloadSpec | None = None,
    capacities: tuple[int, ...] = (2, 4, 8),
    jobs: int = 1,
    cache_dir=None,
) -> list[AblationRow]:
    """Shrinking the TLB below one-entry-per-frame (extra faults)."""
    workload = workload or adpcm_workload(4 * 1024)
    return _ablation(
        workload,
        [
            (f"tlb-{capacity}", {"tlb_capacity": capacity})
            for capacity in capacities
        ],
        jobs=jobs,
        cache_dir=cache_dir,
    )


# ----------------------------------------------------------------------
# Multi-tenant contention (ROADMAP: several sessions sharing one DP-RAM)
# ----------------------------------------------------------------------


def contention(
    app: str = "adpcm",
    input_kb: int = 4,
    tenant_counts: tuple[int, ...] = (1, 2, 3),
    repeats: int = 2,
    tenant_mix: str = "same",
    jobs: int = 1,
    cache_dir=None,
    **vim_kwargs,
) -> list[CellResult]:
    """Scale the tenant count on one DP-RAM: the contention sweep.

    One cell per entry of *tenant_counts*: the first (usually 1) is the
    uncontended baseline, the rest add processes that interleave
    executions through the round-robin scheduler and steal each
    other's resident pages.  Returns the raw :class:`CellResult` rows —
    their ``tenant_*`` tuples carry the per-tenant fault/evict/steal
    split the solo drivers cannot express.
    """
    fields = _vim_fields(**vim_kwargs)
    configs = [
        CellConfig(
            app=app,
            input_bytes=input_kb * 1024,
            tenants=count,
            # CellConfig canonicalises the mix to "same" for count == 1,
            # so the solo baseline shares one cache hash across mixes.
            tenant_mix=tenant_mix,
            tenant_repeats=repeats,
            **fields,
        )
        for count in tenant_counts
    ]
    return list(run_sweep(configs, jobs=jobs, cache_dir=cache_dir).rows)


# ----------------------------------------------------------------------
# Portability (§4: "only recompiling the module")
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PortabilityRow:
    """One SoC preset running the unchanged application."""

    soc: str
    dpram_kb: int
    total_ms: float
    page_faults: int


def portability(
    workload: WorkloadSpec | None = None, jobs: int = 1, cache_dir=None
) -> list[PortabilityRow]:
    """Run the identical workload on every SoC preset.

    Nothing about the workload (C-side mapping or core FSM) changes;
    only the platform description does — the paper's portability claim.
    Bigger dual-port memories absorb the working set and the fault
    count drops to zero.
    """
    workload = workload or adpcm_workload(8 * 1024)
    socs = ("EPXA1", "EPXA4", "EPXA10")
    cells = _cells_for(
        workload,
        [{"soc": name} for name in socs],
        jobs=jobs,
        cache_dir=cache_dir,
    )
    return [
        PortabilityRow(
            soc=name,
            dpram_kb=PRESETS[name].dpram_bytes // 1024,
            total_ms=cell.vim_ms,
            page_faults=cell.page_faults,
        )
        for name, cell in zip(socs, cells)
    ]
