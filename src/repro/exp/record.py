"""Record a grid cell's address trace (the ``repro record`` driver).

Runs one :class:`~repro.exp.spec.CellConfig` with a
:class:`~repro.trace.record.TraceRecorder` installed on the IMU and
writes the captured stream as a trace file
(:mod:`repro.trace.record`), which the ``trace`` app
(:mod:`repro.apps.tracefile`) can then replay as a sweep axis value.

The recording is deterministic: the same cell config always produces
a byte-identical trace file (and therefore the same digest), because
the simulation is deterministic, object images are seeded, and the
file format carries no timestamps.  That property is what lets CI
re-record its smoke trace on every run and still hit the same cached
replay cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.runner import run_vim
from repro.core.system import System
from repro.core.tenancy import run_tenants
from repro.errors import ReproError
from repro.exp.cell import (
    _TRANSFER_MODES,
    build_prefetcher,
    build_soc,
    build_tenant_workloads,
    build_workload,
)
from repro.exp.spec import CellConfig
from repro.os.vim.objects import Direction
from repro.os.workload import Workload
from repro.trace.record import TraceFile, TraceObject, TraceRecorder, write_trace

#: Direction -> trace-file direction string.
_DIRECTION_NAMES = {
    Direction.IN: "in",
    Direction.OUT: "out",
    Direction.INOUT: "inout",
}


@dataclass(frozen=True)
class RecordOutcome:
    """What ``record_cell`` captured and where it put it."""

    path: Path
    trace: TraceFile

    @property
    def digest(self) -> str:
        return self.trace.digest


def _trace_objects(workloads: list[Workload]) -> list[TraceObject]:
    """The trace object table: every tenant's objects, initial images.

    OUT objects have no input data; they record their zeroed
    allocation (what :class:`~repro.os.vmm.UserMemory` hands out), so
    replay reads are well-defined from op zero.
    """
    objects = []
    for tenant, workload in enumerate(workloads):
        for spec in workload.spec.objects:
            objects.append(
                TraceObject(
                    tenant=tenant,
                    obj=spec.obj_id,
                    name=spec.name,
                    size=spec.size,
                    direction=_DIRECTION_NAMES[spec.direction],
                    data=spec.data if spec.data is not None else bytes(spec.size),
                )
            )
    return objects


def record_cell(
    config: CellConfig, path: str | Path, force: bool = False
) -> RecordOutcome:
    """Run *config* once under a recorder and write its trace to *path*.

    Only the VIM version runs (a trace is the virtualised access
    stream; the software and typical versions have no IMU to record),
    with outputs verified bit-exact against the software reference
    before the trace is written — a trace of a wrong run would be a
    durable artifact of the wrongness.
    """
    if config.replicates > 1:
        raise ReproError(
            "record needs a single run to trace; use --replicates 1 "
            "(a replicated cell runs once per derived seed)"
        )
    recorder = TraceRecorder()
    soc = build_soc(config)
    if config.tenants > 1 or config.tenant_repeats > 1:
        workloads = build_tenant_workloads(config)
        result = run_tenants(
            System(soc, engine=config.engine),
            workloads,
            policy=config.policy,
            transfer_mode=_TRANSFER_MODES[config.transfer],
            pipelined_imu=config.pipelined_imu,
            access_cycles=config.access_cycles,
            prefetcher=build_prefetcher(config),
            tlb_capacity=config.tlb_capacity,
            sched=config.sched,
            recorder=recorder,
        )
        # Shared-interface accesses are tagged with the tenant process's
        # pid; the trace stores workload-order tenant indices instead,
        # because pids are a spawn-order artifact.
        asid_to_tenant = {
            run.stats.asid: index for index, run in enumerate(result.tenants)
        }
    else:
        workload = build_workload(config)
        workloads = [Workload(spec=workload)]
        run = run_vim(
            System(soc, engine=config.engine),
            workload,
            policy=config.policy,
            transfer_mode=_TRANSFER_MODES[config.transfer],
            pipelined_imu=config.pipelined_imu,
            access_cycles=config.access_cycles,
            prefetcher=build_prefetcher(config),
            tlb_capacity=config.tlb_capacity,
            recorder=recorder,
        )
        run.verify()
        asid_to_tenant = {0: 0}
    meta = {
        "source": "repro record",
        "label": config.label(),
        "cell": config.to_dict(),
    }
    trace = write_trace(
        path,
        meta=meta,
        objects=_trace_objects(workloads),
        ops=recorder.ops_for(asid_to_tenant),
        force=force,
    )
    return RecordOutcome(path=Path(path), trace=trace)
