"""Incremental result cache: one JSON file per executed cell.

Cache entries are keyed by :func:`~repro.exp.spec.config_hash`, which
covers every config field plus a schema version, so a re-run only
simulates cells whose configuration (or result schema) changed.  Each
file stores the full config alongside the result and is verified on
load — a hash collision or a hand-edited file degrades to a miss, never
to silently wrong numbers.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exp.results import CellResult
from repro.exp.spec import CACHE_VERSION, CellConfig


class SweepCache:
    """A directory of ``<config-hash>.json`` cell results.

    Parameters
    ----------
    root : str or Path
        Cache directory; created (with parents) if missing.

    Notes
    -----
    ``len(cache)`` counts the stored entries.  Every entry embeds the
    full config and :data:`~repro.exp.spec.CACHE_VERSION`, so a schema
    bump, a hash collision or a hand-edited file degrades to a miss —
    never to silently wrong numbers.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, config: CellConfig) -> Path:
        return self.root / f"{config.key()}.json"

    def load(self, config: CellConfig) -> CellResult | None:
        """Look up the cached result for one configuration.

        Parameters
        ----------
        config : CellConfig
            The configuration whose hash names the cache file.

        Returns
        -------
        CellResult or None
            The verified cached row, or ``None`` on any miss (absent
            file, unreadable JSON, version or config mismatch).
        """
        path = self._path(config)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if payload.get("version") != CACHE_VERSION:
            return None
        try:
            result = CellResult.from_dict(payload["result"])
        except Exception:
            return None
        if result.config != config:
            return None
        return result

    def store(self, result: CellResult) -> Path:
        """Persist one executed cell.

        Parameters
        ----------
        result : CellResult
            The row to store; its embedded config provides the key.

        Returns
        -------
        Path
            The JSON file written.
        """
        path = self._path(result.config)
        payload = {"version": CACHE_VERSION, "result": result.to_dict()}
        path.write_text(
            json.dumps(payload, sort_keys=True, indent=1) + "\n", encoding="utf-8"
        )
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
