"""Incremental result cache: one JSON file per executed cell.

Cache entries are keyed by :func:`~repro.exp.spec.config_hash`, which
covers every config field plus a schema version, so a re-run only
simulates cells whose configuration (or result schema) changed.  Each
file stores the full config alongside the result and is verified on
load — a hash collision or a hand-edited file degrades to a miss, never
to silently wrong numbers.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

from repro.errors import ReproError
from repro.exp.results import CellResult
from repro.exp.spec import CACHE_VERSION, CellConfig


def parse_entry(payload) -> CellResult | None:
    """Verify one cache-entry payload; the single gatekeeper.

    Every consumer of cache entries (:meth:`SweepCache.load`, the
    shard merger, the report loader) funnels through this check so
    they cannot drift apart in what they accept.

    Parameters
    ----------
    payload : object
        A decoded cache-entry JSON payload
        (``{"version": ..., "result": ...}``).

    Returns
    -------
    CellResult or None
        The verified row, or ``None`` if the payload is not a dict,
        carries a different :data:`~repro.exp.spec.CACHE_VERSION`,
        fails :meth:`~repro.exp.results.CellResult.from_dict`, or
        stores a key that does not match its own config's hash.
    """
    if not isinstance(payload, dict) or payload.get("version") != CACHE_VERSION:
        return None
    try:
        result = CellResult.from_dict(payload["result"])
    except Exception:
        return None
    if result.key != result.config.key():
        return None
    return result


#: Entry statuses :func:`iter_classified` distinguishes: a loadable
#: row, a structurally sound entry written under a *different*
#: :data:`~repro.exp.spec.CACHE_VERSION`, or anything else (corrupt
#: JSON, failed round-trip, hand-renamed file).
ENTRY_STATUSES = ("ok", "stale-version", "invalid")


def iter_classified(root: str | Path):
    """Yield ``(path, status, CellResult | None)`` for entries of *root*.

    The one shared directory walk for cache consumers (the shard
    merger, the report loader, the cross-run differ): entries are
    visited in sorted filename order and each payload goes through
    :func:`parse_entry`.  *status* is one of :data:`ENTRY_STATUSES`;
    the result is non-``None`` only for ``"ok"``.  A version mismatch
    is classified ``"stale-version"`` (the differ reports those
    distinctly — they usually mean a ``CACHE_VERSION`` bump, not
    corruption); a file whose name does not match its own config hash
    is ``"invalid"`` — a hand-renamed entry is skipped, never re-keyed.
    """
    for path in sorted(Path(root).glob("*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            yield path, "invalid", None
            continue
        result = parse_entry(payload)
        if result is not None and result.key != path.stem:
            result = None
        if result is not None:
            yield path, "ok", result
        elif (
            isinstance(payload, dict)
            and "version" in payload
            and payload.get("version") != CACHE_VERSION
        ):
            yield path, "stale-version", None
        else:
            yield path, "invalid", None


def iter_entries(root: str | Path):
    """Yield ``(path, CellResult | None)`` for every entry under *root*.

    The status-blind face of :func:`iter_classified`, for consumers
    that only distinguish loadable from not (the merger skips both
    stale and corrupt files the same way).
    """
    for path, _status, result in iter_classified(root):
        yield path, result


def iter_dump_rows(path: str | Path):
    """Yield ``(origin, CellResult | None)`` for a ``--json`` row dump.

    The one reader of ``repro sweep --json`` dump files, shared by the
    shard merger and the cross-run differ so they cannot drift in what
    they accept: the file must be a JSON list of bare result rows,
    each adopted under the current :data:`~repro.exp.spec.CACHE_VERSION`
    and verified through :func:`parse_entry` (an unparsable row yields
    ``None``).  *origin* is ``"<path>[<index>]"`` for messages.

    Raises
    ------
    ReproError
        If the file is unreadable or not a JSON list.
    """
    path = Path(path)
    try:
        rows = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise ReproError(f"unreadable row dump {path}: {error}")
    if not isinstance(rows, list):
        raise ReproError(
            f"{path} is not a cache directory or a "
            "`repro sweep --json` row dump"
        )
    for index, row in enumerate(rows):
        origin = f"{path}[{index}]"
        yield origin, parse_entry({"version": CACHE_VERSION, "result": row})


class SweepCache:
    """A directory of ``<config-hash>.json`` cell results.

    Parameters
    ----------
    root : str or Path
        Cache directory; created (with parents) if missing.

    Notes
    -----
    ``len(cache)`` counts the **loadable** entries — a stale-version
    or corrupt ``*.json`` file is not an entry, exactly as it is not a
    row to :meth:`load` or to any reader above.  Every entry embeds
    the full config and :data:`~repro.exp.spec.CACHE_VERSION`, so a
    schema bump, a hash collision or a hand-edited file degrades to a
    miss — never to silently wrong numbers.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, config: CellConfig) -> Path:
        return self.root / f"{config.key()}.json"

    def load(self, config: CellConfig) -> CellResult | None:
        """Look up the cached result for one configuration.

        Parameters
        ----------
        config : CellConfig
            The configuration whose hash names the cache file.

        Returns
        -------
        CellResult or None
            The verified cached row, or ``None`` on any miss (absent
            file, unreadable JSON, version or config mismatch).
        """
        path = self._path(config)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        result = parse_entry(payload)
        if result is None:
            return None
        if replace(result.config, engine=config.engine) != config:
            # The engine field is excluded from the config hash because
            # backends are result-equivalent: a row priced by either
            # backend serves a sweep running the other.  Any *other*
            # config mismatch is a collision or corruption — a miss.
            return None
        return result

    def store(self, result: CellResult) -> Path:
        """Persist one executed cell.

        Parameters
        ----------
        result : CellResult
            The row to store; its embedded config provides the key.

        Returns
        -------
        Path
            The JSON file written.
        """
        path = self._path(result.config)
        payload = {"version": CACHE_VERSION, "result": result.to_dict()}
        path.write_text(
            json.dumps(payload, sort_keys=True, indent=1) + "\n", encoding="utf-8"
        )
        return path

    def __len__(self) -> int:
        return sum(
            1 for _path, status, _result in iter_classified(self.root)
            if status == "ok"
        )
