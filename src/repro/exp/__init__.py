"""The sweep/scenario engine: every experiment is a grid of cells.

The paper's evaluation is a design space — {workload} x {input size} x
{page size} x {policy} x {transfer mode} x {prefetch} x {TLB capacity}
x {SoC} — and each point of it is an independent, deterministic
simulation.  This package makes that structure first-class:

* :class:`~repro.exp.spec.CellConfig` — one grid point, a frozen
  bag of primitives (picklable, hashable, JSON-serialisable);
* :class:`~repro.exp.spec.SweepSpec` — a declarative axes product
  that expands to a list of cells;
* :func:`~repro.exp.cell.run_cell` — execute one cell (software
  reference, VIM-based run, optionally the typical coprocessor);
* :func:`~repro.exp.sweep.run_sweep` — execute a whole grid across a
  ``multiprocessing`` pool, with an incremental result store keyed by
  config hash;
* :mod:`~repro.exp.store` — the result-store layer: one
  :class:`~repro.exp.store.ResultStore` protocol, a JSON-directory
  backend and an append-only SQLite backend, selected by path
  (``repro sweep --store``, ``repro migrate``);
* :func:`~repro.exp.spec.shard_cells` — deterministic cross-machine
  grid partitioning (``repro sweep --shard I/N``);
* :mod:`~repro.exp.merge` — recombine shard stores / row dumps into
  one store as key-sorted streams, with conflict detection;
* :mod:`~repro.exp.report` — render the paper's tables straight from
  a result store, no re-simulation (``repro report``);
* :mod:`~repro.exp.record` — run one cell under a trace recorder and
  write its address-trace file (``repro record``), replayable as the
  ``trace`` app;
* :mod:`~repro.exp.diff` — compare two stores into a typed regression
  table with tolerance-gated exit semantics (``repro diff``), per
  cell or aggregated per axis group (``--group-by``);
* :mod:`~repro.exp.history` — per-run metric time series over an
  append-only store (``repro history``);
* :mod:`~repro.exp.leasing`, :mod:`~repro.exp.service` and
  :mod:`~repro.exp.worker` — the distributed executor: an HTTP
  coordinator that dedups submissions against its store and leases
  novel cells to a fault-tolerant pull-based worker pool
  (``repro serve`` / ``repro worker`` / ``repro submit``);
* :mod:`~repro.exp.api` — the paper's figure/ablation drivers as thin
  sweeps over this engine.

Adding a scenario to the repository means adding an axis value here,
not writing a new driver file.
"""

from repro.exp.api import (
    AblationRow,
    AppRow,
    Figure7Result,
    PortabilityRow,
    TranslationOverheadResult,
    ablation_page_size,
    ablation_pipelined,
    ablation_policies,
    ablation_prefetch,
    ablation_tlb_capacity,
    ablation_transfers,
    contention,
    figure7,
    figure8,
    figure9,
    imu_overhead_rows,
    portability,
    translation_overhead,
)
from repro.exp.cache import SweepCache
from repro.exp.cell import build_tenant_workloads, run_cell
from repro.exp.diff import (
    DiffResult,
    MetricDelta,
    diff_caches,
    diff_rows,
    diff_stores,
    load_side,
    render_diff,
    scalar_delta,
)
from repro.exp.history import (
    HistoryResult,
    HistorySeries,
    load_history,
    render_history,
)
from repro.exp.merge import (
    MergeConflict,
    MergeSummary,
    merge_into,
    migrate_store,
)
from repro.exp.record import RecordOutcome, record_cell
from repro.exp.report import (
    FORMATS,
    bar_chart,
    csv_table,
    delta_bar_chart,
    format_table,
    load_cache_rows,
    markdown_table,
    render_report,
    render_table,
    report_from_cache,
    stacked_bar_chart,
    stream_report,
)
from repro.exp.results import CellResult
from repro.exp.spec import (
    CellConfig,
    SweepSpec,
    config_hash,
    grid_fingerprint,
    shard_cells,
)
from repro.exp.store import (
    STORES,
    JsonDirStore,
    ResultStore,
    RunRecord,
    SqliteStore,
    StoreCounts,
    open_store,
    store_kind_of,
)
from repro.exp.sweep import SweepResult, run_sweep

__all__ = [
    "AblationRow",
    "AppRow",
    "CellConfig",
    "CellResult",
    "DiffResult",
    "FORMATS",
    "Figure7Result",
    "HistoryResult",
    "HistorySeries",
    "JsonDirStore",
    "MergeConflict",
    "MergeSummary",
    "MetricDelta",
    "PortabilityRow",
    "RecordOutcome",
    "ResultStore",
    "RunRecord",
    "STORES",
    "SqliteStore",
    "StoreCounts",
    "SweepCache",
    "SweepResult",
    "SweepSpec",
    "TranslationOverheadResult",
    "ablation_page_size",
    "ablation_pipelined",
    "ablation_policies",
    "ablation_prefetch",
    "ablation_tlb_capacity",
    "ablation_transfers",
    "bar_chart",
    "build_tenant_workloads",
    "config_hash",
    "contention",
    "csv_table",
    "delta_bar_chart",
    "diff_caches",
    "diff_rows",
    "diff_stores",
    "figure7",
    "figure8",
    "figure9",
    "format_table",
    "grid_fingerprint",
    "imu_overhead_rows",
    "load_cache_rows",
    "markdown_table",
    "load_history",
    "load_side",
    "merge_into",
    "migrate_store",
    "open_store",
    "portability",
    "record_cell",
    "render_diff",
    "render_history",
    "render_report",
    "render_table",
    "report_from_cache",
    "run_cell",
    "run_sweep",
    "scalar_delta",
    "shard_cells",
    "stacked_bar_chart",
    "store_kind_of",
    "stream_report",
    "translation_overhead",
]
