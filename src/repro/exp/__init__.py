"""The sweep/scenario engine: every experiment is a grid of cells.

The paper's evaluation is a design space — {workload} x {input size} x
{page size} x {policy} x {transfer mode} x {prefetch} x {TLB capacity}
x {SoC} — and each point of it is an independent, deterministic
simulation.  This package makes that structure first-class:

* :class:`~repro.exp.spec.CellConfig` — one grid point, a frozen
  bag of primitives (picklable, hashable, JSON-serialisable);
* :class:`~repro.exp.spec.SweepSpec` — a declarative axes product
  that expands to a list of cells;
* :func:`~repro.exp.cell.run_cell` — execute one cell (software
  reference, VIM-based run, optionally the typical coprocessor);
* :func:`~repro.exp.sweep.run_sweep` — execute a whole grid across a
  ``multiprocessing`` pool, with an incremental JSON result cache
  keyed by config hash;
* :mod:`~repro.exp.api` — the paper's figure/ablation drivers as thin
  sweeps over this engine.

Adding a scenario to the repository means adding an axis value here,
not writing a new driver file.
"""

from repro.exp.api import (
    AblationRow,
    AppRow,
    Figure7Result,
    PortabilityRow,
    TranslationOverheadResult,
    ablation_page_size,
    ablation_pipelined,
    ablation_policies,
    ablation_prefetch,
    ablation_tlb_capacity,
    ablation_transfers,
    contention,
    figure7,
    figure8,
    figure9,
    imu_overhead_rows,
    portability,
    translation_overhead,
)
from repro.exp.cache import SweepCache
from repro.exp.cell import build_tenant_workloads, run_cell
from repro.exp.results import CellResult
from repro.exp.spec import CellConfig, SweepSpec, config_hash
from repro.exp.sweep import SweepResult, run_sweep

__all__ = [
    "AblationRow",
    "AppRow",
    "CellConfig",
    "CellResult",
    "Figure7Result",
    "PortabilityRow",
    "SweepCache",
    "SweepResult",
    "SweepSpec",
    "TranslationOverheadResult",
    "ablation_page_size",
    "ablation_pipelined",
    "ablation_policies",
    "ablation_prefetch",
    "ablation_tlb_capacity",
    "ablation_transfers",
    "build_tenant_workloads",
    "config_hash",
    "contention",
    "figure7",
    "figure8",
    "figure9",
    "imu_overhead_rows",
    "portability",
    "run_cell",
    "run_sweep",
    "translation_overhead",
]
