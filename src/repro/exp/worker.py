"""The pull-based sweep worker: lease, simulate, report, repeat.

``repro worker URL`` runs this loop against a coordinator
(:mod:`repro.exp.service`).  Workers are deliberately stateless and
anonymous: all scheduling state lives on the coordinator's lease
board, so a worker may be killed at any instant (CI does exactly that,
with ``kill -9``) and the sweep still completes — the lease expires
and the cell is re-issued to whichever worker asks next.

While a cell simulates, a daemon heartbeat thread renews the lease at
a third of its timeout, so long cells are not misread as worker death;
a cell that *raises* is reported through ``/api/fail`` (the board
re-queues it with backoff and a bounded attempt budget) rather than
crashing the worker loop.
"""

from __future__ import annotations

import socket
import sys
import threading
import time
from typing import Callable

from repro.errors import ReproError
from repro.exp.cell import run_cell
from repro.exp.service import call
from repro.exp.spec import CellConfig


def _default_log(message: str) -> None:
    print(f"worker: {message}", file=sys.stderr, flush=True)


def _heartbeat_loop(url: str, lease_id: str, interval: float,
                    done: threading.Event, log: Callable[[str], None]) -> None:
    while not done.wait(interval):
        try:
            reply = call(url, "/api/heartbeat", {"lease": lease_id})
        except ReproError as error:
            log(f"heartbeat for {lease_id} failed: {error}")
            continue
        if not reply.get("ok"):
            # The lease expired (or the cell was finished elsewhere);
            # the simulation result is still worth reporting — cells
            # are deterministic, so the coordinator will accept a late
            # identical completion.
            log(f"lease {lease_id} is stale; finishing anyway")
            return


def work_one(url: str, worker_id: str,
             log: Callable[[str], None] = _default_log) -> bool:
    """Lease and run one cell; ``False`` when no work was available."""
    reply = call(url, "/api/lease", {"worker": worker_id})
    lease = reply.get("lease")
    if not lease:
        return False
    lease_id = lease["lease"]
    done = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(url, lease_id, max(lease["timeout"] / 3.0, 0.1), done, log),
        daemon=True,
    )
    beat.start()
    try:
        config = CellConfig.from_dict(lease["config"])
        log(f"running cell {lease['key']} under {lease_id}")
        result = run_cell(config)
    except Exception as error:  # report, re-queue, keep the loop alive
        done.set()
        call(url, "/api/fail", {"lease": lease_id, "error": str(error)})
        log(f"cell {lease['key']} failed: {error}")
        return True
    done.set()
    reply = call(url, "/api/complete",
                 {"lease": lease_id, "result": result.to_dict()})
    if reply.get("stale"):
        log(f"late completion for {lease['key']} (lease had expired)")
    else:
        log(f"completed cell {lease['key']}")
    return True


def run_worker(
    url: str,
    worker_id: str | None = None,
    poll: float = 0.5,
    stop: threading.Event | None = None,
    max_idle: float | None = None,
    log: Callable[[str], None] = _default_log,
) -> int:
    """``repro worker``: pull cells from *url* until stopped.

    Parameters
    ----------
    url : str
        Coordinator base URL.
    worker_id : str, optional
        Name reported on leases (defaults to ``host-pid``); purely
        diagnostic — identity never enters result payloads.
    poll : float
        Seconds to sleep when the coordinator has nothing leasable.
    stop : threading.Event, optional
        Cooperative shutdown signal (used by in-process test workers).
    max_idle : float, optional
        Exit after this many consecutive idle seconds (``--max-idle``);
        by default the worker polls forever.

    Returns
    -------
    int
        Cells attempted (completed or failed) over the worker's life.
    """
    if worker_id is None:
        import os

        worker_id = f"{socket.gethostname()}-{os.getpid()}"
    log(f"{worker_id} polling {url}")
    attempted = 0
    idle_since: float | None = None
    while stop is None or not stop.is_set():
        try:
            worked = work_one(url, worker_id, log=log)
        except ReproError as error:
            # A dead/draining coordinator is the worker's stop signal.
            log(f"{error}; exiting")
            break
        if worked:
            attempted += 1
            idle_since = None
            continue
        now = time.monotonic()
        if idle_since is None:
            idle_since = now
        if max_idle is not None and now - idle_since >= max_idle:
            log(f"{worker_id} idle for {max_idle:.1f}s; exiting")
            break
        if stop is not None:
            stop.wait(poll)
        else:
            time.sleep(poll)
    return attempted
