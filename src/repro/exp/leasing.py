"""The lease board: pending-cell state for the sweep service.

The distributed executor (:mod:`repro.exp.service`) is pull-based:
workers ask the coordinator for work, and the coordinator hands out
**leases** — a cell plus a deadline.  This module is the state machine
behind that, kept free of HTTP, threads and wall clocks so the whole
fault-tolerance protocol is unit-testable with an injected clock:

* a cell enters as ``queued``, is ``leased`` to exactly one worker at
  a time, and ends ``done`` (result ingested) or ``failed`` (attempt
  budget exhausted, or a result conflict);
* a lease must be renewed by heartbeat (or completed) before its
  deadline; an expired lease re-queues the cell for any other worker
  — this is what makes a ``kill -9``'d worker survivable;
* every re-queue backs off exponentially (``backoff * 2**(attempt-1)``
  before the cell is leasable again), and after ``max_attempts``
  granted leases the cell is declared failed instead of looping
  forever on a poisoned input;
* results of *expired* leases are still usable: cells are
  deterministic, so a late completion from a presumed-dead worker is
  accepted (and, if the cell was re-computed meanwhile, the duplicate
  is cross-checked upstream through the same conflict detection the
  shard merger uses).

The board itself is not thread-safe; the service serialises access
with one lock (board operations are all O(cells) or better, so the
lock is never held across simulation or I/O).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

#: Task lifecycle states (``counts()`` reports one bucket per state).
TASK_STATES = ("queued", "leased", "done", "failed")


@dataclass
class Task:
    """One pending cell and its scheduling state."""

    key: str  #: config hash (the cell's identity everywhere)
    config: dict  #: the CellConfig dict shipped to workers
    status: str = "queued"  #: one of :data:`TASK_STATES`
    attempts: int = 0  #: leases granted so far
    not_before: float = 0.0  #: earliest board time the cell is leasable
    lease_id: str | None = None  #: current lease, when ``leased``
    worker: str | None = None  #: holder of the current lease
    deadline: float = 0.0  #: board time the current lease expires
    error: str | None = None  #: terminal diagnosis, when ``failed``


@dataclass(frozen=True)
class Lease:
    """What a worker receives: a cell, an identity, and a deadline."""

    lease_id: str
    key: str
    config: dict
    worker: str
    timeout: float  #: seconds until expiry without heartbeat/complete


@dataclass(frozen=True)
class BoardCounts:
    """Cell counts per lifecycle state."""

    queued: int = 0
    leased: int = 0
    done: int = 0
    failed: int = 0

    @property
    def pending(self) -> int:
        """Cells still owed a result (queued or leased)."""
        return self.queued + self.leased


class LeaseBoard:
    """Lease/heartbeat/expiry bookkeeping for pending cells.

    Parameters
    ----------
    lease_timeout : float
        Seconds a lease lives without a heartbeat.  Renewals reset the
        full window.
    max_attempts : int
        Lease grants a cell may consume before it is declared failed
        (a cell that kills its worker every time must not wedge the
        service forever).
    backoff : float
        Base of the re-queue backoff: after the *n*-th expired or
        failed attempt the cell is not leasable for
        ``backoff * 2**(n-1)`` seconds.
    clock : callable
        Monotonic time source (injectable for tests).
    on_event : callable, optional
        ``on_event(message)`` observer for lease-lifecycle events
        (grants, expiries, failures) — the service routes this to its
        log so CI can assert that a re-lease actually happened.
    """

    def __init__(
        self,
        lease_timeout: float = 30.0,
        max_attempts: int = 3,
        backoff: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        on_event: Callable[[str], None] | None = None,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError(f"lease timeout must be > 0, got {lease_timeout}")
        if max_attempts < 1:
            raise ValueError(f"max attempts must be >= 1, got {max_attempts}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        self.lease_timeout = lease_timeout
        self.max_attempts = max_attempts
        self.backoff = backoff
        self._clock = clock
        self._on_event = on_event or (lambda message: None)
        self._tasks: dict[str, Task] = {}  # key -> task
        self._by_lease: dict[str, Task] = {}  # current lease id -> task
        self._lease_history: dict[str, str] = {}  # every lease id -> key
        self._granted = 0  # lease id counter

    # -- intake --------------------------------------------------------

    def add(self, key: str, config: dict) -> bool:
        """Track *key* as a pending cell; ``False`` if already known.

        A failed cell is re-queued by a fresh submission (the new job
        explicitly asked for it, so it deserves a fresh attempt
        budget); done cells stay done.
        """
        task = self._tasks.get(key)
        if task is not None:
            if task.status == "failed":
                task.status = "queued"
                task.attempts = 0
                task.not_before = 0.0
                task.error = None
                return True
            return False
        self._tasks[key] = Task(key=key, config=dict(config))
        return True

    # -- the worker-facing protocol ------------------------------------

    def lease(self, worker: str) -> Lease | None:
        """Grant the next leasable cell to *worker*, or ``None``.

        Cells are granted in sorted-key order (deterministic across
        coordinator runs, like every other ordering in the sweep
        stack), skipping cells inside their backoff window.
        """
        now = self._expire()
        for key in sorted(self._tasks):
            task = self._tasks[key]
            if task.status != "queued" or task.not_before > now:
                continue
            task.attempts += 1
            self._granted += 1
            lease_id = f"L{self._granted}-{key[:8]}"
            task.status = "leased"
            task.lease_id = lease_id
            task.worker = worker
            task.deadline = now + self.lease_timeout
            self._by_lease[lease_id] = task
            self._lease_history[lease_id] = key
            self._on_event(
                f"leased cell {key} to {worker} as {lease_id} "
                f"(attempt {task.attempts}/{self.max_attempts})"
            )
            return Lease(
                lease_id=lease_id,
                key=key,
                config=dict(task.config),
                worker=worker,
                timeout=self.lease_timeout,
            )
        return None

    def heartbeat(self, lease_id: str) -> bool:
        """Renew a live lease's deadline; ``False`` for a stale one."""
        now = self._expire()
        task = self._by_lease.get(lease_id)
        if task is None:
            return False
        task.deadline = now + self.lease_timeout
        return True

    def task_for(self, lease_id: str) -> Task | None:
        """The task a lease (live or historic) was granted for."""
        self._expire()
        key = self._lease_history.get(lease_id)
        return self._tasks.get(key) if key is not None else None

    def mark_done(self, key: str) -> None:
        """Terminal success: the cell's result has been ingested."""
        task = self._tasks[key]
        self._release(task)
        task.status = "done"
        task.error = None

    def mark_failed(self, key: str, error: str) -> None:
        """Terminal failure (e.g. a result conflict): fail the cell now."""
        task = self._tasks[key]
        self._release(task)
        task.status = "failed"
        task.error = error
        self._on_event(f"cell {key} failed: {error}")

    def fail(self, lease_id: str, error: str) -> bool:
        """Worker-reported attempt failure: re-queue with backoff.

        Returns ``False`` for a stale lease (the cell moved on — an
        expiry already re-queued it, or another worker finished it);
        the report is then ignored.
        """
        now = self._expire()
        task = self._by_lease.get(lease_id)
        if task is None:
            return False
        self._retry(task, now, f"worker {task.worker} reported: {error}")
        return True

    # -- introspection -------------------------------------------------

    def counts(self) -> BoardCounts:
        """Cells per lifecycle state (after lazy expiry)."""
        self._expire()
        buckets = dict.fromkeys(TASK_STATES, 0)
        for task in self._tasks.values():
            buckets[task.status] += 1
        return BoardCounts(**buckets)

    def status_of(self, key: str) -> str | None:
        """Lifecycle state of one cell, or ``None`` if untracked."""
        self._expire()
        task = self._tasks.get(key)
        return task.status if task is not None else None

    def errors(self) -> dict[str, str]:
        """Terminal diagnosis per failed cell."""
        self._expire()
        return {
            key: task.error or "failed"
            for key, task in self._tasks.items()
            if task.status == "failed"
        }

    # -- internals -----------------------------------------------------

    def _release(self, task: Task) -> None:
        if task.lease_id is not None:
            self._by_lease.pop(task.lease_id, None)
        task.lease_id = None
        task.worker = None

    def _retry(self, task: Task, now: float, reason: str) -> None:
        """Re-queue a leased cell, or fail it when the budget is gone."""
        lease_id, worker = task.lease_id, task.worker
        self._release(task)
        if task.attempts >= self.max_attempts:
            task.status = "failed"
            task.error = (
                f"gave up after {task.attempts} attempt(s); last: {reason}"
            )
            self._on_event(f"cell {task.key} failed: {task.error}")
            return
        task.status = "queued"
        task.not_before = now + self.backoff * 2 ** (task.attempts - 1)
        self._on_event(
            f"lease {lease_id} on cell {task.key} held by {worker} "
            f"{reason}; requeued (attempt {task.attempts}/"
            f"{self.max_attempts}, leasable in "
            f"{task.not_before - now:.1f}s)"
        )

    def _expire(self) -> float:
        """Re-queue every lease past its deadline; returns *now*.

        Called lazily from every public operation, so the board needs
        no timer thread — the next worker interaction (or status poll)
        surfaces the expiry.
        """
        now = self._clock()
        for task in list(self._by_lease.values()):
            if task.deadline < now:
                self._retry(task, now, "expired")
        return now
