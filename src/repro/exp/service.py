"""Sweep-as-a-service: the HTTP coordinator and its client.

This is the distributed generalisation of ``repro sweep --shard I/N``:
instead of pre-partitioning a grid across machines, a lightweight
coordinator accepts :class:`~repro.exp.spec.SweepSpec` submissions,
dedups them against its :class:`~repro.exp.store.ResultStore` by
config hash (**a cache hit costs zero simulation** — the "millions of
users" path), and leases only the genuinely novel cells to a
pull-based worker pool (:mod:`repro.exp.worker`) with heartbeats,
per-lease timeouts and bounded retry (:mod:`repro.exp.leasing`).
Results are ingested through the same equality contract the shard
merger uses (:func:`~repro.exp.merge.same_result`), so the service
store is byte-identical to what a local ``repro sweep`` over the same
grid would have written — the property the ``sweep-service`` CI job
asserts with ``repro diff``.

Everything is stdlib: ``http.server.ThreadingHTTPServer`` with a JSON
protocol, ``urllib`` on the client side.  The wire format is dicts of
primitives produced by :meth:`CellConfig.to_dict` /
:meth:`CellResult.to_dict`, which already round-trip exactly (floats
via ``repr``), so distribution cannot perturb a single byte of a row.

Protocol (all bodies JSON)::

    GET  /api/health            -> {"ok": true}
    POST /api/submit            {"cells": [config..]} -> {"job", counts}
    GET  /api/status            -> global board counts + per-job states
    GET  /api/status/<job>      -> one job's progress counts
    GET  /api/results/<job>     -> {"rows": [result..]} (submit order)
    POST /api/lease             {"worker": id} -> {"lease": {..} | null}
    POST /api/heartbeat         {"lease": id} -> {"ok": bool}
    POST /api/complete          {"lease": id, "result": {..}} -> {"ok"}
    POST /api/fail              {"lease": id, "error": msg} -> {"ok"}

Run identity (lease ids, worker names, attempt counts, timestamps)
never enters result payloads or :func:`~repro.exp.spec.config_hash` —
the hash covers *what* was computed, never *who* computed it or
*when*, which is exactly why a service-run store and a local store
can be diffed row for row.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable
from urllib import error as urlerror
from urllib import request as urlrequest

from repro.errors import ReproError
from repro.exp.leasing import LeaseBoard
from repro.exp.merge import same_result
from repro.exp.results import CellResult
from repro.exp.spec import CellConfig
from repro.exp.store import open_store

#: Job lifecycle states reported by ``/api/status``.
JOB_STATES = ("running", "done", "failed")


@dataclass
class Job:
    """One accepted submission: an ordered grid plus dedup bookkeeping.

    ``keys`` preserves the submitted cell order *including duplicates*
    (results are returned in exactly that order, mirroring
    :func:`~repro.exp.sweep.run_sweep`'s grid-order rows); ``configs``
    maps each unique key to its config for store reads; ``hits`` are
    the keys served from the store at submit time — they cost zero
    simulation and are reported as "from cache" exactly like a local
    incremental sweep would.
    """

    job_id: int
    keys: list[str]  #: submitted order, duplicates preserved
    configs: dict[str, CellConfig] = field(default_factory=dict)
    hits: set[str] = field(default_factory=set)


class SweepService:
    """Coordinator state: one result store, one lease board, N jobs.

    Thread-safe: every public method takes the one service lock, which
    is never held across simulation (the coordinator never simulates)
    and only across single-row store I/O.

    Parameters
    ----------
    store_path : str or Path
        The service's result store (JSON directory or ``.sqlite``
        file), created if missing.  This is the store a finished
        submission's rows are read back from, and the artifact CI
        diffs against a local run.
    store_kind : str, optional
        Force the backend of a not-yet-existing *store_path*
        (``repro serve --store``).
    lease_timeout, max_attempts, backoff : float, int, float
        The fault-tolerance knobs, passed to
        :class:`~repro.exp.leasing.LeaseBoard`.
    clock : callable
        Monotonic time source (injectable for tests).
    log : callable, optional
        ``log(message)`` sink for lease-lifecycle events; defaults to
        silent.  ``repro serve`` routes this to stderr so CI can
        assert a mid-run worker kill really took the re-lease path.
    """

    def __init__(
        self,
        store_path: str | Path,
        store_kind: str | None = None,
        lease_timeout: float = 30.0,
        max_attempts: int = 3,
        backoff: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        log: Callable[[str], None] | None = None,
    ) -> None:
        self._log = log or (lambda message: None)
        self._store = open_store(
            store_path, kind=store_kind, create=True, threadsafe=True
        )
        self._board = LeaseBoard(
            lease_timeout=lease_timeout,
            max_attempts=max_attempts,
            backoff=backoff,
            clock=clock,
            on_event=self._log,
        )
        self._jobs: dict[int, Job] = {}
        self._next_job = 1
        self._lock = threading.RLock()
        self._draining = False

    # -- submission ----------------------------------------------------

    def submit(self, cells: list[dict]) -> dict:
        """Accept a grid; dedup against the store; queue the rest.

        Parameters
        ----------
        cells : list of dict
            ``CellConfig.to_dict()`` payloads in grid order.  Invalid
            configs raise (the HTTP layer maps that to a 400).

        Returns
        -------
        dict
            ``{"job", "cells", "hits", "pending"}`` — *cells* counts
            unique configurations, *hits* those served instantly from
            the store, *pending* those queued (or already in flight
            for an earlier job — in-flight dedup means concurrent
            submissions of overlapping grids never simulate a cell
            twice).
        """
        if not cells:
            raise ReproError("a submission needs at least one cell")
        configs = [CellConfig.from_dict(payload) for payload in cells]
        with self._lock:
            if self._draining:
                raise ReproError(
                    "coordinator is shutting down; not accepting work"
                )
            job = Job(job_id=self._next_job, keys=[])
            self._next_job += 1
            for config in configs:
                key = config.key()
                job.keys.append(key)
                if key in job.configs:
                    continue
                job.configs[key] = config
                if self._board.status_of(key) in ("queued", "leased"):
                    continue  # in-flight dedup across jobs
                if self._store.get(config) is not None:
                    job.hits.add(key)
                    continue
                self._board.add(key, config.to_dict())
            self._jobs[job.job_id] = job
            pending = len(job.configs) - len(job.hits)
            self._log(
                f"job {job.job_id}: {len(job.configs)} unique cell(s), "
                f"{len(job.hits)} hit(s), {pending} pending"
            )
            return {
                "job": job.job_id,
                "cells": len(job.configs),
                "hits": len(job.hits),
                "pending": pending,
            }

    # -- the worker protocol -------------------------------------------

    def lease(self, worker: str) -> dict | None:
        """Grant the next cell to *worker* (``None``: nothing leasable)."""
        with self._lock:
            if self._draining:
                return None
            lease = self._board.lease(worker)
            if lease is None:
                return None
            return {
                "lease": lease.lease_id,
                "key": lease.key,
                "config": lease.config,
                "timeout": lease.timeout,
            }

    def heartbeat(self, lease_id: str) -> bool:
        """Renew a lease; ``False`` means it is stale (stop working)."""
        with self._lock:
            return self._board.heartbeat(lease_id)

    def complete(self, lease_id: str, result_payload: dict) -> dict:
        """Ingest one worker result under merge-grade conflict checks.

        The row is validated (parse + key match against the lease),
        then written through the store unless an equal row is already
        present; a *different* row for the same key is a conflict —
        the same contract as :func:`~repro.exp.merge.merge_into` — and
        fails the cell loudly (a conflicting result means a broken
        determinism assumption, never something to paper over).

        Late completions from expired leases are accepted: the cell is
        deterministic, so the result is just as good, and if another
        worker finished first the duplicate is checked for equality
        like any re-merge.
        """
        result = CellResult.from_dict(result_payload)
        with self._lock:
            task = self._board.task_for(lease_id)
            if task is None:
                return {"ok": False, "stale": True}
            if result.key != task.key:
                raise ReproError(
                    f"lease {lease_id} is for cell {task.key} but the "
                    f"result hashes to {result.key}"
                )
            existing = self._store.get(result.config)
            if existing is None:
                self._store.put(result)
            elif not same_result(existing, result):
                error = (
                    f"conflicting results for config {result.key}: "
                    f"lease {lease_id} disagrees with the stored row"
                )
                self._board.mark_failed(task.key, error)
                raise ReproError(error)
            if task.status != "done":
                self._board.mark_done(task.key)
            return {"ok": True, "stale": False}

    def fail(self, lease_id: str, error: str) -> bool:
        """Worker-reported cell failure: re-queue with backoff."""
        with self._lock:
            return self._board.fail(lease_id, str(error))

    # -- progress / results --------------------------------------------

    def status(self, job_id: int | None = None) -> dict:
        """Global board counts, or one job's progress breakdown."""
        with self._lock:
            if job_id is None:
                counts = self._board.counts()
                return {
                    "queued": counts.queued,
                    "leased": counts.leased,
                    "done": counts.done,
                    "failed": counts.failed,
                    "draining": self._draining,
                    "jobs": {
                        str(job.job_id): self._job_state(job)
                        for job in self._jobs.values()
                    },
                }
            job = self._job(job_id)
            buckets = {"queued": 0, "leased": 0, "done": 0, "failed": 0}
            for key in job.configs:
                if key in job.hits:
                    continue
                status = self._board.status_of(key) or "queued"
                buckets[status] += 1
            return {
                "job": job.job_id,
                "state": self._job_state(job),
                "cells": len(job.configs),
                "hits": len(job.hits),
                "simulated": buckets["done"],
                **buckets,
                "errors": [
                    error
                    for key, error in self._board.errors().items()
                    if key in job.configs
                ],
            }

    def results(self, job_id: int) -> list[dict]:
        """A finished job's rows, submit order, straight off the store."""
        with self._lock:
            job = self._job(job_id)
            state = self._job_state(job)
            if state == "failed":
                errors = "; ".join(
                    error
                    for key, error in self._board.errors().items()
                    if key in job.configs
                )
                raise ReproError(f"job {job_id} failed: {errors}")
            if state != "done":
                raise ReproError(f"job {job_id} is still running")
            rows = []
            for key in job.keys:
                row = self._store.get(job.configs[key])
                if row is None:
                    raise ReproError(
                        f"job {job_id}: cell {key} vanished from the store"
                    )
                rows.append(row.to_dict())
            return rows

    # -- lifecycle -----------------------------------------------------

    def drain(self) -> None:
        """Stop accepting submissions and granting leases.

        In-flight leases keep their deadlines: their completions (and
        heartbeats) are still honoured, so a graceful shutdown lets
        running cells land rather than wasting them.  Pending queued
        cells simply stay queued for a future coordinator run against
        the same store — nothing is lost, because all durable state is
        the store itself.
        """
        with self._lock:
            self._draining = True
            self._log("draining: no new submissions or leases")

    def close(self) -> None:
        """Release the store (idempotent).  Call after :meth:`drain`."""
        with self._lock:
            self._store.close()

    # -- internals -----------------------------------------------------

    def _job(self, job_id: int) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ReproError(f"unknown job {job_id}")
        return job

    def _job_state(self, job: Job) -> str:
        for key in job.configs:
            if key in job.hits:
                continue
            status = self._board.status_of(key)
            if status == "failed":
                return "failed"
        for key in job.configs:
            if key in job.hits:
                continue
            if self._board.status_of(key) != "done":
                return "running"
        return "done"


# ----------------------------------------------------------------------
# The HTTP layer
# ----------------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    """JSON request routing onto the owning server's service."""

    # Connection reuse matters for the polling client/worker loops.
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> SweepService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        pass  # lease-lifecycle events are logged by the service itself

    def _reply(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw)
        except ValueError as error:
            raise ReproError(f"request body is not JSON: {error}")
        if not isinstance(payload, dict):
            raise ReproError("request body must be a JSON object")
        return payload

    def _job_id(self, prefix: str) -> int | None:
        if not self.path.startswith(prefix):
            return None
        try:
            return int(self.path[len(prefix):])
        except ValueError:
            raise ReproError(f"bad job id in {self.path!r}")

    def do_GET(self) -> None:  # noqa: N802 (stdlib name)
        try:
            if self.path == "/api/health":
                self._reply({"ok": True})
            elif self.path == "/api/status":
                self._reply(self.service.status())
            elif (job := self._job_id("/api/status/")) is not None:
                self._reply(self.service.status(job))
            elif (job := self._job_id("/api/results/")) is not None:
                self._reply({"rows": self.service.results(job)})
            else:
                self._reply({"error": f"unknown path {self.path}"}, 404)
        except ReproError as error:
            self._reply({"error": str(error)}, 400)

    def do_POST(self) -> None:  # noqa: N802 (stdlib name)
        try:
            body = self._body()
            if self.path == "/api/submit":
                self._reply(self.service.submit(body.get("cells") or []))
            elif self.path == "/api/lease":
                lease = self.service.lease(
                    str(body.get("worker") or "anonymous")
                )
                self._reply({"lease": lease})
            elif self.path == "/api/heartbeat":
                ok = self.service.heartbeat(str(body.get("lease") or ""))
                self._reply({"ok": ok})
            elif self.path == "/api/complete":
                self._reply(self.service.complete(
                    str(body.get("lease") or ""), body.get("result") or {},
                ))
            elif self.path == "/api/fail":
                ok = self.service.fail(
                    str(body.get("lease") or ""),
                    str(body.get("error") or "unspecified worker error"),
                )
                self._reply({"ok": ok})
            else:
                self._reply({"error": f"unknown path {self.path}"}, 404)
        except ReproError as error:
            self._reply({"error": str(error)}, 400)


class ServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`SweepService`.

    ``daemon_threads`` so a coordinator kill never hangs on a stuck
    worker connection — worker state is reconstructible from leases.
    """

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: SweepService):
        super().__init__(address, _Handler)
        self.service = service


def serve_forever(
    store_path: str | Path,
    host: str = "127.0.0.1",
    port: int = 8037,
    store_kind: str | None = None,
    lease_timeout: float = 30.0,
    max_attempts: int = 3,
    backoff: float = 1.0,
    log=None,
) -> int:
    """``repro serve``: run a coordinator until interrupted.

    Prints one ``serving on http://host:port`` line once the socket is
    bound (CI boots the service in the background and polls
    ``/api/health``), then blocks.  SIGINT/SIGTERM drain the service
    (in-flight leases may still land) and close the store.
    """
    import signal

    log = log or (lambda message: print(
        f"serve: {message}", file=sys.stderr, flush=True
    ))
    service = SweepService(
        store_path,
        store_kind=store_kind,
        lease_timeout=lease_timeout,
        max_attempts=max_attempts,
        backoff=backoff,
        log=log,
    )
    server = ServiceServer((host, port), service)

    def _stop(_signum, _frame):
        # shutdown() must run off the serving thread or it deadlocks.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGINT, _stop)
    signal.signal(signal.SIGTERM, _stop)
    print(
        f"serving on http://{server.server_address[0]}:"
        f"{server.server_address[1]} (store: {store_path})",
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        service.drain()
        server.server_close()
        service.close()
    return 0


# ----------------------------------------------------------------------
# The client ("repro submit" and the worker's transport)
# ----------------------------------------------------------------------


def call(url: str, path: str, payload: dict | None = None,
         timeout: float = 30.0) -> dict:
    """One JSON request against a coordinator; errors as ReproError."""
    request = urlrequest.Request(
        url.rstrip("/") + path,
        data=(
            json.dumps(payload).encode("utf-8")
            if payload is not None else None
        ),
        headers={"Content-Type": "application/json"},
        method="POST" if payload is not None else "GET",
    )
    try:
        with urlrequest.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read())
    except urlerror.HTTPError as error:
        try:
            detail = json.loads(error.read()).get("error", "")
        except ValueError:
            detail = ""
        raise ReproError(
            f"coordinator rejected {path}: {detail or error}"
        )
    except (urlerror.URLError, OSError, ValueError) as error:
        raise ReproError(f"cannot reach coordinator at {url}: {error}")


@dataclass(frozen=True)
class SubmitOutcome:
    """What one submission produced, in local-sweep vocabulary."""

    rows: tuple[CellResult, ...]  #: submit order, duplicates included
    executed: int  #: cells simulated by the worker pool for this job
    cached: int  #: cells served instantly from the coordinator's store


def submit_sweep(
    url: str,
    cells,
    poll: float = 0.5,
    progress: Callable[[str], None] | None = None,
    timeout: float | None = None,
) -> SubmitOutcome:
    """Submit a grid and block until the merged rows stream back.

    Parameters
    ----------
    url : str
        Coordinator base URL (e.g. ``http://127.0.0.1:8037``).
    cells : iterable of CellConfig
        The grid, in order (e.g. ``SweepSpec.expand()``).
    poll : float
        Seconds between progress polls.
    progress : callable, optional
        ``progress(line)`` sink invoked whenever the queued / leased /
        simulated / hit counts change (``repro submit`` routes this to
        stderr, keeping stdout a pure report).
    timeout : float, optional
        Give up (raise) after this many seconds without completion.

    Returns
    -------
    SubmitOutcome
        Rows in submitted order plus executed/cached counts with the
        exact semantics of :class:`~repro.exp.sweep.SweepResult` — a
        resubmission of a completed grid reports ``executed == 0``.
    """
    progress = progress or (lambda line: None)
    submitted = call(
        url, "/api/submit",
        {"cells": [cell.to_dict() for cell in cells]},
    )
    job = submitted["job"]
    progress(
        f"job {job}: {submitted['cells']} unique cell(s), "
        f"{submitted['hits']} served from the store, "
        f"{submitted['pending']} queued"
    )
    deadline = time.monotonic() + timeout if timeout is not None else None
    last = None
    while True:
        status = call(url, f"/api/status/{job}")
        line = (
            f"job {job}: {status['queued']} queued, "
            f"{status['leased']} leased, "
            f"{status['simulated']} simulated, {status['hits']} hits"
        )
        if line != last:
            progress(line)
            last = line
        if status["state"] == "failed":
            raise ReproError(
                f"job {job} failed: " + "; ".join(status["errors"])
            )
        if status["state"] == "done":
            break
        if deadline is not None and time.monotonic() > deadline:
            raise ReproError(
                f"job {job} did not complete within {timeout:.0f}s "
                f"(last status: {line})"
            )
        time.sleep(poll)
    payload = call(url, f"/api/results/{job}")
    rows = tuple(CellResult.from_dict(row) for row in payload["rows"])
    status = call(url, f"/api/status/{job}")
    return SubmitOutcome(
        rows=rows, executed=status["simulated"], cached=status["hits"],
    )
