"""Cross-run diffing: two caches in, one regression table out.

The paper's core claims are deltas, and so are a CI reviewer's
questions: did this PR make ``vim_ms`` worse, did the fault count
move, did a cell disappear?  This module compares two result stores —
sweep-cache directories or ``repro sweep --json`` row dumps — by
aligning rows on their config hash and classifying every metric of
every matched cell against a configurable tolerance:

* :func:`load_side` — read one side through the
  :mod:`repro.exp.cache` gatekeeper, keeping distinct counts for
  stale-``CACHE_VERSION`` files (usually a deliberate schema bump,
  reported separately) and invalid ones (corruption);
* :func:`diff_rows` / :func:`diff_caches` — produce a typed
  :class:`DiffResult`: per-cell :class:`MetricDelta` columns (absolute
  + relative), plus added / removed cells;
* :func:`render_diff` — the regression table (through
  :func:`~repro.exp.report.render_table`) with ASCII delta bars for
  the changed cells.

Tolerance follows the ``numpy.isclose`` shape — a delta is *changed*
when ``|current - base| > atol + rtol * |base|`` — and every metric
knows its bad direction, so an improvement is a change but never a
*regression*.  ``repro diff BASELINE CURRENT`` is the command-line
face (exit 1 on regressions beyond tolerance, 0 otherwise); CI runs
it between a PR's merged shard cache and the main-branch baseline.

Two banding policies select how the tolerance is derived (``repro
diff --bands {exact,cv}``):

* ``exact`` (the default) — the hand-picked ``--rtol``/``--atol``
  applied uniformly, rows aligned by config hash.  Right for
  deterministic comparisons of the *same* grid (engine equivalence,
  cache reproducibility).
* ``cv`` — rows aligned by :func:`~repro.exp.spec.replica_hash`
  (seed-blind), replicated metrics compared **mean against mean**
  with a per-cell, per-metric tolerance of
  :data:`CV_BAND_SIGMA` x the baseline's own CV column on top of
  ``--rtol``.  Deterministic metrics carry a CV of 0.0, so their band
  collapses to exact match — regressions cannot hide behind noise
  that is not there.  Right for comparing runs over *independent
  seed sets*, where "regression" must mean "outside the noise
  envelope", not "not byte-identical".
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.errors import ReproError
from repro.exp.cache import iter_dump_rows
from repro.exp.report import (
    delta_bar_chart,
    format_cell,
    format_delta,
    group_axes,
    render_table,
)
from repro.exp.results import REPLICATED_COLUMNS, CellResult
from repro.exp.spec import (
    CACHE_VERSION,
    fingerprint_from_keys,
    grid_fingerprint,
    replica_fingerprint,
    replica_hash,
)
from repro.exp.store import is_sqlite_file, open_store


# ----------------------------------------------------------------------
# Metrics: what gets compared, and which direction is "worse"
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Metric:
    """One diffable result column.

    Parameters
    ----------
    name : str
        Selector and table header.
    field : str
        The :class:`~repro.exp.results.CellResult` column the metric
        reads — the coverage contract: every numeric result column
        must appear as exactly one metric's field (enforced by
        ``tests/exp/test_metrics_coverage.py``), so a new column
        cannot ship without declaring its regression direction.  When
        the field is one of
        :data:`~repro.exp.results.REPLICATED_COLUMNS`, ``--bands cv``
        compares its ``_mean`` column under a tolerance derived from
        the baseline's ``_cv`` column.
    value : callable
        Extracts the numeric value from a
        :class:`~repro.exp.results.CellResult` (``None``-valued
        optional columns read as 0.0).
    higher_is_worse : bool or None
        Regression direction: ``True`` for times and fault counts,
        ``False`` for speedups and hit rates, ``None`` for counters
        with no inherent direction (tracked as *changed*, never as a
        regression).
    """

    name: str
    field: str
    value: Callable[[CellResult], float]
    higher_is_worse: bool | None = True


def _metric(
    name: str, field: str, higher_is_worse: bool | None = True
) -> Metric:
    """A metric reading *field* directly (None reads as 0.0)."""
    return Metric(
        name,
        field,
        lambda r: getattr(r, field) if getattr(r, field) is not None else 0.0,
        higher_is_worse=higher_is_worse,
    )


def _replicated_metrics() -> dict[str, Metric]:
    """The ``_mean`` / ``_cv`` summary metrics, one pair per entry of
    :data:`~repro.exp.results.REPLICATED_COLUMNS`.

    A mean column inherits its primary metric's regression direction;
    a CV column has none (variance moving is worth flagging, but is
    not by itself a regression).
    """
    out: dict[str, Metric] = {}
    for field in REPLICATED_COLUMNS:
        direction = False if field == "vim_speedup" else True
        out[f"{field}_mean"] = _metric(
            f"{field}_mean", f"{field}_mean", higher_is_worse=direction
        )
        out[f"{field}_cv"] = _metric(
            f"{field}_cv", f"{field}_cv", higher_is_worse=None
        )
    return out


#: Every metric ``repro diff`` can compare, keyed by selector name.
METRICS: dict[str, Metric] = {
    "sw_ms": _metric("sw_ms", "sw_ms"),
    "vim_ms": _metric("vim_ms", "vim_ms"),
    "hw_ms": _metric("hw_ms", "hw_ms"),
    "sw_dp_ms": _metric("sw_dp_ms", "sw_dp_ms"),
    "sw_imu_ms": _metric("sw_imu_ms", "sw_imu_ms"),
    "sw_other_ms": _metric("sw_other_ms", "sw_other_ms"),
    "speedup": _metric("speedup", "vim_speedup", higher_is_worse=False),
    "faults": _metric("faults", "page_faults"),
    "compulsory_loads": _metric("compulsory_loads", "compulsory_loads"),
    "tlb_refills": _metric("tlb_refills", "tlb_refills"),
    "evictions": _metric("evictions", "evictions"),
    "steals": _metric("steals", "steals"),
    "writebacks": _metric("writebacks", "writebacks"),
    "bytes_to_dpram": _metric("bytes_to_dpram", "bytes_to_dpram"),
    "bytes_from_dpram": _metric("bytes_from_dpram", "bytes_from_dpram"),
    "tlb_hit_rate": _metric(
        "tlb_hit_rate", "tlb_hit_rate", higher_is_worse=False
    ),
    "typical_ms": _metric("typical_ms", "typical_ms"),
    "typical_speedup": _metric(
        "typical_speedup", "typical_speedup", higher_is_worse=False
    ),
    "prefetches": _metric("prefetches", "prefetches", higher_is_worse=None),
    "dma_transfers": _metric(
        "dma_transfers", "dma_transfers", higher_is_worse=None
    ),
    **_replicated_metrics(),
}

#: The default comparison set: the paper's time decomposition, the
#: speedup claim, and the fault count.
DEFAULT_METRICS = (
    "vim_ms", "hw_ms", "sw_dp_ms", "sw_imu_ms", "speedup", "faults",
)

#: Tolerance-band policies of ``repro diff --bands``.
BANDS = ("exact", "cv")

#: Band half-width in baseline CVs: a current mean within
#: ``CV_BAND_SIGMA`` sample-CVs of the baseline mean is noise, outside
#: is a change.  Three sigma of a normal leaves ~0.3 % false alarms
#: per metric; with the deliberately seed-sensitive synthetic cells
#: the replicate spread is the honest noise floor, so the classic
#: control-chart width carries over.
CV_BAND_SIGMA = 3.0


def within_tolerance(base: float, current: float, rtol: float, atol: float) -> bool:
    """``|current - base| <= atol + rtol * |base|`` (numpy-isclose shape)."""
    return abs(current - base) <= atol + rtol * abs(base)


@dataclass(frozen=True)
class MetricDelta:
    """One metric of one cell, compared across the two runs.

    Parameters
    ----------
    metric : str
        The metric's selector name.
    base, current : float
        The two values being compared.
    changed : bool
        Beyond tolerance in either direction.
    regressed : bool
        Changed *and* in the metric's bad direction.
    """

    metric: str
    base: float
    current: float
    changed: bool
    regressed: bool

    @property
    def absolute(self) -> float:
        """``current - base``."""
        return self.current - self.base

    @property
    def relative(self) -> float | None:
        """``(current - base) / base``, or ``None`` when base is 0."""
        if not self.base:
            return None
        return self.absolute / self.base


def scalar_delta(
    name: str,
    base: float,
    current: float,
    rtol: float = 0.0,
    atol: float = 0.0,
    higher_is_worse: bool | None = True,
) -> MetricDelta:
    """Classify one (base, current) pair — the shared tolerance core.

    Everything that compares two numbers under the repository's
    tolerance policy funnels through here: the cache differ, and
    ``tools/bench_diff.py`` for benchmark JSON.
    """
    delta = current - base
    changed = not within_tolerance(base, current, rtol, atol)
    if higher_is_worse is None:
        worse = False
    elif higher_is_worse:
        worse = delta > 0
    else:
        worse = delta < 0
    return MetricDelta(
        metric=name,
        base=base,
        current=current,
        changed=changed,
        regressed=changed and worse,
    )


def banded_delta(
    metric: Metric,
    base_row: CellResult,
    current_row: CellResult,
    rtol: float = 0.0,
    atol: float = 0.0,
) -> MetricDelta:
    """Classify one metric of one cell under the ``cv`` band policy.

    For metrics whose field carries cross-replicate summaries
    (:data:`~repro.exp.results.REPLICATED_COLUMNS`), the comparison is
    **mean against mean** and the relative tolerance widens by
    :data:`CV_BAND_SIGMA` times the *baseline's* CV for that cell and
    metric — the variance-derived band of the cell_OS protocol.  A
    deterministic metric has CV 0.0, so its band collapses to the
    passed ``rtol``/``atol`` (exact by default).  Metrics without
    summaries compare their primary values under the passed tolerance
    unchanged.
    """
    if metric.field in REPLICATED_COLUMNS:
        base = getattr(base_row, f"{metric.field}_mean")
        current = getattr(current_row, f"{metric.field}_mean")
        band_rtol = rtol + CV_BAND_SIGMA * getattr(
            base_row, f"{metric.field}_cv"
        )
    else:
        base = metric.value(base_row)
        current = metric.value(current_row)
        band_rtol = rtol
    return scalar_delta(
        metric.name,
        base,
        current,
        rtol=band_rtol,
        atol=atol,
        higher_is_worse=metric.higher_is_worse,
    )


# ----------------------------------------------------------------------
# Loading the two sides
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DiffSide:
    """One loaded comparison side.

    Parameters
    ----------
    origin : str
        Where the rows came from (for messages).
    rows : dict
        Config hash -> :class:`~repro.exp.results.CellResult`.
    stale : int
        Files carrying a different :data:`~repro.exp.spec.CACHE_VERSION`
        — usually a schema bump, reported distinctly from corruption.
    invalid : int
        Corrupt / renamed / unparsable files.
    """

    origin: str
    rows: dict[str, CellResult]
    stale: int
    invalid: int


def load_side(path: str | Path) -> DiffSide:
    """Load one comparison side: a cache directory or a ``--json`` dump.

    Directories go through the :func:`~repro.exp.cache.iter_classified`
    gatekeeper (stale-version and invalid files counted separately); a
    file is read as a ``repro sweep --json`` row dump through the
    shared :func:`~repro.exp.cache.iter_dump_rows` gatekeeper (the
    same one ``repro merge`` uses).

    Raises
    ------
    ReproError
        If *path* does not exist, holds no entries at all, is not a
        JSON list (file case), or a dump carries two different results
        for one config hash.
    """
    root = Path(path)
    rows: dict[str, CellResult] = {}
    stale = invalid = 0
    if root.is_dir() or is_sqlite_file(root):
        entries = 0
        for _origin, status, result in open_store(root).iter_classified():
            entries += 1
            if status == "ok":
                rows[result.key] = result
            elif status == "stale-version":
                stale += 1
            else:
                invalid += 1
        if not entries:
            raise ReproError(
                f"{root} holds no cache entries; pass a sweep-cache "
                "directory or a `repro sweep --json` dump"
            )
        return DiffSide(origin=str(root), rows=rows, stale=stale, invalid=invalid)
    if not root.is_file():
        raise ReproError(f"diff source {root} does not exist")
    entries = 0
    for origin, result in iter_dump_rows(root):
        entries += 1
        if result is None:
            invalid += 1
            continue
        known = rows.get(result.key)
        if known is not None and known != result:
            raise ReproError(
                f"diff source {root} carries two different results for "
                f"config {result.key} ({origin})"
            )
        rows[result.key] = result
    if not entries:
        raise ReproError(
            f"{root} holds no result rows; pass a sweep-cache "
            "directory or a non-empty `repro sweep --json` dump"
        )
    return DiffSide(origin=str(root), rows=rows, stale=stale, invalid=invalid)


# ----------------------------------------------------------------------
# The diff itself
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CellDiff:
    """All compared metrics of one config present in both runs.

    ``base`` / ``current`` hold the full rows on the materialised
    path; the streaming differ (:func:`diff_stores`) drops them
    (``None``) once the deltas are computed so a large diff never
    retains its rows — everything :func:`render_diff` needs lives on
    the label, the deltas, and (for grouped diffs)
    ``group_values``.
    """

    key: str
    label: str
    base: CellResult | None
    current: CellResult | None
    deltas: tuple[MetricDelta, ...]
    #: Raw config-axis values of a ``--group-by`` request, in axis
    #: order; filled by the streaming differ (the materialised path
    #: reads them off ``current.config`` at render time).
    group_values: tuple = ()

    @property
    def changed(self) -> bool:
        """Any metric beyond tolerance (either direction)."""
        return any(d.changed for d in self.deltas)

    @property
    def regressed(self) -> bool:
        """Any metric beyond tolerance in its bad direction."""
        return any(d.regressed for d in self.deltas)


@dataclass(frozen=True)
class DiffResult:
    """The typed outcome of comparing two runs.

    Parameters
    ----------
    cells : tuple of CellDiff
        Configs present in both runs, in canonical (label, key) order.
    added, removed : tuple of CellResult
        Configs only in the current run / only in the baseline.
    baseline, current : DiffSide
        The loaded sides (origins and stale/invalid counts).
    metrics : tuple of str
        The compared metric selectors, in column order.
    rtol, atol : float
        The tolerance the classification used.
    bands : str
        The band policy (:data:`BANDS`): ``exact`` aligned rows by
        config hash and applied rtol/atol uniformly; ``cv`` aligned
        rows seed-blind and widened each replicated metric's band by
        the baseline's CV.
    """

    cells: tuple[CellDiff, ...]
    added: tuple[CellResult, ...]
    removed: tuple[CellResult, ...]
    baseline: DiffSide
    current: DiffSide
    metrics: tuple[str, ...]
    rtol: float
    atol: float
    bands: str = "exact"
    #: Precomputed (baseline, current) fingerprints.  The streaming
    #: differ sets this from the key streams (its ``DiffSide`` rows
    #: stay empty by design); ``None`` computes from the loaded rows.
    fingerprints_override: tuple[str, str] | None = None

    @property
    def changed_cells(self) -> tuple[CellDiff, ...]:
        return tuple(c for c in self.cells if c.changed)

    @property
    def regressions(self) -> tuple[CellDiff, ...]:
        return tuple(c for c in self.cells if c.regressed)

    @property
    def has_regressions(self) -> bool:
        """The CI gate: any matched cell regressed beyond tolerance."""
        return bool(self.regressions)

    def fingerprints(self) -> tuple[str, str]:
        """Grid fingerprints of (baseline, current) — equal iff the
        two runs cover the same configurations.  Under ``cv`` bands
        the fingerprint is seed-blind
        (:func:`~repro.exp.spec.replica_fingerprint`): disjoint seed
        sets over the same design space are *meant* to match."""
        if self.fingerprints_override is not None:
            return self.fingerprints_override
        fingerprint = (
            replica_fingerprint if self.bands == "cv" else grid_fingerprint
        )
        return (
            fingerprint(r.config for r in self.baseline.rows.values()),
            fingerprint(r.config for r in self.current.rows.values()),
        )


def _resolve_metrics(names) -> list[Metric]:
    unknown = [name for name in names if name not in METRICS]
    if unknown:
        raise ReproError(
            f"unknown diff metric(s) {unknown}; choices: {sorted(METRICS)}"
        )
    return [METRICS[name] for name in names]


def _replica_keyed(side: DiffSide) -> dict[str, CellResult]:
    """Re-key one side's rows by seed-blind replica hash.

    Raises
    ------
    ReproError
        If two rows share a replica hash — the side swept a seed
        *axis*, which ``--bands cv`` cannot align (within one run,
        replication belongs in ``--replicates``, not in ``--seed``).
    """
    rows: dict[str, CellResult] = {}
    for result in side.rows.values():
        key = replica_hash(result.config)
        clash = rows.get(key)
        if clash is not None:
            raise ReproError(
                f"{side.origin} holds two rows differing only by seed "
                f"(seeds {clash.config.seed} and {result.config.seed} of "
                f"replica {key}): --bands cv aligns cells across seed "
                "sets, so within one run replication must come from "
                "--replicates, not a seed axis"
            )
        rows[key] = result
    return rows


def diff_rows(
    baseline: DiffSide,
    current: DiffSide,
    metrics=DEFAULT_METRICS,
    rtol: float = 0.0,
    atol: float = 0.0,
    bands: str = "exact",
) -> DiffResult:
    """Align two loaded sides and classify every metric of every match.

    Parameters
    ----------
    baseline, current : DiffSide
        The two runs (see :func:`load_side`).
    metrics : sequence of str
        Metric selectors from :data:`METRICS`.
    rtol, atol : float
        Relative / absolute tolerance; a delta within
        ``atol + rtol * |base|`` is neither a change nor a regression.
        The defaults are exact — the simulator is deterministic, so
        any drift is a real behaviour change.
    bands : str
        Band policy from :data:`BANDS`.  ``exact`` aligns rows by
        config hash and applies rtol/atol uniformly
        (:func:`scalar_delta`); ``cv`` aligns rows seed-blind by
        :func:`~repro.exp.spec.replica_hash` and classifies each
        metric through :func:`banded_delta`, widening replicated
        metrics by the baseline's own per-cell CV.

    Raises
    ------
    ReproError
        On unknown metric names, negative tolerances, an unknown band
        policy, or (``cv`` only) a side whose rows differ only by
        seed.
    """
    if rtol < 0 or atol < 0:
        raise ReproError(f"tolerances must be >= 0, got rtol={rtol} atol={atol}")
    if bands not in BANDS:
        raise ReproError(f"unknown band policy {bands!r}; choices: {BANDS}")
    selected = _resolve_metrics(metrics)
    if bands == "cv":
        base_rows = _replica_keyed(baseline)
        current_rows = _replica_keyed(current)
    else:
        base_rows = baseline.rows
        current_rows = current.rows
    matched = sorted(
        base_rows.keys() & current_rows.keys(),
        key=lambda key: (current_rows[key].label, key),
    )
    cells = []
    for key in matched:
        base_row = base_rows[key]
        current_row = current_rows[key]
        if bands == "cv":
            deltas = tuple(
                banded_delta(metric, base_row, current_row, rtol=rtol, atol=atol)
                for metric in selected
            )
        else:
            deltas = tuple(
                scalar_delta(
                    metric.name,
                    metric.value(base_row),
                    metric.value(current_row),
                    rtol=rtol,
                    atol=atol,
                    higher_is_worse=metric.higher_is_worse,
                )
                for metric in selected
            )
        cells.append(CellDiff(
            key=key,
            label=current_row.label,
            base=base_row,
            current=current_row,
            deltas=deltas,
        ))
    added = tuple(sorted(
        (row for key, row in current_rows.items() if key not in base_rows),
        key=lambda r: (r.label, r.key),
    ))
    removed = tuple(sorted(
        (row for key, row in base_rows.items() if key not in current_rows),
        key=lambda r: (r.label, r.key),
    ))
    return DiffResult(
        cells=tuple(cells),
        added=added,
        removed=removed,
        baseline=baseline,
        current=current,
        metrics=tuple(m.name for m in selected),
        rtol=rtol,
        atol=atol,
        bands=bands,
    )


def diff_caches(
    baseline: str | Path,
    current: str | Path,
    metrics=DEFAULT_METRICS,
    rtol: float = 0.0,
    atol: float = 0.0,
    bands: str = "exact",
) -> DiffResult:
    """Load and diff two result stores — the ``repro diff`` path.

    A convenience composition of :func:`load_side` (twice) and
    :func:`diff_rows`; no simulation happens.
    """
    return diff_rows(
        load_side(baseline),
        load_side(current),
        metrics=metrics,
        rtol=rtol,
        atol=atol,
        bands=bands,
    )


@dataclass(frozen=True)
class _LeanRow:
    """A row reduced to what added/removed rendering touches."""

    key: str
    label: str


def _store_cursor(store, counter: list[int]):
    """The store's ok rows in key order, tallying stale/invalid.

    ``counter`` is ``[entries, stale, invalid]`` and is updated as the
    cursor advances — one classified pass serves the join, the side
    notes, and the emptiness check at once.
    """
    for _origin, status, result in store.iter_classified():
        counter[0] += 1
        if status == "ok":
            yield result
        elif status == "stale-version":
            counter[1] += 1
        else:
            counter[2] += 1


def diff_stores(
    baseline: str | Path,
    current: str | Path,
    metrics=DEFAULT_METRICS,
    rtol: float = 0.0,
    atol: float = 0.0,
    group_by: tuple[str, ...] = (),
) -> DiffResult:
    """Diff two result stores by a sorted-key merge-join, out-of-core.

    The streaming sibling of :func:`diff_caches` for ``exact`` bands:
    both stores are walked as key-sorted classified cursors and
    aligned with a two-pointer join, so no row dictionary is ever
    built — each :class:`~repro.exp.results.CellResult` is dropped the
    moment its deltas are computed, and the returned
    :class:`DiffResult` holds only labels, deltas, and key
    fingerprints.  :func:`render_diff` accepts it unchanged and
    produces bytes identical to the materialised path.

    Parameters
    ----------
    baseline, current : str or Path
        Result stores (JSON cache directories or SQLite files).  Row
        dumps and ``cv`` bands need the materialised loader
        (:func:`diff_caches`), which the CLI falls back to.
    group_by : tuple of str
        Config axes whose raw values to record per matched cell
        (``repro diff --group-by``); recorded during the join because
        the configs are gone by render time.
    """
    if rtol < 0 or atol < 0:
        raise ReproError(f"tolerances must be >= 0, got rtol={rtol} atol={atol}")
    selected = _resolve_metrics(metrics)
    known_axes = group_axes()
    bad = [axis for axis in group_by if axis not in known_axes]
    if bad:
        raise ReproError(
            f"unknown group-by axis/axes {bad}; choices: {known_axes}"
        )
    sides = []
    for path in (baseline, current):
        root = Path(path)
        if not root.exists():
            raise ReproError(f"diff source {root} does not exist")
        sides.append(open_store(root))
    base_store, current_store = sides
    base_counter = [0, 0, 0]  # entries, stale, invalid
    current_counter = [0, 0, 0]
    base_cursor = _store_cursor(base_store, base_counter)
    current_cursor = _store_cursor(current_store, current_counter)
    base_keys: list[str] = []
    current_keys: list[str] = []
    cells: list[CellDiff] = []
    added: list[_LeanRow] = []
    removed: list[_LeanRow] = []
    base_row = next(base_cursor, None)
    current_row = next(current_cursor, None)
    while base_row is not None or current_row is not None:
        if current_row is None or (
            base_row is not None and base_row.key < current_row.key
        ):
            base_keys.append(base_row.key)
            removed.append(_LeanRow(key=base_row.key, label=base_row.label))
            base_row = next(base_cursor, None)
            continue
        if base_row is None or current_row.key < base_row.key:
            current_keys.append(current_row.key)
            added.append(_LeanRow(key=current_row.key, label=current_row.label))
            current_row = next(current_cursor, None)
            continue
        base_keys.append(base_row.key)
        current_keys.append(current_row.key)
        deltas = tuple(
            scalar_delta(
                metric.name,
                metric.value(base_row),
                metric.value(current_row),
                rtol=rtol,
                atol=atol,
                higher_is_worse=metric.higher_is_worse,
            )
            for metric in selected
        )
        cells.append(CellDiff(
            key=current_row.key,
            label=current_row.label,
            base=None,
            current=None,
            deltas=deltas,
            group_values=tuple(
                getattr(current_row.config, axis) for axis in group_by
            ),
        ))
        base_row = next(base_cursor, None)
        current_row = next(current_cursor, None)
    for path, counter in ((baseline, base_counter), (current, current_counter)):
        if not counter[0]:
            raise ReproError(
                f"{Path(path)} holds no cache entries; pass a sweep-cache "
                "directory or a `repro sweep --json` dump"
            )
    # The classified cursors are key-sorted, so matched/added/removed
    # arrived in key order; canonical diff order is (label, key).
    cells.sort(key=lambda cell: (cell.label, cell.key))
    added.sort(key=lambda row: (row.label, row.key))
    removed.sort(key=lambda row: (row.label, row.key))
    result = DiffResult(
        cells=tuple(cells),
        added=tuple(added),
        removed=tuple(removed),
        baseline=DiffSide(
            origin=str(baseline), rows={},
            stale=base_counter[1], invalid=base_counter[2],
        ),
        current=DiffSide(
            origin=str(current), rows={},
            stale=current_counter[1], invalid=current_counter[2],
        ),
        metrics=tuple(m.name for m in selected),
        rtol=rtol,
        atol=atol,
        fingerprints_override=(
            fingerprint_from_keys(base_keys),
            fingerprint_from_keys(current_keys),
        ),
    )
    base_store.close()
    current_store.close()
    return result


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def format_delta_cell(delta: MetricDelta, marker: str = " !") -> str:
    """One regression-table cell: ``0`` when equal, else the movement.

    ``base→current (+Δ, +r%)``, with *marker* appended when the delta
    regressed.  Shared with ``tools/bench_diff.py`` so the two
    regression tables read identically.
    """
    if delta.absolute == 0:
        return "0"
    text = (
        f"{format_cell(delta.base)}→{format_cell(delta.current)}"
        f"{format_delta(delta.current, delta.base)}"
    )
    if delta.regressed and marker:
        text += marker
    return text


def _cell_status(cell: CellDiff) -> str:
    if cell.regressed:
        return "REGRESSION"
    if cell.changed:
        return "changed"
    return "ok"


def _side_notes(side: DiffSide, name: str) -> list[str]:
    notes = []
    if side.stale:
        notes.append(
            f"{name}: {side.stale} stale-version file(s) skipped "
            f"(written under a different CACHE_VERSION than {CACHE_VERSION})"
        )
    if side.invalid:
        notes.append(f"{name}: {side.invalid} invalid file(s) skipped")
    return notes


def _cell_group_values(cell: CellDiff, group_by: tuple[str, ...]) -> tuple:
    """The raw axis values of one matched cell.

    The streaming differ recorded them during the join; the
    materialised path still has the row and reads its config.
    """
    if len(cell.group_values) == len(group_by):
        return cell.group_values
    return tuple(getattr(cell.current.config, axis) for axis in group_by)


def _grouped_cells(
    result: DiffResult, group_by: tuple[str, ...]
) -> list[tuple[tuple, list[CellDiff]]]:
    """Matched cells bucketed by axis values, sorted like the report
    grouper (raw values, ``None`` first)."""
    groups: dict[tuple, list[CellDiff]] = {}
    for cell in result.cells:
        groups.setdefault(
            _cell_group_values(cell, group_by), []
        ).append(cell)
    return sorted(
        groups.items(),
        key=lambda item: tuple((v is not None, v) for v in item[0]),
    )


def _group_delta(cells: list[CellDiff], index: int) -> MetricDelta:
    """One metric aggregated over a group: mean vs mean.

    ``changed``/``regressed`` hold if *any* cell in the group did —
    an aggregate table must not average a regression away.
    """
    deltas = [cell.deltas[index] for cell in cells]
    return MetricDelta(
        metric=deltas[0].metric,
        base=sum(d.base for d in deltas) / len(deltas),
        current=sum(d.current for d in deltas) / len(deltas),
        changed=any(d.changed for d in deltas),
        regressed=any(d.regressed for d in deltas),
    )


def _group_status(cells: list[CellDiff]) -> str:
    if any(cell.regressed for cell in cells):
        return "REGRESSION"
    if any(cell.changed for cell in cells):
        return "changed"
    return "ok"


def _grouped_table(
    result: DiffResult, group_by: tuple[str, ...], fmt: str
) -> str:
    """The ``--group-by`` aggregate table: one row per axis-value
    combination, mean-vs-mean deltas, any-cell status."""
    headers = (
        list(group_by) + ["cells"]
        + [f"Δ {name}" for name in result.metrics] + ["status"]
    )
    rows = []
    for values, cells in _grouped_cells(result, group_by):
        rows.append(
            list(values)
            + [len(cells)]
            + [
                format_delta_cell(_group_delta(cells, index))
                for index in range(len(result.metrics))
            ]
            + [_group_status(cells)]
        )
    return render_table(headers, rows, fmt)


def _grouped_bars(result: DiffResult, group_by: tuple[str, ...]) -> str:
    """Delta bars of the first metric's per-group mean relative delta."""
    if not result.metrics:
        return ""
    rows = []
    for values, cells in _grouped_cells(result, group_by):
        delta = _group_delta(cells, 0)
        if delta.changed and delta.relative is not None:
            label = ", ".join(
                f"{axis}={format_cell(value)}"
                for axis, value in zip(group_by, values)
            )
            rows.append((label, delta.relative * 100.0))
    if not rows:
        return ""
    return f"Δ {result.metrics[0]} vs baseline:\n" + delta_bar_chart(rows)


def render_diff(
    result: DiffResult,
    fmt: str = "ascii",
    bars: bool = True,
    group_by: tuple[str, ...] = (),
) -> str:
    """Render a :class:`DiffResult` as a regression table plus summary.

    Parameters
    ----------
    result : DiffResult
        The comparison to render.
    fmt : str
        One of :data:`~repro.exp.report.FORMATS`; the table routes
        through :func:`~repro.exp.report.render_table`.
    bars : bool
        Append ASCII delta bars (relative deltas of the first compared
        metric, changed cells only).  ``md`` wraps them in a fenced
        block.
    group_by : tuple of str
        Config axes to aggregate along (``repro diff --group-by``):
        instead of one row per cell, the table gets one row per
        axis-value combination with mean-vs-mean deltas and a status
        that regresses if *any* member cell regressed.  The summary
        line, added/removed lists, and side notes stay per-cell.

    Returns
    -------
    str
        The rendered diff (no trailing newline).  Identical runs
        render an all-zero table and an "0 changed, 0 regressions"
        summary.  ``csv`` emits the table records only — no summary,
        notes, or bars — so the output stays machine-parseable; the
        added/removed/stale information is available on the
        :class:`DiffResult` itself, and the exit code still gates.
    """
    known_axes = group_axes()
    bad = [axis for axis in group_by if axis not in known_axes]
    if bad:
        raise ReproError(
            f"unknown group-by axis/axes {bad}; choices: {known_axes}"
        )
    if group_by:
        table = _grouped_table(result, tuple(group_by), fmt)
    else:
        table = render_table(
            ["cell"] + [f"Δ {name}" for name in result.metrics] + ["status"],
            [
                [cell.label]
                + [format_delta_cell(delta) for delta in cell.deltas]
                + [_cell_status(cell)]
                for cell in result.cells
            ],
            fmt,
        )
    if fmt == "csv":
        return table
    tolerance = f"rtol={result.rtol:g}, atol={result.atol:g}"
    if result.bands != "exact":
        tolerance += (
            f", bands={result.bands} "
            f"(+{CV_BAND_SIGMA:g} baseline CVs on replicated metrics)"
        )
    summary = (
        f"{len(result.cells)} cell(s) compared: "
        f"{len(result.changed_cells)} changed, "
        f"{len(result.regressions)} regression(s); "
        f"{len(result.added)} added, {len(result.removed)} removed "
        f"({tolerance})"
    )
    lines = [table, "", summary]
    if result.added:
        labels = ", ".join(r.label for r in result.added)
        lines.append(f"added (current only): {labels}")
    if result.removed:
        labels = ", ".join(r.label for r in result.removed)
        lines.append(f"removed (baseline only): {labels}")
    lines += _side_notes(result.baseline, "baseline")
    lines += _side_notes(result.current, "current")
    base_print, current_print = result.fingerprints()
    if base_print != current_print:
        lines.append(
            f"grids differ: baseline fingerprint {base_print}, "
            f"current {current_print}"
        )
    if not result.cells:
        lines.append(
            "no comparable cells — the runs share no config hash "
            "(different grid, or a CACHE_VERSION bump made the baseline "
            "stale); nothing to gate on"
        )
    if bars:
        chart = (
            _grouped_bars(result, tuple(group_by)) if group_by
            else _delta_bars(result)
        )
        if chart:
            lines.append("")
            if fmt == "md":
                chart = f"```\n{chart}\n```"
            lines.append(chart)
    return "\n".join(lines)


def _delta_bars(result: DiffResult) -> str:
    """Delta bars for the first compared metric's changed cells."""
    if not result.metrics:
        return ""
    primary = result.metrics[0]
    rows = []
    for cell in result.cells:
        delta = cell.deltas[0]
        if delta.changed and delta.relative is not None:
            rows.append((cell.label, delta.relative * 100.0))
    if not rows:
        return ""
    return f"Δ {primary} vs baseline:\n" + delta_bar_chart(rows)
