"""Cache-driven reporting: render tables from a sweep cache, no sim.

The result cache (:mod:`repro.exp.cache`) is the system's durable
result store: every executed cell lives there as one verified JSON
file.  This module turns a cache directory back into the paper's
tables — the SW / VIM / HW totals, the SW(DP) / SW(IMU) decomposition
and the speedup-over-software column — without re-running anything:

* :func:`load_cache_rows` — read every valid entry of a cache
  directory into :class:`~repro.exp.results.CellResult` rows, in a
  canonical machine-independent order;
* :func:`render_report` — group the rows along chosen config axes and
  render one table per group, in ``md`` / ``csv`` / ``ascii``;
* :func:`render_table` — the shared low-level table renderer (also
  the formatting route for the benchmark reports and the CLI);
* :func:`bar_chart` / :func:`stacked_bar_chart` /
  :func:`delta_bar_chart` — the ASCII chart renderers (historically
  ``analysis/charts.py``, now a compat shim over these).

Because the row order is canonical (sorted by label, then config
hash), a report rendered from N merged shard caches is byte-identical
to one rendered from a single unsharded run — the property the CI
matrix asserts.  ``repro sweep --report`` is the command-line face of
this module; with ``--baseline DIR`` every numeric cell is annotated
with its delta against a second cache (the PR-vs-main workflow), and
``repro diff`` (:mod:`repro.exp.diff`) builds its regression tables
and delta bars from the same renderers.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Callable

from repro.errors import ReproError
from repro.exp.results import REPLICATED_COLUMNS, CellResult
from repro.exp.spec import CellConfig
from repro.exp.store import ResultStore, open_store, store_kind_of

#: Output formats ``render_report`` / ``render_table`` understand
#: (the CLI spells this ``--format {md,csv,ascii}``).
FORMATS = ("md", "csv", "ascii")


# ----------------------------------------------------------------------
# Low-level table rendering (all three formats)
# ----------------------------------------------------------------------


def format_cell(value) -> str:
    """Render one value: floats get 3 decimals, bools yes/no."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _check_shape(headers: list[str], rendered: list[list[str]]) -> None:
    if not headers:
        raise ReproError("table needs at least one column")
    for row in rendered:
        if len(row) != len(headers):
            raise ReproError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )


def format_table(headers: list[str], rows: list[list]) -> str:
    """A fixed-width plain-text table with a header rule."""
    rendered = [[format_cell(v) for v in row] for row in rows]
    _check_shape(headers, rendered)
    widths = [
        max(len(headers[col]), max((len(r[col]) for r in rendered), default=0))
        for col in range(len(headers))
    ]

    def line(cells: list[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out += [line(row) for row in rendered]
    return "\n".join(out)


def markdown_table(headers: list[str], rows: list[list]) -> str:
    """A GitHub-flavoured markdown table."""
    rendered = [[format_cell(v) for v in row] for row in rows]
    _check_shape(headers, rendered)
    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rendered:
        out.append("| " + " | ".join(row) + " |")
    return "\n".join(out)


def csv_table(headers: list[str], rows: list[list]) -> str:
    """An RFC-4180 CSV table (comma-separated, quoted where needed)."""
    rendered = [[format_cell(v) for v in row] for row in rows]
    _check_shape(headers, rendered)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    writer.writerows(rendered)
    return buffer.getvalue().rstrip("\n")


_TABLE_RENDERERS: dict[str, Callable[[list[str], list[list]], str]] = {
    "md": markdown_table,
    "csv": csv_table,
    "ascii": format_table,
}


def _is_number(value) -> bool:
    """A genuinely numeric value (bools render yes/no, not as deltas)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def format_delta(value, base) -> str:
    """The annotation suffix for one report cell vs its baseline value.

    Returns ``""`` unless both values are numeric; ``" (=)"`` for an
    exact match; otherwise ``" (+Δ, +r%)"`` with the absolute delta
    (integer-formatted when both sides are ints) and, when the base is
    non-zero, the relative delta.  Shared by the ``--baseline`` report
    annotation and the ``repro diff`` regression table so the two
    surfaces read identically.
    """
    if not _is_number(value) or not _is_number(base):
        return ""
    delta = value - base
    if delta == 0:
        return " (=)"
    if isinstance(value, int) and isinstance(base, int):
        text = f"{delta:+d}"
    else:
        text = f"{delta:+.3f}"
    if base:
        text += f", {delta / base:+.1%}"
    return f" ({text})"


def render_table(headers: list[str], rows: list[list], fmt: str = "ascii") -> str:
    """Render one table in any of :data:`FORMATS`.

    Parameters
    ----------
    headers : list of str
        Column headings.
    rows : list of list
        Cell values; formatted via :func:`format_cell`.
    fmt : str
        One of :data:`FORMATS`.

    Raises
    ------
    ReproError
        On an unknown format or a ragged row.
    """
    renderer = _TABLE_RENDERERS.get(fmt)
    if renderer is None:
        raise ReproError(f"unknown report format {fmt!r}; choices: {FORMATS}")
    return renderer(headers, rows)


# ----------------------------------------------------------------------
# ASCII charts (the paper's figures, and regression delta bars)
# ----------------------------------------------------------------------

#: Glyphs used for stacked bar segments, in component order.
_SEGMENT_GLYPHS = ("█", "▓", "▒", "░")


def bar_chart(
    rows: list[tuple[str, float]],
    width: int = 50,
    unit: str = "ms",
) -> str:
    """Horizontal bars, one per (label, value) row."""
    if width < 8:
        raise ReproError("chart width must be at least 8 columns")
    if not rows:
        return "(no data)"
    peak = max(value for _, value in rows)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        bar = "█" * max(1, round(value / peak * width)) if value > 0 else ""
        lines.append(f"{label.ljust(label_width)} |{bar} {value:.3f}{unit}")
    return "\n".join(lines)


def stacked_bar_chart(
    rows: list[tuple[str, dict[str, float]]],
    width: int = 50,
    unit: str = "ms",
) -> str:
    """Horizontal stacked bars (the paper's HW / SW(DP) / SW(IMU) stack).

    Component order follows the dict insertion order of the first row;
    a legend line maps glyphs to component names.
    """
    if not rows:
        return "(no data)"
    components = list(rows[0][1])
    if len(components) > len(_SEGMENT_GLYPHS):
        raise ReproError(
            f"at most {len(_SEGMENT_GLYPHS)} stacked components supported"
        )
    peak = max(sum(parts.values()) for _, parts in rows) or 1.0
    label_width = max(len(label) for label, _ in rows)
    glyph_of = dict(zip(components, _SEGMENT_GLYPHS))
    lines = [
        "legend: "
        + "  ".join(f"{glyph_of[name]}={name}" for name in components)
    ]
    for label, parts in rows:
        segments = []
        for name in components:
            value = parts.get(name, 0.0)
            segments.append(glyph_of[name] * round(value / peak * width))
        total = sum(parts.values())
        lines.append(
            f"{label.ljust(label_width)} |{''.join(segments)} {total:.3f}{unit}"
        )
    return "\n".join(lines)


def delta_bar_chart(
    rows: list[tuple[str, float]],
    width: int = 40,
    unit: str = "%",
) -> str:
    """Signed horizontal bars around a centre axis.

    Renders regression-table deltas: positive values grow rightwards
    from the axis, negative leftwards, scaled to the largest absolute
    value.  A zero row shows the bare axis.

    Parameters
    ----------
    rows : list of (str, float)
        ``(label, signed value)`` pairs, e.g. relative deltas in
        percent.
    width : int
        Total bar columns (split evenly around the axis); >= 8.
    unit : str
        Suffix printed after each value.
    """
    if width < 8:
        raise ReproError("chart width must be at least 8 columns")
    if not rows:
        return "(no data)"
    peak = max(abs(value) for _, value in rows)
    if peak <= 0:
        peak = 1.0
    half = width // 2
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        cells = max(1, round(abs(value) / peak * half)) if value else 0
        left = ("█" * cells if value < 0 else "").rjust(half)
        right = "█" * cells if value > 0 else ""
        lines.append(
            f"{label.ljust(label_width)} {left}|{right.ljust(half)} "
            f"{value:+.1f}{unit}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Report columns (the paper's decomposition)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Column:
    """One report column: a header plus a value getter."""

    header: str
    value: Callable[[CellResult], object]


#: Every column ``--report`` can render, keyed by its selector name.
COLUMNS: dict[str, Column] = {
    "cell": Column("cell", lambda r: r.label),
    "sw_ms": Column("SW ms", lambda r: r.sw_ms),
    "vim_ms": Column("VIM ms", lambda r: r.vim_ms),
    "hw_ms": Column("HW ms", lambda r: r.hw_ms),
    "sw_dp_ms": Column("SW(DP) ms", lambda r: r.sw_dp_ms),
    "sw_imu_ms": Column("SW(IMU) ms", lambda r: r.sw_imu_ms),
    "sw_other_ms": Column("SW(other) ms", lambda r: r.sw_other_ms),
    "sw_imu_pct": Column(
        "SW(IMU)/total", lambda r: f"{r.sw_imu_fraction * 100:.2f}%"
    ),
    "speedup": Column("speedup", lambda r: r.vim_speedup),
    "faults": Column("faults", lambda r: r.page_faults),
    "tlb_refills": Column("TLB refills", lambda r: r.tlb_refills),
    "evictions": Column("evictions", lambda r: r.evictions),
    "steals": Column("steals", lambda r: r.steals),
    "writebacks": Column("writebacks", lambda r: r.writebacks),
    "prefetches": Column("prefetches", lambda r: r.prefetches),
    "dma_transfers": Column("DMA xfers", lambda r: r.dma_transfers),
    "tlb_hit_rate": Column("TLB hit rate", lambda r: r.tlb_hit_rate),
    "typical_ms": Column(
        "typical ms",
        lambda r: (
            "exceeds memory" if not r.typical_fits
            else r.typical_ms if r.typical_ms is not None
            else "-"  # cell ran without with_typical
        ),
    ),
}

# The cross-replicate summary columns, one mean/CV pair per entry of
# results.REPLICATED_COLUMNS (e.g. "vim_ms_mean", "vim_ms_cv").
for _field in REPLICATED_COLUMNS:
    COLUMNS[f"{_field}_mean"] = Column(
        f"{_field} mean",
        lambda r, f=_field: getattr(r, f"{f}_mean"),
    )
    COLUMNS[f"{_field}_cv"] = Column(
        f"{_field} CV",
        lambda r, f=_field: getattr(r, f"{f}_cv"),
    )
del _field

#: The default ``--report`` column set: the SW(DP)/SW(IMU) time
#: decomposition plus the speedup-over-software column of Figures 8/9.
DEFAULT_COLUMNS = (
    "cell", "sw_ms", "vim_ms", "hw_ms", "sw_dp_ms", "sw_imu_ms",
    "sw_imu_pct", "speedup", "faults",
)

#: The columns auto-appended to :data:`DEFAULT_COLUMNS` when a report
#: covers replicated rows (any ``config.replicates > 1``), in
#: :data:`~repro.exp.results.REPLICATED_COLUMNS` order.
REPLICATED_REPORT_COLUMNS = tuple(
    f"{field}_{stat}"
    for field in REPLICATED_COLUMNS
    for stat in ("mean", "cv")
)


def default_columns(rows) -> tuple[str, ...]:
    """The column set a report of *rows* renders when none is chosen.

    :data:`DEFAULT_COLUMNS`, plus the mean/CV summary columns when any
    row was replicated — so an unreplicated report stays byte-identical
    to the pre-replication renderer, and a replicated one surfaces its
    spread without being asked.
    """
    if any(row.config.replicates > 1 for row in rows):
        return DEFAULT_COLUMNS + REPLICATED_REPORT_COLUMNS
    return DEFAULT_COLUMNS


def group_axes() -> tuple[str, ...]:
    """Config axes a report can group along (``--group-by`` choices)."""
    return tuple(f.name for f in fields(CellConfig))


# ----------------------------------------------------------------------
# Cache loading
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CacheRows:
    """The readable contents of one result store.

    Parameters
    ----------
    rows : tuple of CellResult
        Every valid entry, sorted by ``(label, key)`` — a canonical
        order independent of filesystem listing order, store backend,
        or of which machine (or shard) produced each entry.
    skipped : int
        Entries that did not parse as current-version rows (stale
        schema version, corrupt JSON, hash mismatch) and were left
        out of the report.
    """

    rows: tuple[CellResult, ...]
    skipped: int


def load_cache_rows(
    cache_dir: str | Path, allow_empty: bool = False
) -> CacheRows:
    """Load every valid cell result stored under *cache_dir*.

    Parameters
    ----------
    cache_dir : str or Path
        A result store: a sweep-cache directory (``--cache DIR`` of a
        previous run, the output of
        :func:`repro.exp.merge.merge_into`) or a SQLite store file.
    allow_empty : bool
        With the default ``False``, a store holding no valid entry
        raises.  ``True`` returns an empty row set instead — the
        baseline loader uses that so a baseline written under an older
        ``CACHE_VERSION`` degrades to "nothing to compare" rather than
        failing the report it annotates.

    Returns
    -------
    CacheRows
        Valid rows in canonical order plus the skipped-entry count.

    Raises
    ------
    ReproError
        If the store does not exist, or (unless *allow_empty*)
        holds no valid entry.
    """
    root = Path(cache_dir)
    if not root.exists() or store_kind_of(root) is None:
        raise ReproError(f"cache directory {root} does not exist")
    store = open_store(root)
    rows = []
    skipped = 0
    for _origin, status, result in store.iter_classified():
        if status == "ok":
            rows.append(result)
        else:
            skipped += 1
    store.close()
    if not rows and not allow_empty:
        raise ReproError(
            f"no loadable cell results in {root} "
            f"({skipped} stale/invalid file(s) skipped); "
            "run `repro sweep --cache` first"
        )
    rows.sort(key=lambda r: (r.label, r.key))
    return CacheRows(rows=tuple(rows), skipped=skipped)


# ----------------------------------------------------------------------
# Grouping and report rendering
# ----------------------------------------------------------------------


def _resolve_columns(names) -> list[tuple[str, Column]]:
    unknown = [name for name in names if name not in COLUMNS]
    if unknown:
        raise ReproError(
            f"unknown report column(s) {unknown}; choices: {sorted(COLUMNS)}"
        )
    return [(name, COLUMNS[name]) for name in names]


def _group_rows(
    rows, axes: tuple[str, ...]
) -> list[tuple[tuple, list[CellResult]]]:
    """Split *rows* into (raw-group-values, rows) buckets, sorted.

    Groups sort by the **raw** axis values (``None`` first), so
    numeric axes order numerically — a page-size grouping renders
    512, 1024, 2048, not the lexicographic 1024, 2048, 512.
    """
    groups: dict[tuple, list[CellResult]] = {}
    for row in rows:
        key = tuple(getattr(row.config, axis) for axis in axes)
        groups.setdefault(key, []).append(row)
    return sorted(
        groups.items(),
        key=lambda item: tuple((v is not None, v) for v in item[0]),
    )


def render_report(
    rows,
    group_by: tuple[str, ...] = (),
    fmt: str = "md",
    columns=None,
    baseline=None,
) -> str:
    """Render *rows* as grouped tables.

    Parameters
    ----------
    rows : iterable of CellResult
        The rows to report (typically ``load_cache_rows(dir).rows``).
        Rendering order is canonicalised internally, so any input
        order produces the same bytes.
    group_by : tuple of str
        Config axes to group along (see :func:`group_axes`).  ``md``
        and ``ascii`` render one headed table per group; ``csv`` stays
        one flat table with the group axes as leading columns.
    fmt : str
        One of :data:`FORMATS`.
    columns : sequence of str, optional
        Column selectors from :data:`COLUMNS`; ``None`` (the default)
        picks :func:`default_columns` — the classic set, widened by
        the mean/CV summaries when any row is replicated.
    baseline : iterable of CellResult, optional
        A second run's rows (``--baseline DIR``).  Every numeric cell
        is annotated with its delta against the baseline row of the
        same config hash (:func:`format_delta`); rows with no baseline
        counterpart are marked ``(new)``, and baseline rows absent
        from *rows* are listed after the tables (``md``/``ascii`` only
        — ``csv`` stays pure records, with the annotations as quoted
        fields).  ``None`` renders the classic unannotated report,
        byte-identical to before the feature existed.

    Returns
    -------
    str
        The rendered report (no trailing newline).

    Raises
    ------
    ReproError
        On unknown format, axis, or column names.
    """
    if fmt not in FORMATS:
        raise ReproError(f"unknown report format {fmt!r}; choices: {FORMATS}")
    known_axes = group_axes()
    bad = [axis for axis in group_by if axis not in known_axes]
    if bad:
        raise ReproError(
            f"unknown group-by axis/axes {bad}; choices: {known_axes}"
        )
    ordered = sorted(rows, key=lambda r: (r.label, r.key))
    if columns is None:
        columns = default_columns(ordered)
    selected = _resolve_columns(columns)
    headers = [column.header for _, column in selected]
    base_by_key = (
        None if baseline is None else {row.key: row for row in baseline}
    )

    def annotate(column, row):
        value = column.value(row)
        if base_by_key is None or not _is_number(value):
            return value
        base_row = base_by_key.get(row.key)
        if base_row is None:
            return f"{format_cell(value)} (new)"
        return format_cell(value) + format_delta(value, column.value(base_row))

    def table_rows(group) -> list[list]:
        return [
            [annotate(column, row) for _, column in selected]
            for row in group
        ]

    def removed_note() -> str:
        # csv stays pure records (a prose trailer would corrupt any
        # downstream parser); annotation strings are quoted fields,
        # which RFC 4180 allows.
        if base_by_key is None or fmt == "csv":
            return ""
        present = {row.key for row in ordered}
        gone = sorted(
            (row.label, key)
            for key, row in base_by_key.items()
            if key not in present
        )
        if not gone:
            return ""
        labels = ", ".join(label for label, _ in gone)
        return (
            f"\n\n{len(gone)} baseline cell(s) absent from this cache: "
            f"{labels}"
        )

    if not group_by:
        return render_table(headers, table_rows(ordered), fmt) + removed_note()

    grouped = _group_rows(ordered, tuple(group_by))
    if fmt == "csv":
        flat = [
            list(values) + cells
            for values, group in grouped
            for cells in table_rows(group)
        ]
        return (
            render_table(list(group_by) + headers, flat, fmt) + removed_note()
        )

    sections = []
    for values, group in grouped:
        title = ", ".join(
            f"{axis}={format_cell(value)}"
            for axis, value in zip(group_by, values)
        )
        heading = f"### {title}" if fmt == "md" else f"== {title} =="
        sections.append(heading + "\n\n" + render_table(headers, table_rows(group), fmt))
    return "\n\n".join(sections) + removed_note()


def stream_report(
    store: ResultStore,
    out,
    fmt: str = "md",
    columns=None,
) -> int:
    """Render the ungrouped report of *store* into *out*, streaming.

    The out-of-core face of :func:`render_report`: rows come off the
    store's ``(label, key)``-sorted cursor one at a time and each is
    formatted and written immediately, so a 10k-cell report never
    holds 10k rows.  The bytes written are identical to
    ``render_report(rows, fmt=fmt, columns=columns)`` over the same
    store — the property the cross-backend CI job asserts.

    ``md`` and ``csv`` are single-pass; ``ascii`` needs column widths
    up front, so it walks the cursor twice (still one row in memory
    at a time).  Grouped and baseline-annotated reports go through
    :func:`render_report` — grouping reorders rows, so it has to
    collect them.

    Parameters
    ----------
    store : ResultStore
        The store to report.
    out : file-like
        Destination; written via ``out.write`` with no trailing
        newline (matching :func:`render_report`'s return value).
    fmt : str
        One of :data:`FORMATS`.
    columns : sequence of str, optional
        Column selectors; ``None`` picks the default set, widened by
        the mean/CV summaries when the store holds replicated rows.

    Returns
    -------
    int
        Rows rendered.
    """
    if fmt not in FORMATS:
        raise ReproError(f"unknown report format {fmt!r}; choices: {FORMATS}")
    if columns is None:
        columns = DEFAULT_COLUMNS
        if store.any_replicated():
            columns = columns + REPLICATED_REPORT_COLUMNS
    selected = _resolve_columns(columns)
    headers = [column.header for _, column in selected]
    if not headers:
        raise ReproError("table needs at least one column")

    def formatted(row) -> list[str]:
        return [format_cell(column.value(row)) for _, column in selected]

    count = 0
    if fmt == "md":
        out.write("| " + " | ".join(headers) + " |")
        out.write("\n|" + "|".join("---" for _ in headers) + "|")
        for row in store.iter_report_rows():
            out.write("\n| " + " | ".join(formatted(row)) + " |")
            count += 1
        return count
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")

        def record(cells: list[str]) -> str:
            writer.writerow(cells)
            line = buffer.getvalue()[:-1]  # drop the line terminator
            buffer.seek(0)
            buffer.truncate(0)
            return line

        out.write(record(headers))
        for row in store.iter_report_rows():
            out.write("\n" + record(formatted(row)))
            count += 1
        return count
    # ascii: pass 1 measures column widths, pass 2 emits.
    widths = [len(header) for header in headers]
    for row in store.iter_report_rows():
        for index, text in enumerate(formatted(row)):
            widths[index] = max(widths[index], len(text))

    def line(cells: list[str]) -> str:
        return "  ".join(
            cell.rjust(width) for cell, width in zip(cells, widths)
        )

    out.write(line(headers))
    out.write("\n" + line(["-" * width for width in widths]))
    for row in store.iter_report_rows():
        out.write("\n" + line(formatted(row)))
        count += 1
    return count


def report_from_cache(
    cache_dir: str | Path,
    group_by: tuple[str, ...] = (),
    fmt: str = "md",
    columns=None,
    strict: bool = True,
    baseline_dir: str | Path | None = None,
) -> str:
    """Load *cache_dir* and render its report — the ``--report`` path.

    A convenience composition of :func:`load_cache_rows` and
    :func:`render_report`; no simulation happens.

    Parameters
    ----------
    strict : bool
        With the default ``True``, raise if any cache file had to be
        skipped (stale version, corrupt, renamed) — a partial table
        must not pass silently as the whole grid.  ``False`` renders
        the loadable subset; the CLI does that, printing a warning.
    baseline_dir : str or Path, optional
        A second cache directory (``--baseline DIR``): every numeric
        cell gains its delta against the baseline row of the same
        config hash.  Stale/invalid baseline entries never fail the
        report — a baseline from an older ``CACHE_VERSION`` simply has
        nothing to compare, and the current rows render ``(new)``.
    """
    loaded = load_cache_rows(cache_dir)
    if strict and loaded.skipped:
        raise ReproError(
            f"{loaded.skipped} stale/invalid cache entr"
            f"{'y' if loaded.skipped == 1 else 'ies'} in {cache_dir}; "
            "re-run the sweep against this cache, or pass strict=False "
            "to report the loadable subset"
        )
    baseline = None
    if baseline_dir is not None:
        baseline = load_cache_rows(baseline_dir, allow_empty=True).rows
    return render_report(
        loaded.rows,
        group_by=group_by,
        fmt=fmt,
        columns=columns,
        baseline=baseline,
    )
