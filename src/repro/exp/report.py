"""Cache-driven reporting: render tables from a sweep cache, no sim.

The result cache (:mod:`repro.exp.cache`) is the system's durable
result store: every executed cell lives there as one verified JSON
file.  This module turns a cache directory back into the paper's
tables — the SW / VIM / HW totals, the SW(DP) / SW(IMU) decomposition
and the speedup-over-software column — without re-running anything:

* :func:`load_cache_rows` — read every valid entry of a cache
  directory into :class:`~repro.exp.results.CellResult` rows, in a
  canonical machine-independent order;
* :func:`render_report` — group the rows along chosen config axes and
  render one table per group, in ``md`` / ``csv`` / ``ascii``;
* :func:`render_table` — the shared low-level table renderer (also
  the formatting route for the benchmark reports and the CLI).

Because the row order is canonical (sorted by label, then config
hash), a report rendered from N merged shard caches is byte-identical
to one rendered from a single unsharded run — the property the CI
matrix asserts.  ``repro sweep --report`` is the command-line face of
this module.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Callable

from repro.errors import ReproError
from repro.exp.cache import iter_entries
from repro.exp.results import CellResult
from repro.exp.spec import CellConfig

#: Output formats ``render_report`` / ``render_table`` understand
#: (the CLI spells this ``--format {md,csv,ascii}``).
FORMATS = ("md", "csv", "ascii")


# ----------------------------------------------------------------------
# Low-level table rendering (all three formats)
# ----------------------------------------------------------------------


def format_cell(value) -> str:
    """Render one value: floats get 3 decimals, bools yes/no."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _check_shape(headers: list[str], rendered: list[list[str]]) -> None:
    if not headers:
        raise ReproError("table needs at least one column")
    for row in rendered:
        if len(row) != len(headers):
            raise ReproError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )


def format_table(headers: list[str], rows: list[list]) -> str:
    """A fixed-width plain-text table with a header rule."""
    rendered = [[format_cell(v) for v in row] for row in rows]
    _check_shape(headers, rendered)
    widths = [
        max(len(headers[col]), max((len(r[col]) for r in rendered), default=0))
        for col in range(len(headers))
    ]

    def line(cells: list[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out += [line(row) for row in rendered]
    return "\n".join(out)


def markdown_table(headers: list[str], rows: list[list]) -> str:
    """A GitHub-flavoured markdown table."""
    rendered = [[format_cell(v) for v in row] for row in rows]
    _check_shape(headers, rendered)
    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rendered:
        out.append("| " + " | ".join(row) + " |")
    return "\n".join(out)


def csv_table(headers: list[str], rows: list[list]) -> str:
    """An RFC-4180 CSV table (comma-separated, quoted where needed)."""
    rendered = [[format_cell(v) for v in row] for row in rows]
    _check_shape(headers, rendered)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    writer.writerows(rendered)
    return buffer.getvalue().rstrip("\n")


_TABLE_RENDERERS: dict[str, Callable[[list[str], list[list]], str]] = {
    "md": markdown_table,
    "csv": csv_table,
    "ascii": format_table,
}


def render_table(headers: list[str], rows: list[list], fmt: str = "ascii") -> str:
    """Render one table in any of :data:`FORMATS`.

    Parameters
    ----------
    headers : list of str
        Column headings.
    rows : list of list
        Cell values; formatted via :func:`format_cell`.
    fmt : str
        One of :data:`FORMATS`.

    Raises
    ------
    ReproError
        On an unknown format or a ragged row.
    """
    renderer = _TABLE_RENDERERS.get(fmt)
    if renderer is None:
        raise ReproError(f"unknown report format {fmt!r}; choices: {FORMATS}")
    return renderer(headers, rows)


# ----------------------------------------------------------------------
# Report columns (the paper's decomposition)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Column:
    """One report column: a header plus a value getter."""

    header: str
    value: Callable[[CellResult], object]


#: Every column ``--report`` can render, keyed by its selector name.
COLUMNS: dict[str, Column] = {
    "cell": Column("cell", lambda r: r.label),
    "sw_ms": Column("SW ms", lambda r: r.sw_ms),
    "vim_ms": Column("VIM ms", lambda r: r.vim_ms),
    "hw_ms": Column("HW ms", lambda r: r.hw_ms),
    "sw_dp_ms": Column("SW(DP) ms", lambda r: r.sw_dp_ms),
    "sw_imu_ms": Column("SW(IMU) ms", lambda r: r.sw_imu_ms),
    "sw_other_ms": Column("SW(other) ms", lambda r: r.sw_other_ms),
    "sw_imu_pct": Column(
        "SW(IMU)/total", lambda r: f"{r.sw_imu_fraction * 100:.2f}%"
    ),
    "speedup": Column("speedup", lambda r: r.vim_speedup),
    "faults": Column("faults", lambda r: r.page_faults),
    "tlb_refills": Column("TLB refills", lambda r: r.tlb_refills),
    "evictions": Column("evictions", lambda r: r.evictions),
    "steals": Column("steals", lambda r: r.steals),
    "writebacks": Column("writebacks", lambda r: r.writebacks),
    "prefetches": Column("prefetches", lambda r: r.prefetches),
    "dma_transfers": Column("DMA xfers", lambda r: r.dma_transfers),
    "tlb_hit_rate": Column("TLB hit rate", lambda r: r.tlb_hit_rate),
    "typical_ms": Column(
        "typical ms",
        lambda r: (
            "exceeds memory" if not r.typical_fits
            else r.typical_ms if r.typical_ms is not None
            else "-"  # cell ran without with_typical
        ),
    ),
}

#: The default ``--report`` column set: the SW(DP)/SW(IMU) time
#: decomposition plus the speedup-over-software column of Figures 8/9.
DEFAULT_COLUMNS = (
    "cell", "sw_ms", "vim_ms", "hw_ms", "sw_dp_ms", "sw_imu_ms",
    "sw_imu_pct", "speedup", "faults",
)


def group_axes() -> tuple[str, ...]:
    """Config axes a report can group along (``--group-by`` choices)."""
    return tuple(f.name for f in fields(CellConfig))


# ----------------------------------------------------------------------
# Cache loading
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CacheRows:
    """The readable contents of one cache directory.

    Parameters
    ----------
    rows : tuple of CellResult
        Every valid entry, sorted by ``(label, key)`` — a canonical
        order independent of filesystem listing order or of which
        machine (or shard) produced each entry.
    skipped : int
        Files that did not parse as current-version cache entries
        (stale schema version, corrupt JSON, hash mismatch) and were
        left out of the report.
    """

    rows: tuple[CellResult, ...]
    skipped: int


def load_cache_rows(cache_dir: str | Path) -> CacheRows:
    """Load every valid cell result stored under *cache_dir*.

    Parameters
    ----------
    cache_dir : str or Path
        A sweep-cache directory (``--cache DIR`` of a previous run, or
        the output of :func:`repro.exp.merge.merge_into`).

    Returns
    -------
    CacheRows
        Valid rows in canonical order plus the skipped-file count.

    Raises
    ------
    ReproError
        If the directory does not exist or holds no valid entry.
    """
    root = Path(cache_dir)
    if not root.is_dir():
        raise ReproError(f"cache directory {root} does not exist")
    rows = []
    skipped = 0
    for _path, result in iter_entries(root):
        if result is None:
            skipped += 1
        else:
            rows.append(result)
    if not rows:
        raise ReproError(
            f"no loadable cell results in {root} "
            f"({skipped} stale/invalid file(s) skipped); "
            "run `repro sweep --cache` first"
        )
    rows.sort(key=lambda r: (r.label, r.key))
    return CacheRows(rows=tuple(rows), skipped=skipped)


# ----------------------------------------------------------------------
# Grouping and report rendering
# ----------------------------------------------------------------------


def _resolve_columns(names) -> list[tuple[str, Column]]:
    unknown = [name for name in names if name not in COLUMNS]
    if unknown:
        raise ReproError(
            f"unknown report column(s) {unknown}; choices: {sorted(COLUMNS)}"
        )
    return [(name, COLUMNS[name]) for name in names]


def _group_rows(
    rows, axes: tuple[str, ...]
) -> list[tuple[tuple, list[CellResult]]]:
    """Split *rows* into (raw-group-values, rows) buckets, sorted.

    Groups sort by the **raw** axis values (``None`` first), so
    numeric axes order numerically — a page-size grouping renders
    512, 1024, 2048, not the lexicographic 1024, 2048, 512.
    """
    groups: dict[tuple, list[CellResult]] = {}
    for row in rows:
        key = tuple(getattr(row.config, axis) for axis in axes)
        groups.setdefault(key, []).append(row)
    return sorted(
        groups.items(),
        key=lambda item: tuple((v is not None, v) for v in item[0]),
    )


def render_report(
    rows,
    group_by: tuple[str, ...] = (),
    fmt: str = "md",
    columns=DEFAULT_COLUMNS,
) -> str:
    """Render *rows* as grouped tables.

    Parameters
    ----------
    rows : iterable of CellResult
        The rows to report (typically ``load_cache_rows(dir).rows``).
        Rendering order is canonicalised internally, so any input
        order produces the same bytes.
    group_by : tuple of str
        Config axes to group along (see :func:`group_axes`).  ``md``
        and ``ascii`` render one headed table per group; ``csv`` stays
        one flat table with the group axes as leading columns.
    fmt : str
        One of :data:`FORMATS`.
    columns : sequence of str
        Column selectors from :data:`COLUMNS`.

    Returns
    -------
    str
        The rendered report (no trailing newline).

    Raises
    ------
    ReproError
        On unknown format, axis, or column names.
    """
    if fmt not in FORMATS:
        raise ReproError(f"unknown report format {fmt!r}; choices: {FORMATS}")
    known_axes = group_axes()
    bad = [axis for axis in group_by if axis not in known_axes]
    if bad:
        raise ReproError(
            f"unknown group-by axis/axes {bad}; choices: {known_axes}"
        )
    selected = _resolve_columns(columns)
    ordered = sorted(rows, key=lambda r: (r.label, r.key))
    headers = [column.header for _, column in selected]

    def table_rows(group) -> list[list]:
        return [[column.value(row) for _, column in selected] for row in group]

    if not group_by:
        return render_table(headers, table_rows(ordered), fmt)

    grouped = _group_rows(ordered, tuple(group_by))
    if fmt == "csv":
        flat = [
            list(values) + cells
            for values, group in grouped
            for cells in table_rows(group)
        ]
        return render_table(list(group_by) + headers, flat, fmt)

    sections = []
    for values, group in grouped:
        title = ", ".join(
            f"{axis}={format_cell(value)}"
            for axis, value in zip(group_by, values)
        )
        heading = f"### {title}" if fmt == "md" else f"== {title} =="
        sections.append(heading + "\n\n" + render_table(headers, table_rows(group), fmt))
    return "\n\n".join(sections)


def report_from_cache(
    cache_dir: str | Path,
    group_by: tuple[str, ...] = (),
    fmt: str = "md",
    columns=DEFAULT_COLUMNS,
    strict: bool = True,
) -> str:
    """Load *cache_dir* and render its report — the ``--report`` path.

    A convenience composition of :func:`load_cache_rows` and
    :func:`render_report`; no simulation happens.

    Parameters
    ----------
    strict : bool
        With the default ``True``, raise if any cache file had to be
        skipped (stale version, corrupt, renamed) — a partial table
        must not pass silently as the whole grid.  ``False`` renders
        the loadable subset; the CLI does that, printing a warning.
    """
    loaded = load_cache_rows(cache_dir)
    if strict and loaded.skipped:
        raise ReproError(
            f"{loaded.skipped} stale/invalid cache entr"
            f"{'y' if loaded.skipped == 1 else 'ies'} in {cache_dir}; "
            "re-run the sweep against this cache, or pass strict=False "
            "to report the loadable subset"
        )
    return render_report(
        loaded.rows,
        group_by=group_by,
        fmt=fmt,
        columns=columns,
    )
