"""Typed result rows produced by the cell runner.

A :class:`CellResult` is the flattened, JSON-stable record of one grid
cell: the configuration that produced it, the time decomposition of
every executed version, and the VIM counters the figures plot.  The
serialisation is exact (Python floats round-trip through ``repr`` in
JSON), which is what makes parallel and serial sweeps byte-comparable.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

from repro.errors import ReproError
from repro.exp.spec import CellConfig


#: CellResult fields that JSON round-trips as lists but the dataclass
#: stores as tuples (normalised by :meth:`CellResult.from_dict`).
_TUPLE_FIELDS = (
    "tenant_labels",
    "tenant_ms",
    "tenant_faults",
    "tenant_evictions",
    "tenant_steals",
    "tenant_pages_lost",
)


@dataclass(frozen=True)
class CellResult:
    """Measurements of one executed cell (all times in milliseconds).

    Parameters
    ----------
    config : CellConfig
        The configuration that produced this row.
    key, label, workload : str
        The config's cache hash, its compact human label, and the name
        of the workload it built.
    sw_ms, vim_ms, hw_ms, sw_dp_ms, sw_imu_ms, sw_other_ms : float
        The paper's time decomposition: pure-software total, VIM-based
        total, and the VIM total's hardware / DP-RAM-management /
        IMU-management / OS-plumbing components.  For multi-tenant
        cells ``vim_ms`` is the *makespan* of the whole contended run
        and the component times are sums over tenants.
    vim_speedup : float
        ``sw_ms / vim_ms``.
    page_faults, compulsory_loads, evictions, steals, writebacks,
    prefetches, bytes_to_dpram, bytes_from_dpram : int
        VIM event counters (summed over tenants when ``tenants > 1``;
        ``steals`` counts cross-tenant evictions and is 0 for solo
        cells).
    tlb_refills : int
        Faults serviced without moving data — the page was resident
        but its translation had been displaced (TLB smaller than the
        frame count).  Kept out of ``page_faults`` so the §4.1 fault
        decomposition is not inflated by translation churn.
    dma_transfers : int
        Page movements performed by DMA descriptor instead of CPU copy
        (non-zero for ``transfer="dma"`` cells and overlapped
        prefetching).
    tlb_hit_rate : float
        Fraction of IMU TLB lookups that hit.
    typical_ms, typical_speedup : float or None
        The non-virtualised coprocessor version, when requested and
        when the working set fits (``typical_fits``).
    tenant_labels : tuple of str
        Per-tenant process names (empty for solo cells); the remaining
        ``tenant_*`` tuples are indexed identically.
    tenant_ms, tenant_faults, tenant_evictions, tenant_steals,
    tenant_pages_lost : tuple
        Per-tenant time and fault/evict/steal decomposition:
        ``tenant_steals[i]`` counts evictions tenant *i* inflicted on
        neighbours, ``tenant_pages_lost[i]`` its own resident pages
        evicted by neighbours.
    """

    config: CellConfig
    key: str
    label: str
    workload: str
    sw_ms: float
    vim_ms: float
    hw_ms: float
    sw_dp_ms: float
    sw_imu_ms: float
    sw_other_ms: float
    vim_speedup: float
    page_faults: int
    compulsory_loads: int
    evictions: int
    writebacks: int
    prefetches: int
    bytes_to_dpram: int
    bytes_from_dpram: int
    tlb_hit_rate: float
    typical_ms: float | None = None
    typical_speedup: float | None = None
    typical_fits: bool = True
    steals: int = 0
    tlb_refills: int = 0
    dma_transfers: int = 0
    tenant_labels: tuple[str, ...] = ()
    tenant_ms: tuple[float, ...] = ()
    tenant_faults: tuple[int, ...] = ()
    tenant_evictions: tuple[int, ...] = ()
    tenant_steals: tuple[int, ...] = ()
    tenant_pages_lost: tuple[int, ...] = ()

    @property
    def sw_imu_fraction(self) -> float:
        """SW(IMU) share of the VIM total (the paper's <= 2.5 % claim)."""
        return self.sw_imu_ms / self.vim_ms if self.vim_ms else 0.0

    def to_dict(self) -> dict:
        """Dump to JSON-friendly primitives.

        Returns
        -------
        dict
            All fields, with the config nested as its own dict and the
            per-tenant tuples as lists (the JSON encoding).
        """
        data = asdict(self)
        data["config"] = self.config.to_dict()
        for name in _TUPLE_FIELDS:
            data[name] = list(data[name])
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CellResult":
        """Rebuild a result row from :meth:`to_dict` output.

        Parameters
        ----------
        data : dict
            A dict as produced by :meth:`to_dict` (e.g. loaded from a
            cache file); unknown keys raise
            :class:`~repro.errors.ReproError` rather than being
            silently dropped.

        Returns
        -------
        CellResult
            An exact reconstruction — floats round-trip through
            ``repr`` in JSON, so ``from_dict(to_dict(r)) == r``.
        """
        names = {f.name for f in fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ReproError(f"unknown cell result fields: {sorted(unknown)}")
        payload = dict(data)
        payload["config"] = CellConfig.from_dict(payload["config"])
        for name in _TUPLE_FIELDS:
            if name in payload:
                payload[name] = tuple(payload[name])
        return cls(**payload)
