"""Typed result rows produced by the cell runner.

A :class:`CellResult` is the flattened, JSON-stable record of one grid
cell: the configuration that produced it, the time decomposition of
every executed version, and the VIM counters the figures plot.  The
serialisation is exact (Python floats round-trip through ``repr`` in
JSON), which is what makes parallel and serial sweeps byte-comparable.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

from repro.errors import ReproError
from repro.exp.spec import CellConfig


@dataclass(frozen=True)
class CellResult:
    """Measurements of one executed cell (all times in milliseconds)."""

    config: CellConfig
    key: str
    label: str
    workload: str
    sw_ms: float
    vim_ms: float
    hw_ms: float
    sw_dp_ms: float
    sw_imu_ms: float
    sw_other_ms: float
    vim_speedup: float
    page_faults: int
    compulsory_loads: int
    evictions: int
    writebacks: int
    prefetches: int
    bytes_to_dpram: int
    bytes_from_dpram: int
    tlb_hit_rate: float
    typical_ms: float | None = None
    typical_speedup: float | None = None
    typical_fits: bool = True

    @property
    def sw_imu_fraction(self) -> float:
        """SW(IMU) share of the VIM total (the paper's <= 2.5 % claim)."""
        return self.sw_imu_ms / self.vim_ms if self.vim_ms else 0.0

    def to_dict(self) -> dict:
        """JSON-friendly dump; the config nests as its own dict."""
        data = asdict(self)
        data["config"] = self.config.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CellResult":
        names = {f.name for f in fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ReproError(f"unknown cell result fields: {sorted(unknown)}")
        payload = dict(data)
        payload["config"] = CellConfig.from_dict(payload["config"])
        return cls(**payload)
