"""Typed result rows produced by the cell runner.

A :class:`CellResult` is the flattened, JSON-stable record of one grid
cell: the configuration that produced it, the time decomposition of
every executed version, and the VIM counters the figures plot.  The
serialisation is exact (Python floats round-trip through ``repr`` in
JSON), which is what makes parallel and serial sweeps byte-comparable.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

from repro.errors import ReproError
from repro.exp.spec import CellConfig


#: CellResult fields that JSON round-trips as lists but the dataclass
#: stores as tuples (normalised by :meth:`CellResult.from_dict`).
_TUPLE_FIELDS = (
    "tenant_labels",
    "tenant_ms",
    "tenant_faults",
    "tenant_evictions",
    "tenant_steals",
    "tenant_pages_lost",
)

#: The primary columns that grow cross-replicate ``<name>_mean`` /
#: ``<name>_cv`` summaries when ``config.replicates > 1``.  Order
#: matters: reports and the CLI print the derived columns in this
#: order.
REPLICATED_COLUMNS = (
    "vim_ms",
    "hw_ms",
    "sw_dp_ms",
    "sw_imu_ms",
    "vim_speedup",
    "page_faults",
)


@dataclass(frozen=True)
class CellResult:
    """Measurements of one executed cell (all times in milliseconds).

    Parameters
    ----------
    config : CellConfig
        The configuration that produced this row.
    key, label, workload : str
        The config's cache hash, its compact human label, and the name
        of the workload it built.
    sw_ms, vim_ms, hw_ms, sw_dp_ms, sw_imu_ms, sw_other_ms : float
        The paper's time decomposition: pure-software total, VIM-based
        total, and the VIM total's hardware / DP-RAM-management /
        IMU-management / OS-plumbing components.  For multi-tenant
        cells ``vim_ms`` is the *makespan* of the whole contended run
        and the component times are sums over tenants.
    vim_speedup : float
        ``sw_ms / vim_ms``.
    page_faults, compulsory_loads, evictions, steals, writebacks,
    prefetches, bytes_to_dpram, bytes_from_dpram : int
        VIM event counters (summed over tenants when ``tenants > 1``;
        ``steals`` counts cross-tenant evictions and is 0 for solo
        cells).
    tlb_refills : int
        Faults serviced without moving data — the page was resident
        but its translation had been displaced (TLB smaller than the
        frame count).  Kept out of ``page_faults`` so the §4.1 fault
        decomposition is not inflated by translation churn.
    dma_transfers : int
        Page movements performed by DMA descriptor instead of CPU copy
        (non-zero for ``transfer="dma"`` cells and overlapped
        prefetching).
    tlb_hit_rate : float
        Fraction of IMU TLB lookups that hit.
    typical_ms, typical_speedup : float or None
        The non-virtualised coprocessor version, when requested and
        when the working set fits (``typical_fits``).
    tenant_labels : tuple of str
        Per-tenant process names (empty for solo cells); the remaining
        ``tenant_*`` tuples are indexed identically.
    tenant_ms, tenant_faults, tenant_evictions, tenant_steals,
    tenant_pages_lost : tuple
        Per-tenant time and fault/evict/steal decomposition:
        ``tenant_steals[i]`` counts evictions tenant *i* inflicted on
        neighbours, ``tenant_pages_lost[i]`` its own resident pages
        evicted by neighbours.
    vim_ms_mean, ..., page_faults_cv : float or None
        Cross-replicate summaries of the :data:`REPLICATED_COLUMNS`
        when ``config.replicates > 1``: ``<name>_mean`` is the
        arithmetic mean over the replicate runs, ``<name>_cv`` the
        coefficient of variation (sample standard deviation over the
        absolute mean; 0.0 when the mean is zero or there is a single
        replicate).  The primary columns always report replicate 0
        (the cell's own ``seed``), so an unreplicated run and
        replicate 0 of a replicated run agree exactly.  When left
        ``None`` at construction they are autofilled from the primary
        columns with a CV of 0.0 — the degenerate one-replicate
        summary — so every row carries the full schema.
    """

    config: CellConfig
    key: str
    label: str
    workload: str
    sw_ms: float
    vim_ms: float
    hw_ms: float
    sw_dp_ms: float
    sw_imu_ms: float
    sw_other_ms: float
    vim_speedup: float
    page_faults: int
    compulsory_loads: int
    evictions: int
    writebacks: int
    prefetches: int
    bytes_to_dpram: int
    bytes_from_dpram: int
    tlb_hit_rate: float
    typical_ms: float | None = None
    typical_speedup: float | None = None
    typical_fits: bool = True
    steals: int = 0
    tlb_refills: int = 0
    dma_transfers: int = 0
    tenant_labels: tuple[str, ...] = ()
    tenant_ms: tuple[float, ...] = ()
    tenant_faults: tuple[int, ...] = ()
    tenant_evictions: tuple[int, ...] = ()
    tenant_steals: tuple[int, ...] = ()
    tenant_pages_lost: tuple[int, ...] = ()
    vim_ms_mean: float | None = None
    vim_ms_cv: float | None = None
    hw_ms_mean: float | None = None
    hw_ms_cv: float | None = None
    sw_dp_ms_mean: float | None = None
    sw_dp_ms_cv: float | None = None
    sw_imu_ms_mean: float | None = None
    sw_imu_ms_cv: float | None = None
    vim_speedup_mean: float | None = None
    vim_speedup_cv: float | None = None
    page_faults_mean: float | None = None
    page_faults_cv: float | None = None

    def __post_init__(self) -> None:
        # Autofill the cross-replicate summaries with the degenerate
        # one-replicate values so every row carries the full schema and
        # single-shot constructors stay unchanged.
        for name in REPLICATED_COLUMNS:
            if getattr(self, f"{name}_mean") is None:
                object.__setattr__(
                    self, f"{name}_mean", float(getattr(self, name))
                )
            if getattr(self, f"{name}_cv") is None:
                object.__setattr__(self, f"{name}_cv", 0.0)

    @property
    def sw_imu_fraction(self) -> float:
        """SW(IMU) share of the VIM total (the paper's <= 2.5 % claim)."""
        return self.sw_imu_ms / self.vim_ms if self.vim_ms else 0.0

    def to_dict(self) -> dict:
        """Dump to JSON-friendly primitives.

        Returns
        -------
        dict
            All fields, with the config nested as its own dict and the
            per-tenant tuples as lists (the JSON encoding).
        """
        data = asdict(self)
        data["config"] = self.config.to_dict()
        for name in _TUPLE_FIELDS:
            data[name] = list(data[name])
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CellResult":
        """Rebuild a result row from :meth:`to_dict` output.

        Parameters
        ----------
        data : dict
            A dict as produced by :meth:`to_dict` (e.g. loaded from a
            cache file); unknown keys raise
            :class:`~repro.errors.ReproError` rather than being
            silently dropped.

        Returns
        -------
        CellResult
            An exact reconstruction — floats round-trip through
            ``repr`` in JSON, so ``from_dict(to_dict(r)) == r``.
        """
        names = {f.name for f in fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ReproError(f"unknown cell result fields: {sorted(unknown)}")
        payload = dict(data)
        payload["config"] = CellConfig.from_dict(payload["config"])
        for name in _TUPLE_FIELDS:
            if name in payload:
                payload[name] = tuple(payload[name])
        return cls(**payload)


def replicate_summary(values: list[float]) -> tuple[float, float]:
    """Mean and coefficient of variation of one metric's replicates.

    The CV is the *sample* standard deviation (``ddof=1`` — the
    replicates are a sample of the seed population, not the
    population) over the absolute mean; it is defined as 0.0 when the
    mean is zero or there is a single value, so deterministic metrics
    yield exact tolerance bands downstream.

    Parameters
    ----------
    values : list of float
        One value per replicate, in replicate order (non-empty).

    Returns
    -------
    (float, float)
        ``(mean, cv)``.
    """
    if not values:
        raise ReproError("replicate summary needs at least one value")
    mean = sum(values) / len(values)
    if len(values) == 1 or mean == 0.0:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return mean, variance ** 0.5 / abs(mean)
