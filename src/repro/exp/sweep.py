"""Grid execution: serial or across a ``multiprocessing`` pool.

Each cell is an independent deterministic simulation, so the grid is
embarrassingly parallel: ``run_sweep(spec, jobs=N)`` produces results
byte-identical to the serial run, in the same (spec-defined) order.
Duplicate configurations are simulated once and fanned back out, and a
:class:`~repro.exp.store.ResultStore` (JSON directory or SQLite file,
selected by path) makes re-runs incremental.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError
from repro.exp.cell import run_cell
from repro.exp.results import CellResult
from repro.exp.spec import CellConfig, SweepSpec
from repro.exp.store import open_store


@dataclass(frozen=True)
class SweepResult:
    """All rows of one sweep plus how much work it actually did.

    Parameters
    ----------
    rows : tuple of CellResult
        One row per requested cell, in grid order (duplicates of the
        same configuration share one simulated result).
    executed : int
        Cells actually simulated by this call.
    cached : int
        Cells served from the result cache instead of simulated.

    Notes
    -----
    Iterating the result iterates ``rows``; ``len`` counts them.
    """

    rows: tuple[CellResult, ...]
    executed: int  #: cells actually simulated this run
    cached: int  #: cells served from the cache

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


def _pool(jobs: int):
    """A worker pool; fork keeps workers cheap where it exists."""
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    return ctx.Pool(processes=jobs)


def run_sweep(
    spec: SweepSpec | list[CellConfig],
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    store_kind: str | None = None,
) -> SweepResult:
    """Execute every cell of *spec* and return rows in grid order.

    Parameters
    ----------
    spec : SweepSpec or list of CellConfig
        The grid to run: a declarative spec (expanded via
        :meth:`~repro.exp.spec.SweepSpec.expand`) or an explicit cell
        list, whose order is preserved in the output rows.
    jobs : int
        Worker processes.  1 runs in-process; above 1 distributes the
        pending (uncached, deduplicated) cells over a
        ``multiprocessing`` pool.  Cells are independent deterministic
        simulations, so the rows are byte-identical to a serial run.
    cache_dir : str or Path, optional
        Result store: a cache directory or a ``.sqlite`` file, opened
        through :func:`~repro.exp.store.open_store` (created if
        missing).  Previously executed cells are loaded instead of
        re-simulated; fresh results are persisted for the next run.
        Store keys cover every config field plus
        :data:`~repro.exp.spec.CACHE_VERSION` (see
        ``docs/extending-sweeps.md`` for the compatibility rules).
    store_kind : str, optional
        Force the backend of a not-yet-existing *cache_dir*
        (:data:`~repro.exp.store.STORES`; the CLI spells this
        ``--store``).  Contradicting an existing store is an error.

    Returns
    -------
    SweepResult
        Rows in grid order plus executed/cached work counts.

    Raises
    ------
    ReproError
        If *jobs* is less than 1, or if *store_kind* contradicts what
        already exists at *cache_dir*.
    """
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    configs = spec.expand() if isinstance(spec, SweepSpec) else list(spec)
    cache = (
        open_store(cache_dir, kind=store_kind, create=True)
        if cache_dir is not None else None
    )

    by_key: dict[str, CellResult] = {}
    cached = 0
    pending: list[CellConfig] = []
    for config in configs:
        key = config.key()
        if key in by_key:
            continue
        if cache is not None:
            hit = cache.get(config)
            if hit is not None:
                by_key[key] = hit
                cached += 1
                continue
        by_key[key] = None  # placeholder keeps first-seen order semantics
        pending.append(config)

    if pending:
        if jobs == 1 or len(pending) == 1:
            fresh = [run_cell(config) for config in pending]
        else:
            with _pool(min(jobs, len(pending))) as pool:
                fresh = pool.map(run_cell, pending, chunksize=1)
        for result in fresh:
            by_key[result.key] = result
            if cache is not None:
                cache.put(result)

    if cache is not None:
        cache.close()
    rows = tuple(by_key[config.key()] for config in configs)
    return SweepResult(rows=rows, executed=len(pending), cached=cached)
