"""Execute one grid cell: config in, typed result row out.

``run_cell`` is the unit of work of the sweep engine.  It is a module-
level function of one picklable argument precisely so a
``multiprocessing`` pool can execute cells on worker processes; every
cell rebuilds its own :class:`~repro.core.system.System` and seeded
workload, so cells are fully independent and deterministic.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.apps.tracefile import trace_workload
from repro.core.drivers import (
    adpcm_encode_workload,
    adpcm_workload,
    idea_workload,
    synthetic_workload,
    vector_add_workload,
)
from repro.core.runner import WorkloadSpec, run_software, run_typical, run_vim
from repro.core.soc import PRESETS, SocConfig
from repro.core.system import System
from repro.core.tenancy import run_tenants
from repro.errors import CapacityError, ReproError
from repro.exp.results import REPLICATED_COLUMNS, CellResult, replicate_summary
from repro.exp.spec import CellConfig, parse_mix_part
from repro.os.vim.manager import TransferMode
from repro.os.vim.prefetch import Prefetcher, SequentialPrefetcher
from repro.os.workload import Workload
from repro.sim.time import to_ms


def _synthetic_builder(
    config: CellConfig, nbytes: int, seed: int
) -> WorkloadSpec:
    return synthetic_workload(
        nbytes,
        seed=seed,
        stride=config.syn_stride,
        locality_pct=config.syn_locality_pct,
        read_pct=config.syn_read_pct,
        phases=config.syn_phases,
    )


def _trace_builder(config: CellConfig, nbytes: int, seed: int) -> WorkloadSpec:
    # Size and seed are the *recorded* run's (the config canonicalised
    # its own away); the expected digest pins the file's content to the
    # identity the cell was hashed under.
    return trace_workload(config.trace_path, expected_digest=config.trace_digest)


#: app axis value -> workload builder taking (config, input_bytes, seed).
#: The config carries app-specific pattern axes (only ``synthetic``
#: reads it today); size and seed stay explicit because tenant slots
#: derive per-tenant seeds from the one cell config.
_APP_BUILDERS: dict[str, Callable[[CellConfig, int, int], WorkloadSpec]] = {
    "adpcm": lambda config, nbytes, seed: adpcm_workload(nbytes, seed=seed),
    "idea": lambda config, nbytes, seed: idea_workload(nbytes, seed=seed),
    "idea-dec": lambda config, nbytes, seed: idea_workload(
        nbytes, seed=seed, decrypt=True
    ),
    "vadd": lambda config, nbytes, seed: vector_add_workload(
        nbytes // 4, seed=seed
    ),
    "adpcm-enc": lambda config, nbytes, seed: adpcm_encode_workload(
        nbytes // 2, seed=seed
    ),
    "synthetic": _synthetic_builder,
    "trace": _trace_builder,
}

#: Seed stride between replicates: a prime far larger than any
#: plausible seed axis, so the derived seed sets of neighbouring base
#: seeds never collide (``seed + k * stride`` for ``k < replicates``).
_REPLICATE_SEED_STRIDE = 1_000_003

_TRANSFER_MODES = {
    "double": TransferMode.DOUBLE,
    "single": TransferMode.SINGLE,
    "dma": TransferMode.DMA,
}


def build_workload(config: CellConfig) -> WorkloadSpec:
    """The (deterministic, seeded) workload of *config*."""
    builder = _APP_BUILDERS.get(config.app)
    if builder is None:
        raise ReproError(
            f"unknown app {config.app!r}; choices: {sorted(_APP_BUILDERS)}"
        )
    return builder(config, config.input_bytes, config.seed)


def build_soc(config: CellConfig) -> SocConfig:
    """The SoC preset of *config*, with page/DP-RAM size overrides."""
    preset = PRESETS.get(config.soc)
    if preset is None:
        raise ReproError(
            f"unknown SoC {config.soc!r}; choices: {sorted(PRESETS)}"
        )
    overrides: dict = {}
    if config.page_bytes is not None:
        overrides["page_bytes"] = config.page_bytes
    if config.dpram_bytes is not None:
        overrides["dpram_bytes"] = config.dpram_bytes
    if not overrides:
        return preset
    tags = [preset.name] + [f"{k.split('_')[0]}{v}" for k, v in overrides.items()]
    return replace(preset, name="@".join(tags), **overrides)


def tenant_slots(config: CellConfig) -> list[tuple[str, int]]:
    """Per-tenant ``(app, priority)`` slots from the cell's mix."""
    if config.tenant_mix == "same":
        return [(config.app, 1)] * config.tenants
    slots = [parse_mix_part(p) for p in config.tenant_mix.split("+")]
    return [slots[i % len(slots)] for i in range(config.tenants)]


def tenant_apps(config: CellConfig) -> list[str]:
    """The app each tenant slot runs, per the cell's ``tenant_mix``."""
    return [app for app, _ in tenant_slots(config)]


def build_tenant_workloads(config: CellConfig) -> list[Workload]:
    """One :class:`~repro.os.workload.Workload` per tenant of *config*.

    Tenant *i* runs the app picked by :func:`tenant_slots` on a dataset
    seeded ``config.seed + i``, so even same-app tenants stream
    distinct (but deterministic) data, each issues
    ``config.tenant_repeats`` FPGA_EXECUTE calls, and each carries its
    slot's scheduling priority.
    """
    workloads = []
    for index, (app, priority) in enumerate(tenant_slots(config)):
        builder = _APP_BUILDERS.get(app)
        if builder is None:
            raise ReproError(
                f"unknown app {app!r}; choices: {sorted(_APP_BUILDERS)}"
            )
        spec = builder(config, config.input_bytes, config.seed + index)
        workloads.append(
            Workload(
                spec=spec,
                repeats=config.tenant_repeats,
                name=f"t{index}-{spec.name}",
                priority=priority,
            )
        )
    return workloads


def build_prefetcher(config: CellConfig) -> Prefetcher | None:
    """The prefetcher the cell's VIM runs with (None for "none")."""
    if config.prefetch == "none":
        return None
    if config.prefetch == "sequential":
        return SequentialPrefetcher(depth=config.prefetch_depth)
    if config.prefetch == "aggressive":
        return SequentialPrefetcher(depth=config.prefetch_depth, aggressive=True)
    if config.prefetch == "overlapped":
        return SequentialPrefetcher(
            depth=config.prefetch_depth, aggressive=True, overlapped=True
        )
    raise ReproError(f"unknown prefetch {config.prefetch!r}")


def run_cell(config: CellConfig, workload: WorkloadSpec | None = None) -> CellResult:
    """Run one cell: software reference, VIM version, optional typical.

    Every version is verified bit-exact against the software reference
    before any number is reported — mis-measurement never outlives the
    cell that produced it.  Passing *workload* overrides the built one
    (used by the legacy drivers that accept a hand-made spec).

    Parameters
    ----------
    config : CellConfig
        The grid point to simulate.  With ``config.tenants > 1`` the
        cell runs the multi-tenant contention path (see
        :func:`_run_contended`) instead of the single-shot one.
    workload : WorkloadSpec, optional
        Hand-made workload override; single-tenant cells only.

    Returns
    -------
    CellResult
        The typed, JSON-stable result row.
    """
    if config.replicates > 1:
        if workload is not None:
            raise ReproError(
                "a workload override cannot be combined with a "
                "replicated cell (replicates > 1): replicates rebuild "
                "their own workloads from derived seeds"
            )
        return _run_replicated(config)
    if config.tenants > 1 or config.tenant_repeats > 1:
        # tenants == 1 with repeats > 1 is the *uncontended baseline*
        # of a contention sweep: the same session-per-process executor,
        # just with nobody to steal pages from.
        if workload is not None:
            raise ReproError(
                "a workload override cannot be combined with the "
                "multi-tenant cell path (tenants/tenant_repeats > 1)"
            )
        return _run_contended(config)
    workload = workload if workload is not None else build_workload(config)
    soc = build_soc(config)
    sw = run_software(System(soc, engine=config.engine), workload)
    vim = run_vim(
        System(soc, engine=config.engine),
        workload,
        policy=config.policy,
        transfer_mode=_TRANSFER_MODES[config.transfer],
        pipelined_imu=config.pipelined_imu,
        access_cycles=config.access_cycles,
        prefetcher=build_prefetcher(config),
        tlb_capacity=config.tlb_capacity,
    )
    vim.verify()
    meas = vim.measurement
    typical_ms = None
    typical_speedup = None
    typical_fits = True
    if config.with_typical:
        try:
            typical = run_typical(System(soc, engine=config.engine), workload)
            typical.verify()
            typical_ms = typical.total_ms
            typical_speedup = typical.measurement.speedup_over(sw.measurement)
        except CapacityError:
            typical_fits = False
    counters = meas.counters
    return CellResult(
        config=config,
        key=config.key(),
        label=config.label(),
        workload=workload.name,
        sw_ms=sw.total_ms,
        vim_ms=vim.total_ms,
        hw_ms=to_ms(meas.hw_ps),
        sw_dp_ms=to_ms(meas.sw_dp_ps),
        sw_imu_ms=to_ms(meas.sw_imu_ps),
        sw_other_ms=to_ms(meas.sw_other_ps),
        vim_speedup=meas.speedup_over(sw.measurement),
        page_faults=counters.page_faults,
        compulsory_loads=counters.compulsory_loads,
        evictions=counters.evictions,
        writebacks=counters.writebacks,
        prefetches=counters.prefetches,
        bytes_to_dpram=counters.bytes_to_dpram,
        bytes_from_dpram=counters.bytes_from_dpram,
        tlb_hit_rate=(
            counters.tlb_hits / counters.tlb_lookups if counters.tlb_lookups else 0.0
        ),
        typical_ms=typical_ms,
        typical_speedup=typical_speedup,
        typical_fits=typical_fits,
        tlb_refills=counters.tlb_refills,
        dma_transfers=counters.dma_transfers,
    )


def replicate_seed(config: CellConfig, index: int) -> int:
    """The dataset seed of replicate *index* of *config*.

    Replicate 0 uses the cell's own seed — so the primary columns of a
    replicated row agree exactly with the unreplicated run — and later
    replicates step by :data:`_REPLICATE_SEED_STRIDE`.
    """
    if not 0 <= index < config.replicates:
        raise ReproError(
            f"replicate index must be in 0..{config.replicates - 1}, "
            f"got {index}"
        )
    return config.seed + index * _REPLICATE_SEED_STRIDE


def _run_replicated(config: CellConfig) -> CellResult:
    """The replicated cell path: N independent seeds, one summary row.

    Each replicate is a full single-shot (or contended) run of the same
    configuration under a derived seed, executed in replicate order.
    The returned row carries replicate 0's primary columns under the
    *replicated* config's key and label, plus the cross-replicate
    mean/CV summaries that feed ``repro diff --bands cv``.
    """
    rows = []
    for index in range(config.replicates):
        sub = replace(
            config, seed=replicate_seed(config, index), replicates=1
        )
        rows.append(run_cell(sub))
    summaries: dict[str, float] = {}
    for name in REPLICATED_COLUMNS:
        mean, cv = replicate_summary(
            [float(getattr(row, name)) for row in rows]
        )
        summaries[f"{name}_mean"] = mean
        summaries[f"{name}_cv"] = cv
    return replace(
        rows[0],
        config=config,
        key=config.key(),
        label=config.label(),
        **summaries,
    )


def _run_contended(config: CellConfig) -> CellResult:
    """The multi-tenant cell path: N sessions on one shared System.

    The software baseline is every tenant's pure-SW time (times its
    repeats) summed; the VIM number is the *makespan* of the contended
    run, so ``vim_speedup`` still reads "how much faster than doing all
    of this in software".  Functional outputs are verified bit-exact
    against each tenant's reference inside :func:`run_tenants` — which
    is also what each tenant's solo session produces, so contention can
    reorder time but never bytes.
    """
    soc = build_soc(config)
    workloads = build_tenant_workloads(config)
    sw_ms = 0.0
    for workload in workloads:
        sw = run_software(System(soc, engine=config.engine), workload.spec)
        sw_ms += sw.total_ms * workload.repeats
    result = run_tenants(
        System(soc, engine=config.engine),
        workloads,
        policy=config.policy,
        transfer_mode=_TRANSFER_MODES[config.transfer],
        pipelined_imu=config.pipelined_imu,
        access_cycles=config.access_cycles,
        prefetcher=build_prefetcher(config),
        tlb_capacity=config.tlb_capacity,
        sched=config.sched,
    )
    vim_ms = result.makespan_ms
    totals = {
        "hw_ps": 0, "sw_dp_ps": 0, "sw_imu_ps": 0, "sw_other_ps": 0,
        "page_faults": 0, "tlb_refills": 0, "compulsory_loads": 0,
        "evictions": 0, "steals": 0, "writebacks": 0, "prefetches": 0,
        "dma_transfers": 0, "bytes_to_dpram": 0, "bytes_from_dpram": 0,
        "tlb_lookups": 0, "tlb_hits": 0,
    }
    for tenant in result.tenants:
        meas = tenant.measurement
        counters = meas.counters
        totals["hw_ps"] += meas.hw_ps
        totals["sw_dp_ps"] += meas.sw_dp_ps
        totals["sw_imu_ps"] += meas.sw_imu_ps
        totals["sw_other_ps"] += meas.sw_other_ps
        totals["page_faults"] += counters.page_faults
        totals["tlb_refills"] += counters.tlb_refills
        totals["compulsory_loads"] += counters.compulsory_loads
        totals["evictions"] += counters.evictions
        totals["steals"] += counters.steals
        totals["writebacks"] += counters.writebacks
        totals["prefetches"] += counters.prefetches
        totals["dma_transfers"] += counters.dma_transfers
        totals["bytes_to_dpram"] += counters.bytes_to_dpram
        totals["bytes_from_dpram"] += counters.bytes_from_dpram
        totals["tlb_lookups"] += counters.tlb_lookups
        totals["tlb_hits"] += counters.tlb_hits
    return CellResult(
        config=config,
        key=config.key(),
        label=config.label(),
        workload="+".join(t.workload for t in result.tenants),
        sw_ms=sw_ms,
        vim_ms=vim_ms,
        hw_ms=to_ms(totals["hw_ps"]),
        sw_dp_ms=to_ms(totals["sw_dp_ps"]),
        sw_imu_ms=to_ms(totals["sw_imu_ps"]),
        sw_other_ms=to_ms(totals["sw_other_ps"]),
        vim_speedup=sw_ms / vim_ms if vim_ms else 0.0,
        page_faults=totals["page_faults"],
        compulsory_loads=totals["compulsory_loads"],
        evictions=totals["evictions"],
        writebacks=totals["writebacks"],
        prefetches=totals["prefetches"],
        bytes_to_dpram=totals["bytes_to_dpram"],
        bytes_from_dpram=totals["bytes_from_dpram"],
        tlb_hit_rate=(
            totals["tlb_hits"] / totals["tlb_lookups"]
            if totals["tlb_lookups"]
            else 0.0
        ),
        steals=totals["steals"],
        tlb_refills=totals["tlb_refills"],
        dma_transfers=totals["dma_transfers"],
        tenant_labels=tuple(t.name for t in result.tenants),
        tenant_ms=tuple(t.stats.total_ms for t in result.tenants),
        tenant_faults=tuple(t.stats.page_faults for t in result.tenants),
        tenant_evictions=tuple(t.stats.evictions for t in result.tenants),
        tenant_steals=tuple(t.stats.steals for t in result.tenants),
        tenant_pages_lost=tuple(t.stats.pages_lost for t in result.tenants),
    )
