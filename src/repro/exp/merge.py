"""Merge sharded sweep results into one result store, out-of-core.

A grid sharded with ``repro sweep --shard I/N`` leaves N partial
result stores (JSON cache directories, SQLite stores, or ``--json``
row dumps) on N machines.  This module recombines them: every entry
lands in one destination store under its config hash, written through
the :class:`~repro.exp.store.ResultStore` layer so a JSON destination
holds files byte-identical to what a single unsharded run would have
produced — which is what makes a post-merge re-run report ``0
simulated`` and a post-merge ``repro sweep --report`` byte-match the
unsharded report.  ``repro migrate SRC DEST`` is the single-source
special case and is how a JSON cache becomes a SQLite store (and
back).

Sources are consumed as **key-sorted streams** joined with a heap
merge, so the merge holds one row per source at a time — constant
memory in the store size — while keeping the original conflict
contract: two sources claiming the *same* config hash with *different*
results mean something is broken (non-deterministic cell, hand-edited
file, mixed-up directories); the merge refuses loudly instead of
silently picking a winner.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from itertools import groupby
from pathlib import Path

from repro.errors import ReproError
from repro.exp.cache import iter_dump_rows
from repro.exp.results import CellResult
from repro.exp.store import ResultStore, is_sqlite_file, open_store


def same_result(known: CellResult, other: CellResult) -> bool:
    """Row equality modulo the engine field.

    The engine backend is excluded from cell identity (backends are
    result-equivalent and share config hashes), so a reference shard
    and a fast shard of the same grid merge as identical rows rather
    than conflicting.  Any other difference is a real conflict.  The
    sweep service (:mod:`repro.exp.service`) ingests worker results
    through this same predicate, so a duplicated completion (lease
    expiry plus a late worker) is accepted when identical and refused
    as a conflict otherwise — one equality contract store-wide.
    """
    if known == other:
        return True
    aligned = replace(known.config, engine=other.config.engine)
    return replace(known, config=aligned) == other


@dataclass(frozen=True)
class MergeConflict:
    """Two sources disagreeing about one config hash."""

    key: str  #: the contested config hash
    source: str  #: where the conflicting entry came from
    existing: str  #: where the previously-merged entry came from

    def __str__(self) -> str:
        return (
            f"conflicting results for config {self.key}: "
            f"{self.source} disagrees with {self.existing}"
        )


@dataclass(frozen=True)
class MergeSummary:
    """What one :func:`merge_into` call did (or, dry, would do).

    Parameters
    ----------
    dest : str
        The destination result store.
    written : int
        Entries newly written to the destination (with ``dry_run``:
        that *would have been* written).
    identical : int
        Entries that already existed with byte-equal meaning (same
        config hash, equal result) — duplicates across shards or
        re-merges; skipped.
    skipped : int
        Source entries that were not loadable current-version rows
        (stale :data:`~repro.exp.spec.CACHE_VERSION`, corrupt JSON,
        hash mismatch) and were ignored.
    sources : tuple of str
        The merged sources, in merge order.
    dry_run : bool
        ``True`` when nothing was written (``repro merge --dry-run``);
        conflicts are then *reported* on :attr:`conflicts` instead of
        raised.
    conflicts : tuple of MergeConflict
        Only populated under ``dry_run``; a non-dry merge raises on
        conflict instead.
    """

    dest: str
    written: int
    identical: int
    skipped: int
    sources: tuple[str, ...]
    dry_run: bool = False
    conflicts: tuple[MergeConflict, ...] = ()

    def __str__(self) -> str:
        if self.dry_run:
            return (
                f"dry-run: would merge {len(self.sources)} source(s) into "
                f"{self.dest}: {self.written} written, "
                f"{self.identical} identical, {self.skipped} skipped, "
                f"{len(self.conflicts)} conflict(s)"
            )
        return (
            f"merged {len(self.sources)} source(s) into {self.dest}: "
            f"{self.written} written, {self.identical} identical, "
            f"{self.skipped} skipped"
        )


def _source_factory(path: Path):
    """A zero-argument stream factory for one merge source.

    Calling the factory yields ``(origin, CellResult | None)`` with
    the loadable rows in **key-sorted order** (``None`` marks a
    skipped entry and may appear anywhere).  A directory or SQLite
    file streams through its :class:`~repro.exp.store.ResultStore`;
    any other file is a ``repro sweep --json`` dump read through the
    shared :func:`~repro.exp.cache.iter_dump_rows` gatekeeper (dumps
    are in-memory JSON lists already, so sorting them is free of any
    extra materialisation).
    """
    if path.is_dir() or is_sqlite_file(path):
        store = open_store(path)

        def stream():
            for origin, _status, result in store.iter_classified():
                yield origin, result

        return stream

    def stream():
        rows = list(iter_dump_rows(path))
        yield from (
            (origin, None) for origin, result in rows if result is None
        )
        yield from sorted(
            ((origin, result) for origin, result in rows if result is not None),
            key=lambda item: item[1].key,
        )

    return stream


def _keyed(stream, index: int, skip_counter: list[int] | None):
    """Decorate a source stream for the heap join, counting skips."""
    for origin, result in stream():
        if result is None:
            if skip_counter is not None:
                skip_counter[0] += 1
            continue
        yield result.key, index, origin, result


def _joined(factories, skip_counter: list[int] | None):
    """All sources joined into one key-grouped sorted stream.

    Yields ``(key, group)`` where *group* iterates
    ``(key, source_index, origin, result)`` in source order — the
    heap keeps one pending row per source, never a full store.
    """
    merged = heapq.merge(
        *(
            _keyed(stream, index, skip_counter)
            for index, stream in enumerate(factories)
        ),
        key=lambda item: item[:2],
    )
    return groupby(merged, key=lambda item: item[0])


def merge_into(
    dest: str | Path,
    sources: list[str | Path],
    dry_run: bool = False,
    dest_kind: str | None = None,
) -> MergeSummary:
    """Merge *sources* (stores and/or row dumps) into the store *dest*.

    Parameters
    ----------
    dest : str or Path
        Destination result store; created if missing (a ``.sqlite``
        path creates a SQLite store, anything else a JSON cache
        directory — see :func:`~repro.exp.store.open_store`).  May
        already hold entries (e.g. an earlier shard) — they
        participate in conflict detection like any source entry.
    sources : list of str or Path
        Result stores (JSON directories or SQLite files) and/or
        ``repro sweep --json`` dump files, merged in order.
    dry_run : bool
        Read and cross-check everything, write nothing.  Conflicts are
        returned on the summary instead of raised, so CI can pre-flight
        a shard recombination and report all problems at once.
    dest_kind : str, optional
        Force the backend of a not-yet-existing destination
        (:data:`~repro.exp.store.STORES`); contradicting an existing
        destination is an error.

    Returns
    -------
    MergeSummary
        Written / identical / skipped counts (plus would-be conflicts
        under *dry_run*).

    Raises
    ------
    ReproError
        If a source is missing or malformed, or (non-dry) if any two
        entries claim the same config hash with different results.
        All conflicts are collected and reported together, and
        **nothing is written until every source has been read and
        checked** — a failed merge leaves the destination exactly as
        it was, so a later report cannot silently render a first-seen
        winner.
    """
    dest_path = Path(dest)
    if dest_path.exists() and not dest_path.is_dir() \
            and not is_sqlite_file(dest_path):
        raise ReproError(
            f"merge destination {dest_path} is not a directory or a "
            "SQLite store (did you swap DEST with a --json dump source?)"
        )
    for source in sources:
        if not Path(source).exists():
            raise ReproError(f"merge source {source} does not exist")
    # Don't create the destination yet: a merge that fails validation
    # or conflict detection (and any --dry-run) must leave the
    # filesystem untouched.
    dest_store: ResultStore | None = (
        open_store(dest_path, kind=dest_kind) if dest_path.exists() else None
    )
    factories = [_source_factory(Path(source)) for source in sources]
    skip_counter = [0]
    written = identical = 0
    usable = False
    conflicts: list[MergeConflict] = []
    # Pass 1 (read-only): stream-join every source and cross-check.
    for key, group in _joined(factories, skip_counter):
        usable = True
        _key, _index, first_origin, first_result = next(group)
        existing = (
            dest_store.get(first_result.config)
            if dest_store is not None else None
        )
        conflicted = False
        if existing is not None and not same_result(existing, first_result):
            conflicts.append(MergeConflict(
                key=key,
                source=first_origin,
                existing=f"{dest_path} (pre-existing)",
            ))
            conflicted = True
        elif existing is None:
            written += 1
        else:
            identical += 1
        for _key, _index, origin, result in group:
            if conflicted:
                # Already contested; duplicate source copies must not
                # inflate the conflict count.
                continue
            if same_result(first_result, result):
                identical += 1
            else:
                conflicts.append(MergeConflict(
                    key=key, source=origin, existing=first_origin,
                ))
                conflicted = True
    if conflicts and not dry_run:
        detail = "\n  ".join(str(conflict) for conflict in conflicts)
        raise ReproError(
            f"{len(conflicts)} merge conflict(s) — nothing was written "
            f"to {dest_path}:\n  {detail}"
        )
    if not usable:
        # Nothing usable in any source (all-stale after a version bump,
        # or genuinely empty dirs): exiting green here would push the
        # failure downstream to a misleading "no loadable results".
        raise ReproError(
            f"nothing to merge: no usable entry in {len(sources)} "
            f"source(s) ({skip_counter[0]} stale/invalid file(s) skipped)"
        )
    summary = MergeSummary(
        dest=str(dest_path),
        written=written,
        identical=identical,
        skipped=skip_counter[0],
        sources=tuple(str(s) for s in sources),
        dry_run=dry_run,
        conflicts=tuple(conflicts),
    )
    if dry_run:
        return summary
    # Pass 2: all sources agree; now create the destination and write
    # the first-seen row of every key it does not already hold.
    if dest_store is None:
        dest_store = open_store(dest_path, kind=dest_kind, create=True)
    for _key, group in _joined(factories, None):
        _key2, _index, _origin, result = next(group)
        if dest_store.get(result.config) is None:
            dest_store.put(result)
        for _rest in group:
            pass
    dest_store.close()
    return summary


def migrate_store(
    source: str | Path, dest: str | Path, dest_kind: str | None = None
) -> MergeSummary:
    """Copy one result store into another — the ``repro migrate`` path.

    A single-source :func:`merge_into`, which is exactly the right
    machinery: the copy streams row by row, inherits conflict
    detection against anything *dest* already holds, accepts ``--json``
    dumps as sources, and a JSON→SQLite→JSON round trip reproduces the
    original files byte-identically (the payload bytes are preserved
    end to end).
    """
    return merge_into(dest, [source], dest_kind=dest_kind)
