"""Merge sharded sweep results into one cache directory.

A grid sharded with ``repro sweep --shard I/N`` leaves N partial cache
directories (or ``--json`` row dumps) on N machines.  This module
recombines them: every entry lands in one destination cache under its
config hash, written through :class:`~repro.exp.cache.SweepCache` so
the merged files are byte-identical to what a single unsharded run
would have produced — which is what makes a post-merge re-run report
``0 simulated`` and a post-merge ``repro sweep --report`` byte-match
the unsharded report.

Two sources claiming the *same* config hash with *different* results
mean something is broken (non-deterministic cell, hand-edited file,
mixed-up directories); the merge refuses loudly instead of silently
picking a winner.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

from repro.errors import ReproError
from repro.exp.cache import SweepCache, iter_dump_rows, iter_entries
from repro.exp.results import CellResult


def _same_result(known: CellResult, other: CellResult) -> bool:
    """Row equality modulo the engine field.

    The engine backend is excluded from cell identity (backends are
    result-equivalent and share config hashes), so a reference shard
    and a fast shard of the same grid merge as identical rows rather
    than conflicting.  Any other difference is a real conflict.
    """
    if known == other:
        return True
    aligned = replace(known.config, engine=other.config.engine)
    return replace(known, config=aligned) == other


@dataclass(frozen=True)
class MergeConflict:
    """Two sources disagreeing about one config hash."""

    key: str  #: the contested config hash
    source: str  #: where the conflicting entry came from
    existing: str  #: where the previously-merged entry came from

    def __str__(self) -> str:
        return (
            f"conflicting results for config {self.key}: "
            f"{self.source} disagrees with {self.existing}"
        )


@dataclass(frozen=True)
class MergeSummary:
    """What one :func:`merge_into` call did.

    Parameters
    ----------
    dest : str
        The destination cache directory.
    written : int
        Entries newly written to the destination.
    identical : int
        Entries that already existed with byte-equal meaning (same
        config hash, equal result) — duplicates across shards or
        re-merges; skipped.
    skipped : int
        Source files that were not loadable current-version entries
        (stale :data:`~repro.exp.spec.CACHE_VERSION`, corrupt JSON,
        hash mismatch) and were ignored.
    sources : tuple of str
        The merged sources, in merge order.
    """

    dest: str
    written: int
    identical: int
    skipped: int
    sources: tuple[str, ...]

    def __str__(self) -> str:
        return (
            f"merged {len(self.sources)} source(s) into {self.dest}: "
            f"{self.written} written, {self.identical} identical, "
            f"{self.skipped} skipped"
        )


def _iter_source(path: Path):
    """Yield ``(origin, CellResult | None)`` for one merge source.

    A directory is treated as a sweep cache (one payload per
    ``*.json`` file, which must be named by its config hash — same
    rule as the report loader); a file as a ``repro sweep --json``
    dump, read through the shared
    :func:`~repro.exp.cache.iter_dump_rows` gatekeeper.
    """
    if path.is_dir():
        for entry, result in iter_entries(path):
            yield str(entry), result
        return
    yield from iter_dump_rows(path)


def merge_into(
    dest: str | Path, sources: list[str | Path]
) -> MergeSummary:
    """Merge *sources* (cache dirs and/or row dumps) into cache *dest*.

    Parameters
    ----------
    dest : str or Path
        Destination cache directory; created if missing.  May already
        hold entries (e.g. an earlier shard) — they participate in
        conflict detection like any source entry.
    sources : list of str or Path
        Cache directories and/or ``repro sweep --json`` dump files,
        merged in order.

    Returns
    -------
    MergeSummary
        Written / identical / skipped counts.

    Raises
    ------
    ReproError
        If a source is missing or malformed, or if any two entries
        claim the same config hash with different results.  All
        conflicts are collected and reported together, and **nothing
        is written until every source has been read and checked** — a
        failed merge leaves the destination exactly as it was, so a
        later report cannot silently render a first-seen winner.
    """
    dest_path = Path(dest)
    if dest_path.exists() and not dest_path.is_dir():
        raise ReproError(
            f"merge destination {dest_path} is not a directory "
            "(did you swap DEST with a --json dump source?)"
        )
    for source in sources:
        if not Path(source).exists():
            raise ReproError(f"merge source {source} does not exist")
    # Don't create the destination yet: a merge that fails validation
    # or conflict detection must leave the filesystem untouched.
    cache = SweepCache(dest_path) if dest_path.is_dir() else None
    origin_by_key: dict[str, str] = {}
    chosen: dict[str, CellResult] = {}  # first-seen result per hash
    to_write: dict[str, CellResult] = {}  # chosen minus already-in-dest
    conflicted: set[str] = set()  # one reported conflict per contested hash
    identical = skipped = 0
    conflicts: list[MergeConflict] = []
    # Pass 1 (read-only): collect and cross-check every entry.
    for source in sources:
        for origin, result in _iter_source(Path(source)):
            if result is None:
                skipped += 1
                continue
            key = result.key
            if key in conflicted:
                # Already contested; duplicate source copies must not
                # inflate the conflict count.
                continue
            known = chosen.get(key)
            if known is None:
                existing = (
                    cache.load(result.config) if cache is not None else None
                )
                if existing is not None and not _same_result(existing, result):
                    conflicted.add(key)
                    conflicts.append(MergeConflict(
                        key=key,
                        source=origin,
                        existing=f"{dest_path} (pre-existing)",
                    ))
                    continue
                if existing is None:
                    to_write[key] = result
                else:
                    identical += 1
                chosen[key] = result
                origin_by_key[key] = origin
            elif _same_result(known, result):
                identical += 1
            else:
                conflicted.add(key)
                conflicts.append(MergeConflict(
                    key=key,
                    source=origin,
                    existing=origin_by_key[key],
                ))
    if conflicts:
        detail = "\n  ".join(str(conflict) for conflict in conflicts)
        raise ReproError(
            f"{len(conflicts)} merge conflict(s) — nothing was written "
            f"to {dest_path}:\n  {detail}"
        )
    if not chosen:
        # Nothing usable in any source (all-stale after a version bump,
        # or genuinely empty dirs): exiting green here would push the
        # failure downstream to a misleading "no loadable results".
        raise ReproError(
            f"nothing to merge: no usable entry in {len(sources)} "
            f"source(s) ({skipped} stale/invalid file(s) skipped)"
        )
    # Pass 2: all sources agree; now create the destination and write.
    if cache is None:
        cache = SweepCache(dest_path)
    for result in to_write.values():
        cache.store(result)
    return MergeSummary(
        dest=str(dest_path),
        written=len(to_write),
        identical=identical,
        skipped=skipped,
        sources=tuple(str(s) for s in sources),
    )
