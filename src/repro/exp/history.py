"""Run-history trend analytics: one metric across a store's runs.

The SQLite result store is append-only — re-putting a changed result
for a known config hash appends the next ``(key, version)`` row,
stamped with the writing run's id — so one store accumulates the whole
history of a grid across sweeps.  ``repro history METRIC STORE``
renders that history as a time series: one table row per recorded
run, one column per cell, each value the metric as of that run
(carry-forward: a run that did not re-price a cell shows the cell's
latest earlier value; a cell not yet priced shows ``-``).  A signed
delta-bar chart of the net last-vs-first movement closes the view.

The JSON directory store keeps no run metadata (files carry only
their payload), so history over it is a loud error pointing at
``repro migrate`` — one of the reasons the CI baselines live in
SQLite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.exp.diff import METRICS
from repro.exp.report import delta_bar_chart, format_cell, render_table
from repro.exp.store import ResultStore


@dataclass(frozen=True)
class HistorySeries:
    """One cell's metric trajectory across the selected runs."""

    key: str
    label: str
    #: One value per selected run (aligned with ``HistoryResult.runs``);
    #: ``None`` before the cell was first priced.
    values: tuple[float | None, ...]


@dataclass(frozen=True)
class HistoryResult:
    """The assembled time series of one metric over one store."""

    metric: str
    origin: str
    runs: tuple  #: the selected RunRecords, oldest first
    series: tuple[HistorySeries, ...]  #: one per cell, (label, key) order


def load_history(
    store: ResultStore,
    metric: str,
    cells: tuple[str, ...] = (),
    last: int | None = None,
) -> HistoryResult:
    """Assemble *metric*'s per-run time series from *store*.

    Parameters
    ----------
    store : ResultStore
        A store with run history (SQLite).  A JSON directory raises
        with a pointer to ``repro migrate``.
    metric : str
        A selector from :data:`~repro.exp.diff.METRICS`.
    cells : tuple of str
        Substring filters on cell labels; a cell is kept when any
        filter matches (empty keeps every cell).
    last : int, optional
        Keep only the most recent N runs.

    Raises
    ------
    ReproError
        On an unknown metric, a store without run history, no
        recorded runs, or filters that match no cell.
    """
    if metric not in METRICS:
        raise ReproError(
            f"unknown history metric {metric!r}; choices: {sorted(METRICS)}"
        )
    selector = METRICS[metric]
    runs = store.runs()
    # Walking versions first makes the no-history backends fail with
    # their own actionable message before an empty-store complaint.
    by_cell: dict[tuple[str, str], dict[int, float]] = {}
    for key, label, _version, run_id, result in store.iter_versions():
        if result is None:
            continue  # stale/corrupt version: absent from the trend
        # Later versions overwrite earlier ones within the same run,
        # so each run contributes its final value for the cell.
        by_cell.setdefault((label, key), {})[run_id] = selector.value(result)
    if not runs:
        raise ReproError(f"no runs recorded in {store.location}")
    if cells:
        by_cell = {
            (label, key): points
            for (label, key), points in by_cell.items()
            if any(pattern in label for pattern in cells)
        }
        if not by_cell:
            raise ReproError(
                f"no cell label matches --cells {list(cells)} in "
                f"{store.location}"
            )
    if last is not None:
        if last < 1:
            raise ReproError(f"--last must be >= 1, got {last}")
        runs = runs[-last:]
    series = []
    for (label, key) in sorted(by_cell):
        points = by_cell[(label, key)]
        values: list[float | None] = []
        current: float | None = None
        for run in store.runs():  # carry-forward walks ALL runs...
            if run.run_id in points:
                current = points[run.run_id]
            if run in runs:  # ...but only selected runs emit a value
                values.append(current)
        series.append(HistorySeries(key=key, label=label, values=tuple(values)))
    return HistoryResult(
        metric=metric,
        origin=store.location,
        runs=tuple(runs),
        series=tuple(series),
    )


def render_history(
    history: HistoryResult, fmt: str = "ascii", bars: bool = True
) -> str:
    """Render a :class:`HistoryResult`: title, per-run table, net bars.

    One table row per run (id + recorded timestamp), one column per
    cell.  ``csv`` emits the table records only, like the other
    machine-readable surfaces.  *bars* appends a signed chart of each
    cell's net relative change (last vs first priced value), changed
    cells only; ``md`` wraps it in a fenced block.
    """
    headers = ["run", "recorded"] + [s.label for s in history.series]
    rows = []
    for index, run in enumerate(history.runs):
        rows.append(
            [run.run_id, run.created]
            + [
                "-" if s.values[index] is None
                else format_cell(s.values[index])
                for s in history.series
            ]
        )
    table = render_table(headers, rows, fmt)
    if fmt == "csv":
        return table
    title = (
        f"{history.metric} across {len(history.runs)} run(s) in "
        f"{history.origin}"
    )
    lines = [title, "", table]
    if bars:
        chart_rows = []
        for s in history.series:
            priced = [v for v in s.values if v is not None]
            if len(priced) < 2 or priced[0] == priced[-1] or not priced[0]:
                continue
            change = (priced[-1] - priced[0]) / priced[0] * 100.0
            chart_rows.append((s.label, change))
        if chart_rows:
            chart = (
                f"Δ {history.metric} last vs first run:\n"
                + delta_bar_chart(chart_rows)
            )
            if fmt == "md":
                chart = f"```\n{chart}\n```"
            lines += ["", chart]
    return "\n".join(lines)
