"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still being able to distinguish hardware-model errors from
OS-model errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised when the discrete-event engine is used inconsistently."""


class HardwareError(ReproError):
    """Base class for errors raised by hardware models."""


class MemoryAccessError(HardwareError):
    """Raised on out-of-range or misaligned memory accesses."""


class BusError(HardwareError):
    """Raised on invalid bus transactions."""


class FpgaError(HardwareError):
    """Raised when a bitstream cannot be configured on the fabric."""


class CapacityError(HardwareError):
    """Raised when a dataset cannot fit the physically available memory.

    This is the failure mode of the paper's *typical coprocessor*
    version: without interface virtualisation, datasets larger than the
    dual-port RAM simply cannot be run (Figure 9, "exceeds available
    memory").
    """


class CoprocessorError(ReproError):
    """Raised when a coprocessor core misuses its interface."""


class OsError(ReproError):
    """Base class for errors raised by the operating-system model."""


class SyscallError(OsError):
    """Raised when an OS service is invoked with invalid arguments."""


class VimError(OsError):
    """Raised when the Virtual Interface Manager reaches a bad state."""
