"""IMA ADPCM codec — bit-exact reference + ARM software cost model.

``adpcmdecode`` is the paper's "common multimedia benchmark"
(Figure 8): it expands 4-bit ADPCM nibbles into 16-bit PCM samples, so
the output is 4x the input size — which is what makes its DP-RAM
footprint outgrow the physical interface memory so quickly.

The decoder below is the standard IMA/DVI ADPCM algorithm.  The
single-nibble step function is shared verbatim with the hardware core
(:mod:`repro.coproc.kernels.adpcm`), so functional equivalence between
the software and coprocessor versions is by construction *of the
datapath* but still verified end-to-end through the DP-RAM in tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

#: IMA ADPCM step-size table (89 entries).
STEP_TABLE: tuple[int, ...] = (
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
)

#: IMA ADPCM index-adjustment table (indexed by the 4-bit code).
INDEX_TABLE: tuple[int, ...] = (
    -1, -1, -1, -1, 2, 4, 6, 8,
    -1, -1, -1, -1, 2, 4, 6, 8,
)

#: Software cost on the 133 MHz ARM, cycles per decoded sample.
#: Table lookups, branches and 16-bit saturation on ARM9 without
#: a saturating add; calibrated so Figure 8's software curve lands in
#: the paper's 2-18 ms band (see EXPERIMENTS.md).
SW_CYCLES_PER_SAMPLE = 140

#: Output expansion factor: one input byte holds two 4-bit codes, each
#: decoding to a 16-bit sample, hence "produces 4 times the input data
#: size" (§4.1).
OUTPUT_EXPANSION = 4


def decode_nibble(code: int, predictor: int, index: int) -> tuple[int, int, int]:
    """Decode one 4-bit ADPCM code.

    Returns ``(sample, predictor, index)``; *sample* equals the new
    predictor clamped to int16.  This is the exact datapath the
    hardware core instantiates.
    """
    if not 0 <= code <= 0xF:
        raise ReproError(f"ADPCM code {code} out of range")
    step = STEP_TABLE[index]
    diff = step >> 3
    if code & 4:
        diff += step
    if code & 2:
        diff += step >> 1
    if code & 1:
        diff += step >> 2
    if code & 8:
        predictor -= diff
    else:
        predictor += diff
    predictor = max(-32768, min(32767, predictor))
    index += INDEX_TABLE[code]
    index = max(0, min(88, index))
    return predictor, predictor, index


def decode(data: bytes, predictor: int = 0, index: int = 0) -> np.ndarray:
    """Decode an ADPCM byte stream to int16 PCM samples.

    Two samples per byte: low nibble first, then high nibble.
    """
    samples = np.empty(len(data) * 2, dtype=np.int16)
    pos = 0
    for byte in data:
        for code in (byte & 0xF, byte >> 4):
            sample, predictor, index = decode_nibble(code, predictor, index)
            samples[pos] = sample
            pos += 1
    return samples


def encode_sample(sample: int, predictor: int, index: int) -> tuple[int, int, int]:
    """Encode one int16 PCM sample to a 4-bit code.

    Returns ``(code, predictor, index)`` where the updated state is the
    decoder-tracking state (encoder and decoder stay in lockstep).
    """
    step = STEP_TABLE[index]
    diff = sample - predictor
    code = 0
    if diff < 0:
        code = 8
        diff = -diff
    if diff >= step:
        code |= 4
        diff -= step
    if diff >= step >> 1:
        code |= 2
        diff -= step >> 1
    if diff >= step >> 2:
        code |= 1
    _, predictor, index = decode_nibble(code, predictor, index)
    return code, predictor, index


def encode(samples: np.ndarray, predictor: int = 0, index: int = 0) -> bytes:
    """Encode int16 PCM samples to an ADPCM byte stream.

    The sample count must be even (two codes pack one byte).
    """
    if len(samples) % 2:
        raise ReproError("ADPCM encode needs an even number of samples")
    out = bytearray(len(samples) // 2)
    for pos in range(0, len(samples), 2):
        low, predictor, index = encode_sample(int(samples[pos]), predictor, index)
        high, predictor, index = encode_sample(int(samples[pos + 1]), predictor, index)
        out[pos // 2] = low | (high << 4)
    return bytes(out)


def sw_cycles(input_bytes: int) -> int:
    """ARM cycles for the pure-software decode of *input_bytes*."""
    return input_bytes * 2 * SW_CYCLES_PER_SAMPLE
