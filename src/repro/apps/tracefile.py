"""The ``trace`` app: replay a recorded address trace as a workload.

:func:`trace_workload` turns a trace file written by
:mod:`repro.trace.record` into an ordinary
:class:`~repro.core.runner.WorkloadSpec`, so a recorded run becomes a
first-class sweep axis value: ``--app trace --trace FILE`` replays the
exact access stream of the original run against *any* platform
configuration (policy, page size, TLB capacity, transfer engine...).

Flattening
----------
A trace may have been recorded from a multi-tenant run, but replay is
a single deterministic workload: the recorded ``(tenant, obj)`` pairs
are remapped to a dense replay object-id space (object-table order)
and the interleaved op stream is replayed verbatim by one core.  That
preserves the *access pattern* — including the interleaving contention
produced — while making the replay a pure function of the trace file.

Every object is mapped INOUT over its recorded initial image (OUT
objects recorded their zeroed allocation), so reads are well-defined
from op zero and every object's final contents are verified bit-exact
against the software reference, which replays the same accumulator
semantics (:mod:`repro.coproc.kernels.tracefile`) over the images.
"""

from __future__ import annotations

from pathlib import Path

from repro.apps import synthetic as synthetic_app
from repro.coproc.kernels import tracefile as replay_core
from repro.core.runner import ObjectSpec, WorkloadSpec
from repro.os.vim.objects import Direction
from repro.trace.record import TraceError, TraceFile, load_trace

#: Highest usable replay object id (0xFF is the parameter page).
_MAX_OBJECTS = 0xFF


def replay_ops(trace: TraceFile) -> list[replay_core.ReplayOp]:
    """The trace's op stream in replay form (dense object ids)."""
    remap = {
        (obj.tenant, obj.obj): index for index, obj in enumerate(trace.objects)
    }
    return [
        (op.write, remap[(op.tenant, op.obj)], op.addr, op.size)
        for op in trace.ops
    ]


def replay_reference(
    trace: TraceFile, ops: list[replay_core.ReplayOp]
) -> dict[int, bytes]:
    """Final object images after replaying *ops* in software.

    Mirrors :class:`~repro.coproc.kernels.tracefile.TraceReplayCore`
    op for op (same accumulator pipeline, same write masking), the way
    :func:`repro.apps.synthetic.run_reference` mirrors the synthetic
    core — the verification oracle of every replay execution.
    """
    images = {
        index: bytearray(obj.data) for index, obj in enumerate(trace.objects)
    }
    acc = synthetic_app.ACC_INIT
    for is_write, obj, addr, size in ops:
        image = images[obj]
        if is_write:
            value = replay_core.masked_write_value(acc, addr, size)
            image[addr:addr + size] = value.to_bytes(size, "little")
            acc = synthetic_app.mix_write(acc, value)
        else:
            value = int.from_bytes(image[addr:addr + size], "little")
            acc = synthetic_app.mix_read(acc, value)
    return {index: bytes(image) for index, image in images.items()}


def trace_workload(
    path: str | Path, expected_digest: str | None = None
) -> WorkloadSpec:
    """Build the replay workload of the trace file at *path*.

    Passing *expected_digest* (the digest a sweep cell's config hash
    was computed from) makes a swapped-out file fail loudly instead of
    silently replaying a different trace under the old cache identity.
    """
    trace = load_trace(path)
    if expected_digest is not None and trace.digest != expected_digest:
        raise TraceError(
            f"{path}: trace digest {trace.digest[:16]}... does not match "
            f"the configured {expected_digest[:16]}... — the file changed "
            "since the cell was specified"
        )
    if len(trace.objects) > _MAX_OBJECTS:
        raise TraceError(
            f"{path}: {len(trace.objects)} recorded objects exceed the "
            f"{_MAX_OBJECTS}-entry replay object namespace"
        )
    ops = replay_ops(trace)
    objects = tuple(
        ObjectSpec(
            obj_id=index,
            name=f"t{obj.tenant}-{obj.name}",
            direction=Direction.INOUT,
            size=obj.size,
            data=obj.data,
        )
        for index, obj in enumerate(trace.objects)
    )

    def reference() -> dict[int, bytes]:
        return replay_reference(trace, ops)

    return WorkloadSpec(
        name=f"trace-{trace.digest[:10]}",
        bitstream=replay_core.bitstream(ops, trace.digest),
        objects=objects,
        params=(len(ops),),
        sw_cycles=synthetic_app.sw_cycles(len(ops)),
        reference=reference,
    )
