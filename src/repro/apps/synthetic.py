"""Parameterised synthetic access patterns (the design-space probe).

The paper's two kernels (ADPCM, IDEA) stream their data objects almost
sequentially, so the app axis alone cannot exercise the access-pattern
space the VIM design actually targets: strided walks, hot working
sets, phase changes that relocate the hot set mid-execution, and
read/write mixes that stress the writeback path.  The ``synthetic``
app fills that gap: a seeded generator produces an explicit word-op
sequence over a single data object, and both the coprocessor core and
the software reference replay the *same* sequence, so functional
verification stays bit-exact.

Every random draw comes from :func:`repro.apps.workloads.rng` — the
repository's single randomness entry point — so a ``(seed, pattern
parameters)`` pair regenerates the identical workload on any machine.
"""

from __future__ import annotations

from repro.apps import workloads as gen
from repro.errors import ReproError

#: Word size of the coprocessor data port (one op touches one word).
WORD_BYTES = 4

#: Accumulator seed of the mixing pipeline (arbitrary odd constant,
#: shared by the hardware core and the software reference).
ACC_INIT = 0x9E3779B9

#: FNV-1a style multiplier used by :func:`mix_read`.
_MIX_PRIME = 0x01000193

_WORD_MASK = 0xFFFFFFFF

#: Fraction of the object the hot set spans (1/8 of the words, so a
#: high-locality pattern fits in DP-RAM while the cold tail faults).
HOT_SET_DIVISOR = 8

#: Offset decoupling the pattern stream from the dataset stream (same
#: idiom as ``workloads.idea_key``): both derive from the cell seed,
#: but never replay each other's draws.
_PATTERN_SEED_OFFSET = 0x5E9

#: ARM cycles per synthetic op in the pure-software version: an
#: address computation, a load or store, and the mixing arithmetic.
SW_CYCLES_PER_OP = 12


def mix_read(acc: int, value: int) -> int:
    """Fold one read *value* into the accumulator (wrapping uint32)."""
    return ((acc ^ value) * _MIX_PRIME) & _WORD_MASK


def write_value(acc: int, addr: int) -> int:
    """The word stored by a write op at *addr* (wrapping uint32)."""
    return (acc + addr) & _WORD_MASK


def mix_write(acc: int, value: int) -> int:
    """Advance the accumulator past a write of *value*."""
    return (acc + value) & _WORD_MASK


def _validate(
    nbytes: int, stride: int, locality_pct: int, read_pct: int, phases: int
) -> int:
    if nbytes < WORD_BYTES:
        raise ReproError(
            f"synthetic object must hold at least one word, got {nbytes} B"
        )
    if stride < 1:
        raise ReproError(f"stride must be >= 1 words, got {stride}")
    if not 0 <= locality_pct <= 100:
        raise ReproError(f"locality must be 0..100 %, got {locality_pct}")
    if not 0 <= read_pct <= 100:
        raise ReproError(f"read ratio must be 0..100 %, got {read_pct}")
    if phases < 1:
        raise ReproError(f"phase count must be >= 1, got {phases}")
    return nbytes // WORD_BYTES


def access_pattern(
    nbytes: int,
    seed: int = 1,
    stride: int = 1,
    locality_pct: int = 80,
    read_pct: int = 70,
    phases: int = 1,
) -> list[tuple[bool, int]]:
    """The seeded op sequence: ``(is_write, byte_addr)`` per word op.

    One op per data word on average (so runtime scales with the input
    size like the real kernels), split evenly across *phases* phases.
    Within a phase, a fraction ``locality_pct`` of the ops walk a hot
    window — one :data:`HOT_SET_DIVISOR`-th of the object, advancing
    by *stride* words and wrapping — while the rest touch uniformly
    random words.  Each phase relocates the hot window, modelling a
    working-set change mid-execution.  ``read_pct`` of the ops read;
    the others write.

    Parameters
    ----------
    nbytes : int
        Data-object size in bytes (>= one word; a trailing partial
        word is never touched).
    seed : int
        Pattern seed; drawn through :func:`repro.apps.workloads.rng`.
    stride : int
        Hot-window walk stride in words (>= 1).
    locality_pct : int
        Percentage of ops aimed at the hot window (0..100).
    read_pct : int
        Percentage of ops that read (0..100); the rest write.
    phases : int
        Number of hot-window relocations (>= 1).

    Returns
    -------
    list of (bool, int)
        ``(is_write, byte_addr)`` tuples, word-aligned addresses.
    """
    nwords = _validate(nbytes, stride, locality_pct, read_pct, phases)
    rng = gen.rng(seed + _PATTERN_SEED_OFFSET)
    hot_words = max(1, nwords // HOT_SET_DIVISOR)
    total_ops = nwords
    ops: list[tuple[bool, int]] = []
    for phase in range(phases):
        remaining = total_ops // phases + (1 if phase < total_ops % phases else 0)
        hot_base = int(rng.integers(0, nwords))
        cursor = 0
        for _ in range(remaining):
            if rng.integers(0, 100) < locality_pct:
                word = (hot_base + cursor) % nwords
                cursor = (cursor + stride) % hot_words
            else:
                word = int(rng.integers(0, nwords))
            is_write = rng.integers(0, 100) >= read_pct
            ops.append((bool(is_write), word * WORD_BYTES))
    return ops


def run_reference(data: bytes, ops: list[tuple[bool, int]]) -> bytes:
    """Replay *ops* over *data* in software — the verification oracle.

    Applies exactly the op semantics the hardware core implements
    (:func:`mix_read` / :func:`write_value` / :func:`mix_write`), so
    the final object contents are bit-comparable with the DP-RAM
    flush: reads fold the current word into the accumulator, writes
    store an accumulator-derived word back.
    """
    image = bytearray(data)
    acc = ACC_INIT
    for is_write, addr in ops:
        if is_write:
            value = write_value(acc, addr)
            image[addr:addr + WORD_BYTES] = value.to_bytes(WORD_BYTES, "little")
            acc = mix_write(acc, value)
        else:
            value = int.from_bytes(image[addr:addr + WORD_BYTES], "little")
            acc = mix_read(acc, value)
    return bytes(image)


def sw_cycles(num_ops: int) -> int:
    """ARM cycles for the pure-software replay of *num_ops* ops."""
    return num_ops * SW_CYCLES_PER_OP
