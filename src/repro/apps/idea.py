"""IDEA block cipher — bit-exact reference + ARM software cost model.

IDEA is the paper's "complex cryptographic application" (Figure 9):
64-bit blocks, 128-bit key, 8.5 rounds built on three group operations
(XOR, addition mod 2^16, multiplication mod 2^16 + 1 with the 0 ⟷ 2^16
convention).  The per-round functions here are shared with the hardware
core so the coprocessor is bit-exact by construction and verified
end-to-end in tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

#: Number of full rounds (plus the final output transformation).
ROUNDS = 8
#: Subkeys consumed: 6 per round + 4 for the output transformation.
NUM_SUBKEYS = ROUNDS * 6 + 4
#: Block size in bytes.
BLOCK_BYTES = 8

#: Software cost on the 133 MHz ARM, cycles per encrypted block.
#: 34 multiplications mod 65537 (each a 32-bit multiply, compare and
#: fix-up on ARM9), 34 add/xor steps, plus load/store traffic;
#: calibrated against the paper's measured 26 ms for 4 KB
#: (≈ 6.7 kcycles/block, see EXPERIMENTS.md).
SW_CYCLES_PER_BLOCK = 6700


def mul(a: int, b: int) -> int:
    """Multiplication in GF(2^16 + 1) with 0 representing 2^16."""
    if a == 0:
        a = 0x10000
    if b == 0:
        b = 0x10000
    product = (a * b) % 0x10001
    return 0 if product == 0x10000 else product


def add(a: int, b: int) -> int:
    """Addition modulo 2^16."""
    return (a + b) & 0xFFFF


def mul_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^16 + 1) (0 maps to itself)."""
    if a == 0:
        return 0
    # Extended Euclid over the prime 0x10001.
    t0, t1 = 0, 1
    r0, r1 = 0x10001, a
    while r1 != 0:
        quotient = r0 // r1
        t0, t1 = t1, t0 - quotient * t1
        r0, r1 = r1, r0 - quotient * r1
    return t0 % 0x10001 & 0xFFFF


def add_inverse(a: int) -> int:
    """Additive inverse modulo 2^16."""
    return (0x10000 - a) & 0xFFFF


def expand_key(key: bytes) -> list[int]:
    """Expand a 128-bit key into the 52 encryption subkeys.

    The schedule is the standard 25-bit left rotation of the key.
    """
    if len(key) != 16:
        raise ReproError(f"IDEA key must be 16 bytes, got {len(key)}")
    value = int.from_bytes(key, "big")
    subkeys: list[int] = []
    while len(subkeys) < NUM_SUBKEYS:
        for i in range(8):
            if len(subkeys) == NUM_SUBKEYS:
                break
            subkeys.append((value >> (112 - 16 * i)) & 0xFFFF)
        value = ((value << 25) | (value >> 103)) & ((1 << 128) - 1)
    return subkeys


def invert_key(subkeys: list[int]) -> list[int]:
    """Derive the 52 decryption subkeys from the encryption subkeys.

    The layout matches the folded-swap round formulation used by
    :func:`round_function`: the first decryption round takes the
    encryption output-transform keys un-swapped, intermediate rounds
    swap the two additive keys, and the decryption output transform
    takes the first round's keys un-swapped.
    """
    if len(subkeys) != NUM_SUBKEYS:
        raise ReproError(f"expected {NUM_SUBKEYS} subkeys, got {len(subkeys)}")
    inv = [0] * NUM_SUBKEYS
    inv[0] = mul_inverse(subkeys[48])
    inv[1] = add_inverse(subkeys[49])
    inv[2] = add_inverse(subkeys[50])
    inv[3] = mul_inverse(subkeys[51])
    inv[4] = subkeys[46]
    inv[5] = subkeys[47]
    for i in range(1, ROUNDS):
        src = 48 - 6 * i
        dst = 6 * i
        inv[dst] = mul_inverse(subkeys[src])
        inv[dst + 1] = add_inverse(subkeys[src + 2])
        inv[dst + 2] = add_inverse(subkeys[src + 1])
        inv[dst + 3] = mul_inverse(subkeys[src + 3])
        inv[dst + 4] = subkeys[src - 2]
        inv[dst + 5] = subkeys[src - 1]
    inv[48] = mul_inverse(subkeys[0])
    inv[49] = add_inverse(subkeys[1])
    inv[50] = add_inverse(subkeys[2])
    inv[51] = mul_inverse(subkeys[3])
    return inv


def round_function(
    x0: int, x1: int, x2: int, x3: int, keys: tuple[int, int, int, int, int, int]
) -> tuple[int, int, int, int]:
    """One full IDEA round (the hardware core instantiates this)."""
    k0, k1, k2, k3, k4, k5 = keys
    y0 = mul(x0, k0)
    y1 = add(x1, k1)
    y2 = add(x2, k2)
    y3 = mul(x3, k3)
    t0 = mul(y0 ^ y2, k4)
    t1 = mul(add(y1 ^ y3, t0), k5)
    t2 = add(t0, t1)
    return y0 ^ t1, y2 ^ t1, y1 ^ t2, y3 ^ t2


def output_transform(
    x0: int, x1: int, x2: int, x3: int, keys: tuple[int, int, int, int]
) -> tuple[int, int, int, int]:
    """The final half-round (note the x1/x2 swap folds in here)."""
    k0, k1, k2, k3 = keys
    return mul(x0, k0), add(x2, k1), add(x1, k2), mul(x3, k3)


def crypt_block(block: bytes, subkeys: list[int]) -> bytes:
    """Encrypt (or, with inverted subkeys, decrypt) one 8-byte block."""
    if len(block) != BLOCK_BYTES:
        raise ReproError(f"IDEA block must be {BLOCK_BYTES} bytes")
    x0, x1, x2, x3 = (
        int.from_bytes(block[0:2], "big"),
        int.from_bytes(block[2:4], "big"),
        int.from_bytes(block[4:6], "big"),
        int.from_bytes(block[6:8], "big"),
    )
    for round_index in range(ROUNDS):
        keys = tuple(subkeys[round_index * 6 : round_index * 6 + 6])
        x0, x1, x2, x3 = round_function(x0, x1, x2, x3, keys)  # type: ignore[arg-type]
    x0, x1, x2, x3 = output_transform(x0, x1, x2, x3, tuple(subkeys[48:52]))  # type: ignore[arg-type]
    return b"".join(x.to_bytes(2, "big") for x in (x0, x1, x2, x3))


def encrypt(data: bytes, key: bytes) -> bytes:
    """ECB-encrypt *data* (length must be a multiple of 8)."""
    if len(data) % BLOCK_BYTES:
        raise ReproError("IDEA data length must be a multiple of 8 bytes")
    subkeys = expand_key(key)
    return b"".join(
        crypt_block(data[i : i + BLOCK_BYTES], subkeys)
        for i in range(0, len(data), BLOCK_BYTES)
    )


def decrypt(data: bytes, key: bytes) -> bytes:
    """ECB-decrypt *data* produced by :func:`encrypt`."""
    if len(data) % BLOCK_BYTES:
        raise ReproError("IDEA data length must be a multiple of 8 bytes")
    subkeys = invert_key(expand_key(key))
    return b"".join(
        crypt_block(data[i : i + BLOCK_BYTES], subkeys)
        for i in range(0, len(data), BLOCK_BYTES)
    )


def crypt_array(data: bytes, subkeys: list[int]) -> np.ndarray:
    """Encrypt *data* returning a uint8 array (helper for drivers)."""
    out = np.frombuffer(
        b"".join(
            crypt_block(data[i : i + BLOCK_BYTES], subkeys)
            for i in range(0, len(data), BLOCK_BYTES)
        ),
        dtype=np.uint8,
    )
    return out.copy()


def sw_cycles(input_bytes: int) -> int:
    """ARM cycles for the pure-software encryption of *input_bytes*."""
    return (input_bytes // BLOCK_BYTES) * SW_CYCLES_PER_BLOCK
