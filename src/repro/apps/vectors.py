"""Vector addition — the paper's motivating example (Figures 3, 5, 6).

``C[i] = A[i] + B[i]`` over 32-bit words.  Trivial on purpose: the
point of the example is the *interface*, not the computation, and the
three program versions of Figure 3 (pure software, typical coprocessor
with explicit chunking, VIM-based) are reproduced around this kernel in
``examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

#: Software cost on the 133 MHz ARM, cycles per element: two loads, an
#: add, a store and loop overhead.
SW_CYCLES_PER_ELEMENT = 10


def add_vectors(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise uint32 addition (wrapping, like the hardware)."""
    if a.shape != b.shape:
        raise ReproError(f"shape mismatch: {a.shape} vs {b.shape}")
    return (a.astype(np.uint32) + b.astype(np.uint32)).astype(np.uint32)


def sw_cycles(num_elements: int) -> int:
    """ARM cycles for the pure-software vector addition."""
    return num_elements * SW_CYCLES_PER_ELEMENT
