"""Software reference applications and workload generators."""

from repro.apps import adpcm, idea, vectors, workloads

__all__ = ["adpcm", "idea", "vectors", "workloads"]
