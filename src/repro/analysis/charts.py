"""ASCII charts (compat shim over :mod:`repro.exp.report`).

The chart renderers grew into the cache-driven reporting subsystem —
`repro.exp.report` owns them now (alongside the table formatters and
the ``repro sweep --report`` / ``repro diff`` machinery, which renders
regression deltas through :func:`~repro.exp.report.delta_bar_chart`).
This module keeps the historical import path working, exactly like
``analysis/tables.py`` and ``analysis/experiments.py`` do.
"""

from __future__ import annotations

from repro.exp.report import (  # noqa: F401  (re-exported compat names)
    bar_chart,
    delta_bar_chart,
    stacked_bar_chart,
)

__all__ = [
    "bar_chart",
    "delta_bar_chart",
    "stacked_bar_chart",
]
