"""ASCII charts approximating the paper's figures in a terminal.

Figures 8 and 9 are grouped/stacked bar charts of execution time; the
functions here render the same data as horizontal ASCII bars so a
benchmark run ends with something visually comparable to the paper.
"""

from __future__ import annotations

from repro.errors import ReproError

#: Glyphs used for stacked bar segments, in component order.
_SEGMENT_GLYPHS = ("█", "▓", "▒", "░")


def bar_chart(
    rows: list[tuple[str, float]],
    width: int = 50,
    unit: str = "ms",
) -> str:
    """Horizontal bars, one per (label, value) row."""
    if width < 8:
        raise ReproError("chart width must be at least 8 columns")
    if not rows:
        return "(no data)"
    peak = max(value for _, value in rows)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        bar = "█" * max(1, round(value / peak * width)) if value > 0 else ""
        lines.append(f"{label.ljust(label_width)} |{bar} {value:.3f}{unit}")
    return "\n".join(lines)


def stacked_bar_chart(
    rows: list[tuple[str, dict[str, float]]],
    width: int = 50,
    unit: str = "ms",
) -> str:
    """Horizontal stacked bars (the paper's HW / SW(DP) / SW(IMU) stack).

    Component order follows the dict insertion order of the first row;
    a legend line maps glyphs to component names.
    """
    if not rows:
        return "(no data)"
    components = list(rows[0][1])
    if len(components) > len(_SEGMENT_GLYPHS):
        raise ReproError(
            f"at most {len(_SEGMENT_GLYPHS)} stacked components supported"
        )
    peak = max(sum(parts.values()) for _, parts in rows) or 1.0
    label_width = max(len(label) for label, _ in rows)
    glyph_of = dict(zip(components, _SEGMENT_GLYPHS))
    lines = [
        "legend: "
        + "  ".join(f"{glyph_of[name]}={name}" for name in components)
    ]
    for label, parts in rows:
        segments = []
        for name in components:
            value = parts.get(name, 0.0)
            segments.append(glyph_of[name] * round(value / peak * width))
        total = sum(parts.values())
        lines.append(
            f"{label.ljust(label_width)} |{''.join(segments)} {total:.3f}{unit}"
        )
    return "\n".join(lines)
