"""Plain-text result tables.

Small, dependency-free formatting used by the benchmark harness to
print paper-style result rows (and by EXPERIMENTS.md generation).
"""

from __future__ import annotations

from repro.errors import ReproError


def format_cell(value) -> str:
    """Render one value: floats get 3 significant decimals."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: list[str], rows: list[list]) -> str:
    """A fixed-width table with a header rule."""
    if not headers:
        raise ReproError("table needs at least one column")
    rendered = [[format_cell(v) for v in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ReproError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(headers[col]), max((len(r[col]) for r in rendered), default=0))
        for col in range(len(headers))
    ]
    def line(cells: list[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out += [line(row) for row in rendered]
    return "\n".join(out)


def markdown_table(headers: list[str], rows: list[list]) -> str:
    """A GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    rendered = [[format_cell(v) for v in row] for row in rows]
    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rendered:
        out.append("| " + " | ".join(row) + " |")
    return "\n".join(out)
