"""Plain-text result tables (compat shim over :mod:`repro.exp.report`).

The table formatters grew into the cache-driven reporting subsystem —
`repro.exp.report` owns them now (alongside the ``md``/``csv``
renderers and the ``repro sweep --report`` machinery).  This module
keeps the historical import path working, exactly like
``analysis/experiments.py`` does for the figure drivers.
"""

from __future__ import annotations

from repro.exp.report import (  # noqa: F401  (re-exported compat names)
    csv_table,
    format_cell,
    format_table,
    markdown_table,
    render_table,
)

__all__ = [
    "csv_table",
    "format_cell",
    "format_table",
    "markdown_table",
    "render_table",
]
