"""Experiment drivers for every figure and claim in the paper.

Each function regenerates one artefact of the evaluation section:

=============  =====================================================
``figure7``    timing diagram of a translated read (data on edge 4)
``figure8``    adpcmdecode: SW vs VIM-based at 2/4/8 KB
``figure9``    IDEA: SW vs typical vs VIM at 4/8/16/32 KB
``imu_overhead_rows``       §4.1: SW(IMU) <= 2.5 % of total
``translation_overhead``    §4.1: translation ~= 20 % of HW (IDEA)
``ablation_*``  pipelined IMU, policies, transfer modes, prefetch
``portability`` same binaries on EPXA1 / EPXA4 / EPXA10
=============  =====================================================

The benchmark harness under ``benchmarks/`` is a thin printing wrapper
around these, so the same code paths are unit-tested.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coproc.base import Behavior, Coprocessor
from repro.core.drivers import adpcm_workload, idea_workload
from repro.core.runner import RunResult, WorkloadSpec, run_software, run_typical, run_vim
from repro.core.soc import EPXA1, EPXA4, EPXA10, SocConfig
from repro.core.system import System
from repro.errors import CapacityError
from repro.imu.imu import Imu
from repro.os.vim.manager import TransferMode
from repro.os.vim.policies import policy_names
from repro.os.vim.prefetch import SequentialPrefetcher
from repro.sim.clock import ClockDomain
from repro.sim.time import mhz, to_ms
from repro.trace.timeline import WaveformProbe, render_cycles

# ----------------------------------------------------------------------
# Figure 7 — translated read access timing
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Figure7Result:
    """One captured read access through the IMU."""

    diagram: str
    data_ready_edge: int
    value_read: int
    access_cycles: int
    pipelined: bool


class _OneReadCore(Coprocessor):
    """A minimal core issuing exactly one read (for the timing capture)."""

    name = "one-read"

    def __init__(self) -> None:
        super().__init__()
        self.value: int | None = None

    def behavior(self) -> Behavior:
        self.value = yield from self.read(0, 4)


def figure7(access_cycles: int = 4, pipelined: bool = False) -> Figure7Result:
    """Capture the waveform of Figure 7: one translated read.

    The TLB is pre-loaded so the access hits; the returned
    ``data_ready_edge`` counts rising edges from the request edge
    inclusive — 4 for the paper's IMU.
    """
    system = System()
    imu = Imu(
        system.dpram,
        system.interrupts,
        access_cycles=access_cycles,
        pipelined=pipelined,
    )
    core = _OneReadCore()
    core.bind(imu)
    frame = 2
    imu.tlb.insert(0, 0, frame)
    system.dpram.write_word(system.dpram.page_base(frame) + 4, 0x2A)
    domain = ClockDomain(system.engine, "fabric", mhz(40.0))
    domain.attach(imu.tick)
    domain.attach(core.tick)
    ports = imu.ports
    probe = WaveformProbe(
        system.engine,
        [ports.cp_addr, ports.cp_access, ports.cp_tlbhit, ports.cp_din],
    )
    imu.start_coprocessor()
    domain.start()
    system.engine.run_until(
        lambda: core.finished, max_time_ps=100 * domain.period_ps
    )
    domain.stop()
    probe.detach()
    hit_trace = probe.trace("cp.cp_tlbhit")
    rise_time = next(
        t for t, v in zip(hit_trace.times, hit_trace.values) if v == 1
    )
    data_ready_edge = rise_time // domain.period_ps
    diagram = render_cycles(
        probe,
        start_ps=domain.period_ps,
        period_ps=domain.period_ps,
        num_cycles=max(6, data_ready_edge + 2),
        signals=["cp.cp_addr", "cp.cp_access", "cp.cp_tlbhit", "cp.cp_din"],
    )
    return Figure7Result(
        diagram=diagram,
        data_ready_edge=data_ready_edge,
        value_read=core.value if core.value is not None else -1,
        access_cycles=access_cycles,
        pipelined=pipelined,
    )


# ----------------------------------------------------------------------
# Figures 8 and 9 — application execution times
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AppRow:
    """One input-size point of Figure 8 or 9."""

    label: str
    input_kb: int
    sw_ms: float
    vim_ms: float
    hw_ms: float
    sw_dp_ms: float
    sw_imu_ms: float
    sw_other_ms: float
    vim_speedup: float
    page_faults: int
    typical_ms: float | None = None
    typical_speedup: float | None = None
    typical_fits: bool = True

    @property
    def sw_imu_fraction(self) -> float:
        """SW(IMU) share of the VIM total (the <= 2.5 % claim)."""
        return self.sw_imu_ms / self.vim_ms if self.vim_ms else 0.0


def _vim_row(
    label: str,
    input_kb: int,
    workload: WorkloadSpec,
    with_typical: bool,
    soc: SocConfig = EPXA1,
    **vim_kwargs,
) -> AppRow:
    sw = run_software(System(soc), workload)
    vim = run_vim(System(soc), workload, **vim_kwargs)
    vim.verify()
    meas = vim.measurement
    typical_ms = None
    typical_speedup = None
    typical_fits = True
    if with_typical:
        try:
            typical = run_typical(System(soc), workload)
            typical.verify()
            typical_ms = typical.total_ms
            typical_speedup = typical.measurement.speedup_over(sw.measurement)
        except CapacityError:
            typical_fits = False
    return AppRow(
        label=label,
        input_kb=input_kb,
        sw_ms=sw.total_ms,
        vim_ms=vim.total_ms,
        hw_ms=to_ms(meas.hw_ps),
        sw_dp_ms=to_ms(meas.sw_dp_ps),
        sw_imu_ms=to_ms(meas.sw_imu_ps),
        sw_other_ms=to_ms(meas.sw_other_ps),
        vim_speedup=meas.speedup_over(sw.measurement),
        page_faults=meas.counters.page_faults,
        typical_ms=typical_ms,
        typical_speedup=typical_speedup,
        typical_fits=typical_fits,
    )


def figure8(sizes_kb: tuple[int, ...] = (2, 4, 8), **vim_kwargs) -> list[AppRow]:
    """adpcmdecode at the paper's input sizes (SW and VIM versions)."""
    return [
        _vim_row(
            f"adpcm-{kb}KB", kb, adpcm_workload(kb * 1024), with_typical=False,
            **vim_kwargs,
        )
        for kb in sizes_kb
    ]


def figure9(
    sizes_kb: tuple[int, ...] = (4, 8, 16, 32), **vim_kwargs
) -> list[AppRow]:
    """IDEA at the paper's input sizes (SW, typical, and VIM versions)."""
    return [
        _vim_row(
            f"idea-{kb}KB", kb, idea_workload(kb * 1024), with_typical=True,
            **vim_kwargs,
        )
        for kb in sizes_kb
    ]


# ----------------------------------------------------------------------
# §4.1 textual claims
# ----------------------------------------------------------------------


def imu_overhead_rows(
    adpcm_sizes: tuple[int, ...] = (2, 4, 8),
    idea_sizes: tuple[int, ...] = (4, 8, 16, 32),
) -> list[tuple[str, float]]:
    """SW(IMU) fraction of total time for every measured point.

    The paper: "the software execution time for IMU management ... is
    up to 2.5% of the total execution time."
    """
    rows = [(r.label, r.sw_imu_fraction) for r in figure8(adpcm_sizes)]
    rows += [(r.label, r.sw_imu_fraction) for r in figure9(idea_sizes)]
    return rows


@dataclass(frozen=True)
class TranslationOverheadResult:
    """HW-time share attributable to address translation."""

    label: str
    hw_ms: float
    ideal_hw_ms: float

    @property
    def overhead_fraction(self) -> float:
        """(translated - translation-free) / translated HW time."""
        return 1.0 - self.ideal_hw_ms / self.hw_ms if self.hw_ms else 0.0


def translation_overhead(
    workload: WorkloadSpec | None = None,
) -> TranslationOverheadResult:
    """Translation overhead of the IDEA hardware time (§4.1, ~20 %).

    Measured by comparing the normal IMU against an idealised one with
    single-cycle translation — same datapath, same clock-domain
    synchronisers, no TLB translation latency.
    """
    workload = workload or idea_workload(8 * 1024)
    normal = run_vim(System(), workload)
    normal.verify()
    ideal = run_vim(System(), workload, access_cycles=2)
    ideal.verify()
    return TranslationOverheadResult(
        label=workload.name,
        hw_ms=to_ms(normal.measurement.hw_ps),
        ideal_hw_ms=to_ms(ideal.measurement.hw_ps),
    )


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AblationRow:
    """One configuration point of an ablation sweep."""

    label: str
    total_ms: float
    hw_ms: float
    sw_dp_ms: float
    sw_imu_ms: float
    page_faults: int
    prefetches: int = 0


def _ablation_row(label: str, result: RunResult) -> AblationRow:
    result.verify()
    meas = result.measurement
    return AblationRow(
        label=label,
        total_ms=result.total_ms,
        hw_ms=to_ms(meas.hw_ps),
        sw_dp_ms=to_ms(meas.sw_dp_ps),
        sw_imu_ms=to_ms(meas.sw_imu_ps),
        page_faults=meas.counters.page_faults,
        prefetches=meas.counters.prefetches,
    )


def ablation_pipelined(workload: WorkloadSpec | None = None) -> list[AblationRow]:
    """Multi-cycle vs pipelined IMU (the paper's announced improvement)."""
    workload = workload or idea_workload(8 * 1024)
    return [
        _ablation_row("multi-cycle", run_vim(System(), workload)),
        _ablation_row("pipelined", run_vim(System(), workload, pipelined_imu=True)),
    ]


def ablation_policies(workload: WorkloadSpec | None = None) -> list[AblationRow]:
    """The replacement policies §3.3 enumerates, on one faulting run."""
    workload = workload or adpcm_workload(8 * 1024)
    return [
        _ablation_row(name, run_vim(System(), workload, policy=name))
        for name in policy_names()
    ]


def ablation_transfers(workload: WorkloadSpec | None = None) -> list[AblationRow]:
    """Double-transfer (measured) vs single-transfer (announced) VIM."""
    workload = workload or adpcm_workload(8 * 1024)
    return [
        _ablation_row(
            mode.name.lower(),
            run_vim(System(), workload, transfer_mode=mode),
        )
        for mode in (TransferMode.DOUBLE, TransferMode.SINGLE)
    ]


def ablation_prefetch(workload: WorkloadSpec | None = None) -> list[AblationRow]:
    """No prefetch vs conservative / aggressive / overlapped prefetch.

    The *overlapped* row models the paper's full future-work vision:
    prefetch copies proceed concurrently with coprocessor execution
    ("the latter allowing overlapping of processor and coprocessor
    execution"), so avoided faults turn into saved time.
    """
    workload = workload or adpcm_workload(8 * 1024)
    return [
        _ablation_row("none", run_vim(System(), workload)),
        _ablation_row(
            "sequential",
            run_vim(System(), workload, prefetcher=SequentialPrefetcher()),
        ),
        _ablation_row(
            "aggressive",
            run_vim(
                System(),
                workload,
                prefetcher=SequentialPrefetcher(aggressive=True),
            ),
        ),
        _ablation_row(
            "overlapped",
            run_vim(
                System(),
                workload,
                prefetcher=SequentialPrefetcher(aggressive=True, overlapped=True),
            ),
        ),
    ]


def ablation_page_size(
    input_bytes: int = 8 * 1024,
    page_sizes: tuple[int, ...] = (512, 1024, 2048, 4096),
) -> list[AblationRow]:
    """Page-size sweep at fixed 16 KB DP-RAM capacity.

    The classic virtual-memory trade-off transplanted to the interface
    memory: small pages mean more faults (more OS round-trips), large
    pages mean fewer faults but coarser copies and fewer frames to
    allocate.  Not measured in the paper (the prototype fixes 2 KB);
    this quantifies how load-bearing that choice is.
    """
    rows = []
    for page in page_sizes:
        soc = SocConfig(name=f"page-{page}", dpram_bytes=16 * 1024, page_bytes=page)
        workload = adpcm_workload(input_bytes)
        rows.append(
            _ablation_row(f"{page}B", run_vim(System(soc), workload))
        )
    return rows


def ablation_tlb_capacity(
    workload: WorkloadSpec | None = None,
    capacities: tuple[int, ...] = (2, 4, 8),
) -> list[AblationRow]:
    """Shrinking the TLB below one-entry-per-frame (extra faults)."""
    workload = workload or adpcm_workload(4 * 1024)
    return [
        _ablation_row(
            f"tlb-{capacity}",
            run_vim(System(), workload, tlb_capacity=capacity),
        )
        for capacity in capacities
    ]


# ----------------------------------------------------------------------
# Portability (§4: "only recompiling the module")
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PortabilityRow:
    """One SoC preset running the unchanged application."""

    soc: str
    dpram_kb: int
    total_ms: float
    page_faults: int


def portability(workload: WorkloadSpec | None = None) -> list[PortabilityRow]:
    """Run the identical workload on every SoC preset.

    Nothing about the workload (C-side mapping or core FSM) changes;
    only the platform description does — the paper's portability claim.
    Bigger dual-port memories absorb the working set and the fault
    count drops to zero.
    """
    workload = workload or adpcm_workload(8 * 1024)
    rows = []
    for soc in (EPXA1, EPXA4, EPXA10):
        result = run_vim(System(soc), workload)
        result.verify()
        rows.append(
            PortabilityRow(
                soc=soc.name,
                dpram_kb=soc.dpram_bytes // 1024,
                total_ms=result.total_ms,
                page_faults=result.measurement.counters.page_faults,
            )
        )
    return rows
