"""Experiment drivers for every figure and claim in the paper.

.. deprecated:: kept as a compatibility alias.

The implementations moved to :mod:`repro.exp.api`, where each driver
is a thin sweep over the :mod:`repro.exp` scenario engine (declarative
grids, ``multiprocessing`` execution, incremental result caching).
This module re-exports the public names so existing imports keep
working; new code should import from :mod:`repro.exp` directly.
"""

from __future__ import annotations

from repro.exp.api import (
    AblationRow,
    AppRow,
    Figure7Result,
    PortabilityRow,
    TranslationOverheadResult,
    ablation_page_size,
    ablation_pipelined,
    ablation_policies,
    ablation_prefetch,
    ablation_tlb_capacity,
    ablation_transfers,
    figure7,
    figure8,
    figure9,
    imu_overhead_rows,
    portability,
    translation_overhead,
)

__all__ = [
    "AblationRow",
    "AppRow",
    "Figure7Result",
    "PortabilityRow",
    "TranslationOverheadResult",
    "ablation_page_size",
    "ablation_pipelined",
    "ablation_policies",
    "ablation_prefetch",
    "ablation_tlb_capacity",
    "ablation_transfers",
    "figure7",
    "figure8",
    "figure9",
    "imu_overhead_rows",
    "portability",
    "translation_overhead",
]
