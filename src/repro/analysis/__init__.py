"""Analysis layer (compat shims): drivers, tables and charts all
live in :mod:`repro.exp` now; these historical import paths keep
working."""

from repro.analysis.charts import bar_chart, delta_bar_chart, stacked_bar_chart
from repro.analysis.experiments import (
    AblationRow,
    AppRow,
    Figure7Result,
    PortabilityRow,
    TranslationOverheadResult,
    ablation_page_size,
    ablation_pipelined,
    ablation_policies,
    ablation_prefetch,
    ablation_tlb_capacity,
    ablation_transfers,
    figure7,
    figure8,
    figure9,
    imu_overhead_rows,
    portability,
    translation_overhead,
)
from repro.analysis.tables import format_table, markdown_table

__all__ = [
    "AblationRow",
    "AppRow",
    "Figure7Result",
    "PortabilityRow",
    "TranslationOverheadResult",
    "ablation_page_size",
    "ablation_pipelined",
    "ablation_policies",
    "ablation_prefetch",
    "ablation_tlb_capacity",
    "ablation_transfers",
    "bar_chart",
    "delta_bar_chart",
    "figure7",
    "figure8",
    "figure9",
    "format_table",
    "imu_overhead_rows",
    "markdown_table",
    "portability",
    "stacked_bar_chart",
    "translation_overhead",
]
