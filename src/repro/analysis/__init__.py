"""Analysis layer (deprecated compat shims).

.. deprecated:: importing from ``repro.analysis`` warns.

Drivers, tables and charts all live in :mod:`repro.exp` now — the
supported public surface (see ``docs/architecture.md``).  These
historical import paths still re-export every name they ever did,
but importing them raises a :class:`DeprecationWarning`; migrate to
``from repro.exp import ...``.
"""

import warnings

warnings.warn(
    "repro.analysis is deprecated; import from repro.exp instead "
    "(the same names are re-exported there)",
    DeprecationWarning,
    stacklevel=2,
)

from repro.analysis.charts import bar_chart, delta_bar_chart, stacked_bar_chart
from repro.analysis.experiments import (
    AblationRow,
    AppRow,
    Figure7Result,
    PortabilityRow,
    TranslationOverheadResult,
    ablation_page_size,
    ablation_pipelined,
    ablation_policies,
    ablation_prefetch,
    ablation_tlb_capacity,
    ablation_transfers,
    figure7,
    figure8,
    figure9,
    imu_overhead_rows,
    portability,
    translation_overhead,
)
from repro.analysis.tables import format_table, markdown_table

__all__ = [
    "AblationRow",
    "AppRow",
    "Figure7Result",
    "PortabilityRow",
    "TranslationOverheadResult",
    "ablation_page_size",
    "ablation_pipelined",
    "ablation_policies",
    "ablation_prefetch",
    "ablation_tlb_capacity",
    "ablation_transfers",
    "bar_chart",
    "delta_bar_chart",
    "figure7",
    "figure8",
    "figure9",
    "format_table",
    "imu_overhead_rows",
    "markdown_table",
    "portability",
    "stacked_bar_chart",
    "translation_overhead",
]
