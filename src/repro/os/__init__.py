"""Operating-system substrate: kernel, scheduler, syscalls, VIM."""

from repro.os.costs import Bucket, CpuCostModel
from repro.os.kernel import Kernel
from repro.os.process import Process, ProcessState
from repro.os.scheduler import Scheduler
from repro.os.syscalls import FpgaServices
from repro.os.vmm import UserBuffer, UserMemory

__all__ = [
    "Bucket",
    "CpuCostModel",
    "FpgaServices",
    "Kernel",
    "Process",
    "ProcessState",
    "Scheduler",
    "UserBuffer",
    "UserMemory",
]
