"""The three OS coprocessor invocation services of §3.1.

* ``FPGA_LOAD`` — "loads a coprocessor definition in the reconfigurable
  hardware and ensures the exclusive use of the resource."
* ``FPGA_MAP_OBJECT`` — "allocates the data used by the coprocessor
  ... equivalent to software parameter passing by reference."
* ``FPGA_EXECUTE`` — "performs the mapping, passes scalar parameters,
  initialises the IMU, launches the coprocessor, and puts the calling
  process in an interruptible sleep mode."
"""

from __future__ import annotations

from repro.coproc.bitstream import Bitstream
from repro.errors import SyscallError
from repro.hw.fpga import PldFabric
from repro.os.costs import Bucket
from repro.os.kernel import Kernel
from repro.os.process import Process
from repro.os.vim.manager import Vim
from repro.os.vim.objects import Direction, Hint, MappedObject
from repro.os.vmm import UserBuffer
from repro.sim.time import us


class FpgaServices:
    """System-call layer binding processes to the fabric and the VIM."""

    def __init__(self, kernel: Kernel, fabric: PldFabric, vim: Vim) -> None:
        self.kernel = kernel
        self.fabric = fabric
        self.vim = vim

    def fpga_load(self, process: Process, bitstream: Bitstream) -> None:
        """Configure *bitstream* on the fabric for *process*.

        Configuration time elapses on the simulated clock but is not
        charged to the execution measurement, matching the paper's
        reporting (kernels are measured per FPGA_EXECUTE).
        """
        self.kernel.spend(self.kernel.costs.syscall_cycles, Bucket.SW_OTHER)
        config_us = self.fabric.configure(bitstream, process.pid)
        self.kernel.engine.advance(us(config_us))

    def fpga_map_object(
        self,
        process: Process,
        obj_id: int,
        buffer: UserBuffer,
        size: int,
        direction: Direction,
        hints: Hint = Hint.NONE,
        require_fabric: bool = True,
    ) -> None:
        """Declare *buffer* as coprocessor object *obj_id*.

        *direction* and *hints* together are the call's "(d) some flags
        used for optimisation purposes" (§3.1).  ``require_fabric=False``
        skips the fabric-ownership check: mapping is pure VIM
        bookkeeping, and multi-tenant sessions map objects while the
        time-shared fabric belongs to whichever tenant executed last.
        """
        if buffer.pid != process.pid:
            raise SyscallError(
                f"process {process.pid} cannot map buffer owned by "
                f"process {buffer.pid}"
            )
        if require_fabric and self.fabric.owner_pid != process.pid:
            raise SyscallError(
                f"process {process.pid} does not own the fabric; "
                "call FPGA_LOAD first"
            )
        costs = self.kernel.costs
        self.kernel.spend(
            costs.syscall_cycles + costs.map_object_cycles, Bucket.SW_OTHER
        )
        self.vim.map_object(MappedObject(obj_id, buffer, size, direction, hints))

    def fpga_execute(self, process: Process, params: list[int]) -> None:
        """Start the coprocessor and put *process* to sleep."""
        if self.fabric.owner_pid != process.pid:
            raise SyscallError(
                f"process {process.pid} does not own the fabric; "
                "call FPGA_LOAD first"
            )
        self.kernel.spend(self.kernel.costs.syscall_cycles, Bucket.SW_OTHER)
        self.vim.setup_execution(params, process)
        if self.kernel.scheduler.current is process:
            self.kernel.scheduler.sleep_current()
        else:
            process.sleep()
