"""The mini-OS kernel.

Holds the pieces every service needs: the CPU clock (to convert
modelled cycles into simulated time), the scheduler, user memory, the
interrupt controller, and the *active measurement* that modelled CPU
time is charged against.

The kernel is deliberately small — the paper's point is that interface
virtualisation needs only "some cooperation from the operating system",
and this class is exactly that cooperation surface.
"""

from __future__ import annotations

from repro.errors import OsError
from repro.core.measurement import Measurement
from repro.hw.interrupts import InterruptController
from repro.os.costs import Bucket, CpuCostModel
from repro.os.process import Process
from repro.os.scheduler import Scheduler
from repro.os.vmm import UserMemory
from repro.sim.engine import Engine
from repro.sim.time import Frequency


class Kernel:
    """CPU-time accounting, processes, interrupts, user memory."""

    def __init__(
        self,
        engine: Engine,
        cpu_frequency: Frequency,
        costs: CpuCostModel,
        interrupts: InterruptController,
    ) -> None:
        self.engine = engine
        self.cpu_frequency = cpu_frequency
        self.costs = costs
        self.interrupts = interrupts
        self.scheduler = Scheduler()
        self.user_memory = UserMemory()
        self._next_pid = 1
        self._measurement: Measurement | None = None
        self.cycles_spent = 0

    # -- processes -------------------------------------------------------

    def spawn(self, name: str, priority: int = 1) -> Process:
        """Create a process and place it on the run queue."""
        process = Process(self._next_pid, name, priority=priority)
        self._next_pid += 1
        self.scheduler.enqueue(process)
        return process

    # -- time accounting ---------------------------------------------------

    def attach_measurement(self, measurement: Measurement) -> None:
        """Direct subsequent CPU charges into *measurement*."""
        self._measurement = measurement

    def detach_measurement(self) -> None:
        """Stop accounting CPU charges."""
        self._measurement = None

    @property
    def measurement(self) -> Measurement:
        """The active measurement (raises if none attached)."""
        if self._measurement is None:
            raise OsError("no measurement attached to the kernel")
        return self._measurement

    def spend(self, cycles: int, bucket: Bucket) -> int:
        """Model *cycles* of CPU work: advance time, charge *bucket*.

        Returns the elapsed picoseconds.  This is the single choke point
        through which all modelled software time flows.
        """
        if cycles < 0:
            raise OsError(f"negative cycle count {cycles}")
        ps = self.cpu_frequency.cycles_to_ps(cycles)
        self.engine.advance(ps)
        self.cycles_spent += cycles
        if self._measurement is not None:
            self._measurement.charge(bucket, ps)
        return ps

    def wait_ps(self, ps: int, bucket: Bucket) -> None:
        """Model the CPU blocked on hardware: time passes, *bucket* pays.

        Used for stalls that execute no modelled instructions — waiting
        out a DMA drain, or AHB arbitration behind a burst-mode master
        — so ``cycles_spent`` does not move, but the elapsed time still
        lands in the measurement decomposition.
        """
        if ps < 0:
            raise OsError(f"negative wait {ps} ps")
        self.engine.advance(ps)
        if self._measurement is not None:
            self._measurement.charge(bucket, ps)

    # -- interrupt dispatch ------------------------------------------------

    def service_interrupts(self) -> int:
        """Dispatch pending unmasked interrupts, charging entry/exit.

        Returns the number of handler invocations.
        """
        count = 0
        while self.interrupts.pending_unmasked():
            self.spend(self.costs.irq_entry_cycles, Bucket.SW_OTHER)
            count += self.interrupts.dispatch()
            self.spend(self.costs.irq_exit_cycles, Bucket.SW_OTHER)
            if self._measurement is not None:
                self._measurement.counters.interrupts += 1
        return count
