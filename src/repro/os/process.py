"""Process model.

Only as much of a process as the paper's mechanism needs: an identity,
a state machine (``FPGA_EXECUTE`` "puts the calling process in an
interruptible sleep mode"), and per-process ownership of user-space
buffers and of the FPGA fabric.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import OsError


class ProcessState(Enum):
    """Scheduler-visible process states."""

    READY = "ready"
    RUNNING = "running"
    SLEEPING = "sleeping"
    TERMINATED = "terminated"


class Process:
    """A user process on the mini-OS."""

    def __init__(self, pid: int, name: str, priority: int = 1) -> None:
        if pid < 0:
            raise OsError(f"invalid pid {pid}")
        if priority < 1:
            # Priority doubles as the weighted-round-robin burst length,
            # so zero would mean "never dispatched".
            raise OsError(f"priority must be >= 1, got {priority}")
        self.pid = pid
        self.name = name
        #: Scheduling weight: strict-priority rank and WRR burst length.
        self.priority = priority
        self.state = ProcessState.READY
        self.wakeups = 0
        self.sleeps = 0

    def sleep(self) -> None:
        """Enter interruptible sleep (waiting for the coprocessor)."""
        if self.state is ProcessState.TERMINATED:
            raise OsError(f"process {self.pid} is terminated")
        self.state = ProcessState.SLEEPING
        self.sleeps += 1

    def wake(self) -> None:
        """Return to the ready queue after end-of-operation."""
        if self.state is not ProcessState.SLEEPING:
            raise OsError(
                f"process {self.pid} woken while {self.state.value}, "
                "expected sleeping"
            )
        self.state = ProcessState.READY
        self.wakeups += 1

    def terminate(self) -> None:
        """Final state; the fabric and buffers are released by the kernel."""
        self.state = ProcessState.TERMINATED

    def __repr__(self) -> str:
        return f"Process(pid={self.pid}, name={self.name!r}, state={self.state.value})"
