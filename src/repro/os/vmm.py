"""User-space memory.

User buffers are the "pointer to the data" argument of
``FPGA_MAP_OBJECT``.  They live in (modelled) SDRAM; the VIM copies
between them and the dual-port RAM.  Buffers carry real bytes so that
functional equivalence with pure software is checked end-to-end.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MemoryAccessError, OsError


class UserBuffer:
    """A contiguous user-space allocation backed by real bytes."""

    def __init__(self, name: str, size: int, pid: int) -> None:
        if size < 0:
            raise OsError(f"buffer {name!r}: negative size {size}")
        self.name = name
        self.size = size
        self.pid = pid
        self.data = np.zeros(size, dtype=np.uint8)

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise MemoryAccessError(
                f"buffer {self.name!r}: access [{offset}, {offset + length}) "
                f"outside size {self.size}"
            )

    def write(self, offset: int, payload: bytes) -> None:
        """Store *payload* at *offset*."""
        self._check(offset, len(payload))
        self.data[offset : offset + len(payload)] = np.frombuffer(
            bytes(payload), dtype=np.uint8
        )

    def read(self, offset: int, length: int) -> bytes:
        """Load *length* bytes at *offset*."""
        self._check(offset, length)
        return self.data[offset : offset + length].tobytes()

    def fill_from(self, payload: bytes) -> None:
        """Initialise the whole buffer (must match the size exactly)."""
        if len(payload) != self.size:
            raise OsError(
                f"buffer {self.name!r}: payload of {len(payload)} bytes "
                f"does not match size {self.size}"
            )
        self.write(0, payload)

    def snapshot(self) -> bytes:
        """The full current contents."""
        return self.data.tobytes()


class UserMemory:
    """Per-process user-space allocator (bump allocation is enough)."""

    def __init__(self, capacity: int = 64 * 1024 * 1024) -> None:
        self.capacity = capacity
        self.allocated = 0
        self._buffers: list[UserBuffer] = []

    def alloc(self, name: str, size: int, pid: int) -> UserBuffer:
        """Allocate a named buffer for process *pid*."""
        if self.allocated + size > self.capacity:
            raise OsError(
                f"user memory exhausted: {self.allocated} + {size} "
                f"> {self.capacity}"
            )
        buffer = UserBuffer(name, size, pid)
        self._buffers.append(buffer)
        self.allocated += size
        return buffer

    def free_process(self, pid: int) -> None:
        """Release every buffer owned by *pid* (process exit)."""
        kept = [b for b in self._buffers if b.pid != pid]
        freed = sum(b.size for b in self._buffers if b.pid == pid)
        self._buffers = kept
        self.allocated -= freed

    def buffers(self) -> list[UserBuffer]:
        """All live buffers."""
        return list(self._buffers)
