"""Transfer engines: how one page movement is performed and charged.

The VIM moves pages between user-space memory and the DP-RAM in four
situations: the demand load of a fault service, the write-back of an
evicted dirty page, a speculative prefetch, and the end-of-operation
flush.  *How* a movement happens is the transfer-mode axis of §4.1:

* ``DOUBLE`` — the measured prototype: "our simple implementation ...
  makes two transfers each time a page is loaded or unloaded from the
  dual-port memory" (through an intermediate kernel buffer);
* ``SINGLE`` — the announced improvement: one direct CPU copy;
* ``DMA`` — the end point of that road: the CPU only programs a
  :class:`~repro.hw.dma.DmaEngine` descriptor and the controller moves
  the page itself, raising a completion interrupt when its queue
  drains.

:class:`TransferEngine` is the single abstraction all four copy paths
route through, so the whole copy cost model lives here: CPU copy
cycles for the CPU modes, descriptor-programming cycles plus
asynchronous bus time for DMA, and AHB arbitration stalls whenever a
CPU copy is issued while a DMA burst holds the bus.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from enum import Enum
from typing import Callable

from repro.accounting import Bucket
from repro.errors import VimError
from repro.hw.bus import AhbBus
from repro.hw.dma import DmaDescriptor, DmaEngine
from repro.os.kernel import Kernel

#: A functional byte movement (executed exactly once per transfer).
Move = Callable[[], None]


class TransferMode(Enum):
    """How one page movement is performed (§4.1).

    The value is the number of CPU copies the movement costs: two for
    the measured system, one for the announced improvement, zero for a
    DMA descriptor (the CPU pays programming cycles instead).
    """

    SINGLE = 1
    DOUBLE = 2
    DMA = 0


class TransferEngine(ABC):
    """Performs and charges one page movement between user memory and
    the DP-RAM.

    Every method takes the functional byte movement as a ``move``
    callable plus its length; the engine decides who executes it (the
    CPU serially, or a DMA descriptor queued on the bus) and charges
    the right :class:`~repro.os.costs.CpuCostModel` entries.
    """

    name = "abstract"

    def __init__(
        self, kernel: Kernel, bus: AhbBus, dma: DmaEngine | None
    ) -> None:
        self.kernel = kernel
        self.bus = bus
        self.dma = dma

    # -- the copy situations the VIM distinguishes ---------------------

    @abstractmethod
    def load(self, move: Move, nbytes: int) -> None:
        """Demand load (fault service): returns once the page is usable."""

    @abstractmethod
    def write_back(self, move: Move, nbytes: int) -> None:
        """Eviction write-back, ordered before any later load of the
        same frame."""

    @abstractmethod
    def flush(self, move: Move, nbytes: int) -> None:
        """End-of-operation write-back of one dirty page."""

    @abstractmethod
    def preload(self, move: Move, nbytes: int) -> None:
        """Eager-mapping load during FPGA_EXECUTE setup."""

    @abstractmethod
    def prefetch(self, move: Move, nbytes: int, overlapped: bool) -> None:
        """Speculative load inside a fault service.

        ``overlapped=True`` asks for the copy to proceed concurrently
        with coprocessor execution; only a DMA descriptor can grant
        that, whatever the demand-path transfer mode is.
        """

    def param_copy(self, move: Move, nbytes: int) -> None:
        """Write the parameter page (always a CPU copy: a handful of
        scalar words is not worth a descriptor)."""
        self._cpu_copy(move, nbytes, self._param_copies())

    @abstractmethod
    def _param_copies(self) -> int:
        """CPU copies one parameter-page write costs in this mode."""

    # -- shared mechanics ----------------------------------------------

    def _cpu_copy(self, move: Move, nbytes: int, copies: int) -> None:
        """One serial CPU copy loop (times *copies*), stalling first if
        a DMA burst currently masters the AHB."""
        stall_ps = self.bus.grant_delay_ps(self.kernel.engine.now)
        if stall_ps > 0:
            self.bus.note_contention(stall_ps)
            self.kernel.wait_ps(stall_ps, Bucket.SW_DP)
        move()
        self.kernel.spend(
            self.kernel.costs.copy_cycles(nbytes) * copies, Bucket.SW_DP
        )
        self.bus.record(nbytes)

    def _dma_submit(
        self, move: Move, nbytes: int, kind: str, irq: bool
    ) -> DmaDescriptor:
        """Program one DMA descriptor, charging setup or append cycles."""
        if self.dma is None:
            raise VimError(
                f"transfer engine {self.name!r} needs a DMA engine for a "
                f"{kind} descriptor; none is wired to this VIM"
            )
        costs = self.kernel.costs
        cycles = (
            costs.dma_descriptor_cycles if self.dma.busy
            else costs.dma_setup_cycles
        )
        self.kernel.spend(cycles, Bucket.SW_DP)
        self.kernel.measurement.counters.dma_transfers += 1
        return self.dma.submit(
            DmaDescriptor(nbytes=nbytes, move=move, kind=kind, irq=irq)
        )

    def _dma_wait(self, descriptor: DmaDescriptor) -> None:
        """Block until *descriptor* completes (FIFO: the whole queue up
        to it has drained), charging the wait as DP-RAM management."""
        wait_ps = descriptor.complete_ps - self.kernel.engine.now
        if wait_ps > 0:
            self.kernel.wait_ps(wait_ps, Bucket.SW_DP)


class CpuCopyEngine(TransferEngine):
    """§4.1's CPU copy loops: ``copies`` transfers per page movement.

    ``copies=2`` reproduces the measured system (intermediate kernel
    buffer), ``copies=1`` the announced single-transfer improvement.
    An *overlapped* prefetch still goes through the DMA engine — the
    board's DMA controller is what makes overlap physically possible;
    the retired model simply charged nothing for it.
    """

    def __init__(
        self, kernel: Kernel, bus: AhbBus, dma: DmaEngine | None, copies: int
    ) -> None:
        if copies < 1:
            raise VimError(f"CPU copy engine needs copies >= 1, got {copies}")
        super().__init__(kernel, bus, dma)
        self.copies = copies
        self.name = "double" if copies == 2 else "single"

    def load(self, move: Move, nbytes: int) -> None:
        self._cpu_copy(move, nbytes, self.copies)

    def write_back(self, move: Move, nbytes: int) -> None:
        self._cpu_copy(move, nbytes, self.copies)

    def flush(self, move: Move, nbytes: int) -> None:
        self._cpu_copy(move, nbytes, self.copies)

    def preload(self, move: Move, nbytes: int) -> None:
        self._cpu_copy(move, nbytes, self.copies)

    def prefetch(self, move: Move, nbytes: int, overlapped: bool) -> None:
        if overlapped:
            self._dma_submit(move, nbytes, "prefetch", irq=True)
        else:
            self._cpu_copy(move, nbytes, self.copies)

    def _param_copies(self) -> int:
        return self.copies


class DmaTransferEngine(TransferEngine):
    """Descriptor-driven page movement: zero CPU copies.

    The CPU pays descriptor programming per transfer; bus time drains
    asynchronously on the :class:`~repro.hw.dma.DmaEngine` queue.  Only
    the demand load of a fault service waits for its descriptor (the
    coprocessor is stalled on exactly that page); eviction write-backs
    are ordered by the FIFO queue in front of any later load of the
    same frame, preloads overlap coprocessor start, and the
    end-of-operation flush drains while the *next* execution already
    runs — the double-buffered writeback.
    """

    name = "dma"

    def load(self, move: Move, nbytes: int) -> None:
        self._dma_wait(self._dma_submit(move, nbytes, "load", irq=False))

    def write_back(self, move: Move, nbytes: int) -> None:
        self._dma_submit(move, nbytes, "writeback", irq=False)

    def flush(self, move: Move, nbytes: int) -> None:
        self._dma_submit(move, nbytes, "flush", irq=True)

    def preload(self, move: Move, nbytes: int) -> None:
        self._dma_submit(move, nbytes, "preload", irq=False)

    def prefetch(self, move: Move, nbytes: int, overlapped: bool) -> None:
        descriptor = self._dma_submit(move, nbytes, "prefetch", irq=overlapped)
        if not overlapped:
            self._dma_wait(descriptor)

    def _param_copies(self) -> int:
        # The DMA world is the single-transfer world for the CPU too:
        # parameters are written straight to the DP-RAM, no
        # intermediate kernel buffer.
        return 1


def make_transfer_engine(
    mode: TransferMode,
    kernel: Kernel,
    bus: AhbBus,
    dma: DmaEngine | None,
) -> TransferEngine:
    """Build the :class:`TransferEngine` implementing *mode*."""
    if mode is TransferMode.DMA:
        if dma is None:
            raise VimError("TransferMode.DMA needs a DMA engine wired in")
        return DmaTransferEngine(kernel, bus, dma)
    return CpuCopyEngine(kernel, bus, dma, copies=mode.value)
