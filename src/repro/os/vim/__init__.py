"""The Virtual Interface Manager kernel module and its helpers."""

from repro.os.vim.allocator import FrameAllocator
from repro.os.vim.manager import TransferMode, Vim
from repro.os.vim.objects import Direction, Hint, MappedObject
from repro.os.vim.policies import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    SecondChancePolicy,
    VictimContext,
    make_policy,
    policy_names,
)
from repro.os.vim.prefetch import Prefetcher, SequentialPrefetcher

__all__ = [
    "Direction",
    "FifoPolicy",
    "Hint",
    "FrameAllocator",
    "LruPolicy",
    "MappedObject",
    "Prefetcher",
    "RandomPolicy",
    "ReplacementPolicy",
    "SecondChancePolicy",
    "SequentialPrefetcher",
    "TransferMode",
    "VictimContext",
    "Vim",
    "make_policy",
    "policy_names",
]
