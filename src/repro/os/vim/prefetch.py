"""Speculative page prefetching.

"Also, speculative actions as prefetching could be used in order to
avoid translation misses" (§3.3).  The sequential prefetcher guesses
that the page after a faulting page will be needed next — true for
streaming kernels such as adpcm and IDEA — and the VIM brings the
suggestion in *only into free frames* (prefetching never evicts live
data, so a wrong guess costs one copy, never an extra fault).
"""

from __future__ import annotations

from repro.errors import VimError
from repro.os.vim.objects import MappedObject


class Prefetcher:
    """Interface for prefetch heuristics."""

    name = "none"

    def suggest(
        self, obj: MappedObject, vpage: int, page_size: int
    ) -> list[tuple[MappedObject, int]]:
        """Pages worth bringing in after a fault on (*obj*, *vpage*)."""
        return []


class SequentialPrefetcher(Prefetcher):
    """Prefetch the next *depth* pages of the faulting object.

    With ``aggressive=False`` suggestions are honoured only when a free
    frame exists, so a wrong guess costs one copy and never an extra
    fault.  With ``aggressive=True`` the VIM will evict (via the active
    replacement policy) to make room — profitable for streaming access
    patterns, where the evicted page is typically dead anyway, because
    it converts a full fault round-trip (stall, interrupt, decode) into
    a copy that is already amortised inside an ongoing fault service.
    """

    name = "sequential"

    def __init__(
        self,
        depth: int = 1,
        aggressive: bool = False,
        overlapped: bool = False,
    ) -> None:
        """``overlapped=True`` additionally realises the paper's
        future-work improvement: the prefetch copy is queued as a
        descriptor on the board's :class:`~repro.hw.dma.DmaEngine` and
        drains concurrently with coprocessor execution, whatever the
        demand-path transfer mode is.  The CPU pays descriptor
        programming and the completion interrupt; the bus time is paid
        by the DMA burst (and by whoever's CPU copy stalls behind it).
        This replaces the old idealised model that charged nothing.
        """
        if depth < 1:
            raise VimError(f"prefetch depth must be >= 1, got {depth}")
        self.depth = depth
        self.aggressive = aggressive
        self.overlapped = overlapped

    def suggest(
        self, obj: MappedObject, vpage: int, page_size: int
    ) -> list[tuple[MappedObject, int]]:
        limit = obj.num_pages(page_size)
        return [
            (obj, vpage + offset)
            for offset in range(1, self.depth + 1)
            if vpage + offset < limit
        ]
