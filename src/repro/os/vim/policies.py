"""Page-replacement policies.

"When no page is available for allocation, several replacement
policies are possible (e.g., first-in first-out, least recently used,
random)" (§3.3).  All three are implemented, plus second-chance, and
they are benchmarked against each other in
``benchmarks/bench_ablation_policies.py``.

Recency-based policies need hardware support: the VIM only sees
*faults*, so LRU and second-chance read the per-entry usage information
the TLB maintains on every hit (`last_used`, `referenced` — the classic
reference-bit assist, a natural extension of the TLB's existing
validity and dirtiness bits).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import OrderedDict

from repro.errors import VimError
from repro.imu.tlb import Tlb, TlbEntry


class VictimContext:
    """What a policy may inspect when choosing a victim frame."""

    def __init__(self, tlb: Tlb) -> None:
        self._tlb = tlb

    def entry(self, frame: int) -> TlbEntry | None:
        """The TLB entry currently mapping *frame*."""
        return self._tlb.entry_for_ppage(frame)


class ReplacementPolicy(ABC):
    """Chooses which resident data frame to evict."""

    #: Registry key (used by :func:`make_policy`).
    name = "abstract"

    def reset(self) -> None:
        """Forget all history (start of a new execution)."""

    def on_load(self, frame: int) -> None:
        """Notification: a page was just loaded into *frame*."""

    def on_touch(self, frame: int) -> None:
        """Notification: a TLB-only reinstall re-touched *frame*.

        The page was already resident (no data moved), but the
        coprocessor is actively using it: the VIM refreshes the
        reinstalled TLB entry's ``last_used``/``referenced`` assist as
        it notifies, so LRU and second-chance see the touch through
        their usual TLB reads.  FIFO ignores touches by definition.
        """

    def on_release(self, frame: int) -> None:
        """Notification: *frame* was freed outside eviction."""

    @abstractmethod
    def victim(self, candidates: list[int], ctx: VictimContext) -> int:
        """Pick one of *candidates* for eviction."""

    def _require(self, candidates: list[int]) -> None:
        if not candidates:
            raise VimError(f"{self.name}: no eviction candidates")


class FifoPolicy(ReplacementPolicy):
    """Evict the frame loaded longest ago."""

    name = "fifo"

    def __init__(self) -> None:
        self._order: OrderedDict[int, None] = OrderedDict()

    def reset(self) -> None:
        self._order.clear()

    def on_load(self, frame: int) -> None:
        self._order.pop(frame, None)
        self._order[frame] = None

    def on_release(self, frame: int) -> None:
        self._order.pop(frame, None)

    def victim(self, candidates: list[int], ctx: VictimContext) -> int:
        self._require(candidates)
        # Frames never seen by on_load (pre-attach residents) predate
        # everything in the recorded order: they are the oldest cohort,
        # evicted first, lowest frame number as the deterministic
        # stand-in for their unknown load times.
        unseen = [f for f in candidates if f not in self._order]
        if unseen:
            return min(unseen)
        # unseen was empty, so every candidate has a recorded load time
        # and the scan below always finds one.
        candidate_set = set(candidates)
        for frame in self._order:
            if frame in candidate_set:
                return frame
        raise AssertionError("unreachable: every candidate is in _order")


class LruPolicy(ReplacementPolicy):
    """Evict the frame whose translation was used least recently.

    Uses the TLB's per-entry ``last_used`` logical timestamp.
    """

    name = "lru"

    def victim(self, candidates: list[int], ctx: VictimContext) -> int:
        self._require(candidates)

        def last_used(frame: int) -> int:
            entry = ctx.entry(frame)
            return entry.last_used if entry is not None else -1

        return min(candidates, key=lambda frame: (last_used(frame), frame))


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random candidate (seeded: runs reproduce)."""

    name = "random"

    def __init__(self, seed: int = 0x5EED) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def victim(self, candidates: list[int], ctx: VictimContext) -> int:
        self._require(candidates)
        return self._rng.choice(candidates)


class SecondChancePolicy(ReplacementPolicy):
    """FIFO, but a referenced frame gets one more pass.

    Clears the TLB reference bit as it sweeps — the classic clock
    algorithm over the interface memory.
    """

    name = "second-chance"

    def __init__(self) -> None:
        self._order: OrderedDict[int, None] = OrderedDict()

    def reset(self) -> None:
        self._order.clear()

    def on_load(self, frame: int) -> None:
        self._order.pop(frame, None)
        self._order[frame] = None

    def on_release(self, frame: int) -> None:
        self._order.pop(frame, None)

    def victim(self, candidates: list[int], ctx: VictimContext) -> int:
        self._require(candidates)
        candidate_set = set(candidates)
        # Pre-attach residents (never seen by on_load) are the oldest
        # cohort: sweep them first, lowest frame number first, same as
        # FIFO's fallback ordering.
        queue = sorted(f for f in candidates if f not in self._order)
        queue += [f for f in self._order if f in candidate_set]
        for _ in range(2 * len(queue)):
            frame = queue.pop(0)
            entry = ctx.entry(frame)
            if entry is not None and entry.referenced:
                entry.referenced = False
                queue.append(frame)
                continue
            return frame
        return queue[0] if queue else candidates[0]


_POLICIES = {
    policy.name: policy
    for policy in (FifoPolicy, LruPolicy, RandomPolicy, SecondChancePolicy)
}


def make_policy(name: str) -> ReplacementPolicy:
    """Build a policy by registry name (fifo/lru/random/second-chance)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise VimError(
            f"unknown replacement policy {name!r}; "
            f"choices: {sorted(_POLICIES)}"
        ) from None


def policy_names() -> list[str]:
    """All registered policy names."""
    return sorted(_POLICIES)
