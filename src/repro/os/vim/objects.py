"""Mapped interface objects.

``FPGA_MAP_OBJECT`` "allocates the data used by the coprocessor"; its
arguments are "(a) the object identifier (a number agreed by the
hardware and software designers), (b) a pointer to the data, (c) the
data size, and optionally (d) some flags used for optimisation
purposes" (§3.1).

The optimisation flags are the transfer direction: the VIM skips the
page-in copy for pages of an OUT-only object that the coprocessor has
never produced (Figure 6 passes exactly ``IN``/``OUT`` flags), and an
IN-only object can never be dirty, so it is never written back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Flag, auto

from repro.coproc.ports import obj_asid, obj_local
from repro.errors import SyscallError
from repro.os.vmm import UserBuffer


class Direction(Flag):
    """Transfer-direction optimisation flags of FPGA_MAP_OBJECT."""

    IN = auto()
    OUT = auto()
    INOUT = IN | OUT


class Hint(Flag):
    """Optimisation hints of FPGA_MAP_OBJECT (§3.1/§3.3).

    "To allow fine tuning of actions performed by the interface
    manager, the use of optimisation hints passed as parameters to the
    OS services is envisioned."

    * ``PINNED`` — keep this object's pages resident once loaded; the
      VIM never selects them for eviction.  For small, hot datasets
      (lookup tables, state blocks) that would otherwise thrash.
    * ``STREAM`` — the object is accessed strictly sequentially; the
      VIM prefetches its next page on every fault for it, even when no
      global prefetcher is configured.
    """

    NONE = 0
    PINNED = auto()
    STREAM = auto()


@dataclass
class MappedObject:
    """One dataset declared to the VIM for coprocessor use."""

    obj_id: int
    buffer: UserBuffer
    size: int
    direction: Direction
    hints: Hint = Hint.NONE
    #: Virtual pages of this object that have been written back to user
    #: space by an eviction during the current execution.  A later
    #: re-fault on such a page must reload it even for an OUT object,
    #: otherwise the earlier results would be lost.
    written_back: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        # The low byte is the CP_OBJ wire value (0xFF is reserved for
        # the parameter page); the bits above are the owning tenant's
        # ASID, zero for single-tenant sessions.
        if self.obj_id < 0 or obj_local(self.obj_id) > 0xFE:
            raise SyscallError(
                f"object id {self.obj_id} has reserved low byte or is "
                "negative (CP_OBJ must be in [0, 254])"
            )
        if self.size <= 0:
            raise SyscallError(f"object {self.obj_id}: size must be positive")
        if self.size > self.buffer.size:
            raise SyscallError(
                f"object {self.obj_id}: size {self.size} exceeds buffer "
                f"size {self.buffer.size}"
            )

    def num_pages(self, page_size: int) -> int:
        """Number of virtual pages the object spans."""
        return (self.size + page_size - 1) // page_size

    def page_span(self, vpage: int, page_size: int) -> tuple[int, int]:
        """``(byte offset, length)`` of *vpage* within the object.

        The final page may be partial; the length is clamped to the
        object size so copies never touch bytes outside the dataset.
        """
        offset = vpage * page_size
        if offset >= self.size:
            raise SyscallError(
                f"object {self.obj_id}: page {vpage} beyond size {self.size}"
            )
        return offset, min(page_size, self.size - offset)

    def needs_load(self, vpage: int) -> bool:
        """Must this page be copied in from user space on a fault?"""
        return bool(self.direction & Direction.IN) or vpage in self.written_back

    @property
    def asid(self) -> int:
        """The owning tenant's address-space id (0 for single-tenant)."""
        return obj_asid(self.obj_id)

    @property
    def local_id(self) -> int:
        """The 8-bit CP_OBJ value the coprocessor uses for this object."""
        return obj_local(self.obj_id)

    @property
    def pinned(self) -> bool:
        """True when the object's pages must never be evicted."""
        return bool(self.hints & Hint.PINNED)

    @property
    def streaming(self) -> bool:
        """True when the VIM should prefetch this object sequentially."""
        return bool(self.hints & Hint.STREAM)

    def reset_for_execution(self) -> None:
        """Per-execution state reset (write-back tracking)."""
        self.written_back.clear()
