"""DP-RAM frame allocator.

"Although it is excluded from the virtual memory mapping, the reserved
memory region is managed by the OS and divided into pages" (§3.2).
The allocator is the VIM's bookkeeping for those physical pages
(*frames*): which are free, which holds the parameter-passing page,
and which (object, virtual page) each data frame currently hosts.
"""

from __future__ import annotations

from repro.errors import VimError

#: Owner tag of the parameter-passing frame.
PARAM_OWNER = ("param", 0)


class FrameAllocator:
    """Ownership map for the physical pages of the dual-port RAM."""

    def __init__(self, num_frames: int) -> None:
        if num_frames < 2:
            raise VimError(
                f"need at least 2 DP-RAM pages (param + data), got {num_frames}"
            )
        self.num_frames = num_frames
        self._owner: list[tuple[int, int] | tuple[str, int] | None] = [
            None
        ] * num_frames
        self._resident: dict[tuple[int, int], int] = {}

    def reset(self) -> None:
        """Free every frame (start of a new execution)."""
        self._owner = [None] * self.num_frames
        self._resident.clear()

    def free_frames(self) -> list[int]:
        """Currently unowned frames, lowest number first."""
        return [f for f, owner in enumerate(self._owner) if owner is None]

    def data_frames(self) -> list[int]:
        """Frames holding data pages (eviction candidates)."""
        return [
            f
            for f, owner in enumerate(self._owner)
            if owner is not None and owner != PARAM_OWNER
        ]

    def param_frame(self) -> int | None:
        """The frame holding the parameter page, if any."""
        for frame, owner in enumerate(self._owner):
            if owner == PARAM_OWNER:
                return frame
        return None

    def allocate_free(self) -> int | None:
        """Take the lowest free frame, or None when all are owned."""
        free = self.free_frames()
        return free[0] if free else None

    def assign(self, frame: int, obj_id: int, vpage: int) -> None:
        """Record that *frame* now hosts (obj_id, vpage)."""
        self._check(frame)
        if self._owner[frame] is not None:
            raise VimError(f"frame {frame} already owned by {self._owner[frame]}")
        key = (obj_id, vpage)
        if key in self._resident:
            raise VimError(f"page {key} already resident in frame {self._resident[key]}")
        self._owner[frame] = key
        self._resident[key] = frame

    def assign_param(self, frame: int) -> None:
        """Record that *frame* hosts the parameter-passing page."""
        self._check(frame)
        if self._owner[frame] is not None:
            raise VimError(f"frame {frame} already owned by {self._owner[frame]}")
        if self.param_frame() is not None:
            raise VimError("a parameter frame is already allocated")
        self._owner[frame] = PARAM_OWNER

    def release(self, frame: int) -> None:
        """Free *frame* (after eviction or parameter-page release)."""
        self._check(frame)
        owner = self._owner[frame]
        if owner is None:
            raise VimError(f"frame {frame} is already free")
        if owner != PARAM_OWNER:
            del self._resident[owner]  # type: ignore[arg-type]
        self._owner[frame] = None

    def owner_of(self, frame: int) -> tuple[int, int] | None:
        """The (obj_id, vpage) hosted by *frame* (None if free/param)."""
        self._check(frame)
        owner = self._owner[frame]
        if owner is None or owner == PARAM_OWNER:
            return None
        return owner  # type: ignore[return-value]

    def frame_of(self, obj_id: int, vpage: int) -> int | None:
        """The frame hosting (obj_id, vpage), or None if not resident."""
        return self._resident.get((obj_id, vpage))

    def resident_count(self) -> int:
        """Number of owned frames (data + param)."""
        return sum(1 for owner in self._owner if owner is not None)

    def _check(self, frame: int) -> None:
        if not 0 <= frame < self.num_frames:
            raise VimError(f"frame {frame} out of range [0, {self.num_frames})")
