"""The Virtual Interface Manager.

The VIM is the OS half of the paper's contribution — "implemented as a
Linux kernel module tuned to the hardware characteristics of the
particular system" (§4).  It owns the DP-RAM frame allocator and
services the two IMU interrupt causes of §3.3:

**Page fault** — "the coprocessor attempted an access of a dataset
part not currently in the dual-port memory.  The OS rearranges the
current mapping ... It may happen that all pages are in use and in this
case a page is selected for eviction.  If the page is dirty its
contents are copied back to the user-space memory and the page is newly
allocated for the missing data ... Afterward, the OS allows the IMU to
restart the translation and lets the coprocessor exit from the stalled
state."

**End of operation** — "The interface manager copies back to user
space all the dirty data currently residing in the dual-port memory."

Transfer modes
--------------
§4.1 admits that "our simple implementation ... makes two transfers
each time a page is loaded or unloaded from the dual-port memory" (via
an intermediate kernel buffer) and that the authors were removing the
limitation.  ``TransferMode.DOUBLE`` reproduces the measured system;
``TransferMode.SINGLE`` is the announced improvement; ``TransferMode.
DMA`` goes one step further and moves pages by descriptor on the
modelled :class:`~repro.hw.dma.DmaEngine`.  All three are benchmarked
in ``benchmarks/bench_ablation_transfers.py``; every copy path in this
module routes through one :class:`~repro.os.vim.transfer.
TransferEngine`, where the whole copy cost model lives.
"""

from __future__ import annotations

from repro.coproc.ports import PARAM_OBJECT, obj_asid, obj_local, tag_obj
from repro.errors import VimError
from repro.hw.bus import AhbBus
from repro.hw.dma import DmaEngine
from repro.hw.dpram import DualPortRam
from repro.imu.imu import Imu
from repro.imu.tlb import TlbEntry
from repro.os.costs import Bucket
from repro.os.kernel import Kernel
from repro.os.process import Process
from repro.os.vim.allocator import FrameAllocator
from repro.os.vim.objects import Direction, MappedObject
from repro.os.vim.policies import ReplacementPolicy, VictimContext, make_policy
from repro.os.vim.prefetch import Prefetcher, SequentialPrefetcher
from repro.os.vim.transfer import TransferMode, make_transfer_engine

__all__ = ["TransferMode", "Vim"]

#: Prefetcher used for objects mapped with the STREAM hint when no
#: global prefetcher is configured.  The hint is an explicit promise of
#: sequential access, so speculative eviction is authorised.
_STREAM_HINT_PREFETCHER = SequentialPrefetcher(depth=1, aggressive=True)


class Vim:
    """Virtual Interface Manager kernel module."""

    def __init__(
        self,
        kernel: Kernel,
        dpram: DualPortRam,
        bus: AhbBus,
        imu: Imu,
        policy: ReplacementPolicy | str = "fifo",
        transfer_mode: TransferMode = TransferMode.DOUBLE,
        prefetcher: Prefetcher | None = None,
        eager_mapping: bool = True,
        shared: bool = False,
        dma: DmaEngine | None = None,
    ) -> None:
        self.kernel = kernel
        self.dpram = dpram
        self.bus = bus
        self.imu = imu
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        #: Informational only: the mode's behaviour lives entirely in
        #: ``self.transfer`` (built once below); mutating this does not
        #: change how pages move.
        self.transfer_mode = transfer_mode
        #: The board's DMA controller (None in bare test rigs; required
        #: for ``TransferMode.DMA`` and overlapped prefetching).
        self.dma = dma
        #: The one object every page movement is performed and charged
        #: through (see :mod:`repro.os.vim.transfer`).
        self.transfer = make_transfer_engine(transfer_mode, kernel, bus, dma)
        if (
            prefetcher is not None
            and getattr(prefetcher, "overlapped", False)
            and dma is None
        ):
            # Fail at construction, not mid-fault-service: an
            # overlapped prefetch is a DMA descriptor by definition.
            raise VimError(
                "an overlapped prefetcher needs a DMA engine wired in"
            )
        self.prefetcher = prefetcher
        self.eager_mapping = eager_mapping
        #: Multi-tenant mode: object ids carry an ASID tag, resident
        #: pages (and their translations) survive across executions of
        #: different processes, and eviction may cross tenant lines.
        self.shared = shared
        self.allocator = FrameAllocator(dpram.num_pages)
        self.objects: dict[int, MappedObject] = {}
        self.process: Process | None = None
        self.execution_done = False
        #: ASID of the execution currently being serviced (0 when
        #: single-tenant).
        self.active_asid = 0
        #: Per-victim-tenant count of resident pages evicted by *other*
        #: tenants (the victim side of `Counters.steals`).
        self.pages_lost: dict[int, int] = {}
        self._ctx = VictimContext(imu.tlb)
        # Pages that are resident but whose TLB entry was displaced by a
        # smaller-than-frame-count TLB; remembers their dirtiness so it
        # can be restored when the translation is reinstalled.
        self._shadow_dirty: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Service interface (called by the syscall layer)
    # ------------------------------------------------------------------

    def map_object(self, mapped: MappedObject) -> None:
        """Register a dataset (FPGA_MAP_OBJECT back end)."""
        if mapped.local_id == PARAM_OBJECT:
            raise VimError(f"object id {PARAM_OBJECT} is reserved for parameters")
        self.objects[mapped.obj_id] = mapped

    def unmap_all(self) -> None:
        """Forget every mapped object (process teardown)."""
        self.objects.clear()

    def tenant_objects(self, asid: int) -> list[MappedObject]:
        """The mapped objects owned by *asid* (all of them when 0)."""
        return [m for m in self.objects.values() if m.asid == asid]

    def release_tenant(self, asid: int) -> None:
        """Tear down one tenant: free its frames, entries and objects.

        Dirty pages are *not* written back — a closing session has
        already flushed its outputs at end of operation, so anything
        still marked dirty belongs to an execution that was abandoned.
        """
        for frame in self.allocator.data_frames():
            owner = self.allocator.owner_of(frame)
            if owner is None or obj_asid(owner[0]) != asid:
                continue
            self.imu.tlb.invalidate(*owner)
            self._shadow_dirty.discard(owner)
            self.allocator.release(frame)
            self.policy.on_release(frame)
        self.imu.tlb.invalidate(tag_obj(asid, PARAM_OBJECT), 0)
        for obj_id in [g for g in self.objects if obj_asid(g) == asid]:
            del self.objects[obj_id]

    def setup_execution(self, params: list[int], process: Process) -> None:
        """FPGA_EXECUTE back end: map, pass parameters, start (§3.1)."""
        asid = process.pid if self.shared else 0
        tenant_objects = self.tenant_objects(asid)
        if not tenant_objects:
            raise VimError("FPGA_EXECUTE with no mapped objects")
        costs = self.kernel.costs
        self.process = process
        self.execution_done = False
        self.active_asid = asid
        if self.shared:
            # Tenant switch: point the IMU's CAM tag at the new address
            # space and reset the datapath, keeping resident
            # translations of every tenant live in the TLB.
            self.imu.asid = asid
            self.imu.reset(keep_tlb=True)
            self.kernel.spend(costs.imu_register_cycles, Bucket.SW_IMU)
        else:
            self.imu.reset()
            self.allocator.reset()
            self.policy.reset()
            self._shadow_dirty.clear()
        for mapped in tenant_objects:
            mapped.reset_for_execution()
        # Parameter-passing page: write the scalars, install its
        # translation so the coprocessor can fetch them.
        frame = self.allocator.allocate_free()
        if frame is None and self.shared:
            # A fully-resident DP-RAM at turn start: evict one data
            # page (possibly a neighbour's) to host the parameters.
            candidates = self._eviction_candidates()
            if candidates:
                victim = self.policy.victim(candidates, self._ctx)
                self._evict(victim)
                frame = victim
        if frame is None:
            raise VimError("no free frame for the parameter page")
        self.allocator.assign_param(frame)
        payload = b"".join(int(p).to_bytes(4, "little") for p in params)
        if len(payload) > self.dpram.page_size:
            raise VimError(
                f"{len(params)} parameters exceed the parameter page "
                f"({self.dpram.page_size} bytes)"
            )
        # The parameter page is a page movement like any other: the
        # transfer engine charges it per the active mode (two copies in
        # DOUBLE — through the same intermediate kernel buffer as data
        # pages) and stalls it behind a draining DMA burst if the bus
        # is held (a neighbour's end-of-operation flush, for example).
        self.transfer.param_copy(
            lambda: self.dpram.cpu_write_page(frame, payload), len(payload)
        )
        self._make_tlb_room(self.imu.tag(PARAM_OBJECT), 0)
        self.imu.tlb.insert(self.imu.tag(PARAM_OBJECT), 0, frame)
        self.kernel.spend(costs.tlb_update_cycles, Bucket.SW_IMU)
        if self.eager_mapping:
            self._eager_map(tenant_objects)
        self.imu.start_coprocessor()

    def _eager_map(self, tenant_objects: list[MappedObject]) -> None:
        """Pre-load the caller's pages into free frames, id order first.

        FPGA_EXECUTE "performs the mapping" before launching the
        coprocessor: datasets that fit the DP-RAM are fully resident and
        the execution completes without page faults — the paper's 2 KB
        adpcm case.  In shared mode pages already resident from an
        earlier turn are skipped (their translation is still live), and
        no eviction happens here — residents of other tenants are only
        displaced on demand, by actual faults.
        """
        ordered = sorted(
            tenant_objects, key=lambda m: (not m.pinned, m.obj_id)
        )
        for mapped in ordered:
            for vpage in range(mapped.num_pages(self.dpram.page_size)):
                if self.allocator.frame_of(mapped.obj_id, vpage) is not None:
                    continue
                frame = self.allocator.allocate_free()
                if frame is None:
                    return
                self._install_page(mapped, vpage, frame, compulsory=True)

    # ------------------------------------------------------------------
    # Interrupt service (registered on INT_PLD)
    # ------------------------------------------------------------------

    def handle_interrupt(self, line: int) -> None:
        """Classify and service an IMU interrupt (§3.3)."""
        costs = self.kernel.costs
        # Read SR to find the cause.
        self.kernel.spend(costs.imu_register_cycles, Bucket.SW_IMU)
        if self.imu.sr.fault:
            self._service_fault()
        elif self.imu.sr.done:
            self._service_done()
        else:
            raise VimError("IMU interrupt with neither fault nor done status")
        self.kernel.interrupts.clear(line)

    def _service_fault(self) -> None:
        costs = self.kernel.costs
        meas = self.kernel.measurement
        # Read AR and decode which (object, page) faulted.
        self.kernel.spend(
            costs.imu_register_cycles + costs.fault_decode_cycles, Bucket.SW_IMU
        )
        obj_id = self.imu.ar.obj
        addr = self.imu.ar.addr
        mapped = self.objects.get(obj_id)
        if mapped is None:
            raise VimError(
                f"coprocessor faulted on unmapped object {obj_id} "
                f"(address {addr:#x})"
            )
        if addr >= mapped.size:
            raise VimError(
                f"coprocessor access at {addr:#x} beyond object {obj_id} "
                f"size {mapped.size:#x}"
            )
        vpage = addr >> self.dpram.page_bits
        resident_frame = self.allocator.frame_of(mapped.obj_id, vpage)
        if resident_frame is not None:
            # TLB-only miss: the page is resident but its translation
            # was displaced (possible only when the TLB is smaller than
            # the frame count).  Reinstall the entry; no data moves —
            # so this is a *TLB refill*, not a page fault, and counting
            # it as one would inflate the §4.1 fault decomposition.
            meas.counters.tlb_refills += 1
            entry = self._install_translation(mapped, vpage, resident_frame)
            # The faulting access *is* a touch: refresh the usage
            # assist so a recency policy cannot victimise the frame the
            # coprocessor is about to retry (e.g. for a prefetch
            # eviction later in this same service).
            entry.last_used = self.imu.tlb.stats.lookups
            entry.referenced = True
            self.policy.on_touch(resident_frame)
        else:
            meas.counters.page_faults += 1
            self._bring_in(mapped, vpage)
        prefetcher = self._prefetcher_for(mapped)
        if prefetcher is not None:
            aggressive = getattr(prefetcher, "aggressive", False)
            overlapped = getattr(prefetcher, "overlapped", False)
            for target, target_vpage in prefetcher.suggest(
                mapped, vpage, self.dpram.page_size
            ):
                if self.allocator.frame_of(target.obj_id, target_vpage) is not None:
                    continue
                frame = self._reusable_free_frame()
                if frame is None and aggressive:
                    candidates = self._eviction_candidates()
                    if candidates:
                        victim = self.policy.victim(candidates, self._ctx)
                        self._evict(victim)
                        frame = victim
                if frame is None:
                    break
                self._install_page(
                    target,
                    target_vpage,
                    frame,
                    compulsory=False,
                    prefetch=True,
                    overlapped=overlapped,
                )
                meas.counters.prefetches += 1
        # Let the IMU retry the translation; the coprocessor unstalls.
        self.imu.restart_translation()
        self.kernel.spend(costs.imu_register_cycles, Bucket.SW_IMU)

    def _service_done(self) -> None:
        """End of operation: flush dirty pages, wake the caller.

        Only the finishing tenant's pages are flushed; a neighbour's
        dirty residents stay in the DP-RAM until their own end of
        operation (or until an eviction writes them back).  In DMA mode
        the flush is *double-buffered*: descriptors are queued and the
        caller is woken while they drain, so the next execution — the
        same tenant's or a neighbour's — starts immediately and any CPU
        copy it issues stalls behind the draining burst.
        """
        costs = self.kernel.costs
        # The flush set is computed by the TLB in one bulk pass over its
        # columns; only matching entries are materialised.
        if self.shared:
            active = self.active_asid

            def flushable(obj: int) -> bool:
                return obj_local(obj) != PARAM_OBJECT and obj_asid(obj) == active
        else:
            def flushable(obj: int) -> bool:
                return obj_local(obj) != PARAM_OBJECT
        for entry in self.imu.tlb.dirty_entries(match=flushable):
            mapped = self.objects.get(entry.obj)
            if mapped is None:
                raise VimError(f"dirty page for unmapped object {entry.obj}")
            self._write_back(mapped, entry.vpage, entry.ppage, flush=True)
            entry.dirty = False
        # Resident pages whose dirty TLB entry was displaced earlier.
        flushed = set()
        for obj_id, vpage in sorted(self._shadow_dirty):
            if self.shared and obj_asid(obj_id) != self.active_asid:
                continue
            frame = self.allocator.frame_of(obj_id, vpage)
            if frame is not None:
                self._write_back(self.objects[obj_id], vpage, frame, flush=True)
            flushed.add((obj_id, vpage))
        if self.shared:
            self._shadow_dirty -= flushed
        else:
            self._shadow_dirty.clear()
        if self.shared:
            # The parameters died with the execution; reclaim their
            # frame now so the next tenant's setup finds it free (the
            # single-tenant path gets this for free from its full
            # allocator reset).
            param_frame = self.allocator.param_frame()
            if param_frame is not None:
                self.imu.tlb.invalidate(self.imu.tag(PARAM_OBJECT), 0)
                self.allocator.release(param_frame)
                self.kernel.spend(costs.page_bookkeeping_cycles, Bucket.SW_OTHER)
        self.imu.acknowledge_done()
        self.kernel.spend(costs.imu_register_cycles, Bucket.SW_IMU)
        if self.process is not None:
            self.kernel.spend(costs.wakeup_cycles, Bucket.SW_OTHER)
            self.kernel.scheduler.wake(self.process)
        self.execution_done = True

    # ------------------------------------------------------------------
    # Page movement
    # ------------------------------------------------------------------

    def _reusable_free_frame(self) -> int | None:
        """A free frame, reclaiming the parameter frame once released."""
        frame = self.allocator.allocate_free()
        if frame is not None:
            return frame
        param_frame = self.allocator.param_frame()
        if param_frame is not None and self.imu.sr.param_released:
            self.allocator.release(param_frame)
            self.kernel.spend(
                self.kernel.costs.page_bookkeeping_cycles, Bucket.SW_OTHER
            )
            return param_frame
        return None

    def _prefetcher_for(self, mapped: MappedObject) -> Prefetcher | None:
        """The prefetcher in effect for *mapped* (hint-aware)."""
        if self.prefetcher is not None:
            return self.prefetcher
        if mapped.streaming:
            return _STREAM_HINT_PREFETCHER
        return None

    def _eviction_candidates(self) -> list[int]:
        """Data frames the policy may evict (pinned objects excluded)."""
        candidates = []
        for frame in self.allocator.data_frames():
            owner = self.allocator.owner_of(frame)
            if owner is not None and self.objects[owner[0]].pinned:
                continue
            candidates.append(frame)
        return candidates

    def _bring_in(self, mapped: MappedObject, vpage: int) -> None:
        """Make (mapped, vpage) resident, evicting if necessary."""
        if self.allocator.frame_of(mapped.obj_id, vpage) is not None:
            raise VimError(
                f"fault on already-resident page ({mapped.obj_id}, {vpage}); "
                "TLB and allocator are out of sync"
            )
        frame = self._reusable_free_frame()
        if frame is None:
            candidates = self._eviction_candidates()
            if not candidates:
                raise VimError(
                    "all DP-RAM pages are pinned; cannot service the fault "
                    f"for object {mapped.obj_id}"
                )
            victim = self.policy.victim(candidates, self._ctx)
            self._evict(victim)
            frame = victim
        self._install_page(mapped, vpage, frame, compulsory=False)

    def _install_page(
        self,
        mapped: MappedObject,
        vpage: int,
        frame: int,
        compulsory: bool,
        prefetch: bool = False,
        overlapped: bool = False,
    ) -> None:
        """Load (if needed) and map one page into *frame*.

        The copy is performed and charged by the transfer engine:
        demand loads block until the page is usable, compulsory
        (eager-mapping) loads may overlap coprocessor start in DMA
        mode, and an ``overlapped`` prefetch is queued as a DMA
        descriptor that drains concurrently with execution — the
        paper's envisioned prefetch win, at real descriptor cost
        instead of the retired free-copy idealisation.
        """
        costs = self.kernel.costs
        meas = self.kernel.measurement
        offset, length = mapped.page_span(vpage, self.dpram.page_size)
        if mapped.needs_load(vpage):
            def move() -> None:
                self.dpram.cpu_write_page(
                    frame, mapped.buffer.read(offset, length)
                )

            if prefetch:
                self.transfer.prefetch(move, length, overlapped)
            elif compulsory:
                self.transfer.preload(move, length)
            else:
                self.transfer.load(move, length)
            meas.counters.bytes_to_dpram += length
        else:
            # First touch of an output-only page: nothing to load; clear
            # the frame so stale bytes can never reach user space.
            self.dpram.cpu_write_page(frame, bytes(self.dpram.page_size))
        if compulsory:
            meas.counters.compulsory_loads += 1
        self.allocator.assign(frame, mapped.obj_id, vpage)
        self._install_translation(mapped, vpage, frame)
        self.kernel.spend(costs.page_bookkeeping_cycles, Bucket.SW_OTHER)
        self.policy.on_load(frame)

    def _make_tlb_room(self, obj_id: int, vpage: int) -> None:
        """Displace a TLB entry if inserting (obj_id, vpage) needs one.

        The victim is the least recently used non-parameter entry; its
        page stays resident, so its dirtiness is remembered for a later
        reinstall or write-back.
        """
        costs = self.kernel.costs
        tlb = self.imu.tlb
        if len(tlb) < tlb.capacity or tlb.probe(obj_id, vpage) is not None:
            return
        # One bulk column pass inside the TLB; same victim as the old
        # min() over entries() (first minimal (last_used, ppage) wins).
        displaced = tlb.coldest_entry(
            skip_obj=lambda obj: obj_local(obj) == PARAM_OBJECT
        )
        if displaced is None:
            raise VimError("TLB full of parameter entries; cannot displace")
        if displaced.dirty:
            self._shadow_dirty.add((displaced.obj, displaced.vpage))
        tlb.invalidate(displaced.obj, displaced.vpage)
        self.kernel.spend(costs.tlb_update_cycles, Bucket.SW_IMU)

    def _install_translation(
        self, mapped: MappedObject, vpage: int, frame: int
    ) -> TlbEntry:
        """Write one TLB entry, displacing another if the TLB is full."""
        costs = self.kernel.costs
        tlb = self.imu.tlb
        key = (mapped.obj_id, vpage)
        self._make_tlb_room(*key)
        entry = tlb.insert(mapped.obj_id, vpage, frame)
        if key in self._shadow_dirty:
            entry.dirty = True
            self._shadow_dirty.discard(key)
        self.kernel.spend(costs.tlb_update_cycles, Bucket.SW_IMU)
        return entry

    def _evict(self, frame: int) -> None:
        """Evict the data page hosted by *frame* (write back if dirty)."""
        costs = self.kernel.costs
        meas = self.kernel.measurement
        owner = self.allocator.owner_of(frame)
        if owner is None:
            raise VimError(f"evicting frame {frame} which holds no data page")
        obj_id, vpage = owner
        mapped = self.objects[obj_id]
        entry = self.imu.tlb.probe(obj_id, vpage)
        dirty = entry.dirty if entry is not None else (obj_id, vpage) in self._shadow_dirty
        if dirty:
            self._write_back(mapped, vpage, frame)
        self._shadow_dirty.discard((obj_id, vpage))
        if entry is not None:
            self.imu.tlb.invalidate(obj_id, vpage)
            self.kernel.spend(costs.tlb_update_cycles, Bucket.SW_IMU)
        self.allocator.release(frame)
        self.policy.on_release(frame)
        meas.counters.evictions += 1
        if self.shared and mapped.asid != self.active_asid:
            # Cross-tenant steal: charged to the evictor's counters,
            # recorded against the victim's residency.
            meas.counters.steals += 1
            self.pages_lost[mapped.asid] = self.pages_lost.get(mapped.asid, 0) + 1

    def _write_back(
        self, mapped: MappedObject, vpage: int, frame: int, flush: bool = False
    ) -> None:
        """Copy a dirty page from the DP-RAM to user space.

        ``flush=True`` marks an end-of-operation write-back, which the
        DMA transfer engine double-buffers (queued with a completion
        interrupt, drained while the next execution runs); an eviction
        write-back (the default) is instead ordered by the descriptor
        queue in front of the load that displaces it.
        """
        meas = self.kernel.measurement
        offset, length = mapped.page_span(vpage, self.dpram.page_size)

        def move() -> None:
            mapped.buffer.write(offset, self.dpram.cpu_read_page(frame, length))

        if flush:
            self.transfer.flush(move, length)
        else:
            self.transfer.write_back(move, length)
        meas.counters.bytes_from_dpram += length
        meas.counters.writebacks += 1
        mapped.written_back.add(vpage)

    # ------------------------------------------------------------------
    # DMA completion service (registered on INT_DMA)
    # ------------------------------------------------------------------

    def handle_dma_complete(self, line: int) -> None:
        """Service the DMA queue-drained interrupt.

        Pure bookkeeping: the completed descriptors' pages were made
        usable at submit time (translations included), so the handler
        only reclaims descriptors and acknowledges the controller.
        """
        self.kernel.spend(self.kernel.costs.dma_complete_cycles, Bucket.SW_DP)
        self.kernel.interrupts.clear(line)
