"""OS-level workloads: what one tenant process runs.

The paper evaluates one application at a time, but its OS integration
(§3.1: ``FPGA_EXECUTE`` "puts the calling process in an interruptible
sleep mode"; §3.3: the end-of-operation interrupt re-queues it) only
pays off when several processes share the coprocessor window.  A
:class:`Workload` is the unit the multi-tenant executor
(:func:`repro.core.tenancy.run_tenants`) schedules: a process identity
plus the coprocessor program it keeps re-invoking — the shape of a
server process answering repeated requests through the same mapped
objects.

This module is deliberately tiny and data-only; the machinery that
spawns processes, arbitrates the fabric and drives the clocks lives in
:mod:`repro.core.tenancy` (the OS layer never imports upward).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import OsError

if TYPE_CHECKING:  # layer rule: os/ must not import core/ at runtime
    from repro.core.runner import WorkloadSpec


@dataclass(frozen=True)
class Workload:
    """One tenant's program: a coprocessor job executed repeatedly.

    Parameters
    ----------
    spec:
        The :class:`~repro.core.runner.WorkloadSpec` to run — objects,
        scalar parameters, bitstream and software reference.
    repeats:
        Number of ``FPGA_EXECUTE`` calls the tenant issues.  Each call
        re-runs the full job over the same mapped objects; between two
        of its calls the tenant sleeps and other tenants' executions
        may steal its resident DP-RAM pages.
    name:
        Tenant process name (defaults to ``tenant<i>-<spec name>``).
    priority:
        Scheduling weight of the tenant's process: the rank a strict-
        priority policy dispatches by, and the consecutive-turn burst
        length under weighted round-robin.  1 (the default) is the
        neutral weight every policy treats as plain round-robin.
    """

    spec: "WorkloadSpec"
    repeats: int = 1
    name: str | None = None
    priority: int = 1

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise OsError(f"workload repeats must be >= 1, got {self.repeats}")
        if self.priority < 1:
            raise OsError(f"workload priority must be >= 1, got {self.priority}")

    def tenant_name(self, index: int) -> str:
        """The process name for this workload at tenant slot *index*."""
        return self.name or f"tenant{index}-{self.spec.name}"
