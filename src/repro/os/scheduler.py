"""The run-queue scheduler and its pluggable dispatch policies.

The current process yields the CPU when it sleeps on ``FPGA_EXECUTE``
and the end-of-operation wakeup re-queues it at the tail — the control
flow an OS port of the VIM has to integrate with.  Single-shot
experiments exercise it with one process (as the paper's do);
multi-tenant runs (:func:`repro.core.tenancy.run_tenants`) put several
contending processes on this queue and let the *policy* decide whose
``FPGA_EXECUTE`` goes next.

The queue mechanics (state transitions, preemption back to the tail,
the ``context_switches`` counter) live in :class:`Scheduler` and are
policy-independent; the one genuinely policy-shaped decision — *which*
READY process to dispatch — is delegated to a
:class:`SchedulingPolicy`.  Three policies ship:

* :class:`RoundRobinPolicy` (``"rr"``) — the historical rotation:
  always the head of the queue, so tenants interleave A, B, C, A, B, C;
* :class:`StrictPriorityPolicy` (``"priority"``) — the highest
  :attr:`~repro.os.process.Process.priority` wins, queue order breaking
  ties.  With all priorities equal the tie-break always picks the
  head, so the dispatch sequence is *identical* to round-robin — the
  invariant the scheduler-equivalence tests pin down;
* :class:`WeightedRoundRobinPolicy` (``"wrr"``) — rotation, but a
  process holds the CPU for ``priority`` consecutive dispatches before
  the queue rotates past it.  All-weights-one again degenerates to
  round-robin.
"""

from __future__ import annotations

from collections import deque
from typing import Protocol, Sequence

from repro.errors import OsError
from repro.os.process import Process, ProcessState

#: Scheduling-policy axis values (``--sched`` on the CLI).
SCHEDS = ("rr", "priority", "wrr")


class SchedulingPolicy(Protocol):
    """Picks which READY process the scheduler dispatches next.

    Implementations are consulted with the current READY queue (in
    queue order, stale entries already dropped) and return the index of
    the process to dispatch.  They may keep state across calls (the
    weighted policy tracks its current burst) but must be deterministic
    — sweep results depend on the dispatch sequence being a pure
    function of the workload.
    """

    #: Axis value naming the policy (one of :data:`SCHEDS`).
    name: str

    def select(self, ready: Sequence[Process]) -> int:
        """The index (into *ready*, non-empty) to dispatch next."""
        ...


class RoundRobinPolicy:
    """Dispatch the head of the queue; preempted processes rejoin at
    the tail, so the rotation visits every tenant in turn."""

    name = "rr"

    def select(self, ready: Sequence[Process]) -> int:
        return 0


class StrictPriorityPolicy:
    """Dispatch the highest-priority READY process.

    Ties break by queue position (earliest wins), so a queue of
    equal-priority processes behaves exactly like round-robin — and a
    single high-priority tenant monopolises the coprocessor whenever it
    is READY, which is the starvation behaviour a contention sweep
    wants to measure, not hide.
    """

    name = "priority"

    def select(self, ready: Sequence[Process]) -> int:
        best = 0
        for index in range(1, len(ready)):
            if ready[index].priority > ready[best].priority:
                best = index
        return best


class WeightedRoundRobinPolicy:
    """Round-robin where a process gets ``priority`` back-to-back turns.

    The rotation order is the queue order, but the policy re-selects
    the process it dispatched last until that process has received
    ``priority`` consecutive dispatches (its *burst*), then moves on.
    A process that leaves the READY queue (finished its repeats, or
    still sleeping when the next dispatch happens) forfeits the rest of
    its burst.
    """

    name = "wrr"

    def __init__(self) -> None:
        self._last_pid: int | None = None
        self._burst = 0

    def select(self, ready: Sequence[Process]) -> int:
        if self._last_pid is not None:
            for index, process in enumerate(ready):
                if process.pid == self._last_pid and self._burst < process.priority:
                    self._burst += 1
                    return index
        self._last_pid = ready[0].pid
        self._burst = 1
        return 0


def scheduling_policy(name: str) -> SchedulingPolicy:
    """Build the :class:`SchedulingPolicy` for axis value *name*."""
    if name == "rr":
        return RoundRobinPolicy()
    if name == "priority":
        return StrictPriorityPolicy()
    if name == "wrr":
        return WeightedRoundRobinPolicy()
    raise OsError(f"unknown scheduling policy {name!r}; choices: {SCHEDS}")


class Scheduler:
    """Run-queue mechanics around a pluggable dispatch policy."""

    def __init__(self, policy: SchedulingPolicy | None = None) -> None:
        self._ready: deque[Process] = deque()
        self._current: Process | None = None
        self.context_switches = 0
        self.policy: SchedulingPolicy = (
            policy if policy is not None else RoundRobinPolicy()
        )

    @property
    def current(self) -> Process | None:
        """The process currently holding the CPU."""
        return self._current

    def enqueue(self, process: Process) -> None:
        """Add a READY process to the run queue."""
        if process.state is not ProcessState.READY:
            raise OsError(
                f"cannot enqueue process {process.pid} in state "
                f"{process.state.value}"
            )
        self._ready.append(process)

    def pick_next(self) -> Process | None:
        """Dispatch the policy's pick (None if nothing is READY)."""
        if self._current is not None and self._current.state is ProcessState.RUNNING:
            # Preempt: back to the tail of the queue.
            self._current.state = ProcessState.READY
            self._ready.append(self._current)
        self._current = None
        # Drop stale entries (terminated mid-queue) in queue order, so
        # the policy only ever sees dispatchable candidates.
        ready = [p for p in self._ready if p.state is ProcessState.READY]
        self._ready = deque(ready)
        if not ready:
            return None
        index = self.policy.select(ready)
        if not 0 <= index < len(ready):
            raise OsError(
                f"policy {self.policy.name!r} selected index {index} "
                f"out of {len(ready)} READY processes"
            )
        candidate = ready[index]
        del self._ready[index]
        candidate.state = ProcessState.RUNNING
        self._current = candidate
        self.context_switches += 1
        return candidate

    def sleep_current(self) -> None:
        """Block the current process (it leaves the CPU)."""
        if self._current is None:
            raise OsError("no current process to sleep")
        self._current.sleep()
        self._current = None

    def wake(self, process: Process) -> None:
        """Unblock *process* and put it back on the run queue."""
        process.wake()
        self._ready.append(process)

    def runnable(self) -> int:
        """Number of processes in the ready queue."""
        return len(self._ready)
