"""A minimal round-robin scheduler.

The current process yields the CPU when it sleeps on ``FPGA_EXECUTE``
and the end-of-operation wakeup re-queues it at the tail — the control
flow an OS port of the VIM has to integrate with.  Single-shot
experiments exercise it with one process (as the paper's do);
multi-tenant runs (:func:`repro.core.tenancy.run_tenants`) put several
contending processes on this queue and let the rotation decide whose
``FPGA_EXECUTE`` goes next, which is what interleaves tenants
A, B, C, A, B, C over the shared DP-RAM.
"""

from __future__ import annotations

from collections import deque

from repro.errors import OsError
from repro.os.process import Process, ProcessState


class Scheduler:
    """Round-robin over READY processes."""

    def __init__(self) -> None:
        self._ready: deque[Process] = deque()
        self._current: Process | None = None
        self.context_switches = 0

    @property
    def current(self) -> Process | None:
        """The process currently holding the CPU."""
        return self._current

    def enqueue(self, process: Process) -> None:
        """Add a READY process to the run queue."""
        if process.state is not ProcessState.READY:
            raise OsError(
                f"cannot enqueue process {process.pid} in state "
                f"{process.state.value}"
            )
        self._ready.append(process)

    def pick_next(self) -> Process | None:
        """Dispatch the next READY process (None if the queue is empty)."""
        if self._current is not None and self._current.state is ProcessState.RUNNING:
            # Preempt: back to the tail of the queue.
            self._current.state = ProcessState.READY
            self._ready.append(self._current)
        self._current = None
        while self._ready:
            candidate = self._ready.popleft()
            if candidate.state is ProcessState.READY:
                candidate.state = ProcessState.RUNNING
                self._current = candidate
                self.context_switches += 1
                return candidate
        return None

    def sleep_current(self) -> None:
        """Block the current process (it leaves the CPU)."""
        if self._current is None:
            raise OsError("no current process to sleep")
        self._current.sleep()
        self._current = None

    def wake(self, process: Process) -> None:
        """Unblock *process* and put it back on the run queue."""
        process.wake()
        self._ready.append(process)

    def runnable(self) -> int:
        """Number of processes in the ready queue."""
        return len(self._ready)
