"""CPU cost model for OS-side work.

The reproduction does not simulate the ARM instruction by instruction;
OS activities are charged analytically, in CPU cycles, using the
constants below.  They are order-of-magnitude figures for an ARM9 class
core at 133 MHz running Linux 2.4 (the paper's platform) and are the
*only* calibration surface of the software side — every benchmark and
every EXPERIMENTS.md number traces back to this table.

Buckets
-------
The paper decomposes VIM-based execution time into three components
(§4.1): hardware time, "software execution time for the dual-port RAM
management (time spent in the OS transferring data from/to user-space
memory)" and "software execution time for the IMU management (time
spent in the OS checking which address has generated the fault and
updating the translation table)".  The cost model tags every charge
with one of the :class:`Bucket` values so the same decomposition falls
out of the measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accounting import Bucket
from repro.errors import OsError

__all__ = ["Bucket", "CpuCostModel"]


@dataclass(frozen=True)
class CpuCostModel:
    """Cycle costs of modelled OS activities (133 MHz ARM defaults)."""

    #: Entering + returning from a system call.
    syscall_cycles: int = 260
    #: Interrupt entry (mode switch, handler dispatch).
    irq_entry_cycles: int = 320
    #: Interrupt exit.
    irq_exit_cycles: int = 110
    #: Waking a sleeping process and scheduling it back in.
    wakeup_cycles: int = 450
    #: Fixed overhead of a copy loop (function call, range checks).
    copy_setup_cycles: int = 60
    #: Per-32-bit-word cost of a CPU copy across the AHB to/from the
    #: DP-RAM (load + store + loop; the AHB is slower than the core).
    copy_cycles_per_word: int = 8
    #: Reading or writing one IMU register (uncached MMIO access).
    imu_register_cycles: int = 18
    #: Deciding which (object, page) faulted from the AR contents.
    fault_decode_cycles: int = 160
    #: Updating one TLB entry through the IMU's register interface.
    tlb_update_cycles: int = 90
    #: Allocator bookkeeping for one page (lists, residency map).
    page_bookkeeping_cycles: int = 120
    #: Validating and recording one FPGA_MAP_OBJECT call.
    map_object_cycles: int = 180
    #: Programming an idle DMA controller for one page transfer
    #: (descriptor build plus control-register MMIO writes).
    dma_setup_cycles: int = 220
    #: Appending one descriptor to an already-running DMA queue (the
    #: controller is started; only the list write and a doorbell).
    dma_descriptor_cycles: int = 90
    #: Servicing the DMA queue-drained completion interrupt (status
    #: read, descriptor reclaim).
    dma_complete_cycles: int = 150

    def __post_init__(self) -> None:
        for field_name, value in self.__dict__.items():
            if value < 0:
                raise OsError(f"cost {field_name} is negative: {value}")

    def copy_cycles(self, nbytes: int) -> int:
        """CPU cycles to copy *nbytes* between user space and DP-RAM."""
        if nbytes < 0:
            raise OsError(f"negative copy size {nbytes}")
        if nbytes == 0:
            return 0
        words = (nbytes + 3) // 4
        return self.copy_setup_cycles + words * self.copy_cycles_per_word
